"""The cycle cost model.

A simple two-resource model of a superscalar core:

- every instruction consumes **issue bandwidth** (front-end slots /
  execution ports), and
- memory-touching instructions additionally consume **memory-port time**.

Within one basic block the two resources overlap imperfectly, so the
block's cost per execution is ``max(issue, memory) + overlap_factor ×
min(issue, memory)``. Total program cycles are the sum over blocks of
``executions × block cost``.

This is the smallest model that reproduces the behaviour the paper's
evaluation hinges on: inserted NOPs consume *only* issue bandwidth, so

- in **issue-bound** code (integer/branch heavy — 400.perlbench,
  482.sphinx3) every NOP's issue cost lands on the critical resource and
  overhead approaches ``p · nop_issue / mean_issue`` (the paper's ~25%
  worst case), while
- in **memory-bound** code (470.lbm's stencil) the memory port is the
  bottleneck and NOP issue slots hide completely (the paper measured ~0%).

The XCHG-based NOPs model the Intel SDM bus-lock behaviour with a large
serializing issue cost, which is exactly why the paper excludes them from
the default candidate set.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, replace

from repro.core.policies import block_probability_function
from repro.x86.instructions import Instr, Mem, SETCC_MNEMONICS
from repro.x86.nops import is_nop_candidate_instr


@dataclass(frozen=True)
class CostModel:
    """Issue/memory costs in cycles. All tunables in one place."""

    alu_issue: float = 0.5            # mov/add/sub/logic/lea/test/cmp/setcc
    shift_issue: float = 0.5
    imul_issue: float = 2.0
    idiv_issue: float = 12.0
    branch_issue: float = 1.0         # conditional branches
    jump_issue: float = 0.5           # unconditional direct jumps
    call_issue: float = 2.0
    ret_issue: float = 2.0
    indirect_issue: float = 3.0       # call/jmp through a register
    push_pop_issue: float = 0.5
    syscall_issue: float = 80.0
    nop_issue: float = 0.42           # the Table-1 non-locking candidates
    xchg_nop_issue: float = 8.0       # bus-locked XCHG candidates
    xchg_issue: float = 8.0           # any other XCHG (same lock penalty)
    memory_cost: float = 2.6          # per memory operand access
    push_pop_memory: float = 1.2      # stack traffic is cache-resident
    overlap_factor: float = 0.1       # imperfect issue/memory overlap

    def with_overrides(self, **kwargs):
        """A copy with some fields replaced (for ablations)."""
        return replace(self, **kwargs)


DEFAULT_COST_MODEL = CostModel()

_SIMPLE_ALU = frozenset({
    "mov", "lea", "add", "sub", "and", "or", "xor", "cmp", "test",
    "inc", "dec", "neg", "not", "cdq", "nop",
})
_SHIFTS = frozenset({"shl", "shr", "sar", "rol", "ror"})


def instr_issue_cost(instr, model=DEFAULT_COST_MODEL):
    """Issue-bandwidth cost of one instruction."""
    mnemonic = instr.mnemonic
    if is_nop_candidate_instr(instr):
        if mnemonic == "xchg":
            return model.xchg_nop_issue
        return model.nop_issue
    if mnemonic in _SIMPLE_ALU:
        return model.alu_issue
    if mnemonic in _SHIFTS:
        return model.shift_issue
    if mnemonic in SETCC_MNEMONICS:
        return model.alu_issue
    if mnemonic == "imul":
        return model.imul_issue
    if mnemonic in ("idiv", "mul"):
        return model.idiv_issue if mnemonic == "idiv" else model.imul_issue
    if mnemonic.startswith("j") and mnemonic not in ("jmp", "jmp_reg"):
        return model.branch_issue
    if mnemonic == "jmp":
        return model.jump_issue
    if mnemonic == "call":
        return model.call_issue
    if mnemonic == "ret":
        return model.ret_issue
    if mnemonic in ("jmp_reg", "call_reg"):
        return model.indirect_issue
    if mnemonic in ("push", "pop"):
        return model.push_pop_issue
    if mnemonic == "int":
        return model.syscall_issue
    if mnemonic == "xchg":
        return model.xchg_issue
    if mnemonic == "hlt":
        return 0.0
    return model.alu_issue


def instr_memory_cost(instr, model=DEFAULT_COST_MODEL):
    """Memory-port cost of one instruction (0 if it touches no memory)."""
    mnemonic = instr.mnemonic
    if mnemonic == "lea" or is_nop_candidate_instr(instr):
        return 0.0
    if mnemonic in ("push", "pop"):
        extra = model.memory_cost if any(isinstance(op, Mem)
                                         for op in instr.operands) else 0.0
        return model.push_pop_memory + extra
    if mnemonic in ("call", "call_reg"):
        return model.push_pop_memory  # return-address push
    if mnemonic == "ret":
        return model.push_pop_memory  # return-address pop
    if any(isinstance(op, Mem) for op in instr.operands):
        return model.memory_cost
    return 0.0


def block_cost_table(records, model=DEFAULT_COST_MODEL):
    """Aggregate (issue, memory) sums per block_id over instruction records.

    ``records`` is the :class:`~repro.backend.linker.InstrRecord` list of a
    linked binary. Returns ``{block_id: (issue_sum, memory_sum)}``.
    """
    table = {}
    for record in records:
        issue, memory = table.get(record.block_id, (0.0, 0.0))
        issue += instr_issue_cost(record.instr, model)
        memory += instr_memory_cost(record.instr, model)
        table[record.block_id] = (issue, memory)
    return table


def cycles_from_cost_table(table, counts, model=DEFAULT_COST_MODEL):
    """Evaluate a block cost table under execution counts.

    This is the single cost-evaluation core: Σ_blocks count ×
    (max(issue, mem) + κ·min(issue, mem)). Every cycle number in the
    repo — the analytic engine, the Figure-4 sweep, the batch engine's
    population evaluation — flows through this sum, in table iteration
    order, so two evaluations of the same table and counts are
    bit-identical.
    """
    total = 0.0
    kappa = model.overlap_factor
    for block_id, (issue, memory) in table.items():
        count = counts.get(block_id, 0)
        if count:
            total += count * (max(issue, memory)
                              + kappa * min(issue, memory))
    return total


def cycles_from_counts(records, counts, model=DEFAULT_COST_MODEL):
    """Total cycles of an instruction-record stream under block counts.

    ``counts`` maps block_id → execution count; block_ids absent from
    ``counts`` are treated as never executed (e.g. unused runtime library
    routines).
    """
    return cycles_from_cost_table(block_cost_table(records, model),
                                  counts, model)


class CostEvaluator:
    """Cost evaluation with per-binary block-table memoization.

    The block cost table of a :class:`~repro.backend.linker.LinkedBinary`
    depends only on its (immutable) instruction records and the model,
    so it is computed once and shared — keyed weakly so dropping a
    binary frees its table. Population sweeps that evaluate the same
    baseline under many inputs, or the same variant under many count
    maps, pay the per-record cost walk once.

    Note the per-*variant* tables are still built from each variant's
    own record stream rather than incrementally from the baseline's:
    float addition is not associative, so "baseline block cost + n ×
    nop_issue" is not bit-identical to accumulating the interleaved
    stream — and bit-identity with :func:`cycles_from_counts` is the
    contract the parity tests enforce.
    """

    def __init__(self, model=DEFAULT_COST_MODEL):
        self.model = model
        self._tables = weakref.WeakKeyDictionary()

    def table(self, binary):
        """The binary's memoized ``{block_id: (issue, memory)}`` table."""
        table = self._tables.get(binary)
        if table is None:
            table = block_cost_table(binary.instr_records, self.model)
            self._tables[binary] = table
        return table

    def cycles(self, binary, counts):
        """Cycles of ``binary`` under block execution counts."""
        return cycles_from_cost_table(self.table(binary), counts,
                                      self.model)


def insertion_sites_per_block(unit):
    """``{block_id: instruction count}`` over the diversifiable functions.

    Every instruction of a diversifiable function is one potential NOP
    insertion site (the pass rolls once per instruction and inserts
    *before* it); runtime-library functions pass through the diversifier
    untouched and contribute no sites.
    """
    sites = {}
    for function_code in unit.functions:
        if not function_code.diversifiable:
            continue
        for item in function_code.items:
            if isinstance(item, Instr):
                sites[item.block_id] = sites.get(item.block_id, 0) + 1
    return sites


def predict_overhead(baseline, unit, counts, config, profile=None,
                     model=DEFAULT_COST_MODEL, sites=None):
    """Zero-execution overhead prediction for an *unbuilt* config.

    The expectation of the NOP-insertion transform under the cost model,
    with no variant linked and nothing simulated: each instruction of a
    diversifiable block is an insertion site that adds one NOP with
    probability ``p(block)`` (from :func:`block_probability_function` —
    the same policy the real pass rolls against), and an inserted NOP
    costs the candidate-set mean issue bandwidth and no memory-port
    time. So per block::

        E[added issue] = sites × p(block) × mean_candidate_issue

    and predicted cycles re-evaluate the two-resource block cost with
    the extra issue folded in. This is the serving-time estimate: exact
    in expectation over seeds for NOP insertion (individual seeds
    deviate by the binomial spread), and a NOP-only approximation for
    §6 transform configs. ``sites`` optionally passes a precomputed
    :func:`insertion_sites_per_block` map.

    Returns ``{"baseline_cycles", "predicted_cycles",
    "predicted_overhead"}``.
    """
    policy = block_probability_function(config, profile)
    candidates = config.nop_candidates
    mean_issue = (sum(model.xchg_nop_issue if c.locks_bus else model.nop_issue
                      for c in candidates) / len(candidates))
    if sites is None:
        sites = insertion_sites_per_block(unit)
    table = evaluator_for(model).table(baseline)
    kappa = model.overlap_factor
    base = 0.0
    predicted = 0.0
    for block_id, (issue, memory) in table.items():
        count = counts.get(block_id, 0)
        if not count:
            continue
        base += count * (max(issue, memory) + kappa * min(issue, memory))
        block_sites = sites.get(block_id)
        if block_sites:
            issue = issue + block_sites * policy(block_id) * mean_issue
        predicted += count * (max(issue, memory)
                              + kappa * min(issue, memory))
    overhead = (predicted / base - 1.0) if base else 0.0
    return {
        "baseline_cycles": base,
        "predicted_cycles": predicted,
        "predicted_overhead": overhead,
    }


#: model → shared CostEvaluator (CostModel is frozen/hashable). Ablation
#: models are few, so this stays small; the default model's evaluator is
#: what the analytic engine and every benchmark share.
_EVALUATORS = {}


def evaluator_for(model=DEFAULT_COST_MODEL):
    """The shared :class:`CostEvaluator` for a cost model."""
    evaluator = _EVALUATORS.get(model)
    if evaluator is None:
        evaluator = _EVALUATORS[model] = CostEvaluator(model)
    return evaluator
