"""Direct profile collection via the reference interpreter.

The interpreter's ``edge_observer`` hook fires on every traversed CFG edge
(and on each function invocation, as a virtual entry edge with
``source=None``), giving exact edge counts without mutating the module.
This is the fast path; the instrumented path in
:mod:`repro.profiling.instrument` is validated against it.
"""

from __future__ import annotations

from repro.ir.interp import Interpreter
from repro.profiling.profile_data import ProfileData


def collect_profile(module, input_values=(), max_steps=200_000_000):
    """Run ``main`` and return (ProfileData, ExecutionResult)."""
    edge_counts = {}

    def observer(function_name, source, target):
        key = (function_name, source, target)
        edge_counts[key] = edge_counts.get(key, 0) + 1

    interp = Interpreter(module, input_values=input_values,
                         max_steps=max_steps, edge_observer=observer)
    result = interp.run()
    return ProfileData.from_edges(edge_counts), result


def collect_profile_multi(module, input_sets, max_steps=200_000_000):
    """Profile over several training inputs, accumulating counts."""
    total = ProfileData()
    last_result = None
    for input_values in input_sets:
        profile, last_result = collect_profile(module, input_values,
                                               max_steps=max_steps)
        total.merge(profile)
    return total, last_result
