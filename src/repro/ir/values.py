"""IR value kinds: virtual registers and integer constants.

The IR is not SSA: a :class:`VirtualReg` may be assigned more than once
(MinC variables map directly onto virtual registers). All values are 32-bit
signed integers; arithmetic wraps, matching the x86 target.
"""

from __future__ import annotations

from dataclasses import dataclass

_U32_MASK = 0xFFFF_FFFF


def wrap32(value):
    """Wrap a Python int to signed 32-bit two's complement."""
    value &= _U32_MASK
    return value - 0x1_0000_0000 if value >= 0x8000_0000 else value


@dataclass(frozen=True)
class VirtualReg:
    """A virtual register, unique per function by its number."""

    number: int
    name: str | None = None

    def __repr__(self):
        if self.name:
            return f"%{self.name}.{self.number}"
        return f"%t{self.number}"


@dataclass(frozen=True)
class Const:
    """A 32-bit signed integer constant."""

    value: int

    def __post_init__(self):
        object.__setattr__(self, "value", wrap32(self.value))

    def __repr__(self):
        return str(self.value)
