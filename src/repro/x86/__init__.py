"""x86-32 instruction-set substrate.

This package models the subset of IA-32 used by the reproduction:

- :mod:`repro.x86.registers` — the eight 32-bit general-purpose registers.
- :mod:`repro.x86.instructions` — operand and instruction classes shared by
  the compiler backend, the encoder/decoder and the simulator.
- :mod:`repro.x86.encoder` — instruction → bytes.
- :mod:`repro.x86.decoder` — bytes → instruction, usable both for linear
  sweeps of emitted code and for decoding *arbitrary* byte offsets, which is
  what gadget scanners need.
- :mod:`repro.x86.nops` — the NOP candidate table from Table 1 of the paper.
- :mod:`repro.x86.asmwriter` — AT&T-free, Intel-syntax pretty printing.
"""

from repro.x86.registers import (
    EAX, ECX, EDX, EBX, ESP, EBP, ESI, EDI, GPR_REGISTERS, Register,
    register_by_code, register_by_name,
)
from repro.x86.instructions import Imm, Instr, Label, Mem, Rel
from repro.x86.encoder import encode, encoded_length
from repro.x86.decoder import decode, decode_all, try_decode
from repro.x86.nops import (
    NOP_CANDIDATES, DEFAULT_NOP_CANDIDATES, XCHG_NOP_CANDIDATES, NopCandidate,
    is_nop_candidate_bytes, is_nop_candidate_instr,
)
from repro.x86.asmwriter import format_instr, format_operand

__all__ = [
    "EAX", "ECX", "EDX", "EBX", "ESP", "EBP", "ESI", "EDI",
    "GPR_REGISTERS", "Register", "register_by_code", "register_by_name",
    "Imm", "Instr", "Label", "Mem", "Rel",
    "encode", "encoded_length",
    "decode", "decode_all", "try_decode",
    "NOP_CANDIDATES", "DEFAULT_NOP_CANDIDATES", "XCHG_NOP_CANDIDATES",
    "NopCandidate", "is_nop_candidate_bytes", "is_nop_candidate_instr",
    "format_instr", "format_operand",
]
