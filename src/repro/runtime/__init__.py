"""The pre-assembled runtime library ("libc")."""

from repro.runtime.lib import (
    RUNTIME_FUNCTION_NAMES, runtime_call_counts, runtime_unit,
)

__all__ = ["RUNTIME_FUNCTION_NAMES", "runtime_call_counts", "runtime_unit"]
