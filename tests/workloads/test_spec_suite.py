"""SPEC-like suite tests: every workload builds, runs identically on the
interpreter and the simulator, and survives diversification unchanged.

These are the heaviest tests in the suite (19 full compiles + simulated
train runs), so the matrix uses train inputs only.
"""

import pytest

from repro.core.config import PAPER_CONFIGS
from repro.pipeline import ProgramBuild
from repro.workloads.registry import (
    SPEC_ORDER, all_spec_workloads, get_workload, workload_names,
)

_BUILDS = {}


def build_for(name):
    if name not in _BUILDS:
        workload = get_workload(name)
        _BUILDS[name] = (workload, ProgramBuild(workload.source,
                                                workload.name))
    return _BUILDS[name]


def test_registry_is_complete():
    assert len(SPEC_ORDER) == 19
    assert len(all_spec_workloads()) == 19
    assert "php" in workload_names()


def test_unknown_workload_rejected():
    from repro.errors import WorkloadError
    with pytest.raises(WorkloadError):
        get_workload("999.nope")


@pytest.mark.parametrize("name", SPEC_ORDER)
def test_workload_runs_and_matches_simulator(name):
    workload, build = build_for(name)
    reference = build.run_reference(workload.train_input)
    assert reference.output, f"{name} must print a checksum"
    result = build.simulate(build.link_baseline(), workload.train_input)
    assert result.output == reference.output
    assert result.exit_code == reference.exit_code


@pytest.mark.parametrize("name", SPEC_ORDER)
def test_workload_train_and_ref_inputs_differ(name):
    workload, _build = build_for(name)
    assert workload.train_input != workload.ref_input


@pytest.mark.parametrize("name", ["470.lbm", "400.perlbench",
                                  "456.hmmer", "473.astar"])
def test_diversified_workload_output_unchanged(name):
    workload, build = build_for(name)
    reference = build.run_reference(workload.train_input)
    profile = build.profile(workload.train_input)
    for label in ("50%", "0-30%"):
        config = PAPER_CONFIGS[label]
        p = profile if config.requires_profile else None
        variant = build.link_variant(config, seed=1, profile=p)
        result = build.simulate(variant, workload.train_input)
        assert result.output == reference.output, (name, label)


def test_profiles_are_skewed_as_the_paper_requires():
    # §3.1's premise: max block counts dwarf medians (hot loops).
    workload, build = build_for("456.hmmer")
    profile = build.profile(workload.train_input)
    maximum, median, _total = profile.summary()
    assert maximum > 20 * max(median, 1)


def test_astar_counts_spread_out():
    # §3.1's 473.astar observation: the median sits well *inside* the
    # count interval — far from both extremes — which is what defeats
    # the linear probability heuristic.
    workload, build = build_for("473.astar")
    profile = build.profile(workload.ref_input)
    maximum, median, _total = profile.summary()
    assert maximum / 100 < median < maximum / 2


def test_instruction_mixes_differ_across_suite():
    # The perf results depend on lbm being memory-bound (NOPs hidden)
    # and perlbench issue-bound (NOPs costed fully): the measurable
    # consequence is a large overhead gap at pNOP=50%.
    from repro.core.config import PAPER_CONFIGS

    def overhead(name):
        workload, build = build_for(name)
        return build.overhead(PAPER_CONFIGS["50%"], seed=0,
                              ref_input=workload.train_input)

    lbm = overhead("470.lbm")
    perlbench = overhead("400.perlbench")
    assert perlbench > 3 * lbm
