"""Population-wide gadget survival (paper Table 3).

An attacker who only needs to compromise *some* of the installed base
looks for the largest gadget set common to many diversified binaries,
ignoring the undiversified original. For a population of N variants we
count the gadgets — identified by ``(offset, normalized bytes)`` — that
appear in at least k of the N binaries.

The same baseline gadget can legitimately be counted at several offsets
(displaced to offset O1 in one subset of the population and O2 in
another), which is why the ≥2 column of Table 3 exceeds the original
binary's gadget count.
"""

from __future__ import annotations

from collections import Counter
from functools import partial

from repro.security.survivor import gadget_signatures


def _signature_chunk(texts, kwargs):
    """Scan one chunk of text sections (module-level for pool pickling).

    Gadget scanning decodes every byte offset through the process-global
    decode memo in :mod:`repro.security.gadgets`; variants of one
    population share most of their byte windows, so the memo warms on a
    chunk's first text and the rest of the chunk mostly hits it.
    """
    return [gadget_signatures(text, **kwargs) for text in texts]


def population_signatures(texts, workers=None, *, force_pool=False,
                          **kwargs):
    """Per-variant gadget signature maps for a population of binaries.

    The full-byte-offset gadget scan per variant is the Table 2/3 hot
    loop, so it fans out over the same chunked process pool the
    population builder uses (``workers=None`` defers to
    ``REPRO_WORKERS``, clamped to the core count; serial in-process when
    that resolves to 1). Results are in ``texts`` order either way.
    """
    from repro.pipeline import map_chunked

    return map_chunked(partial(_signature_chunk, kwargs=kwargs), texts,
                       workers=workers, force_pool=force_pool)


def population_survival(texts, thresholds=(2, 5, 12), *,
                        signatures=None, **kwargs):
    """Count gadgets shared by at least k variants, for each k.

    ``texts`` is the population's text sections; ``signatures`` may carry
    precomputed :func:`population_signatures`. Returns ``{k: count}``.
    """
    if signatures is None:
        signatures = population_signatures(texts, **kwargs)
    occurrences = Counter()
    for variant in signatures:
        occurrences.update(set(variant.items()))
    return {
        threshold: sum(1 for count in occurrences.values()
                       if count >= threshold)
        for threshold in thresholds
    }
