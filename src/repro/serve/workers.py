"""Shard-worker side of the serve daemon (runs in pool processes).

Mirrors the population pool protocol of :mod:`repro.pipeline`: the
parent ships the pickled lowered unit once per (program, config) pair
(:func:`shard_adopt`), the worker compiles its own
:class:`~repro.backend.linkplan.LinkPlan` and
:class:`~repro.analysis.transparency.TransparencyProver` from it, and
every subsequent request is pure per-variant work — ``diversify +
plan.apply() + stream-verify`` — with no front end, no optimizer, no
lowering and no baseline re-derivation on the request path.

Every handler returns ``(payload, MetricsDelta)``; the parent folds the
delta into its own registry so cache hit/miss/put counts, NOP-insertion
counters and ``stage.*`` timings from shard processes appear in the
daemon's ``stats`` endpoint exactly like pool-build metrics do.
"""

from __future__ import annotations

import pickle

from repro.analysis.equivalence import EquivalenceProver
from repro.analysis.transparency import TransparencyProver
from repro.artifacts import VariantCache
from repro.backend.linker import link
from repro.backend.linkplan import build_link_plan, plan_features
from repro.core.variants import diversify_unit
from repro.errors import PlanMismatchError, ServeError
from repro.obs import metrics
from repro.runtime.lib import runtime_unit
from repro.serve.protocol import user_seed

#: (program, config_label) → adopted state. One entry per pair this
#: shard process has been handed; every request reuses it.
_SHARD_STATE = {}


def shard_adopt(key, unit_blob, config, profile_json, cache_root,
                baseline_identity):
    """Install one (program, config) pair's state in this shard process.

    ``baseline_identity`` is the parent's baseline hash; the worker
    re-derives its baseline from the shipped unit and cross-checks, so
    a parent/worker code-version skew cannot silently serve variants of
    a different program than the parent predicted overheads for.
    """
    from repro.profiling.profile_data import ProfileData

    unit = pickle.loads(unit_blob)
    profile = (ProfileData.from_json(profile_json)
               if profile_json is not None else None)
    plan = build_link_plan([runtime_unit(), unit])
    baseline = plan.baseline()
    if baseline.identity_hash() != baseline_identity:
        raise ServeError(
            "shard baseline disagrees with the parent's",
            context={"program": key[0], "config": key[1],
                     "expected": baseline_identity,
                     "got": baseline.identity_hash()})
    _SHARD_STATE[key] = {
        "unit": unit,
        "config": config,
        "profile": profile,
        "plan": plan,
        "nop_transparent": not plan_features(config),
        "baseline": baseline,
        "prover": TransparencyProver(baseline),
        "eq_prover": None,  # built lazily; only §6 configs need it
        "cache": VariantCache(cache_root) if cache_root else None,
    }
    return key


def _eq_prover(state):
    """The state's :class:`EquivalenceProver`, built on first use."""
    if state["eq_prover"] is None:
        state["eq_prover"] = EquivalenceProver(state["baseline"])
    return state["eq_prover"]


def _state_for(key):
    state = _SHARD_STATE.get(key)
    if state is None:
        raise ServeError("shard has not adopted this program/config",
                         context={"program": key[0], "config": key[1]})
    return state


def _build_variant(state, seed):
    """diversify + plan.apply one seed from adopted state (the hot path).

    Every config — NOP-only and §6 alike — takes the generalized plan's
    apply; an unrecognized stream shape falls back to a full link.
    """
    variant = diversify_unit(state["unit"], state["config"], seed,
                             state["profile"])
    try:
        return state["plan"].apply(variant)
    except PlanMismatchError:
        metrics.inc("linkplan.fallbacks")
    return link([runtime_unit(), variant])


def _verify_served(state, binary, verify_mode):
    """Gate a to-be-served binary; returns ``(how, inserted_nops)``.

    ``stream`` mode runs the fused transparency stream proof when the
    config is NOP-transparent (no §6 feature slots); §6 transform
    configs are not "baseline + NOPs" by construction, so they take the
    generalized semantics-preservation proof instead
    (:class:`~repro.analysis.equivalence.EquivalenceProver`) — which
    proves every inserted sled dead rather than tolerating
    ``verify.unreachable`` wholesale, so unreachable bytes outside a
    proven sled are a hard failure again. ``full`` runs the structural
    verifier (with the ``equivalence`` pass for §6 configs) plus, when
    NOP-provable, the full transparency proof. Any finding raises
    :class:`ServeError` — an unverified variant must never leave the
    daemon.
    """
    if verify_mode is None:
        return "off", None
    provable = state["nop_transparent"]
    if verify_mode == "stream":
        if provable:
            report = state["prover"].prove(binary, mode="stream")
            if not report.ok:
                raise ServeError(
                    "served variant failed its transparency stream proof",
                    context={"findings": [f.describe()
                                          for f in report.findings[:10]]})
            return "stream", report.stats["inserted_nops"]
        report = _eq_prover(state).prove(binary,
                                         variant_name="served-variant")
        if not report.ok:
            raise ServeError(
                "served variant failed its equivalence proof",
                context={"findings": [f.describe()
                                      for f in report.findings[:10]]})
        return "equivalence", report.stats["inserted_nops"]
    from repro.analysis.passes import verify_binary
    report = verify_binary(binary, name="served-variant",
                           baseline=None if provable
                           else _eq_prover(state))
    if report.findings:
        raise ServeError(
            "served variant failed static verification",
            context={"findings": [f.describe()
                                  for f in report.findings[:10]]})
    if verify_mode == "full" and provable:
        report = state["prover"].prove(binary, mode="full")
        if not report.ok:
            raise ServeError(
                "served variant failed its transparency proof",
                context={"findings": [f.describe()
                                      for f in report.findings[:10]]})
        return "full", report.stats["inserted_nops"]
    if provable:
        return "structural", None
    return "equivalence", report.stats["equivalence"]["inserted_nops"]


def shard_variant(key, user, cache_key, verify_mode):
    """Serve one variant request; returns ``(payload, delta)``.

    The artifact cache is consulted first — a hit skips diversify, link
    *and* verify (entries were verified before :func:`VariantCache.put`,
    and the framed read guard rejects torn files), which is the on-disk
    half of the cache-hit fast path. Misses build, verify, then publish
    to the cache for every later process.
    """
    before = metrics.snapshot()
    state = _state_for(key)
    seed = user_seed(key[0], key[1], user)
    cache = state["cache"]
    binary = (cache.get(cache_key)
              if cache is not None and cache_key else None)
    from_cache = binary is not None
    if binary is None:
        binary = _build_variant(state, seed)
        verified, inserted = _verify_served(state, binary, verify_mode)
        if cache is not None and cache_key:
            cache.put(cache_key, binary)
    else:
        verified, inserted = "cached", None
    metrics.inc("serve.worker.variants")
    payload = {
        "seed": seed,
        "identity": binary.identity_hash(),
        "text_bytes": len(binary.text),
        "inserted_nops": inserted,
        "verified": verified,
        "from_cache": from_cache,
    }
    return payload, metrics.delta_since(before)


def shard_symbolicate(key, user, addresses, frame_limit=256):
    """Symbolicate variant addresses; returns ``(payload, delta)``.

    Stateless ΔBreakpad: the user's variant is rebuilt deterministically
    from its seed and a proof-backed address map resolves each address —
    so symbolication needs no per-served-variant storage, only the
    determinism the cache key already relies on. NOP-transparent
    configs use the stream proof's
    :class:`~repro.analysis.transparency.AddressMap`; §6 configs use
    the equivalence proof's generalized
    :class:`~repro.analysis.equivalence.EquivalenceMap`, so
    substitution, bb-shift and reordering get *exact* answers too. Only
    a variant whose proof fails reports ``symbolicatable: false`` with
    a typed reason — never a guess.
    """
    before = metrics.snapshot()
    state = _state_for(key)
    seed = user_seed(key[0], key[1], user)
    binary = _build_variant(state, seed)
    if state["nop_transparent"]:
        report, amap = state["prover"].address_map(binary)
        reason = "transparency_proof_failed"
    else:
        proof = _eq_prover(state).prove(binary)
        report, amap = proof, proof.map
        reason = "equivalence_proof_failed"
    if amap is None:
        metrics.inc("serve.worker.unsymbolicatable")
        payload = {"seed": seed, "symbolicatable": False,
                   "reason": reason,
                   "findings": [f.describe() for f in report.findings[:10]],
                   "frames": None}
        return payload, metrics.delta_since(before)
    from repro.serve.symbolicate import resolve_frames
    frames = resolve_frames(amap, state["baseline"],
                            addresses[:frame_limit])
    metrics.inc("serve.worker.symbolications")
    payload = {"seed": seed, "symbolicatable": True, "frames": frames}
    return payload, metrics.delta_since(before)
