"""Layout, branch relaxation, symbol resolution, final image.

The linker receives :class:`~repro.backend.objfile.ObjectUnit` lists,
lays the functions out in order at ``text_base``, chooses rel8/rel32
encodings for jumps by monotone widening (start everything short, widen
whatever does not reach, repeat to fixpoint), resolves data symbols, and
produces a :class:`LinkedBinary` with the final byte image and an
instruction record table for the analytic cost engine and the security
ground truth.

Because the NOP-insertion pass runs *before* the linker, every inserted
NOP genuinely displaces the following code and every branch offset is
recomputed around it — exactly the property the paper's Figure 2 shows.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.errors import LinkError
from repro.backend.objfile import LabelDef
from repro.obs.trace import span
from repro.x86.encoder import encode, instruction_size
from repro.x86.instructions import Instr, Label, Mem, Rel

#: Default load address of the text section (the fixed Linux 32-bit
#: executable base the paper mentions: 0x8048000).
DEFAULT_TEXT_BASE = 0x08048000


@dataclass
class InstrRecord:
    """One emitted instruction in the final image."""

    address: int
    size: int
    mnemonic: str
    block_id: object
    is_inserted_nop: bool
    instr: Instr


@dataclass(eq=False)
class LinkedBinary:
    """A fully laid-out program image.

    Identity (not structural) equality: each link produces a distinct
    binary, and identity hashing is what lets the simulator key its
    shared per-binary decode/specialize caches on the binary itself
    (``weakref.WeakKeyDictionary``). Compare images via
    :meth:`identity_hash` when structural equality is wanted.
    """

    text: bytes
    text_base: int
    entry: int
    code_symbols: dict
    data_symbols: dict
    data_base: int
    data_end: int
    data_words: dict  # address -> initial 32-bit value
    instr_records: list = field(default_factory=list)
    function_ranges: dict = field(default_factory=dict)  # name -> (start, end)
    #: Optional :class:`repro.backend.linkplan.PlanProvenance` attached by
    #: ``LinkPlan.apply`` when the variant exercised a §6 feature.
    #: In-process only: pickling (the artifact cache) drops it, so cached
    #: binaries always re-prove.
    provenance: object = field(default=None, repr=False)

    def __getstate__(self):
        state = dict(self.__dict__)
        state["provenance"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self.__dict__.setdefault("provenance", None)

    @property
    def text_end(self):
        return self.text_base + len(self.text)

    def records_in(self, function_name):
        start, end = self.function_ranges[function_name]
        return [r for r in self.instr_records if start <= r.address < end]

    def identity_hash(self):
        """Hex digest over everything execution can observe.

        Two binaries with equal identity hashes behave identically under
        the simulator: same text bytes at the same base, same entry, and
        the same initialized data image. The variant artifact cache uses
        this to assert that a cached variant matches a fresh relink.
        """
        digest = hashlib.sha256()
        digest.update(self.text)
        for value in (self.text_base, self.entry,
                      self.data_base, self.data_end):
            digest.update(value.to_bytes(8, "little"))
        for address in sorted(self.data_words):
            digest.update(address.to_bytes(8, "little"))
            digest.update((self.data_words[address]
                           & 0xFFFF_FFFF).to_bytes(4, "little"))
        return digest.hexdigest()

    def __repr__(self):
        return (f"LinkedBinary({len(self.text)} text bytes, "
                f"{len(self.instr_records)} instrs, "
                f"entry={self.entry:#x})")


def _branch_sizes(instr, width):
    """Encoded size of a relative branch at the given width."""
    if instr.mnemonic == "call":
        return 5
    if instr.mnemonic == "jmp":
        return 2 if width == 8 else 5
    return 2 if width == 8 else 6  # Jcc


def _fixed_size(instr):
    """Size of a non-branch instruction (symbols count as disp32)."""
    return instruction_size(instr)


#: Memoized encodings for fully-resolved instructions. Identical
#: (mnemonic, operands) pairs recur constantly across the population
#: studies (every variant of a workload shares its cold code verbatim),
#: so this cache makes relinking populations several times faster.
_ENCODE_MEMO = {}
_ENCODE_MEMO_LIMIT = 500_000


def _encode_memoized(instr):
    key = (instr.mnemonic, instr.operands, instr.alternate_encoding)
    encoding = _ENCODE_MEMO.get(key)
    if encoding is None:
        encoding = encode(instr)
        if len(_ENCODE_MEMO) < _ENCODE_MEMO_LIMIT:
            _ENCODE_MEMO[key] = encoding
    return encoding


def link(units, text_base=DEFAULT_TEXT_BASE, data_alignment=16):
    """Link object units into a :class:`LinkedBinary`.

    ``units`` is an iterable of ObjectUnit; functions are laid out in unit
    order then function order. The entry symbol ``_start`` must exist.
    """
    with span("link", mode="full"):
        return _link(units, text_base, data_alignment)


def _link(units, text_base, data_alignment):
    units = list(units)
    # Flatten to (unit, function_code) preserving order; check duplicates.
    functions = []
    seen_names = set()
    data_defs = {}
    for unit in units:
        for function_code in unit.functions:
            if function_code.name in seen_names:
                raise LinkError(f"duplicate function {function_code.name!r}")
            seen_names.add(function_code.name)
            functions.append(function_code)
        for symbol, words in unit.data_symbols.items():
            if symbol in data_defs:
                raise LinkError(f"duplicate data symbol {symbol!r}")
            data_defs[symbol] = list(words)

    # Clone instructions so linking never mutates the caller's LR.
    flat = []  # list of (kind, payload): ("label", name) | ("instr", Instr)
    function_spans = []  # (function_code, first flat index, last flat index)
    for function_code in functions:
        span_start = len(flat)
        for item in function_code.items:
            if isinstance(item, LabelDef):
                flat.append(("label", item.name))
            else:
                clone = Instr(item.mnemonic, *item.operands,
                              block_id=item.block_id,
                              is_inserted_nop=item.is_inserted_nop,
                              alternate_encoding=item.alternate_encoding)
                if item.is_inserted_nop and item.encoding is not None:
                    # Inserted NOPs arrive pre-encoded from the candidate
                    # table and have no symbols to resolve; keep the bytes
                    # so every insertion site skips re-encoding.
                    clone.encoding = item.encoding
                    clone.size = item.size
                flat.append(("instr", clone))
        function_spans.append((function_code, span_start, len(flat)))

    # Collect label definitions (by flat index) and branch sites.
    label_index = {}
    for index, (kind, payload) in enumerate(flat):
        if kind == "label":
            if payload in label_index:
                raise LinkError(f"duplicate label {payload!r}")
            label_index[payload] = index

    widths = {}  # flat index of branch -> 8 or 32
    for index, (kind, payload) in enumerate(flat):
        if kind != "instr" or not payload.is_relative_branch:
            continue
        target = payload.operands[0]
        if not isinstance(target, Label):
            raise LinkError(f"branch without label operand: {payload!r}")
        if target.name not in label_index:
            raise LinkError(f"undefined label {target.name!r}")
        widths[index] = 32 if payload.mnemonic == "call" else 8

    fixed_sizes = {}
    for index, (kind, payload) in enumerate(flat):
        if kind == "instr" and index not in widths:
            if payload.encoding is not None:
                fixed_sizes[index] = payload.size
            else:
                fixed_sizes[index] = _fixed_size(payload)

    # Iterative widening to fixpoint.
    while True:
        offsets = _layout(flat, widths, fixed_sizes)
        changed = False
        for index, width in widths.items():
            if width == 32:
                continue
            instr = flat[index][1]
            target_offset = offsets[label_index[instr.operands[0].name]]
            end_of_instr = offsets[index] + _branch_sizes(instr, 8)
            displacement = target_offset - end_of_instr
            if not -128 <= displacement <= 127:
                widths[index] = 32
                changed = True
        if not changed:
            break

    offsets = _layout(flat, widths, fixed_sizes)
    text_size = offsets[len(flat)]

    data_base = _align(text_base + text_size, data_alignment)
    data_symbols = {}
    data_words = {}
    cursor = data_base
    for symbol, words in data_defs.items():
        data_symbols[symbol] = cursor
        for word_index, value in enumerate(words):
            if value:
                data_words[cursor + 4 * word_index] = value
        cursor += 4 * len(words)
    data_end = cursor

    code_symbols = {name: text_base + offsets[index]
                    for name, index in label_index.items()}

    # Final encode.
    text = bytearray()
    records = []
    for index, (kind, payload) in enumerate(flat):
        if kind == "label":
            continue
        address = text_base + offsets[index]
        instr = payload
        if index in widths:
            width = widths[index]
            size = _branch_sizes(instr, width)
            target_address = code_symbols[instr.operands[0].name]
            rel = Rel(target_address - (address + size), width)
            instr.operands = (rel,)
        else:
            operands = []
            for operand in instr.operands:
                if isinstance(operand, Mem) and operand.symbol is not None:
                    if operand.symbol not in data_symbols:
                        raise LinkError(
                            f"undefined data symbol {operand.symbol!r}")
                    resolved = data_symbols[operand.symbol] + operand.disp
                    operands.append(Mem(base=operand.base,
                                        index=operand.index,
                                        scale=operand.scale, disp=resolved))
                else:
                    operands.append(operand)
            instr.operands = tuple(operands)
        if instr.is_inserted_nop and instr.encoding is not None:
            encoding = instr.encoding
        else:
            encoding = _encode_memoized(instr)
            instr.encoding = encoding
        instr.size = len(encoding)
        expected = (_branch_sizes(instr, widths[index])
                    if index in widths else fixed_sizes[index])
        if len(encoding) != expected:
            raise LinkError(f"size drift for {instr!r}: "
                            f"{len(encoding)} != {expected}")
        text.extend(encoding)
        records.append(InstrRecord(address, len(encoding), instr.mnemonic,
                                   instr.block_id, instr.is_inserted_nop,
                                   instr))

    if "_start" not in code_symbols:
        raise LinkError("no _start entry point")

    function_ranges = {}
    for function_code, span_start, span_end in function_spans:
        start_addr = text_base + offsets[span_start]
        end_addr = text_base + offsets[span_end]
        function_ranges[function_code.name] = (start_addr, end_addr)

    return LinkedBinary(
        text=bytes(text), text_base=text_base,
        entry=code_symbols["_start"], code_symbols=code_symbols,
        data_symbols=data_symbols, data_base=data_base, data_end=data_end,
        data_words=data_words, instr_records=records,
        function_ranges=function_ranges)


def _layout(flat, widths, fixed_sizes):
    """Offsets of each flat index (labels share the next instr's offset).

    Returns a list of len(flat)+1 offsets; the last entry is total size.
    """
    offsets = [0] * (len(flat) + 1)
    position = 0
    for index, (kind, payload) in enumerate(flat):
        offsets[index] = position
        if kind == "instr":
            if index in widths:
                position += _branch_sizes(payload, widths[index])
            else:
                position += fixed_sizes[index]
    offsets[len(flat)] = position
    return offsets


def _align(value, alignment):
    remainder = value % alignment
    return value if remainder == 0 else value + (alignment - remainder)
