"""Structural verification of IR modules.

``verify_module`` raises :class:`~repro.errors.IRError` on the first
violated invariant. The optimizer and the profiling instrumenter run it
after rewriting, so regressions surface at the point of breakage rather
than as miscompiles.
"""

from __future__ import annotations

from repro.errors import IRError
from repro.ir.instructions import Call, Return
from repro.ir.values import Const, VirtualReg


def verify_function(function, module=None):
    """Check one function's structural invariants."""
    if not function.blocks:
        raise IRError(f"function {function.name!r} has no blocks")

    labels = {block.label for block in function.blocks}
    if len(labels) != len(function.blocks):
        raise IRError(f"duplicate block labels in {function.name!r}")

    for block in function.blocks:
        if block.terminator is None:
            raise IRError(f"block {block.label!r} in {function.name!r} "
                          "lacks a terminator")
        for instr in block.instrs[:-1]:
            if instr.is_terminator:
                raise IRError(f"terminator in the middle of block "
                              f"{block.label!r} in {function.name!r}")
        for target in block.successors():
            if target not in labels:
                raise IRError(f"branch to unknown block {target!r} "
                              f"from {block.label!r} in {function.name!r}")
        for instr in block.instrs:
            for value in instr.uses():
                if not isinstance(value, (VirtualReg, Const)):
                    raise IRError(f"bad operand {value!r} in {instr!r} "
                                  f"({function.name!r}:{block.label})")
            if isinstance(instr, Return):
                if function.returns_value and instr.value is None:
                    raise IRError(f"{function.name!r} must return a value")
            if module is not None and isinstance(instr, Call):
                callee = module.functions.get(instr.callee)
                if callee is None:
                    raise IRError(f"call to unknown function "
                                  f"{instr.callee!r} in {function.name!r}")
                if len(instr.args) != len(callee.params):
                    raise IRError(
                        f"call to {instr.callee!r} with {len(instr.args)} "
                        f"args, expected {len(callee.params)} "
                        f"(in {function.name!r})")
                if instr.dst is not None and not callee.returns_value:
                    raise IRError(f"void call result used: {instr!r} "
                                  f"in {function.name!r}")
            if module is not None:
                for array in _array_refs(instr):
                    if array not in module.globals:
                        raise IRError(
                            f"reference to unknown global {array!r} in "
                            f"{function.name!r}:{block.label}")


def _array_refs(instr):
    array = getattr(instr, "array", None)
    return (array,) if array is not None else ()


def verify_module(module):
    """Check every function in the module; returns the module."""
    if "main" not in module.functions:
        raise IRError("module has no main function")
    for function in module.functions.values():
        verify_function(function, module)
    return module
