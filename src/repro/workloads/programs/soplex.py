"""450.soplex — simplex linear programming solver.

The original pivots a sparse tableau: ratio tests full of divisions,
column scans and row updates. The miniature runs dense simplex pivoting
on a fixed-point tableau — division-heavy inner loops over rows/columns.
"""

from repro.workloads.base import Workload
from repro.workloads.coldcode import bank_for

SOURCE = """
// 450.soplex miniature: dense simplex tableau pivoting (fixed point,
// scaled by 1024).
int tableau[1056];   // (rows+1) x (cols+1), up to 32x33
int SCALE = 1024;

void build_problem(int rows, int cols, int seed) {
  int i;
  int x = seed;
  for (i = 0; i < (rows + 1) * (cols + 1); i++) {
    x = (x * 1103515245 + 12345) & 2147483647;
    tableau[i] = ((x % 2000) - 500) * 2;
  }
  // Make right-hand sides positive so the initial basis is feasible.
  int r;
  for (r = 0; r < rows; r++) {
    int v = tableau[r * (cols + 1) + cols];
    if (v < 0) { v = -v; }
    tableau[r * (cols + 1) + cols] = v + SCALE;
  }
}

int choose_pivot_column(int rows, int cols) {
  int best = -1;
  int best_val = -1;
  int c;
  for (c = 0; c < cols; c++) {
    int v = tableau[rows * (cols + 1) + c];
    if (v > best_val) { best_val = v; best = c; }
  }
  if (best_val <= 0) { return -1; }
  return best;
}

int choose_pivot_row(int rows, int cols, int col) {
  int best = -1;
  int best_ratio = 2147483647;
  int r;
  // Ratio test: one division per candidate row.
  for (r = 0; r < rows; r++) {
    int a = tableau[r * (cols + 1) + col];
    if (a > 0) {
      int ratio = (tableau[r * (cols + 1) + cols] * 64) / a;
      if (ratio < best_ratio) { best_ratio = ratio; best = r; }
    }
  }
  return best;
}

void pivot(int rows, int cols, int prow, int pcol) {
  int width = cols + 1;
  int pval = tableau[prow * width + pcol];
  if (pval == 0) { pval = 1; }
  int c;
  // Normalize the pivot row: a division per element.
  for (c = 0; c <= cols; c++) {
    tableau[prow * width + c] = (tableau[prow * width + c] * SCALE) / pval;
  }
  int r;
  // Eliminate the column from every other row.
  for (r = 0; r <= rows; r++) {
    if (r == prow) { continue; }
    int factor = tableau[r * width + pcol];
    if (factor == 0) { continue; }
    for (c = 0; c <= cols; c++) {
      int delta = (factor * tableau[prow * width + c]) / SCALE;
      tableau[r * width + c] = tableau[r * width + c] - delta;
    }
  }
}

int main() {
  int rows = input();
  int cols = input();
  int max_iters = input();
  int seed = input();
  if (rows > 24) { rows = 24; }
  if (cols > 32) { cols = 32; }
  build_problem(rows, cols, seed);
  int iter = 0;
  while (iter < max_iters) {
    int pcol = choose_pivot_column(rows, cols);
    if (pcol < 0) { break; }
    int prow = choose_pivot_row(rows, cols, pcol);
    if (prow < 0) { break; }
    pivot(rows, cols, prow, pcol);
    iter++;
  }
  int objective = tableau[rows * (cols + 1) + cols];
  print(((objective & 16777215) + iter) & 16777215);
  return 0;
}
"""

WORKLOAD = Workload(
    name="450.soplex",
    source=SOURCE + bank_for("450.soplex"),
    train_input=(10, 14, 24, 5),
    ref_input=(24, 32, 300, 3),
    character="simplex pivoting: division-heavy ratio tests + row updates",
)
