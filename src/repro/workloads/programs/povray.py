"""453.povray — ray tracing.

The original intersects rays with scene geometry: fixed-point dot
products, discriminant tests and shading arithmetic, multiply-dominated
with modest memory traffic. The miniature marches rays over a small
sphere scene using integer arithmetic throughout.
"""

from repro.workloads.base import Workload
from repro.workloads.coldcode import bank_for

SOURCE = """
// 453.povray miniature: integer ray-sphere intersection + shading.
int sphere_x[16];
int sphere_y[16];
int sphere_z[16];
int sphere_r2[16];
int image[4096];    // 64x64 accumulation buffer

void build_scene(int spheres, int seed) {
  int i;
  int x = seed;
  for (i = 0; i < spheres; i++) {
    x = (x * 1103515245 + 12345) & 2147483647;
    sphere_x[i] = (x % 128) - 64;
    x = (x * 1103515245 + 12345) & 2147483647;
    sphere_y[i] = (x % 128) - 64;
    x = (x * 1103515245 + 12345) & 2147483647;
    sphere_z[i] = 64 + x % 128;
    x = (x * 1103515245 + 12345) & 2147483647;
    sphere_r2[i] = 100 + x % 900;
  }
}

int trace_ray(int px, int py, int spheres) {
  // Direction from a 64x64 virtual screen at z=64 (unnormalized).
  int dx = px - 32;
  int dy = py - 32;
  int dz = 64;
  int best_t = 2147483647;
  int best_sphere = -1;
  int s;
  // Hot loop: per-sphere quadratic discriminant, multiply-heavy.
  for (s = 0; s < spheres; s++) {
    int cx = sphere_x[s];
    int cy = sphere_y[s];
    int cz = sphere_z[s];
    int b = dx * cx + dy * cy + dz * cz;
    if (b <= 0) { continue; }
    int dd = dx * dx + dy * dy + dz * dz;
    int cc = cx * cx + cy * cy + cz * cz;
    int disc = b * (b / 16) - (dd / 16) * (cc - sphere_r2[s]);
    if (disc > 0) {
      int t = (cc - sphere_r2[s]) / (1 + b / 64);
      if (t < best_t) { best_t = t; best_sphere = s; }
    }
  }
  if (best_sphere < 0) { return 16; }
  // Cheap Lambert-ish shade from the hit sphere's height.
  int shade = 255 - ((sphere_y[best_sphere] + 64) * 255) / 128;
  return (shade + best_t) & 255;
}

int render(int spheres) {
  int py;
  int px;
  int checksum = 0;
  for (py = 0; py < 64; py++) {
    for (px = 0; px < 64; px++) {
      int c = trace_ray(px, py, spheres);
      image[py * 64 + px] = c;
      checksum = (checksum + c) & 16777215;
    }
  }
  return checksum;
}

int main() {
  int spheres = input();
  int frames = input();
  int seed = input();
  if (spheres > 16) { spheres = 16; }
  int total = 0;
  int f;
  for (f = 0; f < frames; f++) {
    build_scene(spheres, seed + f * 5);
    total = (total + render(spheres)) & 16777215;
  }
  print(total);
  return 0;
}
"""

WORKLOAD = Workload(
    name="453.povray",
    source=SOURCE + bank_for("453.povray"),
    train_input=(4, 1, 3),
    ref_input=(10, 1, 11),
    character="ray-sphere tests: multiply-dominated with branches",
)
