#!/usr/bin/env python
"""Lint: keep the typed error taxonomy and the knob registry enforced.

Two AST checks over ``src/repro/``:

1. Every error raised inside ``src/repro/`` must be a subclass of
   :class:`repro.errors.ReproError` (stable ``code``, structured
   ``context``) — bare ``raise ValueError(...)`` / ``raise
   RuntimeError(...)`` lose both and break the fault-injection
   campaign's typed-coverage guarantee. Forbidden everywhere outside
   ``errors.py`` itself, where ``ValueError`` legitimately appears in
   bases for backward compatibility.

2. Every ``REPRO_*`` environment variable must resolve through the
   declarative registry in :mod:`repro.obs.knobs` — a direct
   ``os.environ.get("REPRO_...")`` / ``os.getenv`` / subscript
   bypasses type checking and invalid-value rejection, which is how
   the ``REPRO_STATIC_VERIFY`` typo bug shipped. Forbidden everywhere
   outside ``obs/knobs.py``, the single sanctioned access point.

3. Inside ``src/repro/fuzz/`` every random stream must be an
   explicitly seeded ``random.Random(...)`` instance — calls through
   the module-level ``random.random()``/``random.choice()``/... API
   draw from interpreter-global state and silently break the fuzzer's
   replay-by-entry-id guarantee. (``random.Random(seed)`` itself is
   the sanctioned constructor and is allowed.)

4. ``benchmarks/_harness.py`` must not simulate population members one
   at a time — no ``run_binary``/``.run(``/``.simulate(`` call inside
   a loop or comprehension. Population sweeps go through the lockstep
   batch engine (``repro.sim.batch.simulate_population`` /
   ``population_cycles``), which runs the shared baseline once and
   derives every proven variant analytically; a per-variant loop
   silently reverts the sweep to the pre-batch cost profile.

5. Inside ``src/repro/serve/``, ``async def`` bodies must never block
   the event loop: no ``time.sleep(...)`` and no synchronous
   executor/future reads (``.result()``, pool ``.get()``,
   ``.join()``, ``future.exception()``). One blocked handler stalls
   every connection of the daemon; CPU-bound and waiting work belongs
   behind ``run_in_executor`` / ``await``.

6. Every finding-code string literal emitted inside
   ``src/repro/analysis/`` (``Finding("verify....", ...)``) must
   appear in the "Stable finding codes" table of ``docs/ANALYSIS.md``
   — the codes are a published interface tooling matches on, so an
   undocumented code is either a typo or a silent API addition.

7. Inside ``src/repro/serve/`` and ``benchmarks/``, no direct
   ``link(...)`` call inside a loop or comprehension: those contexts
   always hold a compiled :class:`LinkPlan`, and a per-variant full
   link silently reinstates the fast-path cliff the generalized plan
   removed. The ``PlanMismatchError`` fallback (a handler, not a loop)
   doesn't match; a deliberate full-link reference (parity prechecks)
   is annotated ``# lint: full-link-ok`` on the call line.

Run by ``make lint`` (and therefore ``make test``). Exits 1 and lists
``file:line`` for each violation.
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path

FORBIDDEN = {"ValueError", "RuntimeError"}
ROOT = Path(__file__).resolve().parent.parent
PACKAGE = ROOT / "src" / "repro"
EXEMPT = {PACKAGE / "errors.py"}
ENV_EXEMPT = {PACKAGE / "obs" / "knobs.py"}
ENV_ACCESSORS = {"get", "pop", "setdefault", "getenv"}


def _raised_name(node):
    """The bare name a ``raise`` statement raises, if determinable."""
    exc = node.exc
    if isinstance(exc, ast.Call):
        exc = exc.func
    if isinstance(exc, ast.Name):
        return exc.id
    return None


def find_violations(path):
    tree = ast.parse(path.read_text(), filename=str(path))
    violations = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Raise):
            name = _raised_name(node)
            if name in FORBIDDEN:
                violations.append((node.lineno, name))
    return violations


def _is_repro_literal(node):
    return (isinstance(node, ast.Constant)
            and isinstance(node.value, str)
            and node.value.startswith("REPRO_"))


def find_env_violations(path):
    """Direct ``REPRO_*`` environment reads that bypass the registry.

    Flags ``os.environ.get/pop/setdefault("REPRO_...")``,
    ``os.getenv("REPRO_...")``, and ``os.environ["REPRO_..."]`` — any
    call or subscript whose first argument/key is a string literal
    starting with ``REPRO_``. The attribute chain is matched loosely
    (any ``.get``/``.getenv``/... call, any subscript), which is fine:
    a ``REPRO_`` string literal feeding one of those shapes inside the
    package is a knob read whatever the receiver is spelled like.
    """
    tree = ast.parse(path.read_text(), filename=str(path))
    violations = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            func = node.func
            if (isinstance(func, ast.Attribute)
                    and func.attr in ENV_ACCESSORS
                    and node.args
                    and _is_repro_literal(node.args[0])):
                violations.append((node.lineno, node.args[0].value))
        elif isinstance(node, ast.Subscript):
            if _is_repro_literal(node.slice):
                violations.append((node.lineno, node.slice.value))
    return violations


def find_global_random_violations(path):
    """Module-level ``random.*`` draws inside the fuzzer package.

    Flags any ``random.<fn>(...)`` call except the ``random.Random``
    constructor — the fuzzer's determinism contract (same campaign
    seed, same corpus; replay by entry id) only holds when every draw
    comes from an explicitly seeded generator object.
    """
    tree = ast.parse(path.read_text(), filename=str(path))
    violations = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "random"
                and func.attr != "Random"):
            violations.append((node.lineno, f"random.{func.attr}"))
    return violations


#: Call names that simulate one binary at a time; forbidden inside
#: loops/comprehensions of the benchmark harness (check 4).
_SIM_CALLS = {"run_binary", "run", "simulate"}
_LOOP_NODES = (ast.For, ast.While, ast.ListComp, ast.SetComp,
               ast.DictComp, ast.GeneratorExp)


def find_per_variant_sim_violations(path):
    """Per-variant simulation loops in the benchmark harness.

    Flags any call to ``run_binary(...)``, ``<x>.run(...)`` or
    ``<x>.simulate(...)`` lexically inside a loop or comprehension —
    the shapes a hand-rolled population sweep takes. Batch-engine
    methods (``simulate_population``, ``result_for``) are the
    sanctioned replacements and do not match.
    """
    tree = ast.parse(path.read_text(), filename=str(path))
    violations = []

    def called_name(node):
        func = node.func
        if isinstance(func, ast.Name):
            return func.id
        if isinstance(func, ast.Attribute):
            return func.attr
        return None

    def walk(node, in_loop):
        for child in ast.iter_child_nodes(node):
            child_in_loop = in_loop or isinstance(child, _LOOP_NODES)
            if (in_loop and isinstance(child, ast.Call)
                    and called_name(child) in _SIM_CALLS):
                violations.append((child.lineno, called_name(child)))
            walk(child, child_in_loop)

    walk(tree, False)
    return violations


def find_per_variant_link_violations(path):
    """Full ``link()`` calls inside per-variant loops (check 7).

    Flags a ``link(...)`` call lexically inside a loop or comprehension
    — the shape of a population sweep bypassing the compiled plan.
    Call lines carrying the ``# lint: full-link-ok`` annotation are the
    sanctioned exceptions (deliberate full-link parity references).
    """
    source = path.read_text()
    lines = source.splitlines()
    tree = ast.parse(source, filename=str(path))
    violations = []

    def walk(node, in_loop):
        for child in ast.iter_child_nodes(node):
            child_in_loop = in_loop or isinstance(child, _LOOP_NODES)
            if (in_loop and isinstance(child, ast.Call)
                    and isinstance(child.func, ast.Name)
                    and child.func.id == "link"
                    and "lint: full-link-ok"
                    not in lines[child.lineno - 1]):
                violations.append((child.lineno, "link"))
            walk(child, child_in_loop)

    walk(tree, False)
    return violations


#: Method names whose call blocks the calling thread until a result is
#: ready — poison inside an event-loop coroutine (check 5).
_BLOCKING_ATTRS = {"result", "get", "join", "exception"}


def find_async_blocking_violations(path):
    """Blocking calls inside ``async def`` bodies of the serve package.

    Flags, lexically inside any ``async def`` (but not inside a nested
    synchronous ``def``, which runs on an executor thread by
    convention): ``time.sleep(...)`` / bare ``sleep(...)``, and
    argument-less future/pool reads spelled ``<x>.result()``,
    ``<x>.get()``, ``<x>.join()`` or ``<x>.exception()`` — the
    wait-until-ready shapes. The zero-argument requirement keeps
    ``dict.get(key)``-style lookups (which always pass a key) out;
    ``asyncio.sleep`` is spelled through its module and does not match.
    """
    tree = ast.parse(path.read_text(), filename=str(path))
    violations = []

    def check_call(node):
        func = node.func
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "time" and func.attr == "sleep"):
            violations.append((node.lineno, "time.sleep"))
        elif isinstance(func, ast.Name) and func.id == "sleep":
            violations.append((node.lineno, "sleep"))
        elif (isinstance(func, ast.Attribute)
                and func.attr in _BLOCKING_ATTRS
                and not node.args and not node.keywords):
            violations.append((node.lineno, f".{func.attr}()"))

    def walk(node, in_async):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.AsyncFunctionDef):
                child_async = True
            elif isinstance(child, (ast.FunctionDef, ast.Lambda)):
                child_async = False
            else:
                child_async = in_async
            if in_async and isinstance(child, ast.Call):
                check_call(child)
            walk(child, child_async)

    walk(tree, False)
    return violations


def find_finding_codes(path):
    """``(lineno, code)`` for every ``Finding("<code>", ...)`` whose
    first argument is a string literal (check 6)."""
    tree = ast.parse(path.read_text(), filename=str(path))
    codes = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = (func.id if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute)
                else None)
        if (name == "Finding" and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)):
            codes.append((node.lineno, node.args[0].value))
    return codes


def documented_finding_codes(doc_path):
    """Codes listed in ANALYSIS.md's "Stable finding codes" table.

    The table is the section under the heading containing "stable
    finding codes" (case-insensitive), up to the next heading; codes
    are the backticked ``verify.*`` tokens inside it.
    """
    if not doc_path.exists():
        return set()
    in_section = False
    codes = set()
    for line in doc_path.read_text().splitlines():
        if line.startswith("#"):
            in_section = "stable finding codes" in line.lower()
            continue
        if in_section:
            codes.update(re.findall(r"`(verify\.[a-z_.]+)`", line))
    return codes


def main():
    failures = []
    fuzz_package = PACKAGE / "fuzz"
    serve_package = PACKAGE / "serve"
    analysis_package = PACKAGE / "analysis"
    documented = documented_finding_codes(ROOT / "docs" / "ANALYSIS.md")
    harness = ROOT / "benchmarks" / "_harness.py"
    if harness.exists():
        for lineno, name in find_per_variant_sim_violations(harness):
            failures.append(
                f"{harness.relative_to(ROOT)}:{lineno}: per-variant "
                f"{name}() inside a population loop; route the sweep "
                f"through repro.sim.batch.simulate_population")
    benchmarks = ROOT / "benchmarks"
    if benchmarks.exists():
        for path in sorted(benchmarks.rglob("*.py")):
            for lineno, name in find_per_variant_link_violations(path):
                failures.append(
                    f"{path.relative_to(ROOT)}:{lineno}: full {name}() "
                    f"inside a per-variant loop; route builds through "
                    f"LinkPlan.apply (or annotate a deliberate parity "
                    f"reference with '# lint: full-link-ok')")
    for path in sorted(PACKAGE.rglob("*.py")):
        if path not in EXEMPT:
            for lineno, name in find_violations(path):
                failures.append(
                    f"{path.relative_to(ROOT)}:{lineno}: bare raise "
                    f"{name}; use a repro.errors type with a stable code")
        if path not in ENV_EXEMPT:
            for lineno, name in find_env_violations(path):
                failures.append(
                    f"{path.relative_to(ROOT)}:{lineno}: direct "
                    f"environment read of {name}; resolve it through "
                    f"repro.obs.knobs.knob_value instead")
        if fuzz_package in path.parents:
            for lineno, name in find_global_random_violations(path):
                failures.append(
                    f"{path.relative_to(ROOT)}:{lineno}: unseeded "
                    f"{name}() draws from global state; use an "
                    f"explicitly seeded random.Random instance")
        if serve_package in path.parents:
            for lineno, name in find_async_blocking_violations(path):
                failures.append(
                    f"{path.relative_to(ROOT)}:{lineno}: blocking "
                    f"{name} inside an async handler; use "
                    f"run_in_executor / await instead")
            for lineno, name in find_per_variant_link_violations(path):
                failures.append(
                    f"{path.relative_to(ROOT)}:{lineno}: full {name}() "
                    f"inside a per-variant loop; route builds through "
                    f"the adopted LinkPlan's apply")
        if analysis_package in path.parents:
            for lineno, code in find_finding_codes(path):
                if code not in documented:
                    failures.append(
                        f"{path.relative_to(ROOT)}:{lineno}: finding "
                        f"code {code!r} is not listed in the stable-"
                        f"codes table of docs/ANALYSIS.md")
    if failures:
        print("\n".join(failures), file=sys.stderr)
        print(f"lint: {len(failures)} violation(s)", file=sys.stderr)
        return 1
    print("lint: OK (no bare ValueError/RuntimeError raises, no "
          "direct REPRO_* environment reads, no unseeded randomness "
          "in src/repro/fuzz/, no per-variant simulation loops in "
          "benchmarks/_harness.py, no blocking calls in "
          "src/repro/serve/ async handlers, every analysis finding "
          "code documented in docs/ANALYSIS.md, no per-variant full "
          "link() loops in src/repro/serve/ or benchmarks/)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
