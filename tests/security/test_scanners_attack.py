"""ROPgadget/microgadgets scanner and attack construction tests."""

import pytest

from repro.backend.linker import link
from repro.backend.objfile import FunctionCode, LabelDef, ObjectUnit
from repro.security.attack import (
    attempt_attack, build_exit_chain, execute_chain,
)
from repro.security.gadgets import find_gadgets
from repro.security.microgadgets import MicroGadgetScanner
from repro.security.ropgadget import RopGadgetScanner
from repro.x86.instructions import Imm, Instr
from repro.x86.registers import EAX, EBX, ECX


def binary_with_gadget_bytes(*gadget_hexes):
    """A minimal binary whose text embeds the given gadget byte strings.

    Each gadget is padded into its own mov-immediate(s) so adjacent
    gadgets never bleed into the next instruction's opcode byte — the
    same "unintended instructions inside constants" mechanism real
    binaries exhibit.
    """
    import struct

    unit = ObjectUnit("t")
    unit.add_function(FunctionCode("_start", [
        LabelDef("_start"),
        Instr("mov", EBX, Imm(0)),
        Instr("mov", EAX, Imm(0)),
        Instr("int", Imm(0x80)),
    ]))
    filler = []
    for raw_hex in gadget_hexes:
        raw = bytes.fromhex(raw_hex)
        padded = raw + b"\x90" * ((4 - len(raw) % 4) % 4)
        for index in range(0, len(padded), 4):
            (value,) = struct.unpack("<i", padded[index:index + 4])
            filler.append(Instr("mov", ECX, Imm(value)))
    filler.append(Instr("ret"))
    unit.add_function(FunctionCode("filler",
                                   [LabelDef("filler")] + filler))
    return link([unit])


class TestClassification:
    def test_pop_ret_classified_as_load_const(self):
        binary = binary_with_gadget_bytes("58c3")  # pop eax; ret
        toolkit = RopGadgetScanner().scan(find_gadgets(binary.text))
        assert toolkit.has("load_const", "eax")

    def test_int80_ret_classified_as_syscall(self):
        binary = binary_with_gadget_bytes("cd80c3")
        toolkit = RopGadgetScanner().scan(find_gadgets(binary.text))
        assert toolkit.has("syscall")

    def test_xor_self_classified_as_zero(self):
        binary = binary_with_gadget_bytes("31c0c3")  # xor eax,eax; ret
        toolkit = RopGadgetScanner().scan(find_gadgets(binary.text))
        assert toolkit.has("zero", "eax")

    def test_mov_store_classified(self):
        binary = binary_with_gadget_bytes("8908c3")  # mov [eax], ecx; ret
        toolkit = RopGadgetScanner().scan(find_gadgets(binary.text))
        assert toolkit.has("store_mem", ("eax", "ecx"))

    def test_ret_imm_not_used_for_chains(self):
        binary = binary_with_gadget_bytes("58c20400")  # pop eax; ret 4
        toolkit = RopGadgetScanner().scan(find_gadgets(binary.text))
        assert not toolkit.has("load_const", "eax")

    def test_microgadgets_only_accepts_tiny(self):
        # pop eax; pop ecx; ret is 3 bytes total -> allowed; a 5-byte
        # mov imm gadget is not.
        binary = binary_with_gadget_bytes("58c3")
        micro = MicroGadgetScanner().scan(find_gadgets(binary.text))
        assert micro.has("load_const", "eax")

    def test_microgadgets_rejects_longer_gadgets(self):
        # mov eax, imm32; ret = 6 bytes: ropgadget sees it, micro not.
        # (This one is an *intended* instruction sequence: gadgets longer
        # than 4 bytes cannot hide inside a single immediate.)
        unit = ObjectUnit("t")
        unit.add_function(FunctionCode("_start", [
            LabelDef("_start"),
            Instr("mov", EBX, Imm(0)),
            Instr("mov", EAX, Imm(0)),
            Instr("int", Imm(0x80)),
        ]))
        unit.add_function(FunctionCode("loader", [
            LabelDef("loader"),
            Instr("mov", EAX, Imm(0)),
            Instr("ret"),
        ]))
        binary = link([unit])
        gadgets = find_gadgets(binary.text)
        rop = RopGadgetScanner().scan(gadgets)
        micro = MicroGadgetScanner().scan(gadgets)
        assert rop.has("load_const_imm", ("eax", 0))
        assert not micro.has("load_const_imm", ("eax", 0))


class TestFeasibility:
    def test_full_toolkit_feasible(self):
        binary = binary_with_gadget_bytes("58c3", "5bc3", "cd80c3")
        scanner = RopGadgetScanner()
        toolkit = scanner.scan(find_gadgets(binary.text))
        assert scanner.is_attack_feasible(toolkit)

    def test_missing_syscall_infeasible(self):
        binary = binary_with_gadget_bytes("58c3", "5bc3")
        scanner = RopGadgetScanner()
        toolkit = scanner.scan(find_gadgets(binary.text))
        requirements = scanner.attack_requirements(toolkit)
        assert not requirements["syscall"]

    def test_zero_plus_inc_satisfies_micro_eax(self):
        # xor eax,eax; ret + inc eax; ret + pop ebx; ret + int80; ret
        binary = binary_with_gadget_bytes("31c0c3", "40c3", "5bc3", "cd80c3")
        scanner = MicroGadgetScanner()
        toolkit = scanner.scan(find_gadgets(binary.text))
        assert scanner.is_attack_feasible(toolkit)


class TestChainExecution:
    def test_chain_executes_and_exits_with_attacker_code(self):
        binary = binary_with_gadget_bytes("58c3", "5bc3", "cd80c3")
        result = attempt_attack(binary, RopGadgetScanner(), exit_code=99)
        assert result.succeeded
        assert "exit=99" in result.detail

    def test_chain_via_zero_and_pop(self):
        binary = binary_with_gadget_bytes("31c0c3", "5bc3", "cd80c3")
        result = attempt_attack(binary, RopGadgetScanner(), exit_code=7)
        assert result.succeeded

    def test_microgadget_arithmetic_chain(self):
        # EBX built with xor ebx,ebx + inc ebx repeats.
        binary = binary_with_gadget_bytes(
            "31c0c3", "31dbc3", "43c3", "cd80c3")
        result = attempt_attack(binary, MicroGadgetScanner(), exit_code=5)
        assert result.succeeded

    def test_infeasible_attack_reports_missing(self):
        binary = binary_with_gadget_bytes("5bc3")
        result = attempt_attack(binary, RopGadgetScanner())
        assert not result.feasible
        assert "missing" in result.detail

    def test_execute_chain_reports_faults(self):
        binary = binary_with_gadget_bytes("58c3")
        # A chain jumping to unmapped memory faults cleanly.
        ran, exit_code, detail = execute_chain(binary, [0xDEAD0000])
        assert not ran
        assert "fault" in detail


class TestDiversifiedTarget:
    def test_attack_on_diversified_fib_fails(self, fib_build):
        from repro.core.config import PAPER_CONFIGS
        from repro.security.survivor import surviving_gadgets

        baseline = fib_build.link_baseline()
        variant = fib_build.link_variant(PAPER_CONFIGS["50%"], seed=17)
        _count, offsets = surviving_gadgets(baseline.text, variant.text)
        surviving = {offset: gadget for offset, gadget
                     in find_gadgets(variant.text).items()
                     if offset in set(offsets)}
        result = attempt_attack(variant, RopGadgetScanner(),
                                gadgets=surviving)
        # fib has no magic constants: no pop-eax style gadget survives.
        assert not result.succeeded
