"""Instruction selection: IR → x86-32 LR.

Calling convention (cdecl-like):

- arguments pushed right-to-left; the caller cleans the stack;
- return value in EAX;
- EBX/ESI/EDI are callee-saved (the allocatable set), EAX/ECX/EDX are
  scratch;
- standard EBP frames: ``[ebp+8+4i]`` holds parameter *i*, ``[ebp-...]``
  the spill slots.

Every emitted instruction is tagged with its source basic block via
``Instr.block_id = (function_name, block_label)``; the NOP-insertion pass
and the analytic cost engine key off this tag.

Comparison-plus-branch pairs are fused into ``cmp``/``jcc`` when the
comparison result has a single use (the branch); other comparisons
materialize 0/1 via ``SETcc``.
"""

from __future__ import annotations

from repro.errors import LoweringError
from repro.backend.objfile import FunctionCode, LabelDef, ObjectUnit
from repro.backend.regalloc import allocate_function
from repro.ir.instructions import (
    ALoad, AStore, Binary, Branch, Call, CondBranch, Copy, Input, Print,
    Return, Unary, COMPARISON_OPS,
)
from repro.ir.values import Const
from repro.x86.instructions import Imm, Instr, Label, Mem
from repro.x86.registers import EAX, EBP, ECX, EDX, ESP, Register

#: IR comparison op → condition-code suffix (signed comparisons).
_CC_FOR_OP = {"lt": "l", "le": "le", "gt": "g", "ge": "ge",
              "eq": "e", "ne": "ne"}

#: Condition-code suffix → its negation.
_CC_INVERSE = {"l": "ge", "le": "g", "g": "le", "ge": "l", "e": "ne",
               "ne": "e", "b": "ae", "ae": "b", "be": "a", "a": "be",
               "s": "ns", "ns": "s", "o": "no", "no": "o", "p": "np",
               "np": "p"}

#: Two-address ALU ops that map 1:1 to x86 mnemonics.
_DIRECT_ALU = {"add": "add", "sub": "sub", "and": "and", "or": "or",
               "xor": "xor"}

PRINT_FUNCTION = "__print_int"
READ_FUNCTION = "__read_int"


class _FunctionLowerer:
    def __init__(self, function, module):
        self.function = function
        self.module = module
        self.allocation = allocate_function(function)
        self.saved = self.allocation.used_callee_saved
        self.items = []
        self.block_id = None
        self._label_counter = 0
        self._use_counts, self._def_counts = self._count_refs()

    # -- bookkeeping ---------------------------------------------------------

    def _count_refs(self):
        uses = {}
        defs = {}
        for block in self.function.blocks:
            for instr in block.instrs:
                for reg in instr.used_regs():
                    uses[reg] = uses.get(reg, 0) + 1
                for reg in instr.defs():
                    defs[reg] = defs.get(reg, 0) + 1
        return uses, defs

    def _emit(self, mnemonic, *operands):
        instr = Instr(mnemonic, *operands, block_id=self.block_id)
        self.items.append(instr)
        return instr

    def _label(self, name):
        self.items.append(LabelDef(name))

    def _fresh_label(self):
        self._label_counter += 1
        return f"{self.function.name}.L{self._label_counter}"

    def block_label(self, block_label):
        return f"{self.function.name}.{block_label}"

    # -- value locations --------------------------------------------------------

    def _location(self, vreg):
        """Physical register, or a Mem for a frame/parameter slot."""
        assigned = self.allocation.assignment.get(vreg)
        if isinstance(assigned, Register):
            return assigned
        if vreg in self.function.params and not isinstance(assigned, Register):
            index = self.function.params.index(vreg)
            return Mem(base=EBP, disp=8 + 4 * index)
        if assigned is None:
            raise LoweringError(f"no location for {vreg!r} "
                                f"in {self.function.name!r}")
        return Mem(base=EBP, disp=self._slot_disp(assigned))

    def _slot_disp(self, slot):
        return -4 * (len(self.saved) + slot + 1)

    def _operand(self, value):
        """Operand usable directly in a src position (Imm/Register/Mem)."""
        if isinstance(value, Const):
            return Imm(value.value)
        return self._location(value)

    def _read_into(self, scratch, value):
        """Ensure ``value`` is in ``scratch``; emits at most one mov."""
        operand = self._operand(value)
        if operand is scratch:
            return scratch
        self._emit("mov", scratch, operand)
        return scratch

    def _write_from(self, register, dst):
        """Move ``register`` into the destination vreg's location."""
        location = self._location(dst)
        if location is not register:
            self._emit("mov", location, register)

    # -- function structure ------------------------------------------------------

    def lower(self):
        entry = self.function.entry
        self.block_id = (self.function.name, entry.label)
        self._label(self.function.name)
        self._emit("push", EBP)
        self._emit("mov", EBP, ESP)
        for register in self.saved:
            self._emit("push", register)
        if self.allocation.slot_count:
            self._emit("sub", ESP, Imm(4 * self.allocation.slot_count))
        for index, param in enumerate(self.function.params):
            assigned = self.allocation.assignment.get(param)
            if isinstance(assigned, Register):
                self._emit("mov", assigned, Mem(base=EBP, disp=8 + 4 * index))

        for position, block in enumerate(self.function.blocks):
            self.block_id = (self.function.name, block.label)
            self._label(self.block_label(block.label))
            next_label = None
            if position + 1 < len(self.function.blocks):
                next_label = self.function.blocks[position + 1].label
            self._lower_block(block, next_label)

        code = FunctionCode(self.function.name, self.items)
        return code

    def _epilogue(self):
        if self.allocation.slot_count:
            self._emit("add", ESP, Imm(4 * self.allocation.slot_count))
        for register in reversed(self.saved):
            self._emit("pop", register)
        self._emit("pop", EBP)
        self._emit("ret")

    # -- blocks -------------------------------------------------------------------

    def _lower_block(self, block, next_label):
        body = block.instrs[:-1]
        terminator = block.instrs[-1]

        fused_cc = None
        if (isinstance(terminator, CondBranch) and body
                and isinstance(body[-1], Binary)
                and body[-1].op in COMPARISON_OPS
                and body[-1].dst == terminator.cond
                and self._use_counts.get(body[-1].dst, 0) == 1
                and self._def_counts.get(body[-1].dst, 0) == 1):
            comparison = body[-1]
            body = body[:-1]
            for instr in body:
                self._lower_instr(instr)
            self._emit_compare(comparison.lhs, comparison.rhs)
            fused_cc = _CC_FOR_OP[comparison.op]
        else:
            for instr in body:
                self._lower_instr(instr)

        if isinstance(terminator, Return):
            if terminator.value is not None:
                self._read_into(EAX, terminator.value)
            self._epilogue()
        elif isinstance(terminator, Branch):
            if terminator.target != next_label:
                self._emit("jmp", Label(self.block_label(terminator.target)))
        elif isinstance(terminator, CondBranch):
            if fused_cc is None:
                self._read_into(EAX, terminator.cond)
                self._emit("test", EAX, EAX)
                fused_cc = "ne"
            self._emit_cond_jump(fused_cc, terminator.then_target,
                                 terminator.else_target, next_label)
        else:
            raise LoweringError(f"bad terminator {terminator!r}")

    def _emit_compare(self, lhs, rhs):
        """cmp such that the flags read as (lhs ? rhs)."""
        if isinstance(lhs, Const):
            self._read_into(EAX, lhs)
            self._emit("cmp", EAX, self._operand(rhs))
            return
        left = self._operand(lhs)
        right = self._operand(rhs)
        if isinstance(left, Mem) and isinstance(right, Mem):
            self._read_into(EAX, lhs)
            left = EAX
        self._emit("cmp", left, right)

    def _emit_cond_jump(self, cc, then_target, else_target, next_label):
        then_label = Label(self.block_label(then_target))
        else_label = Label(self.block_label(else_target))
        if else_target == next_label:
            self._emit("j" + cc, then_label)
        elif then_target == next_label:
            self._emit("j" + _CC_INVERSE[cc], else_label)
        else:
            self._emit("j" + cc, then_label)
            # This jump executes only when the branch falls through, i.e.
            # once per traversal of the (block -> else) edge — not once
            # per block execution. Tag it with the edge so the analytic
            # cost engine (and the NOP policy) charge it correctly.
            function_name, block_label = self.block_id
            jump = self._emit("jmp", else_label)
            jump.block_id = ("edge", function_name, block_label,
                             else_target)

    # -- instructions ----------------------------------------------------------------

    def _lower_instr(self, instr):
        if isinstance(instr, Copy):
            self._lower_copy(instr)
        elif isinstance(instr, Binary):
            self._lower_binary(instr)
        elif isinstance(instr, Unary):
            self._lower_unary(instr)
        elif isinstance(instr, ALoad):
            self._lower_aload(instr)
        elif isinstance(instr, AStore):
            self._lower_astore(instr)
        elif isinstance(instr, Call):
            self._lower_call(instr.dst, instr.callee, instr.args)
        elif isinstance(instr, Print):
            self._lower_call(None, PRINT_FUNCTION, [instr.value])
        elif isinstance(instr, Input):
            self._lower_call(instr.dst, READ_FUNCTION, [])
        else:
            raise LoweringError(f"cannot lower {instr!r}")

    def _lower_copy(self, instr):
        dst_loc = self._location(instr.dst)
        src_op = self._operand(instr.src)
        if dst_loc == src_op:
            return
        if isinstance(dst_loc, Mem) and isinstance(src_op, Mem):
            self._emit("mov", EAX, src_op)
            self._emit("mov", dst_loc, EAX)
        else:
            self._emit("mov", dst_loc, src_op)

    def _lower_binary(self, instr):
        op = instr.op
        if op in _DIRECT_ALU:
            self._read_into(EAX, instr.lhs)
            self._emit(_DIRECT_ALU[op], EAX, self._operand(instr.rhs))
            self._write_from(EAX, instr.dst)
        elif op == "mul":
            self._read_into(EAX, instr.lhs)
            rhs = self._operand(instr.rhs)
            if isinstance(rhs, Imm):
                self._emit("imul", EAX, EAX, rhs)
            else:
                self._emit("imul", EAX, rhs)
            self._write_from(EAX, instr.dst)
        elif op in ("div", "mod"):
            self._read_into(EAX, instr.lhs)
            self._read_into(ECX, instr.rhs)
            self._emit("cdq")
            self._emit("idiv", ECX)
            self._write_from(EAX if op == "div" else EDX, instr.dst)
        elif op in ("shl", "shr"):
            mnemonic = "shl" if op == "shl" else "sar"
            self._read_into(EAX, instr.lhs)
            rhs = self._operand(instr.rhs)
            if isinstance(rhs, Imm):
                self._emit(mnemonic, EAX, Imm(rhs.value & 31))
            else:
                self._read_into(ECX, instr.rhs)
                self._emit(mnemonic, EAX, ECX)
            self._write_from(EAX, instr.dst)
        elif op in COMPARISON_OPS:
            self._read_into(ECX, instr.lhs)
            rhs = self._operand(instr.rhs)
            if isinstance(rhs, Mem):
                self._read_into(EDX, instr.rhs)
                rhs = EDX
            self._emit("mov", EAX, Imm(0))
            self._emit("cmp", ECX, rhs)
            self._emit("set" + _CC_FOR_OP[op], EAX)
            self._write_from(EAX, instr.dst)
        else:
            raise LoweringError(f"cannot lower binary op {op!r}")

    def _lower_unary(self, instr):
        if instr.op == "neg":
            self._read_into(EAX, instr.src)
            self._emit("neg", EAX)
        elif instr.op == "bnot":
            self._read_into(EAX, instr.src)
            self._emit("not", EAX)
        elif instr.op == "not":
            self._read_into(ECX, instr.src)
            self._emit("mov", EAX, Imm(0))
            self._emit("test", ECX, ECX)
            self._emit("sete", EAX)
        else:
            raise LoweringError(f"cannot lower unary op {instr.op!r}")
        self._write_from(EAX, instr.dst)

    def _array_mem(self, array, index):
        """Memory operand for array[index]; may clobber EAX."""
        if isinstance(index, Const):
            return Mem(symbol=array, disp=4 * index.value)
        self._read_into(EAX, index)
        return Mem(symbol=array, index=EAX, scale=4)

    def _lower_aload(self, instr):
        source = self._array_mem(instr.array, instr.index)
        dst_loc = self._location(instr.dst)
        if isinstance(dst_loc, Register):
            self._emit("mov", dst_loc, source)
        else:
            self._emit("mov", EAX, source)
            self._emit("mov", dst_loc, EAX)

    def _lower_astore(self, instr):
        destination = self._array_mem(instr.array, instr.index)
        value = self._operand(instr.value)
        if isinstance(value, Mem):
            self._read_into(ECX, instr.value)
            value = ECX
        self._emit("mov", destination, value)

    def _lower_call(self, dst, callee, args):
        for arg in reversed(args):
            self._emit("push", self._operand(arg))
        self._emit("call", Label(callee))
        if args:
            self._emit("add", ESP, Imm(4 * len(args)))
        if dst is not None:
            self._write_from(EAX, dst)


def lower_function(function, module):
    """Lower one IR function to a :class:`FunctionCode`."""
    return _FunctionLowerer(function, module).lower()


def lower_module(module, unit_name=None):
    """Lower a whole IR module to an :class:`ObjectUnit`.

    Data symbols are the module's global arrays. Function order follows the
    module's insertion order (deterministic).
    """
    unit = ObjectUnit(unit_name or module.name)
    for function in module.functions.values():
        unit.add_function(lower_function(function, module))
    for array in module.globals.values():
        unit.data_symbols[array.name] = array.initial_values()
    return unit
