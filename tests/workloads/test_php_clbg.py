"""PHP-like interpreter and CLBG bytecode tests (the §5.2 substrate)."""

import pytest

from repro.core.config import PAPER_CONFIGS
from repro.errors import WorkloadError
from repro.pipeline import ProgramBuild
from repro.workloads.clbg import (
    BytecodeAssembler, CLBG_PROGRAMS, clbg_input, script_input,
)
from repro.workloads.registry import get_workload


@pytest.fixture(scope="module")
def php_build():
    workload = get_workload("php")
    return ProgramBuild(workload.source, "php")


class TestAssembler:
    def test_labels_resolve(self):
        asm = BytecodeAssembler()
        asm.emit("JMP", "end").label("end").emit("HALT")
        assert asm.assemble() == [15, 2, 0]

    def test_undefined_label_rejected(self):
        asm = BytecodeAssembler()
        asm.emit("JMP", "ghost")
        with pytest.raises(WorkloadError):
            asm.assemble()

    def test_duplicate_label_rejected(self):
        asm = BytecodeAssembler()
        asm.label("x").label("x")
        with pytest.raises(WorkloadError):
            asm.assemble()

    def test_operand_arity_enforced(self):
        asm = BytecodeAssembler()
        with pytest.raises(WorkloadError):
            asm.emit("PUSH")
        with pytest.raises(WorkloadError):
            asm.emit("ADD", 3)

    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(WorkloadError):
            BytecodeAssembler().emit("FROBNICATE")


class TestVmSemantics:
    def run_script(self, php_build, asm, extra=()):
        result = php_build.run_reference(script_input(asm.assemble(),
                                                      extra))
        # Last output line is the VM's own step report; drop it.
        return result.output[:-1]

    def test_arithmetic(self, php_build):
        asm = BytecodeAssembler()
        asm.emit("PUSH", 6).emit("PUSH", 7).emit("MUL").emit("PRINT")
        asm.emit("HALT")
        assert self.run_script(php_build, asm) == [42]

    def test_division_by_zero_defined(self, php_build):
        asm = BytecodeAssembler()
        asm.emit("PUSH", 5).emit("PUSH", 0).emit("DIV").emit("PRINT")
        asm.emit("HALT")
        assert self.run_script(php_build, asm) == [0]

    def test_globals_and_inc(self, php_build):
        asm = BytecodeAssembler()
        asm.emit("PUSH", 10).emit("STORE", 3)
        asm.emit("INC", 3).emit("INC", 3)
        asm.emit("LOAD", 3).emit("PRINT").emit("HALT")
        assert self.run_script(php_build, asm) == [12]

    def test_heap_store_load(self, php_build):
        asm = BytecodeAssembler()
        asm.emit("PUSH", 77).emit("PUSH", 5).emit("ASTORE")
        asm.emit("PUSH", 5).emit("ALOAD").emit("PRINT").emit("HALT")
        assert self.run_script(php_build, asm) == [77]

    def test_call_ret(self, php_build):
        asm = BytecodeAssembler()
        asm.emit("PUSH", 20).emit("CALL", "double")
        asm.emit("PRINT").emit("HALT")
        asm.label("double")
        asm.emit("PUSH", 2).emit("MUL").emit("RET")
        assert self.run_script(php_build, asm) == [40]

    def test_read_consumes_script_inputs(self, php_build):
        asm = BytecodeAssembler()
        asm.emit("READ").emit("READ").emit("ADD").emit("PRINT")
        asm.emit("HALT")
        assert self.run_script(php_build, asm, extra=(30, 12)) == [42]

    def test_runaway_script_hits_step_limit(self, php_build):
        asm = BytecodeAssembler()
        asm.label("spin").emit("JMP", "spin")
        result = php_build.run_reference(script_input(asm.assemble()))
        # VM stops at its own step limit, then reports steps.
        assert result.output[-1] >= 4_000_000


class TestClbgPrograms:
    @pytest.mark.parametrize("name", sorted(CLBG_PROGRAMS))
    def test_program_runs_and_prints(self, php_build, name):
        result = php_build.run_reference(clbg_input(name))
        assert len(result.output) == 2  # checksum + VM step report
        assert result.exit_code == 0

    def test_binarytrees_checksum_exact(self, php_build):
        # Recursion correctness: sum over d of nodes(d)=2^(d+1)-1.
        result = php_build.run_reference(clbg_input("binarytrees",
                                                    max_depth=5))
        expected = sum(2 ** (d + 1) - 1 for d in range(1, 6))
        assert result.output[0] == expected

    def test_interpreter_output_matches_simulator(self, php_build):
        binary = php_build.link_baseline()
        for name in ("pidigits", "fasta"):
            inputs = clbg_input(name)
            reference = php_build.run_reference(inputs)
            result = php_build.simulate(binary, inputs)
            assert result.output == reference.output, name

    def test_programs_stress_different_code(self, php_build):
        # The paper: "each benchmark stresses different parts of the PHP
        # interpreter". The dispatch loop dominates every profile, but
        # the *handler* mix differs: compare per-handler invocation
        # frequencies relative to dispatched opcodes.
        module = php_build.module

        def handler_mix(name):
            profile = php_build.profile(clbg_input(name), key=name)
            executes = max(profile.block_count(
                "execute", module.function("execute").entry.label), 1)
            return {
                fn: profile.block_count(
                    fn, module.function(fn).entry.label) / executes
                for fn in ("arith", "compare", "bitop")
            }

        trees = handler_mix("binarytrees")
        fannkuch = handler_mix("fannkuchredux")
        mandel = handler_mix("mandelbrot")
        # binarytrees barely compares; fannkuch compares constantly.
        assert fannkuch["compare"] > 10 * trees["compare"]
        # Only mandelbrot (of these three) exercises the bitop handler.
        assert mandel["bitop"] > 0
        assert trees["bitop"] == 0

    def test_unknown_program_rejected(self):
        with pytest.raises(WorkloadError):
            clbg_input("quicksort")
