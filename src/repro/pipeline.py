"""End-to-end driver: source → profile → diversified binaries.

:class:`ProgramBuild` wraps one MinC program through the whole pipeline
and caches the expensive stages:

1. front end + optimizer (deterministic, so training and final builds see
   identical CFGs),
2. lowering to the LR object unit,
3. profile collection on a training input,
4. per-variant NOP insertion + linking,
5. execution (reference interpreter or machine simulator) and analytic
   cycle estimation.

Linking is compile-once / diversify-many: the first link of a build
compiles a shared :class:`~repro.backend.linkplan.LinkPlan` (non-NOP
encodings, symbol skeleton, relocation sites, branch-width fixpoint) and
every subsequent variant pays only NOP insertion + incremental
relaxation + byte splicing — bit-identical to a full
:func:`~repro.backend.linker.link` and several times faster.
``REPRO_LINK_PLAN=0`` disables the plan path (every link goes through
the full linker).

Population builds (the paper's 25-variant studies) fan out over a
process pool — :func:`build_population` / ``link_population(workers=N)``
— and can reuse variants across runs through the content-addressed
artifact cache in :mod:`repro.artifacts`. Pool workers receive the
pickled lowered unit once (an initializer argument, not the source
text), compile their own link plan once, and then process chunked seed
batches, consulting the artifact cache inside each chunk. A variant is
fully determined by (source, config, seed, profile), so every worker
produces bit-identical binaries; ``REPRO_WORKERS`` and
``REPRO_CACHE_DIR`` set the defaults.

This is the module examples and benchmarks program against.
"""

from __future__ import annotations

import os
import pickle

from repro.artifacts import cache_from_env, variant_key
from repro.errors import PlanMismatchError, ReproError
from repro.obs import metrics
from repro.obs.knobs import knob_value
from repro.obs.trace import span
from repro.backend.linker import link
from repro.backend.linkplan import build_link_plan
from repro.backend.lowering import lower_module
from repro.core.variants import diversify_unit
from repro.minc.irgen import compile_to_ir
from repro.opt.pipeline import optimize_module
from repro.profiling.collect import collect_profile, collect_profile_multi
from repro.runtime.lib import runtime_unit
from repro.sim.analytic import block_counts_from_profile, estimate_cycles
from repro.sim.costs import DEFAULT_COST_MODEL
from repro.sim.machine import run_binary


def _plan_enabled():
    """``REPRO_LINK_PLAN=0`` is the kill switch for incremental linking."""
    return knob_value("REPRO_LINK_PLAN")


#: In sampled verify mode, every Nth variant link is statically verified
#: (the baseline always is). Population builds sample seeds at the same
#: stride.
VERIFY_SAMPLE_STRIDE = 8


def _static_verify_mode():
    """The ``REPRO_STATIC_VERIFY`` knob: ``None`` (off, the default),
    ``"sample"`` (baseline + every Nth variant) or ``"all"``.

    Resolved through the knob registry, so a typo (``ful``, ``smaple``)
    raises :class:`~repro.errors.ConfigError` listing the valid choices
    — it used to silently mean ``"sample"``.
    """
    return knob_value("REPRO_STATIC_VERIFY")


def build_ir(source, name="program", opt_level=2):
    """Front end + optimizer; deterministic for a given source."""
    with span("frontend", program=name):
        module = compile_to_ir(source, name)
    with span("opt", program=name, level=opt_level):
        return optimize_module(module, level=opt_level)


class ProgramBuild:
    """One program moving through the compile/profile/diversify pipeline."""

    def __init__(self, source, name="program", opt_level=2):
        self.source = source
        self.name = name
        self.opt_level = opt_level
        with span("compile", program=name):
            self.module = build_ir(source, name, opt_level)
            with span("lowering", program=name):
                self.unit = lower_module(self.module, name)
        self._link_plan = None
        self._unit_blob = None
        self._profiles = {}
        self._verify_counter = 0
        self._verified_hashes = set()
        #: Non-fatal degradations recorded during builds (e.g. a
        #: profile-guided config falling back to uniform insertion).
        self.warnings = []

    def _warn(self, message):
        """Record a non-fatal degradation: once on :attr:`warnings` and
        once in the shared metrics registry, so it survives into
        ``check --json`` even if the build object is thrown away."""
        self.warnings.append(message)
        metrics.inc("pipeline.warnings")

    # -- profiling -------------------------------------------------------------

    def profile(self, input_values=(), key=None):
        """Collect (and cache) a profile for one training input."""
        cache_key = key if key is not None else tuple(input_values)
        if cache_key not in self._profiles:
            with span("profile", program=self.name):
                profile, _result = collect_profile(self.module,
                                                   input_values)
            self._profiles[cache_key] = profile
        return self._profiles[cache_key]

    def profile_multi(self, input_sets, key):
        """Collect (and cache) a profile over several training inputs."""
        if key not in self._profiles:
            with span("profile", program=self.name, multi=True):
                profile, _result = collect_profile_multi(self.module,
                                                         input_sets)
            self._profiles[key] = profile
        return self._profiles[key]

    # -- linking ------------------------------------------------------------------

    def link_plan(self):
        """The memoized :class:`~repro.backend.linkplan.LinkPlan`.

        Compiled on first use and shared by every subsequent baseline and
        NOP-insertion variant link of this build — the compile-once half
        of compile-once / diversify-many.
        """
        if self._link_plan is None:
            with span("link_plan_compile", program=self.name):
                self._link_plan = build_link_plan(
                    [runtime_unit(), self.unit])
        return self._link_plan

    def unit_blob(self):
        """The lowered unit pickled once, for shipping to worker pools.

        The unit is immutable after lowering, so the bytes are memoized;
        both the population pool and the serve daemon's shard adoption
        reuse the same blob instead of re-pickling per fan-out.
        """
        if self._unit_blob is None:
            self._unit_blob = pickle.dumps(self.unit,
                                           protocol=pickle.HIGHEST_PROTOCOL)
        return self._unit_blob

    # -- post-link static verification ------------------------------------------

    def _verify_once(self, binary, label):
        """Statically verify one binary, at most once per distinct image.

        Raises :class:`~repro.errors.VerificationError` on findings.
        The dedup set is keyed on :meth:`LinkedBinary.identity_hash`, so
        cache hits and pool-built binaries are not re-verified when the
        same image passes through the gate twice.
        """
        digest = binary.identity_hash()
        if digest in self._verified_hashes:
            return binary
        from repro.analysis.passes import require_verified
        require_verified(binary, name=f"{self.name}/{label}")
        self._verified_hashes.add(digest)
        return binary

    def _maybe_verify(self, binary, kind):
        """The ``REPRO_STATIC_VERIFY`` post-link gate.

        Off by default. In sampled mode the baseline is always verified
        and every :data:`VERIFY_SAMPLE_STRIDE`-th variant link is; in
        ``all`` mode every link is.
        """
        mode = _static_verify_mode()
        if mode is None:
            return binary
        if kind != "baseline" and mode == "sample":
            index = self._verify_counter
            self._verify_counter += 1
            if index % VERIFY_SAMPLE_STRIDE:
                return binary
        return self._verify_once(binary, kind)

    def link_baseline(self):
        """The undiversified binary (runtime objects first, as ld would)."""
        if _plan_enabled():
            binary = self.link_plan().baseline()
        else:
            binary = link([runtime_unit(), self.unit])
        return self._maybe_verify(binary, "baseline")

    def _link_diversified(self, variant, config):
        """Link one diversified unit, preferring the incremental plan.

        Every config routes through the generalized plan — including the
        §6 transforms (substitution slots, sled insertion as dynamic
        items, the function-permutation layer). An unrecognized stream
        shape falls back to the full linker.
        """
        if _plan_enabled():
            try:
                return self.link_plan().apply(variant)
            except PlanMismatchError:
                # Unexpected stream shape: take the full linker. Counted
                # so a config that silently defeats incremental linking
                # shows up in the metrics section, not just in slowness.
                metrics.inc("linkplan.fallbacks")
        return link([runtime_unit(), variant])

    def link_variant(self, config, seed, profile=None, *, fallback=False):
        """One diversified binary for (config, seed, profile).

        A profile-guided config without a profile normally raises
        :class:`~repro.errors.ProfileError`. With ``fallback=True`` the
        build degrades to the config's uniform-``p_max`` equivalent and a
        warning is recorded on :attr:`warnings` instead — the graceful
        path used when profile collection failed upstream.
        """
        if fallback and config.requires_profile and profile is None:
            self._warn(f"{self.name}: no profile for "
                       f"{config.describe()!r}; falling back to "
                       f"{config.uniform_fallback().describe()!r}")
            config = config.uniform_fallback()
        variant = diversify_unit(self.unit, config, seed, profile)
        binary = self._link_diversified(variant, config)
        return self._maybe_verify(binary, "variant")

    def link_population(self, config, seeds, profile=None, *, fallback=False,
                        workers=None, cache_dir=None, force_pool=False):
        """A population of diversified binaries (the paper uses 25).

        ``workers`` > 1 fans chunked seed batches out over a process pool
        and ``cache_dir`` (default ``REPRO_CACHE_DIR``) reuses variants
        from the on-disk artifact cache; see :func:`build_population`.
        """
        return build_population(self, config, seeds, profile,
                                fallback=fallback, workers=workers,
                                cache_dir=cache_dir, force_pool=force_pool)

    # -- execution -------------------------------------------------------------------

    def run_reference(self, input_values=()):
        """Execute the IR on the reference interpreter."""
        from repro.ir.interp import run_module
        return run_module(self.module, input_values)

    def simulate(self, binary, input_values=(), count_addresses=False,
                 **fuel):
        """Execute a linked binary on the machine simulator.

        Extra keyword arguments (``max_steps``, ``stack_size``) are the
        run's fuel, forwarded to :func:`~repro.sim.machine.run_binary`.
        """
        return run_binary(binary, input_values,
                          count_addresses=count_addresses, **fuel)

    # -- performance ------------------------------------------------------------------

    def execution_counts(self, input_values=(), key=None):
        """block_id → count map for the cost engine, for one input."""
        profile = self.profile(input_values, key=key)
        return block_counts_from_profile(self.module, profile)

    def cycles(self, binary, counts, model=DEFAULT_COST_MODEL):
        """Analytic cycle count of a binary under given counts."""
        return estimate_cycles(binary, counts, model)

    def overhead(self, config, seed, *, train_input=(), ref_input=(),
                 model=DEFAULT_COST_MODEL, profile=None):
        """Fractional slowdown of one variant versus the baseline.

        ``train_input`` feeds the profile used by profile-guided configs;
        ``ref_input`` is the measured workload (the paper's train/ref
        split). If profile collection fails, the build degrades to the
        config's uniform-``p_max`` fallback and records a warning rather
        than aborting the measurement.
        """
        if profile is None and config.requires_profile:
            try:
                profile = self.profile(train_input)
            except ReproError as exc:
                self._warn(f"{self.name}: profile collection failed "
                           f"({exc}); falling back to "
                           f"{config.uniform_fallback().describe()!r}")
                config = config.uniform_fallback()
        counts = self.execution_counts(ref_input)
        baseline = self.cycles(self.link_baseline(), counts, model)
        variant = self.cycles(self.link_variant(config, seed, profile),
                              counts, model)
        return variant / baseline - 1.0


def compile_and_link(source, name="program", opt_level=2):
    """One-call convenience: source text → undiversified LinkedBinary."""
    return ProgramBuild(source, name, opt_level).link_baseline()


# -- parallel population builds ------------------------------------------------

#: Worker-process state installed once by :func:`_population_worker_init`:
#: the unpickled lowered unit, the (config, profile) pair, the artifact
#: cache handle, and the link plan compiled from the shipped unit. Every
#: chunk the worker is handed reuses all of it.
_WORKER_STATE = {}


def default_workers():
    """Worker-count default: ``REPRO_WORKERS`` (0 → cpu count), else 1.

    Resolved through the knob registry — ``REPRO_WORKERS=abc`` raises a
    typed :class:`~repro.errors.ConfigError` instead of an uncaught
    ``ValueError`` from deep inside a population build.
    """
    workers = knob_value("REPRO_WORKERS")
    if workers == 0:
        return os.cpu_count() or 1
    return workers


def effective_workers(workers, jobs, force_pool=False):
    """Clamp a requested pool width to something that can actually help.

    A pool wider than the machine's core count only adds pickling and
    process-start overhead — on a single-core box (the recorded 2.877s
    vs 0.708s population regression) it turns a parallel build into a
    strictly slower serial one. ``force_pool=True`` skips the core-count
    clamp (tests exercising the pool protocol on small machines).
    """
    workers = min(workers, jobs)
    if not force_pool:
        workers = min(workers, os.cpu_count() or 1)
    return max(workers, 1)


def _population_worker_init(unit_blob, config, profile_json, cache_root,
                            plan_enabled):
    """Pool initializer: unpickle the unit and compile the plan once.

    Runs once per worker process. The parent ships the pickled lowered
    unit — not the source text — so workers skip the front end, the
    optimizer, and lowering entirely, and the link plan they compile
    here is shared by every chunk they process.
    """
    from repro.artifacts import VariantCache
    from repro.profiling.profile_data import ProfileData

    unit = pickle.loads(unit_blob)
    profile = (ProfileData.from_json(profile_json)
               if profile_json is not None else None)
    plan = None
    if plan_enabled:
        plan = build_link_plan([runtime_unit(), unit])
    _WORKER_STATE.clear()
    _WORKER_STATE.update(
        unit=unit, config=config, profile=profile, plan=plan,
        cache=VariantCache(cache_root) if cache_root else None)


def _population_worker_chunk(jobs):
    """Build one chunk of ``(seed, cache_key)`` jobs in a pool worker.

    The artifact cache is consulted *inside* the chunk (the parent did
    not pre-check when a pool is used), so cache hits cost one worker
    lookup instead of a parent-side deserialize + re-pickle round trip.
    Returns ``(results, metrics_delta)`` where results is a list of
    ``(seed, binary)`` and the delta is this chunk's
    :class:`~repro.obs.metrics.MetricsDelta` — cache hits/misses/puts,
    NOP-insertion counters, per-stage timings — keyed by metric *name*
    for the parent to fold in. (The previous protocol shipped a bare
    ``(hits, misses, puts)`` tuple whose meaning was positional
    convention; a reordering on either side silently swapped hits and
    misses.)
    """
    state = _WORKER_STATE
    unit = state["unit"]
    config = state["config"]
    profile = state["profile"]
    plan = state["plan"]
    cache = state["cache"]
    before = metrics.snapshot()
    results = []
    for seed, key in jobs:
        binary = cache.get(key) if cache is not None and key else None
        if binary is None:
            variant = diversify_unit(unit, config, seed, profile)
            if plan is not None:
                try:
                    binary = plan.apply(variant)
                except PlanMismatchError:
                    metrics.inc("linkplan.fallbacks")
                    binary = link([runtime_unit(), variant])
            else:
                binary = link([runtime_unit(), variant])
            if cache is not None and key:
                cache.put(key, binary)
        results.append((seed, binary))
    return results, metrics.delta_since(before)


def build_population(build, config, seeds, profile=None, *, fallback=False,
                     workers=None, cache_dir=None, force_pool=False):
    """Build the variants for ``seeds``, optionally in parallel and cached.

    - ``workers`` — process-pool width; ``None`` defers to
      ``REPRO_WORKERS`` (default 1 = serial in-process), and the result
      is clamped to the machine's core count (``force_pool=True``
      disables the clamp, for tests of the pool protocol). Pool workers
      receive the pickled lowered unit once via the pool initializer,
      compile the link plan once, and then build chunked seed batches —
      only seeds, cache keys and the finished binaries cross the process
      boundary after startup.
    - ``cache_dir`` — root of the content-addressed artifact cache;
      ``None`` defers to ``REPRO_CACHE_DIR`` (unset → no caching).
      Cached binaries are keyed on (source, config, seed, profile), so
      any run of any process with the same inputs reuses them. Serial
      builds consult the cache up front; pool builds consult it inside
      each worker chunk.
    - ``fallback`` — as in :meth:`ProgramBuild.link_variant`; resolved
      up front (with the per-seed warnings recorded on ``build``) so
      workers never need the degradation logic.

    Returns binaries in ``seeds`` order.
    """
    seeds = list(seeds)
    if fallback and config.requires_profile and profile is None:
        # One warning for the whole population, carrying the seed count
        # — a 100-seed run used to record 100 identical copies.
        build._warn(f"{build.name}: no profile for "
                    f"{config.describe()!r}; falling back to "
                    f"{config.uniform_fallback().describe()!r} "
                    f"for all {len(seeds)} seed(s)")
        metrics.inc("fallback.uniform", len(seeds))
        config = config.uniform_fallback()
    if workers is None:
        workers = default_workers()
    workers = effective_workers(workers, len(seeds), force_pool)
    cache = cache_from_env(cache_dir)
    keys = {}
    if cache is not None:
        keys = {seed: variant_key(build.source, build.name, build.opt_level,
                                  config, seed, profile)
                for seed in seeds}

    results = {}
    population_span = span("population_build", program=build.name,
                           workers=workers, seeds=len(seeds))
    if workers > 1 and len(seeds) > 1:
        from concurrent.futures import ProcessPoolExecutor

        profile_json = profile.to_json() if profile is not None else None
        cache_root = cache.root if cache is not None else None
        unit_blob = build.unit_blob()
        jobs = [(seed, keys.get(seed)) for seed in seeds]
        chunks = [jobs[index::workers] for index in range(workers)]
        with population_span, ProcessPoolExecutor(
                max_workers=workers,
                initializer=_population_worker_init,
                initargs=(unit_blob, config, profile_json, cache_root,
                          _plan_enabled())) as pool:
            for chunk_results, delta in pool.map(_population_worker_chunk,
                                                 chunks):
                results.update(chunk_results)
                # Named fold: every worker-side counter and stage
                # histogram lands under its own name — no positional
                # tuple to mis-order.
                metrics.merge_delta(delta)
    else:
        with population_span:
            pending = seeds
            if cache is not None:
                pending = []
                for seed in seeds:
                    cached = cache.get(keys[seed])
                    if cached is not None:
                        results[seed] = cached
                    else:
                        pending.append(seed)
            for seed in pending:
                binary = build.link_variant(config, seed, profile)
                if cache is not None:
                    cache.put(keys[seed], binary)
                results[seed] = binary

    # Post-build static-verify sampling: pool-built and cache-hit
    # binaries never pass through link_variant's gate, so the sampled
    # sweep runs here (identity-hash dedup keeps already-verified
    # images free).
    mode = _static_verify_mode()
    if mode is not None:
        checked = seeds if mode == "all" else seeds[::VERIFY_SAMPLE_STRIDE]
        for seed in checked:
            build._verify_once(results[seed], f"variant[seed={seed}]")

    return [results[seed] for seed in seeds]


def map_chunked(fn, items, workers=None, *, force_pool=False):
    """Run ``fn`` over ``items`` in order, chunk-wise over a process pool.

    ``fn`` takes a *list* of items and returns one result per item, in
    order (so it can amortize per-call setup — decode caches, plan
    compilation — across its chunk); it must be picklable (a module-level
    function or :func:`functools.partial` of one). ``workers`` resolves
    and clamps exactly as in :func:`build_population`; the serial path
    (width 1, or a single item) calls ``fn`` in-process.

    This is the population pool machinery with the variant-specific
    parts stripped out — the security studies fan their per-variant
    gadget scans out through it, and the static verifier its batched
    ``verify_binary`` sweeps. Worker-side metrics (counters, stage
    timings) are shipped back as named
    :class:`~repro.obs.metrics.MetricsDelta` objects and folded into
    this process, so pool and serial runs report the same totals.
    """
    items = list(items)
    if not items:
        return []
    if workers is None:
        workers = default_workers()
    workers = effective_workers(workers, len(items), force_pool)
    if workers <= 1 or len(items) <= 1:
        return list(fn(items))

    from concurrent.futures import ProcessPoolExecutor
    from functools import partial

    chunks = [items[index::workers] for index in range(workers)]
    results = [None] * len(items)
    with ProcessPoolExecutor(max_workers=workers) as pool:
        for start, (chunk_results, delta) in zip(
                range(workers),
                pool.map(partial(_metered_chunk, fn), chunks)):
            chunk_results = list(chunk_results)
            if len(chunk_results) != len(chunks[start]):
                raise ReproError(
                    f"map_chunked fn returned {len(chunk_results)} "
                    f"results for a {len(chunks[start])}-item chunk")
            metrics.merge_delta(delta)
            for position, value in enumerate(chunk_results):
                results[start + position * workers] = value
    return results


def _metered_chunk(fn, items):
    """Pool target wrapping ``fn`` with a metrics before/after snapshot;
    returns ``(results, MetricsDelta)``."""
    before = metrics.snapshot()
    return list(fn(items)), metrics.delta_since(before)
