"""NOP candidate instructions (Table 1 of the paper).

The paper selects NOP encodings that (a) preserve the entire processor
state, including flags, and (b) minimize the likelihood of creating new
gadgets: for the two-byte candidates the *second* byte, decoded on its own,
is an instruction the attacker cannot use (``IN`` faults in user mode,
``SS:`` is a segment-override prefix, ``AAS`` is a harmless ASCII-adjust).

The two XCHG-based candidates are architecturally perfect NOPs but lock the
memory bus on real implementations of x86 (Intel SDM), so the paper leaves
them out of the default set; we model that with a higher simulator cost and
keep them behind a flag, exactly as the paper's compile-time option.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.x86.instructions import Instr, Mem
from repro.x86.registers import EBP, EDI, ESI, ESP


@dataclass(frozen=True)
class NopCandidate:
    """One row of the paper's Table 1."""

    name: str
    encoding: bytes
    #: What the second byte of the encoding decodes to on its own (the
    #: paper's "Second Byte Decoding" column); ``None`` for 1-byte NOPs.
    second_byte_decoding: str | None
    #: True for the XCHG-based candidates, which lock the memory bus.
    locks_bus: bool

    @property
    def size(self):
        return len(self.encoding)

    def to_instr(self):
        """Build a fresh :class:`Instr` for this candidate.

        Each call returns a new object (the insertion pass mutates
        ``block_id`` per site) cloned from a memoized, pre-encoded
        template — the operands, size and encoding of a given candidate
        never change, so they are resolved exactly once per process no
        matter how many million sites a population build inserts.
        """
        template = _TEMPLATE_INSTRS.get(self.name)
        if template is None:
            mnemonic, operands = _CANDIDATE_INSTRS[self.name]
            template = Instr(mnemonic, *operands, is_inserted_nop=True)
            template.size = self.size
            template.encoding = self.encoding
            _TEMPLATE_INSTRS[self.name] = template
        instr = Instr.__new__(Instr)
        instr.__dict__ = dict(template.__dict__)
        return instr


#: Pre-built, pre-encoded Instr per candidate name; cloned by to_instr().
_TEMPLATE_INSTRS = {}

#: Shared pre-encoded Instr per (candidate, block id) insertion site.
_SITE_INSTRS = {}


def site_instr(candidate, block_id):
    """The shared :class:`Instr` for inserting ``candidate`` in block
    ``block_id``.

    An inserted NOP is immutable once its block id is set — the linker
    clones before resolving, the link plan and every analysis only read
    it — so all insertion sites of a given (candidate, block) pair, in
    every variant of every population, can carry one object instead of
    a fresh clone each. Callers must not mutate the result; use
    :meth:`NopCandidate.to_instr` for an owned copy.
    """
    key = (candidate.name, block_id)
    instr = _SITE_INSTRS.get(key)
    if instr is None:
        instr = candidate.to_instr()
        instr.block_id = block_id
        _SITE_INSTRS[key] = instr
    return instr

_CANDIDATE_INSTRS = {
    "nop": ("nop", ()),
    "mov esp, esp": ("mov", (ESP, ESP)),
    "mov ebp, ebp": ("mov", (EBP, EBP)),
    "lea esi, [esi]": ("lea", (ESI, Mem(base=ESI))),
    "lea edi, [edi]": ("lea", (EDI, Mem(base=EDI))),
    "xchg esp, esp": ("xchg", (ESP, ESP)),
    "xchg ebp, ebp": ("xchg", (EBP, EBP)),
}


#: All seven candidates from Table 1, in the paper's order.
NOP_CANDIDATES = (
    NopCandidate("nop", b"\x90", None, locks_bus=False),
    NopCandidate("mov esp, esp", b"\x89\xe4", "IN", locks_bus=False),
    NopCandidate("mov ebp, ebp", b"\x89\xed", "IN", locks_bus=False),
    NopCandidate("lea esi, [esi]", b"\x8d\x36", "SS:", locks_bus=False),
    NopCandidate("lea edi, [edi]", b"\x8d\x3f", "AAS", locks_bus=False),
    NopCandidate("xchg esp, esp", b"\x87\xe4", "IN", locks_bus=True),
    NopCandidate("xchg ebp, ebp", b"\x87\xed", "IN", locks_bus=True),
)

#: The five candidates the paper's implementation actually inserts.
DEFAULT_NOP_CANDIDATES = tuple(c for c in NOP_CANDIDATES if not c.locks_bus)

#: The two bus-locking candidates, available behind a compile-time flag.
XCHG_NOP_CANDIDATES = tuple(c for c in NOP_CANDIDATES if c.locks_bus)

_CANDIDATE_ENCODINGS = {c.encoding: c for c in NOP_CANDIDATES}

#: Longest candidate encoding, used by normalization scans.
MAX_NOP_CANDIDATE_SIZE = max(c.size for c in NOP_CANDIDATES)


def candidate_by_name(name):
    """Return the candidate with the given Table-1 name."""
    for candidate in NOP_CANDIDATES:
        if candidate.name == name:
            return candidate
    raise KeyError(name)


def match_nop_candidate(data, offset=0):
    """Return the :class:`NopCandidate` whose encoding starts at ``offset``
    in ``data``, or ``None``.

    Longer encodings are preferred so that ``89 e4`` matches
    ``mov esp, esp`` rather than stopping after one byte.
    """
    for size in range(MAX_NOP_CANDIDATE_SIZE, 0, -1):
        chunk = bytes(data[offset:offset + size])
        candidate = _CANDIDATE_ENCODINGS.get(chunk)
        if candidate is not None:
            return candidate
    return None


def is_nop_candidate_bytes(chunk):
    """True if ``chunk`` is exactly one NOP-candidate encoding."""
    return bytes(chunk) in _CANDIDATE_ENCODINGS


def is_nop_candidate_instr(instr):
    """True if a decoded/built instruction is one of the Table-1 NOPs."""
    if instr.encoding is not None:
        return bytes(instr.encoding) in _CANDIDATE_ENCODINGS
    for candidate in NOP_CANDIDATES:
        mnemonic, operands = _CANDIDATE_INSTRS[candidate.name]
        if instr.mnemonic == mnemonic and instr.operands == operands:
            return True
    return False


def strip_nop_candidates(data):
    """Remove every NOP-candidate encoding from a byte string.

    This is the normalization step of the Survivor algorithm: because any
    byte sequence that *looks like* an inserted NOP is removed (whether or
    not the diversifier actually put it there), comparisons made after
    stripping conservatively overestimate gadget survival.
    """
    out = bytearray()
    position = 0
    data = bytes(data)
    while position < len(data):
        candidate = match_nop_candidate(data, position)
        if candidate is not None:
            position += candidate.size
        else:
            out.append(data[position])
            position += 1
    return bytes(out)
