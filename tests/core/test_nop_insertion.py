"""Algorithm 1 tests: insertion statistics, determinism, policies."""

import random

import pytest

from repro.backend.objfile import FunctionCode, LabelDef, ObjectUnit
from repro.core.config import DiversificationConfig
from repro.core.nop_insertion import (
    count_inserted_nops, insert_nops, insert_nops_in_unit,
)
from repro.core.policies import block_probability_function
from repro.errors import ProfileError
from repro.profiling.profile_data import ProfileData
from repro.x86.instructions import Imm, Instr
from repro.x86.nops import DEFAULT_NOP_CANDIDATES, is_nop_candidate_instr
from repro.x86.registers import EAX, EBX


def make_function(n_instrs=200, block_id=("f", "entry")):
    items = [LabelDef("f")]
    for index in range(n_instrs):
        items.append(Instr("add", EAX, Imm(index), block_id=block_id))
    return FunctionCode("f", items)


def uniform_policy(p):
    return lambda _block_id: p


class TestInsertionStatistics:
    def test_p_zero_inserts_nothing(self):
        function = make_function()
        result = insert_nops(function, DEFAULT_NOP_CANDIDATES,
                             random.Random(0), uniform_policy(0.0))
        assert count_inserted_nops(result) == 0

    def test_p_one_inserts_before_every_instruction(self):
        function = make_function(50)
        result = insert_nops(function, DEFAULT_NOP_CANDIDATES,
                             random.Random(0), uniform_policy(1.0))
        assert count_inserted_nops(result) == 50

    def test_insertion_rate_tracks_probability(self):
        function = make_function(4000)
        result = insert_nops(function, DEFAULT_NOP_CANDIDATES,
                             random.Random(1), uniform_policy(0.5))
        inserted = count_inserted_nops(result)
        assert 0.45 * 4000 < inserted < 0.55 * 4000

    def test_original_instructions_preserved_in_order(self):
        function = make_function(100)
        result = insert_nops(function, DEFAULT_NOP_CANDIDATES,
                             random.Random(2), uniform_policy(0.7))
        originals = [i for i in result.instructions()
                     if not i.is_inserted_nop]
        assert originals == function.instructions()

    def test_inserted_nops_are_candidates(self):
        function = make_function(300)
        result = insert_nops(function, DEFAULT_NOP_CANDIDATES,
                             random.Random(3), uniform_policy(0.5))
        for instr in result.instructions():
            if instr.is_inserted_nop:
                assert is_nop_candidate_instr(instr)

    def test_all_candidates_eventually_used(self):
        function = make_function(3000)
        result = insert_nops(function, DEFAULT_NOP_CANDIDATES,
                             random.Random(4), uniform_policy(0.5))
        used = {instr.encoding or tuple(instr.operands)
                for instr in result.instructions()
                if instr.is_inserted_nop}
        # All five default candidates appear in a large sample.
        names = set()
        for instr in result.instructions():
            if instr.is_inserted_nop:
                names.add((instr.mnemonic, instr.operands))
        assert len(names) == len(DEFAULT_NOP_CANDIDATES)

    def test_nops_inherit_block_id(self):
        function = make_function(100, block_id=("f", "hot"))
        result = insert_nops(function, DEFAULT_NOP_CANDIDATES,
                             random.Random(5), uniform_policy(0.9))
        for instr in result.instructions():
            if instr.is_inserted_nop:
                assert instr.block_id == ("f", "hot")


class TestDeterminism:
    def test_same_seed_same_output(self):
        function = make_function(500)
        a = insert_nops(function, DEFAULT_NOP_CANDIDATES,
                        random.Random(42), uniform_policy(0.5))
        b = insert_nops(function, DEFAULT_NOP_CANDIDATES,
                        random.Random(42), uniform_policy(0.5))
        assert [i.mnemonic for i in a.instructions()] == \
            [i.mnemonic for i in b.instructions()]

    def test_different_seeds_differ(self):
        function = make_function(500)
        a = insert_nops(function, DEFAULT_NOP_CANDIDATES,
                        random.Random(1), uniform_policy(0.5))
        b = insert_nops(function, DEFAULT_NOP_CANDIDATES,
                        random.Random(2), uniform_policy(0.5))
        assert [repr(i) for i in a.instructions()] != \
            [repr(i) for i in b.instructions()]


class TestDiversifiability:
    def test_runtime_objects_pass_through(self):
        function = make_function()
        function.diversifiable = False
        result = insert_nops(function, DEFAULT_NOP_CANDIDATES,
                             random.Random(0), uniform_policy(1.0))
        assert result is function

    def test_unit_insertion_covers_all_functions(self):
        unit = ObjectUnit("u")
        unit.add_function(make_function(100))
        second = make_function(100)
        second.name = "g"
        second.items[0] = LabelDef("g")
        unit.add_function(second)
        result = insert_nops_in_unit(unit, DEFAULT_NOP_CANDIDATES,
                                     random.Random(0), uniform_policy(1.0))
        assert count_inserted_nops(result) == 200


class TestPolicies:
    def test_uniform_policy_ignores_blocks(self):
        config = DiversificationConfig.uniform(0.4)
        policy = block_probability_function(config)
        assert policy(("f", "hot")) == 0.4
        assert policy(None) == 0.4

    def test_profile_guided_needs_profile(self):
        config = DiversificationConfig.profile_guided(0.1, 0.5)
        with pytest.raises(ProfileError):
            block_probability_function(config, profile=None)

    def test_hot_blocks_get_lower_probability(self):
        profile = ProfileData.from_edges({
            ("f", None, "entry"): 1,
            ("f", "entry", "hot"): 1,
            ("f", "hot", "hot"): 999_999,
        })
        config = DiversificationConfig.profile_guided(0.0, 0.5)
        policy = block_probability_function(config, profile)
        assert policy(("f", "hot")) < 0.01
        assert policy(("f", "entry")) > 0.4
        # Unknown blocks are cold: p_max.
        assert policy(("f", "never_seen")) == pytest.approx(0.5)

    def test_edge_block_ids_use_edge_counts(self):
        profile = ProfileData.from_edges({
            ("f", None, "entry"): 1,
            ("f", "entry", "a"): 1_000_000,
            ("f", "entry", "b"): 1,
        })
        config = DiversificationConfig.profile_guided(0.0, 0.5)
        policy = block_probability_function(config, profile)
        hot_edge = policy(("edge", "f", "entry", "a"))
        cold_edge = policy(("edge", "f", "entry", "b"))
        assert hot_edge < cold_edge

    def test_profile_guided_insertion_spares_hot_code(self):
        hot = make_function(2000, block_id=("f", "hot"))
        profile = ProfileData.from_edges({
            ("f", None, "hot"): 1_000_000,
        })
        config = DiversificationConfig.profile_guided(0.0, 0.5)
        policy = block_probability_function(config, profile)
        result = insert_nops(hot, DEFAULT_NOP_CANDIDATES,
                             random.Random(0), policy)
        assert count_inserted_nops(result) == 0
