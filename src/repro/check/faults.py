"""Deterministic fault injection against the diversification pipeline.

Each injector corrupts one artifact class — a linked binary, a training
profile, or a diversification config — and then *exercises* the pipeline
stage that consumes it. The campaign runner records how the fault
surfaced:

- ``typed``   — a :class:`~repro.errors.ReproError` subclass was raised
  (the desired outcome; its ``code`` and ``context`` are recorded),
- ``untyped`` — a bare builtin exception escaped (a robustness bug),
- ``masked``  — the corruption had no observable effect (e.g. a bit flip
  in never-executed cold code); counted separately, not as a failure.

Binary injectors run the corrupted image *differentially* against the
pristine baseline's observables, so a corruption that silently changes
the answer — no fault, wrong output — still surfaces, as a typed
:class:`~repro.errors.DivergenceError`. All randomness comes from one
seeded ``random.Random`` per case, so every campaign is reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import random

from repro.errors import ReproError
from repro.check.differential import (
    Observation, observe_binary, require_equivalent,
)
from repro.core.config import DiversificationConfig
from repro.core.probability import (
    LogProfileProbability, UniformProbability,
)
from repro.pipeline import ProgramBuild
from repro.profiling.profile_data import ProfileData
from repro.workloads.registry import get_workload


@dataclass
class FaultTarget:
    """The pristine artifacts one campaign corrupts copies of."""

    name: str
    build: ProgramBuild
    baseline: object            # LinkedBinary
    baseline_obs: object        # Observation of the pristine baseline
    profile: ProfileData
    inputs: tuple
    pg_config: DiversificationConfig
    #: Text offset one past the highest instruction address the baseline
    #: actually executes on ``inputs`` — truncating below this point is
    #: guaranteed to clip a reachable instruction (the cold-code banks at
    #: the end of the image would otherwise mask most truncations).
    executed_end: int = 0


def target_from_source(source, name="program", *, train_input=(),
                       inputs=()):
    """Build a :class:`FaultTarget` from MinC source text."""
    build = ProgramBuild(source, name)
    baseline = build.link_baseline()
    counted = build.simulate(baseline, inputs, count_addresses=True)
    baseline_obs = Observation(tuple(counted.output), counted.exit_code,
                               counted.instr_count)
    executed_end = len(baseline.text)
    if counted.addr_counts:
        executed_end = max(counted.addr_counts) - baseline.text_base + 1
    profile = build.profile(train_input)
    return FaultTarget(
        name=name, build=build, baseline=baseline,
        baseline_obs=baseline_obs, profile=profile, inputs=tuple(inputs),
        pg_config=DiversificationConfig.profile_guided(0.10, 0.50),
        executed_end=executed_end)


def target_from_workload(name):
    """Build a :class:`FaultTarget` from a registered workload."""
    workload = get_workload(name)
    return target_from_source(workload.source, workload.name,
                              train_input=workload.train_input,
                              inputs=workload.ref_input)


def _copy_profile(profile):
    return ProfileData(dict(profile.edge_counts),
                       dict(profile.block_counts))


class FaultInjector:
    """Base class: corrupt one artifact, then exercise the pipeline."""

    #: Registry name; also the campaign's grouping key.
    name = "?"
    #: Which artifact class is corrupted: binary | profile | config.
    artifact = "?"

    def inject(self, rng, target):
        """Corrupt a copy of the artifact and run the consuming stage.

        Returns normally if the corruption was masked; the typed error a
        real fault surfaces as propagates to the campaign runner.
        """
        raise NotImplementedError


# -- binary corruption --------------------------------------------------------


class BitFlipInjector(FaultInjector):
    """Flip one random bit of the linked text image, then run it
    differentially against the pristine baseline."""

    name = "binary.bitflip"
    artifact = "binary"

    def inject(self, rng, target):
        text = bytearray(target.baseline.text)
        position = rng.randrange(len(text))
        text[position] ^= 1 << rng.randrange(8)
        corrupted = replace(target.baseline, text=bytes(text))
        fuel = max(target.baseline_obs.instr_count * 8, 100_000)
        observation = observe_binary(target.build, corrupted,
                                     target.inputs, max_steps=fuel)
        require_equivalent(target.baseline_obs, observation,
                           program=target.name, stage="bitflipped binary")


class TruncationInjector(FaultInjector):
    """Truncate the text image inside the executed span and run it.

    The cut lands at or below the highest executed instruction, so the
    corrupted run is guaranteed to fetch past the end of text (or a
    half-instruction at the cut) — a masked outcome would itself be a
    simulator-robustness bug.
    """

    name = "binary.truncation"
    artifact = "binary"

    def inject(self, rng, target):
        text = target.baseline.text
        end = max(2, target.executed_end)
        cut = rng.randrange(max(1, end // 4), end)
        corrupted = replace(target.baseline, text=text[:cut])
        fuel = max(target.baseline_obs.instr_count * 8, 100_000)
        observation = observe_binary(target.build, corrupted,
                                     target.inputs, max_steps=fuel)
        require_equivalent(target.baseline_obs, observation,
                           program=target.name, stage="truncated binary")


# -- profile corruption -------------------------------------------------------


class NegativeCountInjector(FaultInjector):
    """Make one random profile count negative, then build a variant."""

    name = "profile.negative_count"
    artifact = "profile"

    def inject(self, rng, target):
        profile = _copy_profile(target.profile)
        key = rng.choice(sorted(profile.block_counts))
        profile.block_counts[key] = -abs(profile.block_counts[key]) - 1
        target.build.link_variant(target.pg_config, rng.randrange(1 << 16),
                                  profile)


class MissingCountInjector(FaultInjector):
    """Drop the ``count`` field from one serialized profile edge."""

    name = "profile.missing_count"
    artifact = "profile"

    def inject(self, rng, target):
        import json
        payload = json.loads(target.profile.to_json())
        entry = rng.choice(payload["edges"])
        del entry["count"]
        ProfileData.from_json(json.dumps(payload))


class BlockIdMismatchInjector(FaultInjector):
    """Relabel every profiled function so no block id matches the unit."""

    name = "profile.block_mismatch"
    artifact = "profile"

    def inject(self, rng, target):
        ghost = f"ghost{rng.randrange(1 << 16)}_"
        profile = ProfileData(
            {(ghost + fn, src, dst): count
             for (fn, src, dst), count in target.profile.edge_counts.items()},
            {(ghost + fn, label): count
             for (fn, label), count in target.profile.block_counts.items()})
        target.build.link_variant(target.pg_config, rng.randrange(1 << 16),
                                  profile)


class GarbageJSONInjector(FaultInjector):
    """Feed byte garbage to the profile deserializer."""

    name = "profile.garbage_json"
    artifact = "profile"

    def inject(self, rng, target):
        text = target.profile.to_json()
        cut = rng.randrange(1, max(2, len(text) // 2))
        ProfileData.from_json(text[:cut])


# -- config corruption --------------------------------------------------------


class InvertedRangeInjector(FaultInjector):
    """Construct a profile-guided model with p_min > p_max."""

    name = "config.inverted_range"
    artifact = "config"

    def inject(self, rng, target):
        low = rng.uniform(0.5, 0.9)
        high = rng.uniform(0.0, low - 0.1)
        LogProfileProbability(low, high)


class NaNProbabilityInjector(FaultInjector):
    """Construct a probability model with a NaN fraction."""

    name = "config.nan_probability"
    artifact = "config"

    def inject(self, rng, target):
        UniformProbability(float("nan"))


class OutOfRangeInjector(FaultInjector):
    """Construct a probability model with p outside [0, 1]."""

    name = "config.out_of_range"
    artifact = "config"

    def inject(self, rng, target):
        sign = rng.choice((-1.0, 1.0))
        UniformProbability(sign * rng.uniform(1.01, 1000.0))


#: Every injector the default campaign runs, in artifact order.
ALL_INJECTORS = (
    BitFlipInjector, TruncationInjector,
    NegativeCountInjector, MissingCountInjector, BlockIdMismatchInjector,
    GarbageJSONInjector,
    InvertedRangeInjector, NaNProbabilityInjector, OutOfRangeInjector,
)


@dataclass
class FaultCase:
    """How one injected fault surfaced."""

    injector: str
    artifact: str
    target: str
    seed: int
    outcome: str                 # "typed" | "masked" | "untyped"
    error_type: str | None = None
    error_code: str | None = None
    message: str | None = None
    context_keys: tuple = ()

    def describe(self):
        if self.outcome == "masked":
            return (f"{self.injector} seed={self.seed} on {self.target}: "
                    "masked (no observable effect)")
        return (f"{self.injector} seed={self.seed} on {self.target}: "
                f"{self.outcome} {self.error_type} [{self.error_code}] "
                f"{self.message}")


@dataclass
class CampaignResult:
    """All cases of one fault-injection campaign."""

    cases: list = field(default_factory=list)

    @property
    def ok(self):
        """True when no fault escaped as a bare builtin exception."""
        return all(case.outcome != "untyped" for case in self.cases)

    def summary(self):
        counts = {"typed": 0, "masked": 0, "untyped": 0}
        by_injector = {}
        for case in self.cases:
            counts[case.outcome] += 1
            per = by_injector.setdefault(
                case.injector, {"typed": 0, "masked": 0, "untyped": 0})
            per[case.outcome] += 1
        surfaced = counts["typed"] + counts["untyped"]
        coverage = 100.0 if surfaced == 0 \
            else 100.0 * counts["typed"] / surfaced
        return {
            "faults_injected": len(self.cases),
            "typed": counts["typed"],
            "masked": counts["masked"],
            "untyped": counts["untyped"],
            "typed_error_coverage": round(coverage, 2),
            "by_injector": by_injector,
        }


def _run_case(injector, seed, target):
    rng = random.Random(seed)
    try:
        injector.inject(rng, target)
    except ReproError as exc:
        return FaultCase(
            injector=injector.name, artifact=injector.artifact,
            target=target.name, seed=seed, outcome="typed",
            error_type=type(exc).__name__,
            error_code=getattr(exc, "code", None), message=str(exc),
            context_keys=tuple(sorted(getattr(exc, "context", {}))))
    except Exception as exc:  # noqa: BLE001 — the campaign's whole point
        return FaultCase(
            injector=injector.name, artifact=injector.artifact,
            target=target.name, seed=seed, outcome="untyped",
            error_type=type(exc).__name__, message=str(exc))
    return FaultCase(injector=injector.name, artifact=injector.artifact,
                     target=target.name, seed=seed, outcome="masked")


def run_campaign(targets, injectors=ALL_INJECTORS, seeds=range(5)):
    """Run every (target, injector, seed) combination.

    ``targets`` is an iterable of :class:`FaultTarget`; ``injectors`` may
    be classes or instances. Returns a :class:`CampaignResult`.
    """
    result = CampaignResult()
    for target in targets:
        for injector in injectors:
            instance = injector() if isinstance(injector, type) else injector
            for seed in seeds:
                result.cases.append(_run_case(instance, seed, target))
    return result
