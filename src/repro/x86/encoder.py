"""Encode :class:`~repro.x86.instructions.Instr` objects to IA-32 bytes.

The encoder covers exactly the instruction forms the compiler backend emits
(plus the Table-1 NOP candidates). Branch instructions must already carry
resolved :class:`~repro.x86.instructions.Rel` operands; encountering a
:class:`~repro.x86.instructions.Label` here is a programming error in the
emitter and raises :class:`~repro.errors.EncodingError`.
"""

from __future__ import annotations

import struct

from repro.errors import EncodingError
from repro.x86.instructions import (
    Imm, JCC_MNEMONICS, Label, Mem, Rel, SETCC_MNEMONICS,
)
from repro.x86.registers import Register

_U32 = struct.Struct("<I")
_U16 = struct.Struct("<H")


def _imm8(value):
    if not -128 <= value <= 255:
        raise EncodingError(f"immediate {value} does not fit in 8 bits")
    return bytes([value & 0xFF])


def _imm16(value):
    if not -0x8000 <= value <= 0xFFFF:
        raise EncodingError(f"immediate {value} does not fit in 16 bits")
    return _U16.pack(value & 0xFFFF)


def _imm32(value):
    if not -0x8000_0000 <= value <= 0xFFFF_FFFF:
        raise EncodingError(f"immediate {value} does not fit in 32 bits")
    return _U32.pack(value & 0xFFFF_FFFF)


def _fits_imm8(value):
    return -128 <= value <= 127


def _modrm(mod, reg, rm):
    return bytes([(mod << 6) | ((reg & 7) << 3) | (rm & 7)])


def _sib(scale, index, base):
    scale_bits = {1: 0, 2: 1, 4: 2, 8: 3}[scale]
    return bytes([(scale_bits << 6) | ((index & 7) << 3) | (base & 7)])


def encode_rm(reg_field, rm_operand):
    """Encode the ModRM (+SIB, +disp) bytes for one r/m operand.

    ``reg_field`` is the 3-bit value for the ModRM ``reg`` field (either a
    register number or an opcode extension). ``rm_operand`` is a
    :class:`Register` or :class:`Mem`.
    """
    if isinstance(rm_operand, Register):
        return _modrm(0b11, reg_field, rm_operand.code)
    if not isinstance(rm_operand, Mem):
        raise EncodingError(f"invalid r/m operand {rm_operand!r}")
    mem = rm_operand
    if mem.symbol is not None:
        raise EncodingError(
            f"unresolved data symbol {mem.symbol!r}; the linker must "
            "rewrite symbolic memory operands before encoding")
    disp = mem.disp

    if mem.base is None and mem.index is None:
        # Absolute: mod=00, rm=101, disp32.
        return _modrm(0b00, reg_field, 0b101) + _imm32(disp)

    if mem.index is None and mem.base is not None and mem.base.code != 0b100:
        base = mem.base.code
        # [EBP] with mod=00 means disp32-absolute, so EBP forces a disp8.
        if disp == 0 and base != 0b101:
            return _modrm(0b00, reg_field, base)
        if _fits_imm8(disp):
            return _modrm(0b01, reg_field, base) + _imm8(disp)
        return _modrm(0b10, reg_field, base) + _imm32(disp)

    # Everything else requires a SIB byte (ESP base, or an index register).
    index_code = 0b100 if mem.index is None else mem.index.code
    if mem.base is None:
        # SIB with base=101 and mod=00: [index*scale + disp32].
        sib = _sib(mem.scale, index_code, 0b101)
        return _modrm(0b00, reg_field, 0b100) + sib + _imm32(disp)
    base = mem.base.code
    sib = _sib(mem.scale, index_code, base)
    if disp == 0 and base != 0b101:
        return _modrm(0b00, reg_field, 0b100) + sib
    if _fits_imm8(disp):
        return _modrm(0b01, reg_field, 0b100) + sib + _imm8(disp)
    return _modrm(0b10, reg_field, 0b100) + sib + _imm32(disp)


# ALU instructions with the regular 8-opcode pattern. Values are
# (base opcode, opcode-extension for the 81/83 immediate forms).
_ALU_OPS = {
    "add": (0x00, 0),
    "or": (0x08, 1),
    "and": (0x20, 4),
    "sub": (0x28, 5),
    "xor": (0x30, 6),
    "cmp": (0x38, 7),
}

# Shift/rotate opcode extensions for the C1/D1/D3 groups.
_SHIFT_OPS = {"rol": 0, "ror": 1, "shl": 4, "shr": 5, "sar": 7}


def _encode_alu(mnemonic, operands, alternate=False):
    base, ext = _ALU_OPS[mnemonic]
    if len(operands) != 2:
        raise EncodingError(f"{mnemonic} takes 2 operands, got {len(operands)}")
    dst, src = operands
    if isinstance(src, Imm):
        if not isinstance(dst, (Register, Mem)):
            raise EncodingError(f"bad {mnemonic} destination {dst!r}")
        if _fits_imm8(src.value):
            return bytes([0x83]) + encode_rm(ext, dst) + _imm8(src.value)
        return bytes([0x81]) + encode_rm(ext, dst) + _imm32(src.value)
    if isinstance(dst, Register) and isinstance(src, Mem):
        return bytes([base + 0x03]) + encode_rm(dst.code, src)
    if isinstance(dst, (Register, Mem)) and isinstance(src, Register):
        if alternate and isinstance(dst, Register):
            # The dual ModRM direction: op r, r/m with mod=11 encodes the
            # same architectural operation in different bytes.
            return bytes([base + 0x03]) + encode_rm(dst.code, src)
        return bytes([base + 0x01]) + encode_rm(src.code, dst)
    raise EncodingError(f"unsupported {mnemonic} operands {operands!r}")


def _encode_mov(operands, alternate=False):
    dst, src = operands
    if isinstance(dst, Register) and isinstance(src, Register):
        if alternate:
            return bytes([0x8B]) + encode_rm(dst.code, src)
        return bytes([0x89]) + encode_rm(src.code, dst)
    if isinstance(dst, Register) and isinstance(src, Imm):
        return bytes([0xB8 + dst.code]) + _imm32(src.value)
    if isinstance(dst, Register) and isinstance(src, Mem):
        return bytes([0x8B]) + encode_rm(dst.code, src)
    if isinstance(dst, Mem) and isinstance(src, Register):
        return bytes([0x89]) + encode_rm(src.code, dst)
    if isinstance(dst, Mem) and isinstance(src, Imm):
        return bytes([0xC7]) + encode_rm(0, dst) + _imm32(src.value)
    raise EncodingError(f"unsupported mov operands {operands!r}")


def _encode_shift(mnemonic, operands):
    ext = _SHIFT_OPS[mnemonic]
    dst, count = operands
    if isinstance(count, Imm):
        if count.value == 1:
            return bytes([0xD1]) + encode_rm(ext, dst)
        return bytes([0xC1]) + encode_rm(ext, dst) + _imm8(count.value)
    if isinstance(count, Register):
        if count.name != "ecx":
            raise EncodingError("variable shift count must be in ECX (CL)")
        return bytes([0xD3]) + encode_rm(ext, dst)
    raise EncodingError(f"unsupported {mnemonic} count {count!r}")


def _encode_relative(mnemonic, operand):
    if isinstance(operand, Label):
        raise EncodingError(
            f"unresolved label {operand.name!r} in {mnemonic}; run layout first")
    if not isinstance(operand, Rel):
        raise EncodingError(f"{mnemonic} target must be Rel, got {operand!r}")
    if mnemonic == "call":
        if operand.width != 32:
            raise EncodingError("call only supports rel32")
        return bytes([0xE8]) + _imm32(operand.value)
    if mnemonic == "jmp":
        if operand.width == 8:
            return bytes([0xEB]) + _imm8(operand.value)
        return bytes([0xE9]) + _imm32(operand.value)
    condition = JCC_MNEMONICS[mnemonic]
    if operand.width == 8:
        return bytes([0x70 + condition]) + _imm8(operand.value)
    return bytes([0x0F, 0x80 + condition]) + _imm32(operand.value)


def encode(instr):
    """Encode one instruction; returns its bytes.

    Raises :class:`~repro.errors.EncodingError` for unsupported forms or
    unresolved operands.
    """
    mnemonic = instr.mnemonic
    ops = instr.operands
    alternate = instr.alternate_encoding

    if mnemonic in _ALU_OPS:
        return _encode_alu(mnemonic, ops, alternate)
    if mnemonic in _SHIFT_OPS:
        return _encode_shift(mnemonic, ops)
    if mnemonic in SETCC_MNEMONICS:
        (op,) = ops
        if isinstance(op, Register) and op.code > 3:
            raise EncodingError(f"{mnemonic} needs a byte register "
                                f"(AL/CL/DL/BL), got {op!r}")
        condition = SETCC_MNEMONICS[mnemonic]
        return bytes([0x0F, 0x90 + condition]) + encode_rm(0, op)
    if mnemonic in JCC_MNEMONICS or mnemonic in ("jmp", "call"):
        if len(ops) != 1:
            raise EncodingError(f"{mnemonic} takes one target operand")
        return _encode_relative(mnemonic, ops[0])

    if mnemonic == "mov":
        return _encode_mov(ops, alternate)
    if mnemonic == "lea":
        dst, src = ops
        if not isinstance(dst, Register) or not isinstance(src, Mem):
            raise EncodingError(f"unsupported lea operands {ops!r}")
        return bytes([0x8D]) + encode_rm(dst.code, src)
    if mnemonic == "xchg":
        dst, src = ops
        if isinstance(dst, (Register, Mem)) and isinstance(src, Register):
            return bytes([0x87]) + encode_rm(src.code, dst)
        raise EncodingError(f"unsupported xchg operands {ops!r}")
    if mnemonic == "test":
        dst, src = ops
        if isinstance(src, Register):
            return bytes([0x85]) + encode_rm(src.code, dst)
        if isinstance(src, Imm):
            return bytes([0xF7]) + encode_rm(0, dst) + _imm32(src.value)
        raise EncodingError(f"unsupported test operands {ops!r}")
    if mnemonic == "push":
        (op,) = ops
        if isinstance(op, Register):
            return bytes([0x50 + op.code])
        if isinstance(op, Imm):
            if _fits_imm8(op.value):
                return bytes([0x6A]) + _imm8(op.value)
            return bytes([0x68]) + _imm32(op.value)
        if isinstance(op, Mem):
            return bytes([0xFF]) + encode_rm(6, op)
        raise EncodingError(f"unsupported push operand {op!r}")
    if mnemonic == "pop":
        (op,) = ops
        if isinstance(op, Register):
            return bytes([0x58 + op.code])
        if isinstance(op, Mem):
            return bytes([0x8F]) + encode_rm(0, op)
        raise EncodingError(f"unsupported pop operand {op!r}")
    if mnemonic == "inc":
        (op,) = ops
        if isinstance(op, Register):
            return bytes([0x40 + op.code])
        return bytes([0xFF]) + encode_rm(0, op)
    if mnemonic == "dec":
        (op,) = ops
        if isinstance(op, Register):
            return bytes([0x48 + op.code])
        return bytes([0xFF]) + encode_rm(1, op)
    if mnemonic == "neg":
        return bytes([0xF7]) + encode_rm(3, ops[0])
    if mnemonic == "not":
        return bytes([0xF7]) + encode_rm(2, ops[0])
    if mnemonic == "mul":
        return bytes([0xF7]) + encode_rm(4, ops[0])
    if mnemonic == "idiv":
        return bytes([0xF7]) + encode_rm(7, ops[0])
    if mnemonic == "imul":
        if len(ops) == 2:
            dst, src = ops
            if not isinstance(dst, Register):
                raise EncodingError("imul destination must be a register")
            return bytes([0x0F, 0xAF]) + encode_rm(dst.code, src)
        if len(ops) == 3:
            dst, src, imm = ops
            if not isinstance(imm, Imm):
                raise EncodingError("3-operand imul needs an immediate")
            return bytes([0x69]) + encode_rm(dst.code, src) + _imm32(imm.value)
        raise EncodingError(f"unsupported imul operands {ops!r}")
    if mnemonic == "cdq":
        return b"\x99"
    if mnemonic == "ret":
        if not ops:
            return b"\xC3"
        (imm,) = ops
        return b"\xC2" + _imm16(imm.value)
    if mnemonic == "call_reg":
        return bytes([0xFF]) + encode_rm(2, ops[0])
    if mnemonic == "jmp_reg":
        return bytes([0xFF]) + encode_rm(4, ops[0])
    if mnemonic == "int":
        return b"\xCD" + _imm8(ops[0].value)
    if mnemonic == "nop":
        return b"\x90"
    if mnemonic == "hlt":
        return b"\xF4"

    raise EncodingError(f"unknown mnemonic {mnemonic!r}")


def encoded_length(instr):
    """Length in bytes of the encoding of ``instr``."""
    if instr.encoding is not None:
        return len(instr.encoding)
    return len(encode(instr))


def _rm_length(rm_operand, force_disp32=False):
    """Bytes used by ModRM (+SIB, +disp) for one r/m operand."""
    if isinstance(rm_operand, Register):
        return 1
    mem = rm_operand
    disp = mem.disp
    if force_disp32 or mem.symbol is not None:
        disp = 0x0800_0000  # resolved addresses always need disp32
    if mem.base is None and mem.index is None:
        return 5  # modrm + disp32
    if mem.index is None and mem.base is not None and mem.base.code != 4:
        if disp == 0 and mem.base.code != 5:
            return 1
        return 2 if _fits_imm8(disp) else 5
    # SIB forms.
    if mem.base is None:
        return 6  # modrm + sib + disp32
    if disp == 0 and mem.base.code != 5:
        return 2
    return 3 if _fits_imm8(disp) else 6


def instruction_size(instr):
    """Analytic encoded size (no byte materialization).

    Matches :func:`encode` exactly for every supported form; the linker
    cross-checks the two at final emission, so any drift is caught, not
    silently miscompiled. Branch instructions are not supported here —
    their size depends on the relaxation width, which the linker owns.
    """
    mnemonic = instr.mnemonic
    ops = instr.operands

    if mnemonic in _ALU_OPS:
        dst, src = ops
        if isinstance(src, Imm):
            return 1 + _rm_length(dst) + (1 if _fits_imm8(src.value)
                                          else 4)
        if isinstance(dst, Register) and isinstance(src, Mem):
            return 1 + _rm_length(src)
        return 1 + _rm_length(dst)
    if mnemonic in _SHIFT_OPS:
        dst, count = ops
        if isinstance(count, Imm):
            return (1 + _rm_length(dst)) + (0 if count.value == 1 else 1)
        return 1 + _rm_length(dst)
    if mnemonic == "mov":
        dst, src = ops
        if isinstance(dst, Register) and isinstance(src, Register):
            return 2
        if isinstance(dst, Register) and isinstance(src, Imm):
            return 5
        if isinstance(dst, Register) and isinstance(src, Mem):
            return 1 + _rm_length(src)
        if isinstance(dst, Mem) and isinstance(src, Register):
            return 1 + _rm_length(dst)
        return 1 + _rm_length(dst) + 4  # mem, imm32
    if mnemonic == "lea":
        return 1 + _rm_length(ops[1])
    if mnemonic == "xchg":
        return 1 + _rm_length(ops[0])
    if mnemonic == "test":
        dst, src = ops
        if isinstance(src, Register):
            return 1 + _rm_length(dst)
        return 1 + _rm_length(dst) + 4
    if mnemonic == "push":
        (op,) = ops
        if isinstance(op, Register):
            return 1
        if isinstance(op, Imm):
            return 2 if _fits_imm8(op.value) else 5
        return 1 + _rm_length(op)
    if mnemonic == "pop":
        (op,) = ops
        return 1 if isinstance(op, Register) else 1 + _rm_length(op)
    if mnemonic in ("inc", "dec"):
        (op,) = ops
        return 1 if isinstance(op, Register) else 1 + _rm_length(op)
    if mnemonic in ("neg", "not", "mul", "idiv"):
        return 1 + _rm_length(ops[0])
    if mnemonic == "imul":
        if len(ops) == 2:
            return 2 + _rm_length(ops[1])
        return 1 + _rm_length(ops[1]) + 4
    if mnemonic in SETCC_MNEMONICS:
        return 2 + _rm_length(ops[0])
    if mnemonic == "cdq":
        return 1
    if mnemonic == "ret":
        return 1 if not ops else 3
    if mnemonic in ("call_reg", "jmp_reg"):
        return 1 + _rm_length(ops[0])
    if mnemonic == "int":
        return 2
    if mnemonic in ("nop", "hlt"):
        return 1
    raise EncodingError(f"no analytic size for {mnemonic!r}")
