"""Operand and instruction classes for the x86-32 subset.

These classes are the common currency between the compiler backend (which
builds instruction lists with :class:`Label` branch targets), the encoder
(which requires resolved :class:`Rel` displacements), the decoder and the
simulator.

Operand kinds:

- :class:`~repro.x86.registers.Register` — a GPR.
- :class:`Imm` — an immediate value (always stored as a signed Python int).
- :class:`Mem` — a memory reference ``[base + index*scale + disp]``.
- :class:`Label` — a symbolic branch/call target; must be resolved to a
  :class:`Rel` before encoding.
- :class:`Rel` — a resolved PC-relative displacement with an explicit
  encoding width (8 or 32 bits).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import OperandError
from repro.x86.registers import Register

#: Condition codes in IA-32 encoding order (the low nibble of 0F 8x / 7x).
CONDITION_CODES = (
    "o", "no", "b", "ae", "e", "ne", "be", "a",
    "s", "ns", "p", "np", "l", "ge", "le", "g",
)

#: Jcc mnemonics, e.g. ``"je"`` -> condition number 4.
JCC_MNEMONICS = {"j" + cc: number for number, cc in enumerate(CONDITION_CODES)}

#: SETcc mnemonics, e.g. ``"sete"`` -> condition number 4. The operand is a
#: register whose *low byte* receives the flag (only EAX..EBX have byte
#: forms, so the backend only ever emits AL).
SETCC_MNEMONICS = {"set" + cc: number
                   for number, cc in enumerate(CONDITION_CODES)}

#: Mnemonics that transfer control via a PC-relative displacement.
RELATIVE_BRANCH_MNEMONICS = frozenset({"jmp", "call"} | set(JCC_MNEMONICS))

#: Mnemonics that end a gadget ("free branches" in the paper's terminology):
#: the attacker controls where execution goes next.
FREE_BRANCH_MNEMONICS = frozenset({"ret", "jmp_reg", "call_reg"})


@dataclass(frozen=True)
class Imm:
    """An immediate operand. ``value`` is a signed integer."""

    value: int

    def __repr__(self):
        return f"Imm({self.value:#x})" if abs(self.value) > 9 else f"Imm({self.value})"


@dataclass(frozen=True)
class Rel:
    """A resolved PC-relative displacement.

    ``value`` is relative to the end of the instruction. ``width`` is the
    number of bits used to encode it (8 or 32).
    """

    value: int
    width: int = 32

    def __post_init__(self):
        if self.width not in (8, 32):
            raise OperandError(f"invalid relative-branch width {self.width}",
                               context={"width": self.width})

    def __repr__(self):
        return f"Rel({self.value:+#x}, {self.width})"


@dataclass(frozen=True)
class Label:
    """A symbolic code location, resolved by the emitter/linker."""

    name: str

    def __repr__(self):
        return f"Label({self.name!r})"


@dataclass(frozen=True)
class Mem:
    """A memory operand ``[base + index*scale + disp]``.

    Any of ``base`` and ``index`` may be ``None``. ``scale`` must be one of
    1, 2, 4, 8. ``symbol``, when set, names a data symbol whose address the
    linker adds to ``disp`` (our object format's one relocation kind).
    """

    base: Register | None = None
    index: Register | None = None
    scale: int = 1
    disp: int = 0
    symbol: str | None = None

    def __post_init__(self):
        if self.scale not in (1, 2, 4, 8):
            raise OperandError(f"invalid scale {self.scale}",
                               context={"scale": self.scale})
        if self.index is not None and self.index.name == "esp":
            raise OperandError("ESP cannot be an index register",
                               context={"index": self.index.name})

    def __repr__(self):
        parts = []
        if self.symbol:
            parts.append(self.symbol)
        if self.base is not None:
            parts.append(self.base.name)
        if self.index is not None:
            parts.append(f"{self.index.name}*{self.scale}")
        if self.disp or not parts:
            parts.append(f"{self.disp:#x}")
        return "Mem[" + "+".join(parts) + "]"


@dataclass
class Instr:
    """One machine instruction.

    ``mnemonic`` is a lower-case string. Indirect branches use the distinct
    mnemonics ``jmp_reg`` / ``call_reg`` so that the free-branch set is a
    property of the mnemonic alone. ``size`` and ``encoding`` are filled in
    by the decoder (and by the emitter after layout); they are ``None`` on
    freshly built instructions.
    """

    mnemonic: str
    operands: tuple = ()
    size: int | None = None
    encoding: bytes | None = None
    #: Backend bookkeeping: the IR basic block this instruction was lowered
    #: from. The NOP-insertion pass uses it to look up execution counts.
    block_id: object = field(default=None, compare=False)
    #: True if this instruction was inserted by the diversifier.
    is_inserted_nop: bool = field(default=False, compare=False)
    #: Use the dual ModRM direction when encoding (mov/ALU reg,reg have
    #: two byte-identical-semantics encodings; the equivalent-encoding
    #: substitution pass flips this).
    alternate_encoding: bool = field(default=False, compare=False)

    def __init__(self, mnemonic, *operands, size=None, encoding=None,
                 block_id=None, is_inserted_nop=False,
                 alternate_encoding=False):
        self.mnemonic = mnemonic
        self.operands = tuple(operands)
        self.size = size
        self.encoding = encoding
        self.block_id = block_id
        self.is_inserted_nop = is_inserted_nop
        self.alternate_encoding = alternate_encoding

    def __eq__(self, other):
        if not isinstance(other, Instr):
            return NotImplemented
        return (self.mnemonic == other.mnemonic
                and self.operands == other.operands)

    def __hash__(self):
        return hash((self.mnemonic, self.operands))

    @property
    def is_relative_branch(self):
        """True for jmp/call/Jcc with a PC-relative target."""
        return self.mnemonic in RELATIVE_BRANCH_MNEMONICS

    @property
    def is_free_branch(self):
        """True for instructions that end a ROP gadget."""
        return self.mnemonic in FREE_BRANCH_MNEMONICS

    @property
    def is_control_flow(self):
        """True for any instruction that redirects execution."""
        return (self.is_relative_branch or self.is_free_branch
                or self.mnemonic == "int")

    def with_operands(self, *operands):
        """Return a copy of this instruction with different operands."""
        clone = Instr(self.mnemonic, *operands, block_id=self.block_id,
                      is_inserted_nop=self.is_inserted_nop)
        return clone

    def __repr__(self):
        if not self.operands:
            return f"<{self.mnemonic}>"
        ops = ", ".join(repr(op) for op in self.operands)
        return f"<{self.mnemonic} {ops}>"
