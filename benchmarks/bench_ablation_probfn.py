"""A2 — ablation: linear versus logarithmic probability functions.

§3.1 argues the linear heuristic polarizes probabilities: because counts
grow multiplicatively with loop nesting, almost every block lands at
p_max and the "profile-guided" pass degenerates toward uniform p_max —
spending its NOP budget as if there were no profile at all. The log
model spreads probabilities through the interval, cutting overhead at
equal ranges.

This bench runs both models at the same [10%, 50%] range over the suite.
"""

from benchmarks._harness import (
    PERF_SEEDS, baseline_binary, ref_counts, spec_names, train_profile,
)
from repro.core.config import DiversificationConfig
from repro.core.probability import (
    LinearProfileProbability, LogProfileProbability,
)
from repro.reporting import format_table, geometric_mean_overhead


def run_ablation():
    from benchmarks._harness import build_for

    linear_config = DiversificationConfig(
        probability_model=LinearProfileProbability(0.10, 0.50))
    log_config = DiversificationConfig(
        probability_model=LogProfileProbability(0.10, 0.50))

    rows = []
    for name in spec_names():
        build = build_for(name)
        counts = ref_counts(name)
        base_cycles = build.cycles(baseline_binary(name), counts)
        profile = train_profile(name)

        def mean_overhead(config):
            values = []
            for seed in range(PERF_SEEDS):
                variant = build.link_variant(config, seed, profile)
                values.append(build.cycles(variant, counts)
                              / base_cycles - 1)
            return sum(values) / len(values)

        rows.append((name, 100 * mean_overhead(linear_config),
                     100 * mean_overhead(log_config)))
    return rows


def test_ablation_linear_vs_log(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    print()
    print(format_table(
        ("Benchmark", "linear 10-50% overhead%", "log 10-50% overhead%"),
        rows,
        title="Ablation: probability function at range [10%, 50%] "
              f"(mean of {PERF_SEEDS} variants)"))

    linear = geometric_mean_overhead([row[1] / 100 for row in rows])
    logarithmic = geometric_mean_overhead([row[2] / 100 for row in rows])
    print(f"\ngeomean: linear {100 * linear:.2f}%  "
          f"log {100 * logarithmic:.2f}%")

    # The log model must beat the linear model overall (per-benchmark
    # comparisons are noisy at small seed counts; the geomean is the
    # paper's criterion).
    assert logarithmic < linear
