"""THE core property of the whole system, tested on random programs:

    For any program P, any diversification config, and any seed,
    the diversified binary behaves exactly like the original.

This is the reproduction's equivalent of the paper's implicit claim that
NOP insertion is semantics-preserving.
"""

from hypothesis import given, settings, strategies as st

from repro.core.config import DiversificationConfig
from repro.pipeline import ProgramBuild

_CONFIGS = [
    DiversificationConfig.uniform(0.5),
    DiversificationConfig.uniform(1.0),
    DiversificationConfig.uniform(0.5, include_xchg_nops=True),
    DiversificationConfig.profile_guided(0.0, 0.5),
    DiversificationConfig.uniform(0.3, basic_block_shifting=True),
    DiversificationConfig.uniform(0.4, encoding_substitution=True),
    DiversificationConfig.uniform(0.3, function_reordering=True),
    DiversificationConfig.uniform(0.5, encoding_substitution=True,
                                  basic_block_shifting=True,
                                  function_reordering=True),
]


@given(
    seed=st.integers(0, 5_000),
    config_index=st.integers(0, len(_CONFIGS) - 1),
    variant_seed=st.integers(0, 1_000_000),
    program_input=st.integers(-50, 50),
)
@settings(max_examples=40, deadline=None)
def test_diversification_preserves_behaviour(seed, config_index,
                                             variant_seed, program_input):
    from tests.support import generate_program

    source = generate_program(seed)
    build = ProgramBuild(source, f"random{seed}")
    config = _CONFIGS[config_index]
    profile = (build.profile((program_input,))
               if config.requires_profile else None)

    reference = build.run_reference((program_input,))
    variant = build.link_variant(config, variant_seed, profile)
    result = build.simulate(variant, (program_input,))

    assert result.output == reference.output
    assert result.exit_code == reference.exit_code


@given(seed=st.integers(0, 5_000), program_input=st.integers(-50, 50))
@settings(max_examples=30, deadline=None)
def test_baseline_compilation_matches_interpreter(seed, program_input):
    from tests.support import generate_program

    source = generate_program(seed)
    build = ProgramBuild(source, f"random{seed}")
    reference = build.run_reference((program_input,))
    result = build.simulate(build.link_baseline(), (program_input,))
    assert result.output == reference.output
    assert result.exit_code == reference.exit_code
