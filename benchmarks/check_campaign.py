"""Robustness regression tracker: differential validation + fault campaign
+ a bounded differential fuzzing campaign.

Emits a JSON summary (variants validated, divergences, faults injected,
typed-error coverage %, fuzz execs/sec + coverage + corpus size, plus
batch-engine and ``equivalence.*`` proof counters) so future PRs can
diff robustness numbers the same way the table/figure benches diff the
paper's numbers.

Usage::

    PYTHONPATH=src python benchmarks/check_campaign.py [--quick] \\
        [--output results_check.json]

Knobs mirror ``repro-diversify check``: ``REPRO_CHECK_VARIANTS`` and
``REPRO_CHECK_FAULT_SEEDS`` override the population size and per-injector
seed count.
"""

from __future__ import annotations

import argparse
import json
import sys

from _harness import environment_stamp
from repro.check import (
    DEFAULT_CHECK_WORKLOADS, run_campaign, target_from_workload,
    validate_workloads,
)
from repro.core.config import DiversificationConfig
from repro.fuzz import FuzzParams, run_fuzz_campaign
from repro.fuzz.generate import tiny_limits
from repro.obs import metrics
from repro.obs.knobs import knob_value

VARIANTS = knob_value("REPRO_CHECK_VARIANTS")
FAULT_SEEDS = knob_value("REPRO_CHECK_FAULT_SEEDS")

#: Configurations exercised by the differential sweep: the paper's
#: uniform 50% plus its headline profile-guided range.
CHECK_CONFIGS = {
    "50%": DiversificationConfig.uniform(0.50),
    "0-30%": DiversificationConfig.profile_guided(0.00, 0.30),
}


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default="results_check.json")
    parser.add_argument("--quick", action="store_true",
                        help="one workload, 3 variants, 2 fault seeds")
    parser.add_argument("--workloads", nargs="*",
                        default=list(DEFAULT_CHECK_WORKLOADS))
    args = parser.parse_args(argv)

    names = args.workloads
    variants, fault_seeds = VARIANTS, FAULT_SEEDS
    if args.quick:
        names = names[:1]
        variants, fault_seeds = 3, 2

    counters_before = metrics.counters()
    differential = {}
    total_validated = 0
    total_divergences = 0
    for label, config in CHECK_CONFIGS.items():
        results = validate_workloads(names, config, variants)
        differential[label] = {name: result.summary()
                               for name, result in results.items()}
        for result in results.values():
            total_validated += result.variants_validated
            total_divergences += len(result.reports)
            for report in result.reports:
                print(f"!! {report.describe()}", file=sys.stderr)

    campaign = run_campaign([target_from_workload(name) for name in names],
                            seeds=range(fault_seeds))
    campaign_summary = campaign.summary()
    for case in campaign.cases:
        if case.outcome == "untyped":
            print(f"!! {case.describe()}", file=sys.stderr)

    # Bounded fuzz campaign: the adversarial complement to the
    # hand-written-workload sweep above. Tracked the same way — a
    # divergence or a large execs/sec regression shows up in the diff.
    fuzz_programs = 40 if args.quick else knob_value("REPRO_FUZZ_PROGRAMS")
    fuzz_stats = run_fuzz_campaign(FuzzParams(
        programs=fuzz_programs, variants=1, seconds=60.0,
        limits=tiny_limits()))
    fuzz_summary = fuzz_stats.summary()
    for finding in fuzz_stats.findings:
        print(f"!! fuzz: {finding.describe()}", file=sys.stderr)

    # Batch-engine economics of the differential sweep: how many variant
    # runs the lockstep engine derived analytically vs. simulated, and
    # how often it had to fall back. A derived/simulated ratio collapse
    # is a perf regression even when every check above still passes.
    counters_after = metrics.counters()
    batch = {name.split(".", 1)[1]:
             counters_after.get(name, 0) - counters_before.get(name, 0)
             for name in ("batch.populations", "batch.baseline_runs",
                          "batch.proofs", "batch.proof_failures",
                          "batch.equivalence_proofs",
                          "batch.equivalence_proof_failures",
                          "batch.variants_derived",
                          "batch.variants_derived_equivalence",
                          "batch.variants_simulated", "batch.fallbacks",
                          "batch.parity_checks")}
    equivalence = {name.split(".", 1)[1]:
                   counters_after.get(name, 0)
                   - counters_before.get(name, 0)
                   for name in counters_after
                   if name.startswith("equivalence.")}

    payload = {
        "environment": environment_stamp(),
        "workloads": names,
        "configs": sorted(CHECK_CONFIGS),
        "variants_per_population": variants,
        "variants_validated": total_validated,
        "divergences": total_divergences,
        "differential": differential,
        "faults_injected": campaign_summary["faults_injected"],
        "typed_error_coverage": campaign_summary["typed_error_coverage"],
        "campaign": campaign_summary,
        "fuzz": fuzz_summary,
        "batch": batch,
        "equivalence": equivalence,
        "ok": (total_divergences == 0 and campaign.ok
               and fuzz_summary["genuine_divergences"] == 0),
    }
    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=2)

    print(f"{total_validated} variants validated, "
          f"{total_divergences} divergences; "
          f"{campaign_summary['faults_injected']} faults injected, "
          f"{campaign_summary['typed_error_coverage']}% typed coverage")
    print(f"fuzz: {fuzz_summary['execs']} execs "
          f"({fuzz_summary['execs_per_second']}/s), "
          f"{fuzz_summary['coverage_size']} coverage features, "
          f"{fuzz_summary['corpus_entries']} corpus entries, "
          f"{fuzz_summary['divergences']} divergences")
    print(f"batch: {batch['variants_derived']} variant runs derived, "
          f"{batch['variants_simulated']} simulated, "
          f"{batch['fallbacks']} fallbacks")
    print(f"wrote {args.output}")
    return 0 if payload["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
