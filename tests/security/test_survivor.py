"""Survivor algorithm tests (paper §5.2)."""

import pytest

from repro.core.config import PAPER_CONFIGS
from repro.security.gadgets import find_gadgets
from repro.security.survivor import (
    gadget_signatures, normalized_bytes, surviving_gadgets,
)


def test_identical_binaries_all_gadgets_survive(fib_build):
    binary = fib_build.link_baseline()
    total = len(find_gadgets(binary.text))
    count, offsets = surviving_gadgets(binary.text, binary.text)
    assert count == total
    assert len(offsets) == total


def test_normalization_strips_nop_candidates():
    class FakeGadget:
        raw = bytes.fromhex("9089e45bc3")
    assert normalized_bytes(FakeGadget()) == bytes.fromhex("5bc3")


def test_survivor_counts_nop_padded_gadget_as_surviving():
    # Diversified side has a NOP before the same gadget bytes at the
    # same offset: normalization must count it as surviving
    # (conservative overestimate).
    original = bytes.fromhex("5bc3" + "90" * 3)
    diversified = bytes.fromhex("5b90c390")  # pop ebx; nop; ret
    count, offsets = surviving_gadgets(original, diversified)
    assert 0 in offsets


def test_displaced_gadget_does_not_survive():
    original = bytes.fromhex("5bc3")          # pop ebx; ret at +0
    diversified = bytes.fromhex("01d85bc3")   # same gadget at +2
    count, _offsets = surviving_gadgets(original, diversified)
    assert count == 0


def test_different_content_at_same_offset_does_not_survive():
    original = bytes.fromhex("5bc3")   # pop ebx; ret
    diversified = bytes.fromhex("58c3")  # pop eax; ret
    count, _offsets = surviving_gadgets(original, diversified)
    # offset 1 (bare ret) survives; offset 0 does not.
    assert count == 1


def test_diversification_reduces_survivors(fib_build):
    baseline = fib_build.link_baseline()
    total = len(find_gadgets(baseline.text))
    variant = fib_build.link_variant(PAPER_CONFIGS["50%"], seed=8)
    count, _offsets = surviving_gadgets(baseline.text, variant.text)
    assert count < total


def test_precomputed_signatures_give_same_answer(fib_build):
    baseline = fib_build.link_baseline()
    variant = fib_build.link_variant(PAPER_CONFIGS["50%"], seed=3)
    signatures = gadget_signatures(baseline.text)
    direct = surviving_gadgets(baseline.text, variant.text)
    cached = surviving_gadgets(baseline.text, variant.text,
                               original_signatures=signatures)
    assert direct == cached


def test_runtime_gadgets_always_survive(fib_build):
    # The undiversified libc at the front of .text keeps its gadgets at
    # fixed offsets in every variant — the paper's surviving-gadget floor.
    baseline = fib_build.link_baseline()
    runtime_end = max(end for name, (start, end)
                      in baseline.function_ranges.items()
                      if name.startswith("__") or name == "_start")
    runtime_size = runtime_end - baseline.text_base
    for seed in range(3):
        variant = fib_build.link_variant(PAPER_CONFIGS["50%"], seed=seed)
        _count, offsets = surviving_gadgets(baseline.text, variant.text)
        runtime_survivors = [o for o in offsets if o < runtime_size]
        assert runtime_survivors, "libc gadgets must persist"
