"""Fast-path unit tests: operand specialization, shared caches, engines.

The threaded-code interpreter specializes each decoded instruction into
a bound closure at decode time. These tests exercise the specialization
building blocks directly (one closure per operand kind) and the
per-binary sharing of the decode cache and threaded program; full
fast-vs-reference parity on real workloads lives in
``tests/check/test_fastpath_parity.py``.
"""

import pytest

from repro.backend.linker import link
from repro.backend.objfile import FunctionCode, LabelDef, ObjectUnit
from repro.sim import fastpath
from repro.sim.machine import Machine
from repro.x86.instructions import Imm, Instr, Mem
from repro.x86.registers import EAX, EBX, ECX, EDX, ESP


class _FakeMemory:
    def __init__(self, cells=None):
        self.cells = cells or {}
        self.writes = []

    def read32(self, address):
        return self.cells[address]

    def write32(self, address, value):
        self.writes.append((address, value))
        self.cells[address] = value


class _FakeMachine:
    def __init__(self, regs=None, cells=None):
        self.regs = regs or [0] * 8
        self.memory = _FakeMemory(cells)


class TestEAThunk:
    def test_base_plus_disp(self):
        ea = fastpath.ea_thunk(Mem(base=EBX, disp=12))
        machine = _FakeMachine(regs=[0, 0, 0, 0x1000, 0, 0, 0, 0])
        assert ea(machine) == 0x100C

    def test_base_index_scale_disp(self):
        ea = fastpath.ea_thunk(Mem(base=EBX, index=ECX, scale=4, disp=8))
        machine = _FakeMachine(regs=[0, 3, 0, 0x1000, 0, 0, 0, 0])
        assert ea(machine) == 0x1000 + 3 * 4 + 8

    def test_index_scale_only(self):
        ea = fastpath.ea_thunk(Mem(index=EDX, scale=8, disp=0x200))
        machine = _FakeMachine(regs=[0, 0, 5, 0, 0, 0, 0, 0])
        assert ea(machine) == 5 * 8 + 0x200

    def test_absolute(self):
        ea = fastpath.ea_thunk(Mem(disp=0x8049_0000))
        assert ea(_FakeMachine()) == 0x8049_0000

    def test_wraps_to_32_bits(self):
        ea = fastpath.ea_thunk(Mem(base=EBX, disp=0x10))
        machine = _FakeMachine(regs=[0, 0, 0, 0xFFFF_FFF8, 0, 0, 0, 0])
        assert ea(machine) == 0x8


class TestReaderWriter:
    def test_register_reader(self):
        get = fastpath.reader(EAX)
        assert get(_FakeMachine(regs=[41, 0, 0, 0, 0, 0, 0, 0])) == 41

    def test_immediate_reader_masks(self):
        get = fastpath.reader(Imm(-1))
        assert get(_FakeMachine()) == 0xFFFF_FFFF

    def test_memory_reader_uses_thunked_address(self):
        get = fastpath.reader(Mem(base=EBX, index=ECX, scale=4, disp=0))
        machine = _FakeMachine(regs=[0, 2, 0, 0x100, 0, 0, 0, 0],
                               cells={0x108: 777})
        assert get(machine) == 777

    def test_register_writer(self):
        put = fastpath.writer(EDX)
        machine = _FakeMachine()
        put(machine, 99)
        assert machine.regs[2] == 99

    def test_memory_writer(self):
        put = fastpath.writer(Mem(base=EBX, disp=4))
        machine = _FakeMachine(regs=[0, 0, 0, 0x200, 0, 0, 0, 0])
        put(machine, 55)
        assert machine.memory.writes == [(0x204, 55)]

    def test_unspecializable_operand_raises(self):
        with pytest.raises(fastpath._CannotSpecialize):
            fastpath.reader(object())
        with pytest.raises(fastpath._CannotSpecialize):
            fastpath.writer(Imm(1))


def _exit_program(instrs):
    """Link ``instrs`` + an exit(EBX) syscall as one binary."""
    unit = ObjectUnit("test")
    items = [LabelDef("_start")] + list(instrs) + [
        Instr("mov", EAX, Imm(0)),
        Instr("int", Imm(0x80)),
    ]
    unit.add_function(FunctionCode("_start", items))
    return link([unit])


class TestSpecializedExecution:
    """Each operand kind driven through a real decode + fast run."""

    def _run(self, instrs, engine):
        machine = Machine(_exit_program(instrs))
        machine.run(engine=engine)
        return machine

    @pytest.mark.parametrize("engine", ["fast", "reference"])
    def test_reg_and_imm_operands(self, engine):
        machine = self._run([
            Instr("mov", ECX, Imm(40)),
            Instr("mov", EBX, ECX),
            Instr("add", EBX, Imm(2)),
        ], engine)
        assert machine.exit_code == 42

    @pytest.mark.parametrize("engine", ["fast", "reference"])
    def test_mem_base_index_scale(self, engine):
        # Two stack words via ESP pushes, then a [base + index*scale]
        # load with EBX as base and ECX as index.
        machine = self._run([
            Instr("mov", EAX, Imm(111)),
            Instr("push", EAX),
            Instr("mov", EAX, Imm(222)),
            Instr("push", EAX),           # [esp]=222, [esp+4]=111
            Instr("mov", EBX, ESP),
            Instr("mov", ECX, Imm(1)),
            Instr("mov", EDX, Mem(base=EBX, index=ECX, scale=4)),
            Instr("mov", EBX, EDX),
        ], engine)
        assert machine.exit_code == 111

    @pytest.mark.parametrize("engine", ["fast", "reference"])
    def test_mem_store_and_reload(self, engine):
        machine = self._run([
            Instr("mov", EAX, Imm(7)),
            Instr("push", EAX),
            Instr("mov", EAX, Imm(6)),
            Instr("mov", EBX, Mem(base=ESP)),
            Instr("imul", EBX, EAX),      # 7 * 6
        ], engine)
        assert machine.exit_code == 42


class TestSharedCaches:
    def test_two_machines_share_decoded_instructions(self, fib_build):
        binary = fib_build.link_baseline()
        first = Machine(binary, input_values=(5,))
        first.run(engine="fast")
        second = Machine(binary, input_values=(5,))

        # Same cache object, and the decoded Instrs are shared by
        # identity — the second Machine decodes nothing new.
        assert second._decode_cache is first._decode_cache
        assert first._decode_cache, "fast run populated the decode cache"
        before = dict(first._decode_cache)
        second.run(engine="fast")
        assert all(second._decode_cache[offset] is instr
                   for offset, instr in before.items())

    def test_shared_program_is_per_binary(self, fib_build):
        binary = fib_build.link_baseline()
        other = fib_build.link_baseline()
        assert fastpath.shared_program(binary) is \
            fastpath.shared_program(binary)
        assert fastpath.shared_program(binary) is not \
            fastpath.shared_program(other)

    def test_reference_engine_uses_same_cache(self, fib_build):
        binary = fib_build.link_baseline()
        machine = Machine(binary, input_values=(4,))
        machine.run(engine="reference")
        assert machine._decode_cache is fastpath.shared_decode_cache(binary)
        assert machine._decode_cache


class TestEngineSelection:
    def test_unknown_engine_raises(self, fib_build):
        from repro.errors import ConfigError

        binary = fib_build.link_baseline()
        machine = Machine(binary, input_values=(3,))
        with pytest.raises(ConfigError) as info:
            machine.run(engine="bogus")
        # Param-form validation goes through the knob registry, so the
        # error carries the same context shape as the env form.
        assert info.value.context["knob"] == "REPRO_SIM_ENGINE"
        assert info.value.context["value"] == "bogus"
        assert "fast" in str(info.value)
        assert "reference" in str(info.value)

    def test_env_engine_default(self, fib_build, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_ENGINE", "reference")
        binary = fib_build.link_baseline()
        machine = Machine(binary, input_values=(3,))
        machine.run()
        assert machine.halted
