"""IR generation: checked MinC AST → :class:`repro.ir.Module`.

Name mapping:

- parameters and local scalars → virtual registers,
- global scalars → single-element global arrays (accessed at index 0),
- global arrays → global arrays.

Short-circuit ``&&``/``||`` compile to control flow; all other operators
map 1:1 onto IR binary/unary ops. Every function gets an implicit
``return 0`` (or bare ``return``) tail so all paths terminate.
"""

from __future__ import annotations

from repro.errors import MincSemanticError
from repro.ir import FunctionBuilder, Function, GlobalArray, Module
from repro.ir.values import Const
from repro.minc import ast_nodes as ast
from repro.minc.astutil import walk
from repro.minc.parser import parse
from repro.minc.sema import analyze

_BINOP_MAP = {
    "+": "add", "-": "sub", "*": "mul", "/": "div", "%": "mod",
    "&": "and", "|": "or", "^": "xor", "<<": "shl", ">>": "shr",
    "<": "lt", "<=": "le", ">": "gt", ">=": "ge", "==": "eq", "!=": "ne",
}

_COMPOUND_OPS = {
    "+=": "add", "-=": "sub", "*=": "mul", "/=": "div", "%=": "mod",
    "&=": "and", "|=": "or", "^=": "xor", "<<=": "shl", ">>=": "shr",
}


class _FunctionEmitter:
    def __init__(self, func_ast, info, module):
        self.func_ast = func_ast
        self.info = info
        self.module = module
        self.function = Function(func_ast.name,
                                 param_count=len(func_ast.params),
                                 returns_value=func_ast.returns_value)
        self.builder = FunctionBuilder(self.function)
        #: local name -> virtual register
        self.vars = dict(zip(func_ast.params, self.function.params))
        #: stack of (continue_block, break_block) for nested loops
        self.loop_stack = []

    def emit(self):
        entry = self.builder.start_block("entry")
        assert entry is not None
        # Zero every declared local up front. MinC's flat scope lets a
        # statement read a variable whose declaration sits on a path
        # that never executed (e.g. inside an untaken branch); the
        # reference interpreter defines such reads as 0, and without
        # this the machine code read whatever the register or stack
        # slot last held — a reference-vs-baseline divergence found by
        # the differential fuzzer.
        for node in walk(self.func_ast):
            if isinstance(node, ast.VarDecl):
                self.builder.copy(self._declare_local(node.name),
                                  Const(0))
        self.emit_body(self.func_ast.body)
        if not self.builder.is_terminated:
            if self.func_ast.returns_value:
                self.builder.ret(Const(0))
            else:
                self.builder.ret()
        return self.function

    # -- statements ------------------------------------------------------------

    def emit_body(self, statements):
        for statement in statements:
            if self.builder.is_terminated:
                # Unreachable code after return/break/continue: skip, but
                # keep local declarations visible (C scoping is flat here).
                if isinstance(statement, ast.VarDecl):
                    self._declare_local(statement.name)
                continue
            self.emit_statement(statement)

    def _declare_local(self, name):
        if name not in self.vars:
            self.vars[name] = self.function.new_vreg(name)
        return self.vars[name]

    def emit_statement(self, node):
        if isinstance(node, ast.VarDecl):
            reg = self._declare_local(node.name)
            if node.init is not None:
                value = self.emit_expr(node.init)
                self.builder.copy(reg, value)
            else:
                self.builder.copy(reg, Const(0))
        elif isinstance(node, ast.Assign):
            self.emit_assign(node)
        elif isinstance(node, ast.IncDec):
            delta = 1 if node.op == "++" else -1
            synthetic = ast.Assign(
                target=node.target, op="+=",
                value=ast.IntLit(value=delta, line=node.line),
                line=node.line)
            self.emit_assign(synthetic)
        elif isinstance(node, ast.If):
            self.emit_if(node)
        elif isinstance(node, ast.While):
            self.emit_while(node)
        elif isinstance(node, ast.For):
            self.emit_for(node)
        elif isinstance(node, ast.Break):
            self.builder.branch(self.loop_stack[-1][1])
        elif isinstance(node, ast.Continue):
            self.builder.branch(self.loop_stack[-1][0])
        elif isinstance(node, ast.Return):
            if node.value is not None:
                self.builder.ret(self.emit_expr(node.value))
            else:
                self.builder.ret()
        elif isinstance(node, ast.PrintStmt):
            self.builder.print_(self.emit_expr(node.value))
        elif isinstance(node, ast.ExprStmt):
            self.emit_expr(node.expr, allow_void=True)
        else:
            raise MincSemanticError(f"cannot emit {type(node).__name__}")

    def emit_assign(self, node):
        target = node.target
        if node.op == "=":
            value = self.emit_expr(node.value)
        else:
            op = _COMPOUND_OPS[node.op]
            current = self.emit_expr(target)
            rhs = self.emit_expr(node.value)
            value = self.builder.binary(op, current, rhs)

        if isinstance(target, ast.Name):
            name = target.ident
            if name in self.vars:
                self.builder.copy(self.vars[name], value)
            else:  # global scalar
                self.builder.astore(name, Const(0), value)
        else:  # IndexExpr
            index = self.emit_expr(target.index)
            self.builder.astore(target.array, index, value)

    def emit_if(self, node):
        cond = self.emit_expr(node.cond)
        then_block = self.builder.new_block("then")
        join_block = self.builder.new_block("join")
        if node.else_body:
            else_block = self.builder.new_block("else")
        else:
            else_block = join_block
        self.builder.cond_branch(cond, then_block, else_block)

        self.builder.position_at(then_block)
        self.emit_body(node.then_body)
        if not self.builder.is_terminated:
            self.builder.branch(join_block)

        if node.else_body:
            self.builder.position_at(else_block)
            self.emit_body(node.else_body)
            if not self.builder.is_terminated:
                self.builder.branch(join_block)

        self.builder.position_at(join_block)

    def emit_while(self, node):
        head = self.builder.new_block("loop")
        body = self.builder.new_block("body")
        exit_block = self.builder.new_block("exit")
        self.builder.branch(head)

        self.builder.position_at(head)
        cond = self.emit_expr(node.cond)
        self.builder.cond_branch(cond, body, exit_block)

        self.builder.position_at(body)
        self.loop_stack.append((head, exit_block))
        self.emit_body(node.body)
        self.loop_stack.pop()
        if not self.builder.is_terminated:
            self.builder.branch(head)

        self.builder.position_at(exit_block)

    def emit_for(self, node):
        if node.init is not None:
            self.emit_statement(node.init)
        head = self.builder.new_block("for")
        body = self.builder.new_block("body")
        step_block = self.builder.new_block("step")
        exit_block = self.builder.new_block("exit")
        self.builder.branch(head)

        self.builder.position_at(head)
        if node.cond is not None:
            cond = self.emit_expr(node.cond)
            self.builder.cond_branch(cond, body, exit_block)
        else:
            self.builder.branch(body)

        self.builder.position_at(body)
        self.loop_stack.append((step_block, exit_block))
        self.emit_body(node.body)
        self.loop_stack.pop()
        if not self.builder.is_terminated:
            self.builder.branch(step_block)

        self.builder.position_at(step_block)
        if node.step is not None:
            self.emit_statement(node.step)
        self.builder.branch(head)

        self.builder.position_at(exit_block)

    # -- expressions ------------------------------------------------------------

    def emit_expr(self, node, allow_void=False):
        if isinstance(node, ast.IntLit):
            return Const(node.value)
        if isinstance(node, ast.Name):
            name = node.ident
            if name in self.vars:
                return self.vars[name]
            return self.builder.aload(name, Const(0))  # global scalar
        if isinstance(node, ast.IndexExpr):
            index = self.emit_expr(node.index)
            return self.builder.aload(node.array, index)
        if isinstance(node, ast.InputExpr):
            return self.builder.input_()
        if isinstance(node, ast.CallExpr):
            args = [self.emit_expr(a) for a in node.args]
            finfo = self.info.functions[node.callee]
            return self.builder.call(node.callee, args,
                                     want_result=finfo.returns_value)
        if isinstance(node, ast.UnaryExpr):
            operand = self.emit_expr(node.operand)
            op = {"-": "neg", "!": "not", "~": "bnot"}[node.op]
            return self.builder.unary(op, operand)
        if isinstance(node, ast.BinaryExpr):
            if node.op in ("&&", "||"):
                return self.emit_short_circuit(node)
            lhs = self.emit_expr(node.lhs)
            rhs = self.emit_expr(node.rhs)
            return self.builder.binary(_BINOP_MAP[node.op], lhs, rhs)
        raise MincSemanticError(f"cannot emit expression "
                                f"{type(node).__name__}")

    def emit_short_circuit(self, node):
        """``a && b`` / ``a || b`` with control flow; result is 0/1."""
        result = self.function.new_vreg("sc")
        rhs_block = self.builder.new_block("sc_rhs")
        short_block = self.builder.new_block("sc_short")
        join_block = self.builder.new_block("sc_join")

        lhs = self.emit_expr(node.lhs)
        if node.op == "&&":
            self.builder.cond_branch(lhs, rhs_block, short_block)
            short_value = Const(0)
        else:
            self.builder.cond_branch(lhs, short_block, rhs_block)
            short_value = Const(1)

        self.builder.position_at(short_block)
        self.builder.copy(result, short_value)
        self.builder.branch(join_block)

        self.builder.position_at(rhs_block)
        rhs = self.emit_expr(node.rhs)
        normalized = self.builder.binary("ne", rhs, Const(0))
        self.builder.copy(result, normalized)
        self.builder.branch(join_block)

        self.builder.position_at(join_block)
        return result


def compile_to_ir(source, name="module"):
    """Front-end driver: MinC source text → verified IR module."""
    program = parse(source)
    info = analyze(program)
    module = Module(name)
    for decl in program.globals:
        init = decl.init if decl.init else None
        size = decl.size if decl.is_array else 1
        module.add_global(GlobalArray(decl.name, size, init))
    for func_ast in program.functions:
        module.add_function(_FunctionEmitter(func_ast, info, module).emit())
    from repro.ir.verifier import verify_module
    return verify_module(module)
