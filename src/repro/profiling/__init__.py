"""Edge profiling infrastructure (the paper's §3.1/§4 substrate).

Mirrors LLVM's optimal edge profiling (Neustifter), which the paper builds
on: counters are placed only on a minimal edge subset (the complement of a
maximum spanning tree of the CFG), and every remaining edge/block count is
reconstructed by flow conservation.

Two collection paths exist:

- :func:`collect_profile` — the reference interpreter observes every edge
  directly (fast path used by the benchmark harness), and
- :func:`instrument_module` + :func:`reconstruct_profile` — real
  instrumentation: counter-increment code is inserted on the chosen edges,
  the instrumented program runs (interpreter or compiled-and-simulated),
  and the full profile is reconstructed from the counter values.

Tests assert both paths produce identical profiles.
"""

from repro.profiling.profile_data import ProfileData
from repro.profiling.collect import collect_profile
from repro.profiling.spanning_tree import (
    build_profile_graph, choose_counter_edges, EXIT_NODE, VIRTUAL_ENTRY,
)
from repro.profiling.instrument import (
    COUNTER_ARRAY, InstrumentationMap, instrument_module,
)
from repro.profiling.reconstruct import reconstruct_profile

__all__ = [
    "ProfileData", "collect_profile",
    "build_profile_graph", "choose_counter_edges",
    "EXIT_NODE", "VIRTUAL_ENTRY",
    "COUNTER_ARRAY", "InstrumentationMap", "instrument_module",
    "reconstruct_profile",
]
