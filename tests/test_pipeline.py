"""ProgramBuild driver unit tests."""

import pytest

from repro.core.config import PAPER_CONFIGS
from repro.errors import ProfileError
from repro.pipeline import ProgramBuild, build_ir, compile_and_link
from tests.conftest import FIB_SOURCE


@pytest.fixture(scope="module")
def build():
    return ProgramBuild(FIB_SOURCE, "pipe")


def test_build_ir_is_deterministic():
    first = build_ir(FIB_SOURCE, "a")
    second = build_ir(FIB_SOURCE, "a")
    assert first.dump() == second.dump()


def test_profile_cached_by_input(build):
    first = build.profile((5,))
    again = build.profile((5,))
    assert first is again
    other = build.profile((6,))
    assert other is not first


def test_profile_cached_by_explicit_key(build):
    first = build.profile((5,), key="train")
    again = build.profile((99,), key="train")  # key wins over input
    assert first is again


def test_profile_multi_accumulates(build):
    multi = build.profile_multi([(3,), (4,)], key="multi")
    single = build.profile((3,))
    assert multi.summary()[2] > single.summary()[2]


def test_link_population_sizes(build):
    population = build.link_population(PAPER_CONFIGS["30%"], range(4))
    assert len(population) == 4
    assert len({binary.text for binary in population}) == 4


def test_profile_guided_without_profile_raises(build):
    with pytest.raises(ProfileError):
        build.link_variant(PAPER_CONFIGS["0-30%"], seed=0, profile=None)


def test_overhead_collects_profile_automatically(build):
    overhead = build.overhead(PAPER_CONFIGS["0-30%"], seed=0,
                              train_input=(5,), ref_input=(9,))
    assert overhead >= 0


def test_overhead_with_custom_cost_model(build):
    from repro.sim.costs import DEFAULT_COST_MODEL
    expensive = DEFAULT_COST_MODEL.with_overrides(nop_issue=5.0)
    cheap = build.overhead(PAPER_CONFIGS["50%"], seed=1, ref_input=(9,))
    dear = build.overhead(PAPER_CONFIGS["50%"], seed=1, ref_input=(9,),
                          model=expensive)
    assert dear > cheap


def test_compile_and_link_shape():
    binary = compile_and_link("int main() { return 3; }", "tiny")
    assert binary.entry == binary.code_symbols["_start"]
    assert "main" in binary.code_symbols


def test_opt_level_reduces_code():
    optimized = ProgramBuild(FIB_SOURCE, "o2", opt_level=2)
    unoptimized = ProgramBuild(FIB_SOURCE, "o0", opt_level=0)
    assert len(optimized.link_baseline().text) < \
        len(unoptimized.link_baseline().text)
