"""Profiling tests: collection, spanning trees, instrumentation,
reconstruction, serialization."""

import pytest

from repro.errors import ProfileError
from repro.ir import Interpreter, run_module
from repro.minc import compile_to_ir
from repro.opt import optimize_module
from repro.profiling import (
    EXIT_NODE, ProfileData, build_profile_graph, choose_counter_edges,
    collect_profile, instrument_module, reconstruct_profile,
)
from repro.profiling.instrument import COUNTER_ARRAY, counters_from_interp

LOOPY = """
int main() {
  int n = input();
  int i;
  int acc = 0;
  for (i = 0; i < n; i++) {
    if (i & 1) { acc += i; } else { acc += 2; }
  }
  print(acc);
  return acc;
}
"""

CALLS = """
int helper(int x) {
  if (x > 10) { return x - 10; }
  return x;
}
int main() {
  int i;
  int acc = 0;
  for (i = 0; i < 30; i++) { acc += helper(i); }
  print(acc);
  return 0;
}
"""


def build(source):
    return optimize_module(compile_to_ir(source))


class TestCollect:
    def test_block_counts_match_loop_structure(self):
        module = build(LOOPY)
        profile, result = collect_profile(module, [10])
        assert profile.max_block_count >= 10
        # Entry runs once.
        entry_label = module.function("main").entry.label
        assert profile.block_count("main", entry_label) == 1

    def test_function_invocation_counts(self):
        module = build(CALLS)
        profile, _result = collect_profile(module, [])
        helper_entry = module.function("helper").entry.label
        assert profile.block_count("helper", helper_entry) == 30

    def test_profiles_depend_on_input(self):
        module = build(LOOPY)
        small, _ = collect_profile(module, [2])
        large, _ = collect_profile(module, [50])
        assert large.max_block_count > small.max_block_count

    def test_merge_accumulates(self):
        module = build(LOOPY)
        first, _ = collect_profile(module, [5])
        second, _ = collect_profile(module, [7])
        total_before = first.summary()[2] + second.summary()[2]
        first.merge(second)
        assert first.summary()[2] == total_before


class TestSpanningTree:
    def test_profile_graph_has_virtual_edge(self):
        module = build(LOOPY)
        edges = build_profile_graph(module.function("main"))
        entry = module.function("main").entry.label
        assert (EXIT_NODE, entry) in edges

    def test_counter_plus_tree_cover_all_edges(self):
        module = build(CALLS)
        for function in module.functions.values():
            counters, tree = choose_counter_edges(function)
            edges = build_profile_graph(function)
            assert sorted(counters + tree) == sorted(edges)

    def test_virtual_edge_never_gets_a_counter(self):
        module = build(CALLS)
        for function in module.functions.values():
            counters, _tree = choose_counter_edges(function)
            assert all(source != EXIT_NODE for source, _t in counters)

    def test_counter_count_is_cyclomatic(self):
        # |counters| = |E| - |V| + 1 for a connected profile graph.
        module = build(LOOPY)
        function = module.function("main")
        edges = build_profile_graph(function)
        nodes = {node for edge in edges for node in edge}
        counters, _tree = choose_counter_edges(function)
        assert len(counters) == len(edges) - len(nodes) + 1


class TestInstrumentReconstruct:
    def reconstruct_for(self, source, inputs):
        clean = build(source)
        ground_truth, clean_result = collect_profile(clean, inputs)

        instrumented = build(source)
        imap = instrument_module(instrumented)
        interp = Interpreter(instrumented, input_values=inputs)
        instrumented_result = interp.run()
        counters = counters_from_interp(interp)
        reconstructed = reconstruct_profile(clean, imap, counters)
        return ground_truth, reconstructed, clean_result, \
            instrumented_result

    @pytest.mark.parametrize("source,inputs", [
        (LOOPY, [13]), (LOOPY, [0]), (CALLS, []),
    ])
    def test_reconstruction_matches_ground_truth(self, source, inputs):
        truth, reconstructed, _r1, _r2 = self.reconstruct_for(source,
                                                              inputs)
        assert reconstructed.block_counts == truth.block_counts
        assert reconstructed.edge_counts == truth.edge_counts

    def test_instrumentation_preserves_behaviour(self):
        _t, _r, clean_result, instrumented_result = self.reconstruct_for(
            LOOPY, [9])
        assert clean_result.output == instrumented_result.output
        assert clean_result.exit_code == instrumented_result.exit_code

    def test_instrumented_binary_path(self):
        # The full-fidelity path: compile the instrumented module, run it
        # on the machine simulator, read counters from simulated memory.
        from repro.backend.linker import link
        from repro.backend.lowering import lower_module
        from repro.profiling.instrument import counters_from_machine
        from repro.runtime.lib import runtime_unit
        from repro.sim.machine import Machine

        clean = build(LOOPY)
        truth, _result = collect_profile(clean, [11])

        instrumented = build(LOOPY)
        imap = instrument_module(instrumented)
        binary = link([runtime_unit(), lower_module(instrumented, "p")])
        machine = Machine(binary, input_values=[11])
        machine.run()
        counters = counters_from_machine(machine, binary,
                                         imap.counter_count())
        reconstructed = reconstruct_profile(clean, imap, counters)
        assert reconstructed.block_counts == truth.block_counts

    def test_double_instrumentation_rejected(self):
        module = build(LOOPY)
        instrument_module(module)
        with pytest.raises(ProfileError):
            instrument_module(module)

    def test_counter_array_added(self):
        module = build(LOOPY)
        imap = instrument_module(module)
        assert COUNTER_ARRAY in module.globals
        assert module.globals[COUNTER_ARRAY].size >= imap.counter_count()

    def test_mismatched_counter_vector_rejected(self):
        clean = build(LOOPY)
        instrumented = build(LOOPY)
        imap = instrument_module(instrumented)
        with pytest.raises(ProfileError):
            reconstruct_profile(clean, imap, [])


class TestSerialization:
    def test_json_roundtrip(self, tmp_path):
        module = build(LOOPY)
        profile, _result = collect_profile(module, [9])
        path = tmp_path / "profile.json"
        profile.save(path)
        loaded = ProfileData.load(path)
        assert loaded.edge_counts == profile.edge_counts
        assert loaded.block_counts == profile.block_counts

    def test_malformed_json_rejected(self):
        with pytest.raises(ProfileError):
            ProfileData.from_json("not json at all {")

    def test_wrong_version_rejected(self):
        with pytest.raises(ProfileError):
            ProfileData.from_json('{"version": 99, "edges": []}')

    def test_summary_statistics(self):
        profile = ProfileData.from_edges({
            ("f", None, "a"): 1,
            ("f", "a", "b"): 100,
            ("f", "b", "b"): 899,
        })
        maximum, median, total = profile.summary()
        assert maximum == 999  # block b: 100 + 899
        assert total >= maximum
