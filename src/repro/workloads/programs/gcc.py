"""403.gcc — C compiler.

The original churns through many distinct phases (parsing, RTL
generation, register allocation, peepholes), giving it the broadest,
flattest profile of the suite plus a very large code footprint. The
miniature compiles a stream of random expression trees: tokenize →
parse to postfix → constant-fold → "register allocate" → peephole —
five phases of mid-heat table-driven code.
"""

from repro.workloads.base import Workload
from repro.workloads.coldcode import bank_for

SOURCE = """
// 403.gcc miniature: a five-phase toy compiler over random expressions.
int token_stream[2048];
int postfix[2048];
int fold_stack[256];
int reg_lru[16];
int reg_owner[16];
int emitted[4096];
int emit_count = 0;

int make_tokens(int n, int seed) {
  // Produce a well-formed alternating operand/operator stream.
  int x = seed;
  int i = 0;
  int depth = 0;
  // Leave room for up to 12 unclosed parens plus the final operand fix.
  while (i < n - 14) {
    x = (x * 1103515245 + 12345) & 2147483647;
    int r = x % 100;
    if (r < 30 && depth < 12) {
      token_stream[i] = 1000;   // open paren
      depth++;
    } else if (r < 40 && depth > 0 && i > 0
               && token_stream[i - 1] < 256) {
      token_stream[i] = 1001;   // close paren
      depth--;
    } else if (i > 0 && token_stream[i - 1] < 256) {
      token_stream[i] = 2000 + x % 5;   // operator + - * / %
    } else {
      token_stream[i] = x & 255;        // literal operand
    }
    i++;
  }
  if (token_stream[i - 1] >= 256) { token_stream[i - 1] = 7; }
  while (depth > 0) { token_stream[i] = 1001; i++; depth--; }
  return i;
}

int to_postfix(int n) {
  // Shunting-yard with an operator stack packed into fold_stack.
  int out = 0;
  int sp = 0;
  int i;
  for (i = 0; i < n; i++) {
    int t = token_stream[i];
    if (t < 256) {
      postfix[out] = t;
      out++;
    } else if (t == 1000) {
      fold_stack[sp] = t;
      sp++;
    } else if (t == 1001) {
      while (sp > 0 && fold_stack[sp - 1] != 1000) {
        sp--;
        postfix[out] = fold_stack[sp];
        out++;
      }
      if (sp > 0) { sp--; }
    } else {
      int prec = 1;
      if (t >= 2002) { prec = 2; }
      while (sp > 0 && fold_stack[sp - 1] >= 2000) {
        int top_prec = 1;
        if (fold_stack[sp - 1] >= 2002) { top_prec = 2; }
        if (top_prec < prec) { break; }
        sp--;
        postfix[out] = fold_stack[sp];
        out++;
      }
      fold_stack[sp] = t;
      sp++;
    }
  }
  while (sp > 0) {
    sp--;
    if (fold_stack[sp] >= 2000) { postfix[out] = fold_stack[sp]; out++; }
  }
  return out;
}

int apply_op(int op, int a, int b) {
  if (op == 2000) { return (a + b) & 65535; }
  if (op == 2001) { return (a - b) & 65535; }
  if (op == 2002) { return (a * b) & 65535; }
  if (op == 2003) { if (b == 0) { return a; } return a / b; }
  if (b == 0) { return 0; }
  return a % b;
}

int constant_fold(int n) {
  // Evaluate the postfix stream; this is the "fold everything" phase.
  int sp = 0;
  int i;
  for (i = 0; i < n; i++) {
    int t = postfix[i];
    if (t < 256) {
      if (sp < 256) { fold_stack[sp] = t; sp++; }
    } else if (sp >= 2) {
      int b = fold_stack[sp - 1];
      int a = fold_stack[sp - 2];
      sp--;
      fold_stack[sp - 1] = apply_op(t, a, b);
    }
  }
  if (sp == 0) { return 0; }
  return fold_stack[sp - 1];
}

int allocate_register(int vreg) {
  // LRU register file: hit scan, else evict the stalest.
  int i;
  for (i = 0; i < 16; i++) {
    if (reg_owner[i] == vreg) {
      reg_lru[i] = 0;
      return i;
    }
    reg_lru[i]++;
  }
  int victim = 0;
  for (i = 1; i < 16; i++) {
    if (reg_lru[i] > reg_lru[victim]) { victim = i; }
  }
  reg_owner[victim] = vreg;
  reg_lru[victim] = 0;
  return victim;
}

void emit(int opcode) {
  if (emit_count < 4096) {
    emitted[emit_count] = opcode;
    emit_count++;
  }
}

int codegen(int n) {
  int i;
  for (i = 0; i < n; i++) {
    int t = postfix[i];
    if (t < 256) {
      emit(4096 + allocate_register(t));
    } else {
      emit(t);
    }
  }
  return emit_count;
}

int peephole() {
  // Collapse adjacent duplicate loads; count the rewrites.
  int removed = 0;
  int i;
  for (i = 1; i < emit_count; i++) {
    if (emitted[i] == emitted[i - 1] && emitted[i] >= 4096) {
      emitted[i] = 0;
      removed++;
    }
  }
  return removed;
}

int main() {
  int functions = input();
  int tokens = input();
  int seed = input();
  if (tokens > 2048) { tokens = 2048; }
  int total = 0;
  int f;
  for (f = 0; f < functions; f++) {
    int n = make_tokens(tokens, seed + f * 97);
    int m = to_postfix(n);
    total = (total + constant_fold(m)) & 16777215;
    emit_count = 0;
    int i;
    for (i = 0; i < 16; i++) { reg_owner[i] = -1; reg_lru[i] = 0; }
    codegen(m);
    total = (total + peephole() + emit_count) & 16777215;
  }
  print(total);
  return 0;
}
"""

WORKLOAD = Workload(
    name="403.gcc",
    source=SOURCE + bank_for("403.gcc"),
    train_input=(2, 256, 13),
    ref_input=(5, 1024, 5),
    character="multi-phase compiler: flat profile over many functions",
)
