"""The analytic overhead predictor (zero-execution serving estimate).

``predict_overhead`` folds insertion-site counts × per-block insertion
probability × mean NOP issue cost into the memoized block-cost core —
no variant is linked or simulated. Its contract: exact in expectation
over seeds, so the prediction must land inside the measured per-seed
overhead spread and close to the measured mean.
"""

from functools import lru_cache

import pytest

from repro.core.config import DiversificationConfig
from repro.pipeline import ProgramBuild
from repro.sim.batch import population_cycles
from repro.sim.costs import insertion_sites_per_block, predict_overhead
from repro.workloads.registry import get_workload

CONFIGS = {
    "uniform-50%": DiversificationConfig.uniform(0.50),
    "0-30%": DiversificationConfig.profile_guided(0.00, 0.30),
}

SEEDS = range(8)


@lru_cache(maxsize=None)
def _state(name):
    workload = get_workload(name)
    build = ProgramBuild(workload.source, workload.name)
    return workload, build, build.link_baseline()


@pytest.mark.parametrize("config_name", sorted(CONFIGS))
def test_prediction_matches_measured_population_mean(config_name):
    workload, build, baseline = _state("429.mcf")
    config = CONFIGS[config_name]
    profile = (build.profile(workload.train_input)
               if config.requires_profile else None)
    counts = build.execution_counts(workload.ref_input)

    predicted = predict_overhead(baseline, build.unit, counts, config,
                                 profile)
    assert predicted["baseline_cycles"] > 0
    assert predicted["predicted_cycles"] > predicted["baseline_cycles"]

    variants = [build.link_variant(config, seed, profile)
                for seed in SEEDS]
    baseline_cycles, variant_cycles = population_cycles(
        baseline, variants, counts)
    overheads = [cycles / baseline_cycles - 1.0
                 for cycles in variant_cycles]
    mean = sum(overheads) / len(overheads)
    # Exact in expectation: close to the seed mean, inside the spread
    # (widened by a hair — 8 seeds is a small sample).
    assert abs(predicted["predicted_overhead"] - mean) <= max(
        0.25 * mean, 0.005)
    assert (min(overheads) * 0.8
            <= predicted["predicted_overhead"]
            <= max(overheads) * 1.2)


def test_zero_probability_predicts_zero_overhead():
    workload, build, baseline = _state("429.mcf")
    counts = build.execution_counts(workload.ref_input)
    predicted = predict_overhead(baseline, build.unit, counts,
                                 DiversificationConfig.uniform(0.0))
    assert predicted["predicted_overhead"] == pytest.approx(0.0)
    assert predicted["predicted_cycles"] == pytest.approx(
        predicted["baseline_cycles"])


def test_overhead_grows_with_probability():
    workload, build, baseline = _state("429.mcf")
    counts = build.execution_counts(workload.ref_input)
    overheads = [
        predict_overhead(baseline, build.unit, counts,
                         DiversificationConfig.uniform(p))
        ["predicted_overhead"]
        for p in (0.1, 0.3, 0.5, 1.0)]
    assert overheads == sorted(overheads)
    assert overheads[0] > 0


def test_insertion_sites_cover_diversifiable_blocks():
    _workload, build, baseline = _state("429.mcf")
    sites = insertion_sites_per_block(build.unit)
    assert sites
    assert all(count > 0 for count in sites.values())
    # Site counts total the diversifiable instruction count — one
    # potential insertion point per instruction, as in the paper.
    assert sum(sites.values()) <= len(baseline.instr_records)
