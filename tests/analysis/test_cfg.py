"""CFG recovery: the graph rebuilt from the bytes must agree exactly
with the linker's ground-truth instruction records."""

from functools import lru_cache

import pytest

from repro.analysis import recover_cfg
from repro.analysis.cfg import EDGE_CALL, MachineCFG
from repro.core.config import DiversificationConfig
from repro.errors import StaticAnalysisError
from repro.pipeline import ProgramBuild
from repro.workloads.registry import get_workload

WORKLOADS = ("429.mcf", "462.libquantum", "470.lbm")
SEEDS = (0, 1, 2)

CONFIGS = {
    "uniform-50%": DiversificationConfig.uniform(0.50),
    "0-30%": DiversificationConfig.profile_guided(0.00, 0.30),
}


@lru_cache(maxsize=None)
def _state(name):
    workload = get_workload(name)
    build = ProgramBuild(workload.source, workload.name)
    return workload, build, build.link_baseline()


@lru_cache(maxsize=None)
def _variant(name, config_name, seed):
    workload, build, _baseline = _state(name)
    config = CONFIGS[config_name]
    profile = (build.profile(workload.train_input)
               if config.requires_profile else None)
    return build.link_variant(config, seed, profile)


def _assert_exact_recovery(binary):
    cfg = recover_cfg(binary)
    assert cfg.findings == []
    record_addresses = {record.address for record in binary.instr_records}
    assert set(cfg.boundaries) == record_addresses
    assert cfg.unreachable_bytes == 0
    assert cfg.unreachable_spans == []
    return cfg


@pytest.mark.parametrize("name", WORKLOADS)
def test_baseline_boundaries_match_linker_records(name):
    _workload, _build, baseline = _state(name)
    _assert_exact_recovery(baseline)


@pytest.mark.parametrize("name", WORKLOADS)
@pytest.mark.parametrize("config_name", sorted(CONFIGS))
def test_variant_boundaries_match_linker_records(name, config_name):
    for seed in SEEDS:
        _assert_exact_recovery(_variant(name, config_name, seed))


def test_edges_land_on_recovered_boundaries():
    _workload, _build, baseline = _state("429.mcf")
    cfg = _assert_exact_recovery(baseline)
    base, end = baseline.text_base, baseline.text_end
    for address, edges in cfg.successors.items():
        assert address in cfg.instrs
        for _kind, target in edges:
            assert base <= target < end
            assert target in cfg.instrs


def test_basic_blocks_partition_reachable_instructions():
    _workload, _build, baseline = _state("429.mcf")
    cfg = _assert_exact_recovery(baseline)
    blocks = cfg.basic_blocks()
    # Many fewer blocks than instructions, all disjoint, all of .text.
    assert 0 < len(blocks) < len(cfg.instrs)
    covered = set()
    for start, end in blocks:
        assert start in cfg.instrs
        span = [a for a in cfg.addresses if start <= a < end]
        assert span and span[0] == start
        assert not covered & set(span)
        covered.update(span)
    assert covered == set(cfg.addresses)


def test_intra_successors_skip_calls():
    _workload, _build, baseline = _state("429.mcf")
    cfg = recover_cfg(baseline)
    call_sites = [address for address, edges in cfg.successors.items()
                  if any(kind == EDGE_CALL for kind, _t in edges)]
    assert call_sites  # every workload calls something
    start, end = baseline.text_base, baseline.text_end
    for address in call_sites[:10]:
        succs = cfg.intra_successors(address, start, end)
        # only the fallthrough survives; the callee edge is skipped
        assert succs == [address + cfg.instrs[address].size]


def test_function_addresses_cover_ranges():
    _workload, _build, baseline = _state("470.lbm")
    cfg = recover_cfg(baseline)
    total = 0
    for function, (start, end) in baseline.function_ranges.items():
        addresses = cfg.function_addresses(function)
        assert addresses
        assert all(start <= a < end for a in addresses)
        total += len(addresses)
    assert total == len(cfg.instrs)
    with pytest.raises(StaticAnalysisError):
        cfg.function_addresses("no_such_function")


def test_bad_root_is_reported_not_raised():
    _workload, _build, baseline = _state("470.lbm")
    cfg = recover_cfg(baseline, roots={baseline.entry,
                                       baseline.text_end + 0x100})
    assert isinstance(cfg, MachineCFG)
    assert any(f.code == "verify.target" for f in cfg.findings)
