"""CLI smoke tests (repro-diversify)."""

import pytest

from repro.cli import main

SOURCE = """
int main() {
  int n = input();
  int i;
  int acc = 0;
  for (i = 0; i < n; i++) { acc += i; }
  print(acc);
  return 0;
}
"""


@pytest.fixture()
def program_file(tmp_path):
    path = tmp_path / "prog.minc"
    path.write_text(SOURCE)
    return str(path)


def test_run(program_file, capsys):
    assert main(["run", program_file, "10"]) == 0
    captured = capsys.readouterr()
    assert captured.out.strip() == "45"
    assert "exit 0" in captured.err


def test_compile_disassembles(program_file, capsys):
    assert main(["compile", program_file]) == 0
    out = capsys.readouterr().out
    assert "push ebp" in out
    assert "text bytes" in out


def test_profile(program_file, capsys, tmp_path):
    output = str(tmp_path / "prof.json")
    assert main(["profile", program_file, "5", "-o", output]) == 0
    out = capsys.readouterr().out
    assert "max block" in out
    from repro.profiling.profile_data import ProfileData
    assert ProfileData.load(output).max_block_count >= 5


def test_diversify_uniform(program_file, capsys):
    assert main(["diversify", program_file, "--p", "0.5",
                 "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "pNOP=50%" in out
    assert "survivors" in out


def test_diversify_profile_guided(program_file, capsys):
    assert main(["diversify", program_file, "--range", "0.0", "0.3",
                 "--train", "20"]) == 0
    out = capsys.readouterr().out
    assert "pNOP=0%-30%" in out


def test_scan(program_file, capsys):
    assert main(["scan", program_file, "--limit", "5"]) == 0
    out = capsys.readouterr().out
    assert "gadgets" in out


def test_bench(capsys):
    assert main(["bench", "470.lbm"]) == 0
    out = capsys.readouterr().out
    assert "470.lbm" in out
