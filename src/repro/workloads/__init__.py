"""Workloads: the benchmark programs the experiments run.

- :mod:`repro.workloads.base` — the :class:`Workload` record.
- :mod:`repro.workloads.programs` — 19 MinC programs named after the
  SPEC CPU 2006 benchmarks the paper evaluates, each mimicking the
  original's computational character (instruction mix and loop
  structure), with distinct ``train`` and ``ref`` inputs.
- :mod:`repro.workloads.php` — the "network-facing application" of the
  §5.2 case study: a bytecode interpreter (the computational shape of the
  PHP runtime) whose scripts arrive as input vectors.
- :mod:`repro.workloads.clbg` — the seven Computer Language Benchmarks
  Game training programs the paper profiles PHP with, expressed as
  bytecode for the interpreter.
- :mod:`repro.workloads.registry` — lookup by name.
"""

from repro.workloads.base import Workload
from repro.workloads.registry import (
    SPEC_ORDER, all_spec_workloads, get_workload, workload_names,
)

__all__ = [
    "Workload", "SPEC_ORDER", "all_spec_workloads", "get_workload",
    "workload_names",
]
