"""Strength reduction for multiplications and shifts by constants.

Rewrites:

- ``mul x, 2^k``  → ``shl x, k`` (and the mirrored constant-on-the-left
  form),
- ``mul x, 1`` / ``div x, 1`` → copy,
- ``mul x, 0`` → 0,
- ``add x, 0`` / ``sub x, 0`` / ``xor x, 0`` / ``or x, 0`` → copy.

Signed division by powers of two is *not* reduced to a shift (they differ
for negative dividends), matching what a correct C compiler must do without
range information.
"""

from __future__ import annotations

from repro.ir.instructions import Binary, Copy
from repro.ir.values import Const


def _log2_exact(value):
    if value > 0 and (value & (value - 1)) == 0:
        return value.bit_length() - 1
    return None


def reduce_strength(function):
    """Apply strength reductions; returns change count."""
    changed = 0
    for block in function.blocks:
        new_instrs = []
        for instr in block.instrs:
            replacement = None
            if isinstance(instr, Binary):
                replacement = _reduce(instr)
            if replacement is not None:
                new_instrs.append(replacement)
                changed += 1
            else:
                new_instrs.append(instr)
        block.instrs = new_instrs
    return changed


def _reduce(instr):
    lhs, rhs = instr.lhs, instr.rhs
    if instr.op == "mul":
        if isinstance(lhs, Const) and not isinstance(rhs, Const):
            lhs, rhs = rhs, lhs  # canonicalize constant to the right
        if isinstance(rhs, Const):
            if rhs.value == 0:
                return Copy(instr.dst, Const(0))
            if rhs.value == 1:
                return Copy(instr.dst, lhs)
            shift = _log2_exact(rhs.value)
            if shift is not None:
                return Binary("shl", instr.dst, lhs, Const(shift))
            # Mirrored operands still help the lowerer (imul r, r, imm).
            if (lhs, rhs) != (instr.lhs, instr.rhs):
                return Binary("mul", instr.dst, lhs, rhs)
    elif instr.op == "div":
        if isinstance(rhs, Const) and rhs.value == 1:
            return Copy(instr.dst, lhs)
    elif instr.op in ("add", "or", "xor"):
        if isinstance(rhs, Const) and rhs.value == 0:
            return Copy(instr.dst, lhs)
        if isinstance(lhs, Const) and lhs.value == 0:
            return Copy(instr.dst, rhs)
    elif instr.op == "sub":
        if isinstance(rhs, Const) and rhs.value == 0:
            return Copy(instr.dst, lhs)
    elif instr.op in ("shl", "shr"):
        if isinstance(rhs, Const) and rhs.value == 0:
            return Copy(instr.dst, lhs)
    return None
