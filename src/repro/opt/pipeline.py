"""The optimization pipeline driver.

``optimize_module`` runs the pass sequence over every function until a
fixpoint (bounded by ``max_iterations`` as a safety net) and re-verifies
the module. Determinism matters: the profile-guided build optimizes the
module twice (training build and final build) and the resulting block
labels must be identical.
"""

from __future__ import annotations

from repro.ir.verifier import verify_module
from repro.opt.constfold import fold_constants
from repro.opt.copyprop import propagate_copies
from repro.opt.dce import eliminate_dead_code
from repro.opt.simplifycfg import simplify_cfg
from repro.opt.strength import reduce_strength

#: The pass sequence, in execution order, as (name, function) pairs.
OPT_PASSES = (
    ("copyprop", propagate_copies),
    ("constfold", fold_constants),
    ("strength", reduce_strength),
    ("dce", eliminate_dead_code),
    ("simplifycfg", simplify_cfg),
)


def optimize_function(function, max_iterations=10):
    """Optimize one function to a fixpoint; returns total change count."""
    total = 0
    for _ in range(max_iterations):
        changed = 0
        for _name, pass_fn in OPT_PASSES:
            changed += pass_fn(function)
        total += changed
        if not changed:
            break
    return total


def optimize_module(module, level=2):
    """Optimize every function; ``level=0`` disables everything.

    Returns the module (mutated in place) for chaining.
    """
    if level <= 0:
        return module
    for function in module.functions.values():
        optimize_function(function)
    return verify_module(module)
