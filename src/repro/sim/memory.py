"""Flat 32-bit address space with W⊕X enforcement.

Three segments: read-only text, read-write data, and a downward-growing
stack. Writes into the text segment fault — the simulator enforces the
W⊕X policy the paper's threat model assumes (code injection is off the
table; the attacker must reuse existing code).
"""

from __future__ import annotations

import struct

from repro.errors import MachineFault

_U32 = struct.Struct("<I")

STACK_TOP = 0xC000_0000
DEFAULT_STACK_SIZE = 1 << 20  # 1 MiB


class Memory:
    """Segmented memory for one simulated process."""

    def __init__(self, binary, stack_size=DEFAULT_STACK_SIZE):
        self.text_base = binary.text_base
        self.text = binary.text  # bytes: immutable, enforcing W^X
        self.text_end = binary.text_base + len(binary.text)

        self.data_base = binary.data_base
        self.data_end = binary.data_end
        self.data = bytearray(max(0, binary.data_end - binary.data_base))
        for address, value in binary.data_words.items():
            offset = address - self.data_base
            _U32.pack_into(self.data, offset, value & 0xFFFF_FFFF)

        self.stack_size = stack_size
        self.stack_base = STACK_TOP - stack_size
        self.stack = bytearray(stack_size)

        # Prebound fast accessors for the simulator fast path: segment
        # bounds and buffers resolved into the closure once per process
        # image, so the hot data/stack cases skip every self-attribute
        # lookup. Faults and the text segment delegate to the slow
        # accessors, keeping one fault implementation.
        unpack = _U32.unpack_from
        pack = _U32.pack_into

        def read32(address, _u=unpack, _d=self.data, _s=self.stack,
                   _db=self.data_base, _de=self.data_end,
                   _sb=self.stack_base, _top=STACK_TOP,
                   _slow=self.read_u32):
            if _db <= address and address + 4 <= _de:
                return _u(_d, address - _db)[0]
            if _sb <= address and address + 4 <= _top:
                return _u(_s, address - _sb)[0]
            return _slow(address)

        def write32(address, value, _p=pack, _d=self.data, _s=self.stack,
                    _db=self.data_base, _de=self.data_end,
                    _sb=self.stack_base, _top=STACK_TOP,
                    _slow=self.write_u32):
            value &= 0xFFFF_FFFF
            if _db <= address and address + 4 <= _de:
                _p(_d, address - _db, value)
            elif _sb <= address and address + 4 <= _top:
                _p(_s, address - _sb, value)
            else:
                _slow(address, value)

        self.read32 = read32
        self.write32 = write32

    def _fault(self, message, address, access):
        raise MachineFault(message, context={
            "address": address, "access": access,
            "text": (self.text_base, self.text_end),
            "data": (self.data_base, self.data_end),
            "stack": (self.stack_base, STACK_TOP),
        })

    # -- accessors ---------------------------------------------------------

    def read_u8(self, address):
        if self.text_base <= address < self.text_end:
            return self.text[address - self.text_base]
        if self.data_base <= address < self.data_end:
            return self.data[address - self.data_base]
        if self.stack_base <= address < STACK_TOP:
            return self.stack[address - self.stack_base]
        self._fault(f"read fault at {address:#010x}", address, "read")

    def read_u32(self, address):
        if self.data_base <= address and address + 4 <= self.data_end:
            return _U32.unpack_from(self.data, address - self.data_base)[0]
        if self.stack_base <= address and address + 4 <= STACK_TOP:
            return _U32.unpack_from(self.stack, address - self.stack_base)[0]
        if self.text_base <= address and address + 4 <= self.text_end:
            return _U32.unpack_from(self.text, address - self.text_base)[0]
        self._fault(f"read fault at {address:#010x}", address, "read")

    def write_u32(self, address, value):
        value &= 0xFFFF_FFFF
        if self.data_base <= address and address + 4 <= self.data_end:
            _U32.pack_into(self.data, address - self.data_base, value)
            return
        if self.stack_base <= address and address + 4 <= STACK_TOP:
            _U32.pack_into(self.stack, address - self.stack_base, value)
            return
        if self.text_base <= address < self.text_end:
            self._fault(f"W^X violation: write to text at {address:#010x}",
                        address, "write")
        if self.data_end <= address < self.stack_base:
            # The gap between data and stack; running past the stack fuel
            # lands here, so name the likely cause.
            self._fault(f"write fault at {address:#010x} "
                        "(below stack segment — stack overflow?)",
                        address, "write")
        self._fault(f"write fault at {address:#010x}", address, "write")

    def code_window(self, address, length=16):
        """Raw code bytes at ``address`` (for the decoder)."""
        if not self.text_base <= address < self.text_end:
            self._fault(f"execute fault at {address:#010x} (outside text)",
                        address, "execute")
        start = address - self.text_base
        return self.text[start:start + length]
