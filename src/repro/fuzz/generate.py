"""Generational MinC program synthesis (the fuzzer's seed stream).

Every program this module emits is, *by construction*:

- **well-typed** — it passes :func:`repro.minc.sema.analyze` (asserted
  before returning; a generator bug fails loudly, not downstream);
- **terminating under bounded fuel** — loops are counted (``for`` with a
  literal bound over a counter nothing in the body may write, or
  ``while`` over a fuel variable decremented as the body's first
  statement), and calls form a DAG (a function only calls functions
  generated before it), so there is no recursion and no unbounded
  iteration;
- **free of undefined behaviour** — array indices are masked with the
  array's power-of-two size (``a[expr & 63]``), division by zero is
  defined to yield zero by the language, and shift counts are masked by
  the ISA, so the reference interpreter and the machine agree on every
  operation the generator can emit.

Randomness comes from one ``random.Random`` per program, seeded by the
caller: equal seeds give byte-equal programs across processes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.minc import ast_nodes as ast
from repro.minc.sema import analyze

#: Constants the generator draws literals from — boundary values the
#: wrapping-arithmetic and flag-setting paths care about, not a uniform
#: integer spread.
INTERESTING = (0, 1, 2, 3, 5, 7, 8, 10, 16, 31, 63, 100, 255, 1000,
               65535, 2147483647)

_ARITH_OPS = ("+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>")
_COMPARE_OPS = ("==", "!=", "<", "<=", ">", ">=")
_LOGIC_OPS = ("&&", "||")
_UNARY_OPS = ("-", "!", "~")
_ASSIGN_OPS = ("=", "=", "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=",
               "^=", "<<=", ">>=")


@dataclass(frozen=True)
class GenLimits:
    """Size knobs for one generated program."""

    helpers: int = 3           # max helper functions (callable DAG)
    body_statements: int = 7   # max statements per body
    block_depth: int = 3       # max statement nesting
    expr_depth: int = 3        # max expression nesting
    loop_bound: int = 8        # max literal iterations per loop
    arrays: int = 2            # max global arrays
    scalars: int = 2           # max global scalars


#: Default shape; ``tiny()`` is the quick-campaign variant.
DEFAULT_LIMITS = GenLimits()


def tiny_limits():
    """Smaller programs for time-bounded smoke campaigns."""
    return GenLimits(helpers=2, body_statements=5, block_depth=2,
                     expr_depth=2, loop_bound=6, arrays=1, scalars=2)


class _FunctionScope:
    """Name tracking while generating one function (flat MinC scope)."""

    def __init__(self):
        self.readable = []     # initialized scalars usable in expressions
        self.writable = []     # assignable scalars (loop counters excluded)
        self.counter = 0

    def fresh(self, prefix):
        self.counter += 1
        return f"{prefix}{self.counter}"


class _Generator:
    def __init__(self, rng, limits):
        self.rng = rng
        self.limits = limits
        self.arrays = {}       # name -> size (power of two)
        self.globals = []      # readable/writable global scalar names
        self.functions = []    # (name, arity, returns_value) in DAG order

    # -- random helpers ------------------------------------------------------

    def chance(self, p):
        return self.rng.random() < p

    def pick(self, items):
        return self.rng.choice(items)

    # -- program -------------------------------------------------------------

    def program(self):
        program = ast.Program()
        for index in range(self.rng.randint(1, self.limits.scalars)):
            name = f"g{index}"
            self.globals.append(name)
            init = [self.pick(INTERESTING)] if self.chance(0.7) else []
            program.globals.append(ast.GlobalDecl(name=name, init=init))
        for index in range(self.rng.randint(1, self.limits.arrays)):
            name = f"arr{index}"
            size = self.pick((16, 32, 64))
            self.arrays[name] = size
            init = []
            if self.chance(0.5):
                init = [self.pick(INTERESTING)
                        for _ in range(self.rng.randint(1, 6))]
            program.globals.append(ast.GlobalDecl(
                name=name, is_array=True, size=size, init=init))

        for index in range(self.rng.randint(0, self.limits.helpers)):
            program.functions.append(self._function(f"f{index}"))
        program.functions.append(self._function("main", is_main=True))
        return program

    def _function(self, name, is_main=False):
        scope = _FunctionScope()
        params = []
        returns_value = is_main or self.chance(0.85)
        if not is_main:
            for _ in range(self.rng.randint(1, 3)):
                param = scope.fresh("p")
                params.append(param)
                scope.readable.append(param)
                scope.writable.append(param)
        body = self._body(scope, self.limits.body_statements,
                          depth=0, loop_depth=0,
                          returns_value=returns_value)
        if returns_value:
            body.append(ast.Return(value=self._expr(scope, 1)))
        elif self.chance(0.3):
            body.append(ast.Return())
        self.functions.append((name, len(params), returns_value))
        return ast.FuncDecl(name=name, params=params,
                            returns_value=returns_value, body=body)

    # -- statements ----------------------------------------------------------

    def _body(self, scope, budget, depth, loop_depth, returns_value):
        statements = []
        for _ in range(self.rng.randint(max(1, budget // 2), budget)):
            statements.append(self._statement(scope, depth, loop_depth,
                                              returns_value))
        return statements

    def _statement(self, scope, depth, loop_depth, returns_value):
        roll = self.rng.random()
        nested = depth < self.limits.block_depth
        if roll < 0.22:
            name = scope.fresh("v")
            statement = ast.VarDecl(name=name,
                                    init=self._expr(scope, depth=1))
            scope.readable.append(name)
            scope.writable.append(name)
            return statement
        if roll < 0.45:
            return self._assignment(scope)
        if roll < 0.55:
            return ast.PrintStmt(value=self._expr(scope, 1))
        if roll < 0.70 and nested:
            return self._if(scope, depth, loop_depth, returns_value)
        if roll < 0.84 and nested:
            return self._loop(scope, depth, loop_depth, returns_value)
        if roll < 0.88 and loop_depth:
            exit_stmt = (ast.Break() if self.chance(0.5)
                         else ast.Continue())
            return ast.If(cond=self._expr(scope, 1),
                          then_body=[exit_stmt])
        if roll < 0.92 and returns_value and depth:
            return ast.If(cond=self._expr(scope, 1),
                          then_body=[ast.Return(
                              value=self._expr(scope, 1))])
        void_helpers = [(n, a) for n, a, rv in self.functions if not rv]
        if roll < 0.95 and void_helpers:
            name, arity = self.pick(void_helpers)
            return ast.ExprStmt(expr=ast.CallExpr(
                callee=name,
                args=[self._expr(scope, 1) for _ in range(arity)]))
        return self._assignment(scope)

    def _assignment(self, scope):
        op = self.pick(_ASSIGN_OPS)
        if self.arrays and self.chance(0.3):
            target = self._array_ref(scope, depth=1)
        else:
            candidates = scope.writable + self.globals
            if not candidates:
                name = scope.fresh("v")
                scope.readable.append(name)
                scope.writable.append(name)
                return ast.VarDecl(name=name, init=self._expr(scope, 1))
            target = ast.Name(ident=self.pick(candidates))
        if op in ("=", "+=", "-=") and self.chance(0.15):
            return ast.IncDec(target=target,
                              op=self.pick(("++", "--")))
        return ast.Assign(target=target, op=op,
                          value=self._expr(scope, depth=1))

    def _if(self, scope, depth, loop_depth, returns_value):
        node = ast.If(cond=self._expr(scope, 1))
        node.then_body = self._body(scope, 3, depth + 1, loop_depth,
                                    returns_value)
        if self.chance(0.45):
            node.else_body = self._body(scope, 3, depth + 1, loop_depth,
                                        returns_value)
        return node

    def _loop(self, scope, depth, loop_depth, returns_value):
        bound = self.rng.randint(2, self.limits.loop_bound)
        if self.chance(0.6):
            # Counted for-loop; the counter is readable but never
            # handed to the writable set, so the body cannot break
            # termination.
            counter = scope.fresh("i")
            scope.readable.append(counter)
            body = self._body(scope, 4, depth + 1, loop_depth + 1,
                              returns_value)
            return ast.For(
                init=ast.VarDecl(name=counter, init=ast.IntLit(value=0)),
                cond=ast.BinaryExpr(op="<", lhs=ast.Name(ident=counter),
                                    rhs=ast.IntLit(value=bound)),
                step=ast.IncDec(target=ast.Name(ident=counter), op="++"),
                body=body)
        # Fuel while-loop: the decrement is the body's FIRST statement,
        # so a later `continue` has already burned this iteration's fuel.
        fuel = scope.fresh("t")
        scope.readable.append(fuel)
        body = [ast.IncDec(target=ast.Name(ident=fuel), op="--")]
        body += self._body(scope, 3, depth + 1, loop_depth + 1,
                           returns_value)
        loop = ast.While(
            cond=ast.BinaryExpr(op=">", lhs=ast.Name(ident=fuel),
                                rhs=ast.IntLit(value=0)),
            body=body)
        return_list = [
            ast.VarDecl(name=fuel, init=ast.IntLit(value=bound)), loop]
        return ast.If(cond=ast.IntLit(value=1), then_body=return_list)

    # -- expressions ---------------------------------------------------------

    def _array_ref(self, scope, depth):
        name = self.pick(sorted(self.arrays))
        mask = self.arrays[name] - 1
        index = ast.BinaryExpr(op="&", lhs=self._expr(scope, depth + 1),
                               rhs=ast.IntLit(value=mask))
        return ast.IndexExpr(array=name, index=index)

    def _expr(self, scope, depth):
        if depth >= self.limits.expr_depth or self.chance(0.3):
            return self._leaf(scope, depth)
        roll = self.rng.random()
        if roll < 0.55:
            ops = _ARITH_OPS if self.chance(0.7) else _COMPARE_OPS
            return ast.BinaryExpr(op=self.pick(ops),
                                  lhs=self._expr(scope, depth + 1),
                                  rhs=self._expr(scope, depth + 1))
        if roll < 0.65:
            return ast.BinaryExpr(op=self.pick(_LOGIC_OPS),
                                  lhs=self._expr(scope, depth + 1),
                                  rhs=self._expr(scope, depth + 1))
        if roll < 0.78:
            return ast.UnaryExpr(op=self.pick(_UNARY_OPS),
                                 operand=self._expr(scope, depth + 1))
        int_helpers = [(n, a) for n, a, rv in self.functions if rv]
        if roll < 0.88 and int_helpers:
            name, arity = self.pick(int_helpers)
            return ast.CallExpr(
                callee=name,
                args=[self._expr(scope, depth + 1)
                      for _ in range(arity)])
        return self._leaf(scope, depth)

    def _leaf(self, scope, depth):
        roll = self.rng.random()
        readable = scope.readable + self.globals
        if roll < 0.40 and readable:
            return ast.Name(ident=self.pick(readable))
        if roll < 0.55 and self.arrays:
            return self._array_ref(scope, depth)
        if roll < 0.62:
            return ast.InputExpr()
        return ast.IntLit(value=self.pick(INTERESTING))


def generate_program(seed, limits=DEFAULT_LIMITS):
    """One well-typed, terminating MinC :class:`Program` for ``seed``.

    Deterministic: equal ``(seed, limits)`` give structurally equal
    programs on any machine. The result is re-checked with the real
    semantic analyzer before being returned.
    """
    rng = random.Random(seed)
    program = _Generator(rng, limits).program()
    analyze(program)  # a generator bug must fail here, not mid-campaign
    return program


def generate_inputs(seed, *, count=None):
    """A deterministic input vector for one candidate's ``input()`` calls."""
    rng = random.Random(seed)
    if count is None:
        count = rng.randint(2, 6)
    return tuple(rng.choice(INTERESTING) - rng.choice((0, 1))
                 for _ in range(count))
