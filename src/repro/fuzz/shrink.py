"""Greedy AST-level reduction of diverging programs.

A raw fuzz finding is noise: dozens of statements, most irrelevant to
the divergence. :func:`shrink_source` repeatedly tries structural
reductions — drop a helper function, drop a statement, flatten an
``if`` into its taken arm, collapse an expression to a literal or one
of its own operands — keeping any candidate that still parses, still
type-checks, and still satisfies the caller's predicate ("the same kind
of divergence still reproduces"). It runs to a fixpoint or an
evaluation budget, whichever comes first, and every accepted reduction
bumps the ``fuzz.shrink_steps`` counter.

The predicate sees pretty-printed source text, not an AST — the same
representation the corpus stores and replay consumes, so a shrunk
reproducer is a corpus entry like any other.
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.minc import ast_nodes as ast
from repro.minc.astutil import clone, expr_sites, get_site, set_site, \
    stmt_sites
from repro.minc.parser import parse
from repro.minc.pretty import pretty_print
from repro.minc.sema import analyze
from repro.obs import metrics

#: Default cap on predicate evaluations. Each evaluation typically runs
#: a full differential pipeline (~ms), so the cap bounds shrink time to
#: a few seconds per finding.
DEFAULT_MAX_EVALS = 300


def _validated_text(program):
    """Pretty-print and re-check a reduced AST; None when invalid."""
    text = pretty_print(program)
    try:
        analyze(parse(text))
    except ReproError:
        return None
    return text


def _reduced_candidates(program):
    """Every one-step reduction of ``program``, biggest-first.

    Yields fresh ASTs; the input is never mutated. Order matters for
    greed: removing a whole helper beats simplifying an expression
    inside it, so function/statement drops come before the local
    rewrites.
    """
    # Drop one non-main function entirely.
    for index, func in enumerate(program.functions):
        if func.name == "main":
            continue
        candidate = clone(program)
        del candidate.functions[index]
        yield candidate
    # Drop one global declaration.
    for index in range(len(program.globals)):
        candidate = clone(program)
        del candidate.globals[index]
        yield candidate
    # Drop one statement.
    for position in range(len(stmt_sites(program))):
        candidate = clone(program)
        body, index = stmt_sites(candidate)[position]
        del body[index]
        yield candidate
    # Flatten a branch/loop into its body (keeps the interesting
    # statements, discards the control structure around them).
    for position, (body, index) in enumerate(stmt_sites(program)):
        statement = body[index]
        arms = []
        if isinstance(statement, ast.If):
            arms = [statement.then_body, statement.else_body]
        elif isinstance(statement, (ast.While, ast.For)):
            arms = [statement.body]
        for arm_index, arm in enumerate(arms):
            if not arm:
                continue
            candidate = clone(program)
            c_body, c_index = stmt_sites(candidate)[position]
            c_statement = c_body[c_index]
            if isinstance(c_statement, ast.If):
                replacement = (c_statement.then_body, c_statement.else_body
                               )[arm_index]
            else:
                replacement = c_statement.body
            c_body[c_index:c_index + 1] = replacement
            yield candidate
    # Collapse an expression: to zero, or to one of its own operands.
    for position, site in enumerate(expr_sites(program)):
        node = get_site(site)
        replacements = []
        if not (isinstance(node, ast.IntLit) and node.value == 0):
            replacements.append(ast.IntLit(value=0))
        if isinstance(node, ast.BinaryExpr):
            replacements += [node.lhs, node.rhs]
        elif isinstance(node, ast.UnaryExpr):
            replacements.append(node.operand)
        elif isinstance(node, ast.IndexExpr):
            replacements.append(node.index)
        for replacement in replacements:
            candidate = clone(program)
            set_site(expr_sites(candidate)[position], clone(replacement))
            yield candidate


def shrink_source(source, predicate, *, max_evals=DEFAULT_MAX_EVALS):
    """Greedily reduce ``source`` while ``predicate(text)`` holds.

    Returns ``(reduced_source, steps)`` where ``steps`` counts accepted
    reductions. The input itself must satisfy the predicate — shrinking
    something that doesn't reproduce is a caller bug and raises.
    """
    if not predicate(source):
        raise ReproError(
            "shrink_source: the unreduced input does not satisfy the "
            "predicate — nothing to shrink toward",
            code="fuzz.shrink", context={"source_bytes": len(source)})
    program = parse(source)
    best_text = pretty_print(program)
    steps = 0
    evals = 0
    progress = True
    while progress and evals < max_evals:
        progress = False
        for candidate in _reduced_candidates(program):
            if evals >= max_evals:
                break
            text = _validated_text(candidate)
            if text is None or len(text) >= len(best_text):
                continue
            evals += 1
            if predicate(text):
                program = candidate
                best_text = text
                steps += 1
                metrics.inc("fuzz.shrink_steps")
                progress = True
                break  # restart from the (now smaller) program
    return best_text, steps
