"""Equivalent-encoding substitution (paper §6's "equivalent instruction
substitution", at encoding granularity).

x86's ModRM scheme gives every register-to-register MOV and ALU
operation **two byte-distinct encodings** for the identical architectural
operation: ``op r/m, r`` (direction bit 0) and ``op r, r/m`` (direction
bit 1) — e.g. ``mov ebx, eax`` is both ``89 C3`` and ``8B D8``. Flipping
the direction changes the emitted bytes (destroying byte-matched
gadgets) with *zero* semantic or size difference — no displacement, no
flags, no cycles. This is the compiler-side analogue of the in-place
instruction-substitution technique of Pappas et al. (cited as [27] in
the paper), and composes orthogonally with NOP insertion, exactly as §6
suggests.

The pass flips each substitutable instruction with probability 1/2.
"""

from __future__ import annotations

import weakref

from repro.backend.objfile import FunctionCode, ObjectUnit
from repro.x86.instructions import Instr
from repro.x86.nops import is_nop_candidate_instr
from repro.x86.registers import Register

#: Mnemonics with a ModRM direction bit for reg,reg forms.
SUBSTITUTABLE_MNEMONICS = frozenset(
    {"mov", "add", "or", "and", "sub", "xor", "cmp"})


def is_substitutable(instr):
    """True if the instruction has a byte-distinct equivalent encoding.

    Table-1 NOP candidates are exempt: their exact encodings are part of
    the Survivor normalization contract.
    """
    if instr.mnemonic not in SUBSTITUTABLE_MNEMONICS:
        return False
    if len(instr.operands) != 2:
        return False
    dst, src = instr.operands
    if not (isinstance(dst, Register) and isinstance(src, Register)):
        return False
    return not is_nop_candidate_instr(instr)


#: Substitutable (item index, flipped clone) pairs, keyed by
#: id(function), each entry holding a weakref whose death callback
#: evicts it — so a recycled id can never resolve to stale pairs.
_SUBSTITUTION_TABLES = {}


def substitution_table(function_code):
    """The (item index, flipped clone) pairs of a lowered function's
    substitutable instructions, in stream order.

    The predicate is pure per instruction and a given original always
    flips to the same clone, so one scan of the pre-diversification
    function answers the question for every seed of a population: an
    inserted NOP or sled item is a fresh object that is never
    substitutable anyway, and the carried originals keep their relative
    order through every pass.
    """
    key = id(function_code)
    entry = _SUBSTITUTION_TABLES.get(key)
    if entry is not None and entry[0]() is function_code:
        return entry[1]
    table = tuple(
        (index, _flip(item))
        for index, item in enumerate(function_code.items)
        if isinstance(item, Instr) and is_substitutable(item))

    def _evict(_ref, _key=key):
        _SUBSTITUTION_TABLES.pop(_key, None)

    _SUBSTITUTION_TABLES[key] = (
        weakref.ref(function_code, _evict), table)
    return table


def substitutable_positions(function_code):
    """The sorted item indices of a lowered function's substitutable
    instructions."""
    return tuple(index for index, _clone in
                 substitution_table(function_code))


#: Flipped clone per id(source item), weakref-evicted like the position
#: memo. A given original always flips to the same clone, and every
#: consumer treats instructions as immutable (the linker clones before
#: resolving), so all seeds of a population share one flip object.
_FLIP_CACHE = {}


def _flip(item):
    """Clone with the opposite ModRM direction; the stale size/encoding
    are dropped so the linker re-encodes the flipped form."""
    key = id(item)
    entry = _FLIP_CACHE.get(key)
    if entry is not None and entry[0]() is item:
        return entry[1]
    clone = Instr.__new__(Instr)
    state = dict(item.__dict__)
    state["size"] = None
    state["encoding"] = None
    state["alternate_encoding"] = not item.alternate_encoding
    clone.__dict__ = state

    def _evict(_ref, _key=key):
        _FLIP_CACHE.pop(_key, None)

    _FLIP_CACHE[key] = (weakref.ref(item, _evict), clone)
    return clone


def substitute_encodings(function_code, rng, probability=0.5,
                         table=None):
    """Flip encoding directions through one function; returns a new
    FunctionCode.

    ``table`` is an optional :func:`substitution_table` result for the
    *pre-diversification* function; when the diversifier's
    ``plan_delta`` record is present it locates each substitutable
    original directly (the record says how far insertions displaced it),
    so only substitutable items are visited — with their flip clones in
    hand — instead of the whole stream. Both paths roll for the same
    items in the same order, so the rng stream — and therefore the
    variant — is identical.
    """
    if not function_code.diversifiable:
        return function_code
    roll = rng.random
    delta = getattr(function_code, "plan_delta", None)
    if table is not None and delta is not None:
        inserted = delta[0]
        inserted_total = len(inserted)
        new_items = list(function_code.items)
        flipped_at = []
        flipped_append = flipped_at.append
        shift = 0
        for original, clone in table:
            while (shift < inserted_total
                   and inserted[shift] <= original + shift):
                shift += 1
            if roll() < probability:
                index = original + shift
                flipped_append(index)
                new_items[index] = clone
        result = FunctionCode(function_code.name, new_items,
                              diversifiable=function_code.diversifiable)
        result.plan_delta = (inserted, tuple(flipped_at))
        return result
    new_items = []
    flipped_at = []
    append = new_items.append
    for item in function_code.items:
        if (isinstance(item, Instr) and is_substitutable(item)
                and roll() < probability):
            flipped_at.append(len(new_items))
            append(_flip(item))
        else:
            append(item)
    result = FunctionCode(function_code.name, new_items,
                          diversifiable=function_code.diversifiable)
    if delta is not None:
        # Indices are 1:1 through this pass; only the flip set changes.
        result.plan_delta = (delta[0], tuple(flipped_at))
    return result


def substitute_unit(unit, rng, probability=0.5):
    """Apply encoding substitution to every function of a unit."""
    result = ObjectUnit(unit.name, data_symbols=dict(unit.data_symbols))
    for function_code in unit.functions:
        result.add_function(substitute_encodings(function_code, rng,
                                                 probability))
    return result
