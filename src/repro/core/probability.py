"""NOP-insertion probability models (paper §3 and §3.1).

All probabilities are fractions in [0, 1]. Three models:

- :class:`UniformProbability` — the naive pass: the same ``p`` everywhere
  (the paper's pNOP = 50% / 30% configurations).
- :class:`LinearProfileProbability` — the paper's first heuristic::

      p(x) = p_max − (p_max − p_min) · x / x_max

  which §3.1 shows polarizes probabilities because execution counts grow
  multiplicatively with loop nesting.
- :class:`LogProfileProbability` — the paper's fix::

      p(x) = p_max − (p_max − p_min) · log(1 + x) / log(1 + x_max)

  placing counts orders of magnitude below the maximum well inside the
  probability interval (the 473.astar median example).

``x`` is the executing block's profile count and ``x_max`` the maximum
count in the program. A zero ``x_max`` (empty profile) degrades to
``p_max`` everywhere — with no training data every block is "cold".
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigError


def _check_fraction(name, value):
    if isinstance(value, float) and math.isnan(value):
        raise ConfigError(f"{name} must be within [0, 1], got NaN",
                          context={"field": name, "value": value})
    if not 0.0 <= value <= 1.0:
        raise ConfigError(f"{name} must be within [0, 1], got {value}",
                          context={"field": name, "value": value})


def _check_range(p_min, p_max):
    if p_min > p_max:
        raise ConfigError(
            f"p_min must not exceed p_max (got {p_min} > {p_max})",
            context={"p_min": p_min, "p_max": p_max})


@dataclass(frozen=True)
class UniformProbability:
    """Constant insertion probability, ignoring any profile."""

    p: float

    def __post_init__(self):
        _check_fraction("p", self.p)

    #: Uniform models do not need profile data.
    requires_profile = False

    @property
    def p_max(self):
        """Uniform models degenerate to p everywhere (fallback helper)."""
        return self.p

    def probability(self, count, max_count):
        return self.p

    def describe(self):
        return f"pNOP={self.p:.0%}"


@dataclass(frozen=True)
class LinearProfileProbability:
    """The paper's linear heuristic (shown inferior in §3.1)."""

    p_min: float
    p_max: float

    def __post_init__(self):
        _check_fraction("p_min", self.p_min)
        _check_fraction("p_max", self.p_max)
        _check_range(self.p_min, self.p_max)

    requires_profile = True

    def probability(self, count, max_count):
        if max_count <= 0:
            return self.p_max
        fraction = min(count, max_count) / max_count
        return self.p_max - (self.p_max - self.p_min) * fraction

    def describe(self):
        return f"pNOP={self.p_min:.0%}-{self.p_max:.0%} (linear)"


@dataclass(frozen=True)
class LogProfileProbability:
    """The paper's logarithmic heuristic (the headline technique)."""

    p_min: float
    p_max: float

    def __post_init__(self):
        _check_fraction("p_min", self.p_min)
        _check_fraction("p_max", self.p_max)
        _check_range(self.p_min, self.p_max)

    requires_profile = True

    def probability(self, count, max_count):
        if max_count <= 0:
            return self.p_max
        count = min(max(count, 0), max_count)
        fraction = math.log1p(count) / math.log1p(max_count)
        return self.p_max - (self.p_max - self.p_min) * fraction

    def describe(self):
        return f"pNOP={self.p_min:.0%}-{self.p_max:.0%}"
