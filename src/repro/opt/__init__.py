"""IR optimization passes.

The pipeline mirrors a classic -O2-ish middle end at small scale:

- :mod:`repro.opt.constfold` — constant folding (incl. branch folding),
- :mod:`repro.opt.copyprop` — block-local copy/constant propagation,
- :mod:`repro.opt.dce` — dead code elimination,
- :mod:`repro.opt.simplifycfg` — unreachable-block removal, jump
  threading, block merging,
- :mod:`repro.opt.strength` — strength reduction (mul/div/mod by
  powers of two → shifts/masks).

Passes preserve observable behaviour (output, exit code); the test suite
checks this differentially on every workload. The pipeline is
deterministic: the same module always optimizes to the same result, which
the profile-guided build relies on (block labels must match between the
training build and the final diversified build).
"""

from repro.opt.pipeline import OPT_PASSES, optimize_module

__all__ = ["OPT_PASSES", "optimize_module"]
