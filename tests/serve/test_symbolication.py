"""Symbolication round-trips through the serve worker layer.

For every workload in the registry × both paper configs: adopt the
(program, config) pair exactly as a shard process would, pick real
baseline instructions, find where they live in the user's variant via
the proof's address map, and ask :func:`shard_symbolicate` to map those
variant addresses back — the answer must name the original baseline
instruction exactly (address, mnemonic, owning function). §6 transform
configs symbolicate exactly too, through the generalized equivalence
map; only a variant whose proof fails refuses with a typed reason —
never a guess.
"""

from functools import lru_cache

import pytest

from repro.analysis import EquivalenceProver
from repro.core.config import DiversificationConfig
from repro.pipeline import ProgramBuild
from repro.serve import workers
from repro.serve.protocol import user_seed
from repro.workloads.registry import get_workload, workload_names

CONFIGS = {
    "uniform-50%": DiversificationConfig.uniform(0.50),
    "0-30%": DiversificationConfig.profile_guided(0.00, 0.30),
}


@lru_cache(maxsize=None)
def _build(name):
    workload = get_workload(name)
    build = ProgramBuild(workload.source, workload.name)
    return workload, build, build.link_baseline()


@lru_cache(maxsize=None)
def _adopt(name, config_label):
    """Adopt (name, config) in-process, exactly like a shard would."""
    workload, build, baseline = _build(name)
    config = CONFIGS[config_label]
    profile = (build.profile(workload.train_input)
               if config.requires_profile else None)
    key = (name, config_label)
    workers.shard_adopt(key, build.unit_blob(), config,
                        profile.to_json() if profile is not None else None,
                        None, baseline.identity_hash())
    return key, baseline


@pytest.mark.parametrize("name", workload_names())
@pytest.mark.parametrize("config_label", sorted(CONFIGS))
def test_round_trip(name, config_label):
    key, baseline = _adopt(name, config_label)
    user = f"rt-{name}"
    seed = user_seed(name, config_label, user)
    # The test derives the expected mapping independently from the
    # worker's own proof byproducts, then round-trips through the
    # public symbolication entry point.
    state = workers._SHARD_STATE[key]
    variant = workers._build_variant(state, seed)
    report, amap = state["prover"].address_map(variant)
    assert report.ok and amap is not None
    carried = {index: offset for offset, (index, is_nop)
               in amap.v2b.items() if not is_nop}
    records = baseline.instr_records
    probe_indices = list(range(0, len(records), max(1, len(records) // 40)))
    addresses = [amap.variant_text_base + carried[index]
                 for index in probe_indices]
    payload, _delta = workers.shard_symbolicate(key, user, addresses)
    assert payload["symbolicatable"]
    assert payload["seed"] == seed
    assert len(payload["frames"]) == len(addresses)
    for index, frame in zip(probe_indices, payload["frames"]):
        record = records[index]
        assert frame["status"] == "exact"
        assert frame["baseline_address"] == record.address
        assert frame["mnemonic"] == record.mnemonic
        expected_function = next(
            (fn for fn, (start, end) in baseline.function_ranges.items()
             if start <= record.address < end), None)
        assert frame["function"] == expected_function


def test_mid_instruction_and_out_of_text_are_unmapped():
    key, baseline = _adopt("429.mcf", "uniform-50%")
    payload, _delta = workers.shard_symbolicate(
        key, "unmapped-user", [0, baseline.text_base - 1, 1 << 30])
    assert payload["symbolicatable"]
    assert all(frame["status"] == "unmapped"
               for frame in payload["frames"])


def test_sec6_round_trip_is_exact():
    # §6 configs answer exactly through the generalized equivalence
    # map. The expected mapping is derived here with an independent
    # prover instance, never the worker's own state.
    workload, build, baseline = _build("429.mcf")
    key = ("429.mcf", "sec6-test")
    config = DiversificationConfig.uniform(
        0.3, basic_block_shifting=True, encoding_substitution=True,
        function_reordering=True)
    workers.shard_adopt(key, build.unit_blob(), config, None, None,
                        baseline.identity_hash())
    user = "sec6-user"
    seed = user_seed("429.mcf", "sec6-test", user)
    variant = workers._build_variant(workers._SHARD_STATE[key], seed)
    proof = EquivalenceProver(baseline, baseline_name="429.mcf") \
        .prove(variant)
    assert proof.ok
    records = baseline.instr_records
    probe_indices = list(range(0, len(records), max(1, len(records) // 40)))
    addresses = [proof.map.to_variant(records[index].address)
                 for index in probe_indices]
    # Include one proven-dead sled byte: it must attribute to its
    # function's entry, not refuse.
    assert proof.sled_spans
    addresses.append(proof.sled_spans[0][0])
    payload, _delta = workers.shard_symbolicate(key, user, addresses)
    assert payload["symbolicatable"]
    assert payload["seed"] == seed
    for index, frame in zip(probe_indices, payload["frames"]):
        record = records[index]
        assert frame["status"] in ("exact", "substituted", "inserted_nop")
        assert frame["baseline_address"] == record.address
        assert frame["mnemonic"] == record.mnemonic
        expected_function = next(
            (fn for fn, (start, end) in baseline.function_ranges.items()
             if start <= record.address < end), None)
        assert frame["function"] == expected_function
    sled_frame = payload["frames"][-1]
    assert sled_frame["status"] == "sled_nop"
    assert sled_frame["function"] is not None


def test_unprovable_variant_reports_unsymbolicatable():
    # The refusal path survives: when the rebuilt variant's proof
    # fails (identity skew injected at the baseline-hash level is
    # caught earlier, so corrupt the prover's verdict source — a config
    # adopted against a *different* program), answer a typed reason.
    workload, build, baseline = _build("429.mcf")
    other = _build("470.lbm")[1]
    key = ("429.mcf", "skew-sym-test")
    workers.shard_adopt(
        key, build.unit_blob(),
        DiversificationConfig.uniform(0.3, basic_block_shifting=True),
        None, None, baseline.identity_hash())
    # Swap the adopted baseline for a foreign one: every rebuilt
    # variant now fails its equivalence proof.
    state = workers._SHARD_STATE[key]
    state["baseline"] = other.link_baseline()
    state["eq_prover"] = None
    payload, _delta = workers.shard_symbolicate(
        key, "skew-user", [baseline.text_base])
    assert payload["symbolicatable"] is False
    assert payload["reason"] == "equivalence_proof_failed"
    assert payload["frames"] is None


def test_adopt_rejects_baseline_identity_skew():
    from repro.errors import ServeError

    workload, build, baseline = _build("429.mcf")
    with pytest.raises(ServeError):
        workers.shard_adopt(("429.mcf", "skew-test"), build.unit_blob(),
                            CONFIGS["uniform-50%"], None, None,
                            "not-the-real-identity")
