"""473.astar — pathfinding.

The original searches many paths over terrain maps. Its distinguishing
profile property (quoted in §3.1) is a *spread-out* count distribution:
the median block count sits orders of magnitude below the maximum, which
is exactly the case where the paper's logarithmic probability function
beats the linear one. The miniature runs repeated A* searches over a grid
with an array-heap open list: heap sift loops, neighbour expansion and
heuristic evaluation all run at different magnitudes.
"""

from repro.workloads.base import Workload
from repro.workloads.coldcode import bank_for

SOURCE = """
// 473.astar miniature: grid A* with a binary-heap open list.
int grid[1024];        // 32x32 costs
int g_score[1024];
int closed[1024];
int heap_node[2048];
int heap_key[2048];
int heap_size = 0;
int INF = 1000000000;

void build_grid(int seed) {
  int i;
  int x = seed;
  for (i = 0; i < 1024; i++) {
    x = (x * 1103515245 + 12345) & 2147483647;
    grid[i] = 1 + x % 9;
  }
}

void heap_push(int node, int key) {
  int i = heap_size;
  heap_node[i] = node;
  heap_key[i] = key;
  heap_size++;
  while (i > 0) {
    int parent = (i - 1) / 2;
    if (heap_key[parent] <= heap_key[i]) { break; }
    int tn = heap_node[parent]; heap_node[parent] = heap_node[i]; heap_node[i] = tn;
    int tk = heap_key[parent]; heap_key[parent] = heap_key[i]; heap_key[i] = tk;
    i = parent;
  }
}

int heap_pop() {
  int top = heap_node[0];
  heap_size--;
  heap_node[0] = heap_node[heap_size];
  heap_key[0] = heap_key[heap_size];
  int i = 0;
  while (1) {
    int left = 2 * i + 1;
    int right = 2 * i + 2;
    int smallest = i;
    if (left < heap_size && heap_key[left] < heap_key[smallest]) { smallest = left; }
    if (right < heap_size && heap_key[right] < heap_key[smallest]) { smallest = right; }
    if (smallest == i) { break; }
    int tn = heap_node[smallest]; heap_node[smallest] = heap_node[i]; heap_node[i] = tn;
    int tk = heap_key[smallest]; heap_key[smallest] = heap_key[i]; heap_key[i] = tk;
    i = smallest;
  }
  return top;
}

int heuristic(int node, int goal) {
  int nx = node % 32;  int ny = node / 32;
  int gx = goal % 32;  int gy = goal / 32;
  int dx = nx - gx;  if (dx < 0) { dx = -dx; }
  int dy = ny - gy;  if (dy < 0) { dy = -dy; }
  return dx + dy;
}

int astar(int start, int goal) {
  int i;
  for (i = 0; i < 1024; i++) { g_score[i] = INF; closed[i] = 0; }
  heap_size = 0;
  g_score[start] = 0;
  heap_push(start, heuristic(start, goal));
  int expanded = 0;
  while (heap_size > 0 && heap_size < 2000) {
    int node = heap_pop();
    if (node == goal) { return g_score[goal] + expanded; }
    if (closed[node]) { continue; }
    closed[node] = 1;
    expanded++;
    int nx = node % 32;
    int ny = node / 32;
    int d;
    for (d = 0; d < 4; d++) {
      int mx = nx; int my = ny;
      if (d == 0) { mx = nx + 1; }
      if (d == 1) { mx = nx - 1; }
      if (d == 2) { my = ny + 1; }
      if (d == 3) { my = ny - 1; }
      if (mx >= 0 && mx < 32 && my >= 0 && my < 32) {
        int next = my * 32 + mx;
        if (!closed[next]) {
          int cand = g_score[node] + grid[next];
          if (cand < g_score[next]) {
            g_score[next] = cand;
            heap_push(next, cand + heuristic(next, goal));
          }
        }
      }
    }
  }
  return expanded;
}

int main() {
  int searches = input();
  int seed = input();
  build_grid(seed);
  int total = 0;
  int s;
  int x = seed;
  for (s = 0; s < searches; s++) {
    x = (x * 1103515245 + 12345) & 2147483647;
    int start = x % 1024;
    x = (x * 1103515245 + 12345) & 2147483647;
    int goal = x % 1024;
    total = (total + astar(start, goal)) & 16777215;
  }
  print(total);
  return 0;
}
"""

WORKLOAD = Workload(
    name="473.astar",
    source=SOURCE + bank_for("473.astar"),
    train_input=(1, 19),
    ref_input=(5, 57),
    character="A* search: heap sifts + expansion at spread-out magnitudes",
)
