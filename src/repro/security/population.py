"""Population-wide gadget survival (paper Table 3).

An attacker who only needs to compromise *some* of the installed base
looks for the largest gadget set common to many diversified binaries,
ignoring the undiversified original. For a population of N variants we
count the gadgets — identified by ``(offset, normalized bytes)`` — that
appear in at least k of the N binaries.

The same baseline gadget can legitimately be counted at several offsets
(displaced to offset O1 in one subset of the population and O2 in
another), which is why the ≥2 column of Table 3 exceeds the original
binary's gadget count.
"""

from __future__ import annotations

from collections import Counter

from repro.security.survivor import gadget_signatures


def population_signatures(texts, **kwargs):
    """Per-variant gadget signature maps for a population of binaries."""
    return [gadget_signatures(text, **kwargs) for text in texts]


def population_survival(texts, thresholds=(2, 5, 12), *,
                        signatures=None, **kwargs):
    """Count gadgets shared by at least k variants, for each k.

    ``texts`` is the population's text sections; ``signatures`` may carry
    precomputed :func:`population_signatures`. Returns ``{k: count}``.
    """
    if signatures is None:
        signatures = population_signatures(texts, **kwargs)
    occurrences = Counter()
    for variant in signatures:
        occurrences.update(set(variant.items()))
    return {
        threshold: sum(1 for count in occurrences.values()
                       if count >= threshold)
        for threshold in thresholds
    }
