"""433.milc — lattice quantum chromodynamics.

The original multiplies small complex matrices at every site of a 4D
lattice: regular array traversal with a balanced load/multiply/store mix.
This miniature performs fixed-point 3×3 matrix-vector products per site
of a flattened lattice.
"""

from repro.workloads.base import Workload
from repro.workloads.coldcode import bank_for

SOURCE = """
// 433.milc miniature: 3x3 fixed-point matrix-vector products per site.
int lattice[1536];    // 512 sites x 3 components
int links[4608];      // 512 sites x 3x3 matrix
int result[1536];

void init(int sites, int seed) {
  int i;
  int x = seed;
  for (i = 0; i < sites * 3; i++) {
    x = (x * 1103515245 + 12345) & 2147483647;
    lattice[i] = (x % 2048) - 1024;
  }
  for (i = 0; i < sites * 9; i++) {
    x = (x * 1103515245 + 12345) & 2147483647;
    links[i] = (x % 256) - 128;
  }
}

void mult_su3_sites(int sites) {
  int s;
  // Hot loop: per-site 3x3 * 3 product, balanced loads and multiplies.
  for (s = 0; s < sites; s++) {
    int vb = s * 3;
    int mb = s * 9;
    int r;
    for (r = 0; r < 3; r++) {
      int acc = links[mb + r * 3] * lattice[vb]
              + links[mb + r * 3 + 1] * lattice[vb + 1]
              + links[mb + r * 3 + 2] * lattice[vb + 2];
      result[vb + r] = acc >> 7;
    }
  }
}

void feedback(int sites) {
  int i;
  for (i = 0; i < sites * 3; i++) {
    lattice[i] = (lattice[i] + result[i]) & 262143;
  }
}

int main() {
  int sites = input();
  int sweeps = input();
  int seed = input();
  if (sites > 512) { sites = 512; }
  init(sites, seed);
  int t;
  for (t = 0; t < sweeps; t++) {
    mult_su3_sites(sites);
    feedback(sites);
  }
  int sum = 0;
  int i;
  for (i = 0; i < sites * 3; i++) {
    sum = (sum + lattice[i]) & 16777215;
  }
  print(sum);
  return 0;
}
"""

WORKLOAD = Workload(
    name="433.milc",
    source=SOURCE + bank_for("433.milc"),
    train_input=(128, 4, 77),
    ref_input=(512, 10, 23),
    character="regular lattice sweeps: balanced loads/multiplies/stores",
)
