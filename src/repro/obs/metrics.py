"""Process-wide named counters and histograms for the pipeline.

This generalizes the hand-rolled ``_GLOBAL_STATS`` hit/miss/put dict
that :mod:`repro.artifacts` grew in PR 2: one registry of named
counters (monotonic integers: NOPs inserted per block-heat class,
cache hits/misses/puts, link-plan fallbacks, verify findings, recorded
warnings) and histograms (count/total/min/max summaries: per-stage
wall-clock seconds, simulated instructions per run).

Pool workers accumulate into their own process-local registry; a chunk
boundary takes a :func:`snapshot` before the work and ships the
:func:`delta_since` back to the parent, which folds it in with
:func:`merge_delta`. The delta is a **named** structure
(:class:`MetricsDelta`, keyed by metric name) — the previous protocol
was a bare ``(hits, misses, puts)`` tuple whose meaning lived in
positional convention on both sides of the process boundary, so a
reordering on either side silently swapped hits and misses.

Everything here is plain dict arithmetic: no locks (the simulator and
pipeline are single-threaded per process; cross-process aggregation
goes through pickled deltas), no dependencies, O(1) per increment.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: name → int. Monotonic within a process between resets.
_COUNTERS = {}

#: name → [count, total, minimum, maximum].
_HISTOGRAMS = {}


def inc(name, value=1):
    """Add ``value`` to counter ``name`` (creating it at zero)."""
    _COUNTERS[name] = _COUNTERS.get(name, 0) + value


def observe(name, value):
    """Record one sample into histogram ``name``."""
    stats = _HISTOGRAMS.get(name)
    if stats is None:
        _HISTOGRAMS[name] = [1, value, value, value]
        return
    stats[0] += 1
    stats[1] += value
    if value < stats[2]:
        stats[2] = value
    if value > stats[3]:
        stats[3] = value


def counters():
    """Snapshot of every counter: ``{name: value}``."""
    return dict(_COUNTERS)


def histograms():
    """Snapshot of every histogram:
    ``{name: {"count", "total", "min", "max", "mean"}}``."""
    return {
        name: {"count": stats[0], "total": stats[1],
               "min": stats[2], "max": stats[3],
               "mean": stats[1] / stats[0]}
        for name, stats in _HISTOGRAMS.items()
    }


def reset():
    """Zero every counter and histogram (test/bench isolation)."""
    _COUNTERS.clear()
    _HISTOGRAMS.clear()


def zero(name):
    """Remove one counter (and/or histogram) by exact name."""
    _COUNTERS.pop(name, None)
    _HISTOGRAMS.pop(name, None)


@dataclass
class MetricsDelta:
    """A picklable, *named* increment of the registry.

    ``counters`` maps counter name → increment; ``histograms`` maps
    histogram name → ``[count, total, min, max]``. Every field is keyed
    by metric name, so the parent folds a worker's delta in without any
    positional agreement — the fix for the ``record_cache_stats(*delta)``
    tuple-ordering hazard.
    """

    counters: dict = field(default_factory=dict)
    histograms: dict = field(default_factory=dict)

    def __bool__(self):
        return bool(self.counters or self.histograms)


def snapshot():
    """An opaque marker of the registry's current totals.

    Pass it to :func:`delta_since` after a unit of work to get that
    work's :class:`MetricsDelta`.
    """
    return MetricsDelta(
        counters=dict(_COUNTERS),
        histograms={name: list(stats)
                    for name, stats in _HISTOGRAMS.items()})


def delta_since(before):
    """The registry's change since ``before`` (a :func:`snapshot`)."""
    delta = MetricsDelta()
    for name, value in _COUNTERS.items():
        change = value - before.counters.get(name, 0)
        if change:
            delta.counters[name] = change
    for name, stats in _HISTOGRAMS.items():
        prior = before.histograms.get(name)
        if prior is None:
            delta.histograms[name] = list(stats)
        elif stats[0] > prior[0]:
            # min/max of only-the-new samples are unrecoverable from
            # running summaries; the merged extremes below stay correct
            # because a window's extremes never exceed the totals'.
            delta.histograms[name] = [stats[0] - prior[0],
                                      stats[1] - prior[1],
                                      stats[2], stats[3]]
    return delta


def merge_delta(delta):
    """Fold a (worker's) :class:`MetricsDelta` into this process."""
    for name, value in delta.counters.items():
        inc(name, value)
    for name, stats in delta.histograms.items():
        existing = _HISTOGRAMS.get(name)
        if existing is None:
            _HISTOGRAMS[name] = list(stats)
            continue
        existing[0] += stats[0]
        existing[1] += stats[1]
        if stats[2] < existing[2]:
            existing[2] = stats[2]
        if stats[3] > existing[3]:
            existing[3] = stats[3]


def stage_timings():
    """Per-stage wall-clock summaries from the ``stage.*`` histograms.

    Returns ``{stage: {"calls", "seconds", "mean", "max"}}`` — the
    section ``repro-diversify check/verify`` prints and embeds in
    ``--json``. Stages executed inside pool workers are included
    because worker deltas fold their ``stage.*`` histograms back into
    the parent registry.
    """
    prefix = "stage."
    return {
        name[len(prefix):]: {
            "calls": stats["count"],
            "seconds": round(stats["total"], 6),
            "mean": round(stats["mean"], 6),
            "max": round(stats["max"], 6),
        }
        for name, stats in histograms().items()
        if name.startswith(prefix)
    }


def render(counter_prefixes=()):
    """Text lines for the CLI's counter section.

    ``counter_prefixes`` filters to counters whose name starts with any
    of the given prefixes (empty = all), sorted by name.
    """
    lines = []
    for name in sorted(_COUNTERS):
        if counter_prefixes and not name.startswith(
                tuple(counter_prefixes)):
            continue
        lines.append(f"{name} = {_COUNTERS[name]}")
    return lines
