"""Compile-once / diversify-many: the precomputed :class:`LinkPlan`.

For one (runtime unit, program unit) pair, every diversified variant
shares almost all of the linker's work: the non-NOP instruction
encodings, the label/symbol skeleton, the data-section layout, the set of
relocation sites, and the candidate branch widths are identical across
the whole population — only the per-seed deltas (inserted NOP bytes,
flipped dual-ModRM encodings, basic-block-shift sleds, the function
permutation) and the branch displacements they push around differ.
:func:`build_link_plan` pays that shared work exactly once;
:meth:`LinkPlan.apply` then links one variant with only the per-seed
work left:

1. **Stream merge** — walk each variant function's items against its
   planned span (functions are matched *by name*, so a reordered tiling
   walks the same spans in a different order). Carried items match the
   plan *by object identity*; the per-seed deltas each have a recognized
   shape:

   - an **inserted NOP** (pre-encoded Table-1 candidate) splices in as
     dynamic bytes, exactly as before;
   - an **encoding substitution** (same mnemonic/operands, flipped
     ``alternate_encoding``) consumes its planned slot using the
     alternate dual-ModRM bytes pre-encoded at plan time;
   - a **basic-block-shift sled** is handled generically as dynamic
     items: an unplanned ``LabelDef`` pins a fresh merged offset, and an
     unplanned relative branch targeting such a label joins the
     relaxation as a dynamic branch (initial width 8, like a full
     ``link()``).

   Anything else raises :class:`~repro.errors.PlanMismatchError` and the
   caller falls back to a full :func:`~repro.backend.linker.link`.
2. **Incremental branch relaxation** — planned branch widths start from
   the plan's no-NOP fixpoint instead of all-short. Diversification only
   *inserts* bytes within a function, so every intra-function
   displacement can only grow and the baseline fixpoint stays a sound
   lower bound — and it survives function reordering whenever every
   non-``call`` branch is intra-function (``call`` is always rel32),
   which :func:`build_link_plan` checks once; a permuted tiling of a
   plan that fails that check is a :class:`PlanMismatchError`. Dynamic
   sled branches start short and widen with everything else in the same
   monotone loop.
3. **Byte splicing** — pre-encoded instruction bytes (original or
   alternate-ModRM) are spliced with the variant's NOP encodings; only
   branch displacements and the ``disp32`` field of data-symbol
   relocations (the data section floats behind the text) are
   re-materialized per variant.

The output is bit-identical to ``link([*fixed_units, variant])`` —
same text bytes, symbols, data image, and ``identity_hash()`` — which
``tests/backend/test_linkplan.py`` and ``test_linkplan_sec6.py`` enforce
across every registered workload and every §6 config. Instruction
records are materialized lazily: population studies (gadget scans,
differential validation) never touch them, so a variant build does not
pay for them unless the analytic cost engine asks.

Variants that exercised a §6 feature additionally carry a lazy
:class:`PlanProvenance` on ``LinkedBinary.provenance``: the merge walk
already knows which emitted record is carried, a riding NOP, or
proven-dead sled interior, so it can hand the lockstep batch engine
(:mod:`repro.sim.batch`) a count plan in the equivalence-proof format
without re-proving the variant. Provenance never survives pickling (the
artifact cache stores plain binaries).
"""

from __future__ import annotations

import weakref
from itertools import accumulate

from repro.errors import EncodingError, LinkError, PlanMismatchError
from repro.obs.trace import span
from repro.backend.linker import (
    DEFAULT_TEXT_BASE, InstrRecord, LinkedBinary, _align, _branch_sizes,
    _encode_memoized, _fixed_size,
)
from repro.backend.objfile import LabelDef
from repro.x86.instructions import (
    Instr, JCC_MNEMONICS, Label, Mem, Rel,
)

#: Entry kinds in the planned stream.
_KIND_FIXED = 0    # non-branch instruction: pre-encoded bytes
_KIND_LABEL = 1    # label definition: zero bytes, pins an offset
_KIND_BRANCH = 2   # relative branch: bytes synthesized per variant

#: Negative merged-stream codes for per-variant dynamic items. An
#: inserted Table-1 NOP encodes its byte size into the code itself —
#: ``-(2 + size)`` — so the sentinel-extended size lookup resolves
#: dynamic NOPs in the same C-level map as every planned entry.
_DYN_LABEL = -1    # unplanned LabelDef (sled skip label): zero bytes
_DYN_BRANCH = -2   # unplanned branch to a dynamic label (sled skip jump)
_DYN_NOP_TOP = -3  # NOP codes are -(2 + size): this value and below
_DYN_NOP_MAX = 15  # longest NOP size a code can carry (max x86 length)

#: Shared empty flip set for the (common) substitution-free delta.
_EMPTY_SET = frozenset()

#: Two distinct, always-disp32 placeholder addresses used to locate the
#: ``disp32`` field inside a relocated instruction's encoding by diffing.
_RELOC_PROBE_A = 0x08000000
_RELOC_PROBE_B = 0x09000000

#: The generalized plan's per-variant feature slots; `plan_features`
#: returns the subset a config's variants may exercise.
FEATURE_SUBSTITUTION = "substitution"
FEATURE_BBSHIFT = "bbshift"
FEATURE_REORDERING = "reordering"

#: Count-plan entry kinds, value-identical to the constants in
#: :mod:`repro.analysis.equivalence` (kept literal here so the backend
#: does not import the analysis layer).
_PLAN_CARRIED = "carried"
_PLAN_NOP = "nop"
_PLAN_SLED_JMP = "sled_jmp"
_PLAN_SLED_NOP = "sled_nop"


class _LazyRecords(list):
    """A record list materialized on first access.

    Population builds keep only text bytes and signatures; deferring
    :class:`InstrRecord` construction removes ~a third of the per-variant
    apply cost for them, while the analytic cost engine still sees a
    normal list. Pickling (the artifact cache) forces materialization so
    cached binaries round-trip as plain lists.
    """

    __slots__ = ("_thunk",)

    def __init__(self, thunk):
        super().__init__()
        self._thunk = thunk

    def _force(self):
        if self._thunk is not None:
            thunk, self._thunk = self._thunk, None
            self.extend(thunk())
        return self

    def __iter__(self):
        return list.__iter__(self._force())

    def __len__(self):
        return list.__len__(self._force())

    def __getitem__(self, index):
        return list.__getitem__(self._force(), index)

    def __eq__(self, other):
        return list.__eq__(self._force(), other)

    __hash__ = None

    def __reduce__(self):
        return (list, (list(self._force()),))


def plan_features(config):
    """Which generalized-plan feature slots ``config`` may exercise.

    Returns a frozenset drawn from :data:`FEATURE_SUBSTITUTION`,
    :data:`FEATURE_BBSHIFT` and :data:`FEATURE_REORDERING`. Pure
    NOP-insertion configs (any probability model, with or without the
    XCHG candidates) need none — the empty set is exactly the
    "NOP-transparent" predicate the provers key on: such variants are
    the planned stream plus Table-1 NOPs and admit the cheap
    transparency proof, while any §6 feature requires the generalized
    equivalence proof. Every config routes through
    :meth:`LinkPlan.apply` regardless; an unexpected stream shape is
    detected there (:class:`~repro.errors.PlanMismatchError`) and the
    caller falls back to a full ``link()``.
    """
    features = set()
    if config.encoding_substitution:
        features.add(FEATURE_SUBSTITUTION)
    if config.basic_block_shifting:
        features.add(FEATURE_BBSHIFT)
    if config.function_reordering:
        features.add(FEATURE_REORDERING)
    return frozenset(features)


class PlanProvenance:
    """Link-time metadata tying one applied variant back to its plan.

    ``features`` is the (nonempty) set of §6 feature slots the variant
    actually exercised; ``plan`` is the :class:`LinkPlan` that applied
    it. :attr:`count_plan` lazily materializes a per-record execution
    count plan in the equivalence-proof format (``("carried", b_index)``
    / ``("nop", b_index)`` / ``("sled_jmp", b_index, subtract)`` /
    ``("sled_nop",)``) that :class:`repro.sim.batch.PopulationSimulator`
    consumes to derive §6 population results without re-proving each
    variant; it is ``None`` when the variant's shape has no derivable
    count plan (the batch engine then falls back to a real proof).
    Provenance is in-process only — pickling a ``LinkedBinary`` drops
    it.
    """

    __slots__ = ("plan", "features", "_thunk", "_count_plan", "_built")

    def __init__(self, plan, features, thunk):
        self.plan = plan
        self.features = features
        self._thunk = thunk
        self._count_plan = None
        self._built = False

    @property
    def count_plan(self):
        if not self._built:
            thunk, self._thunk = self._thunk, None
            self._count_plan = thunk()
            self._built = True
        return self._count_plan

    def baseline_identity(self):
        """Identity hash of the plan's baseline (memoized on the plan)."""
        return self.plan.baseline_identity()

    def __repr__(self):
        return (f"PlanProvenance(features={sorted(self.features)}, "
                f"plan={self.plan!r})")


def probe_field_offset(probe_a, probe_b, field_a, field_b):
    """The unique offset where two probe encodings carry their values.

    The two-probe disp32-location primitive shared by the incremental
    linker and the transparency stream prover: given the same
    instruction encoded with two distinct placeholder addresses, the
    disp32 field is the one offset where ``probe_a`` holds ``field_a``
    *and* ``probe_b`` holds ``field_b`` (a value search, not a byte
    diff — probe addresses sharing low bytes would make a diff find
    only part of the field). Returns ``None`` when no offset — or more
    than one — qualifies.
    """
    sites = [offset for offset in range(len(probe_a) - 3)
             if probe_a[offset:offset + 4] == field_a
             and probe_b[offset:offset + 4] == field_b]
    if len(sites) != 1:
        return None
    return sites[0]


def _locate_disp32(instr, symbol_operands, addend):
    """Byte offset of the resolved ``disp32`` field in the encoding.

    Encodes the instruction twice with two distinct placeholder
    addresses; :func:`probe_field_offset` finds the field. Returns
    (offset, encoding with probe A in place).
    """
    probe_a = _encode_probe(instr, symbol_operands, _RELOC_PROBE_A)
    probe_b = _encode_probe(instr, symbol_operands, _RELOC_PROBE_B)
    if len(probe_a) != len(probe_b):
        raise LinkError(
            f"relocated encoding of {instr!r} is not size-stable")
    field_a = ((_RELOC_PROBE_A + addend) & 0xFFFF_FFFF).to_bytes(4, "little")
    field_b = ((_RELOC_PROBE_B + addend) & 0xFFFF_FFFF).to_bytes(4, "little")
    offset = probe_field_offset(probe_a, probe_b, field_a, field_b)
    if offset is None:
        raise LinkError(
            f"cannot locate disp32 field in {instr!r} encoding")
    return offset, probe_a


def _encode_probe(instr, symbol_operands, address):
    operands = []
    for index, operand in enumerate(instr.operands):
        if index in symbol_operands:
            operands.append(Mem(base=operand.base, index=operand.index,
                                scale=operand.scale,
                                disp=address + operand.disp))
        else:
            operands.append(operand)
    clone = Instr(instr.mnemonic, *operands,
                  alternate_encoding=instr.alternate_encoding)
    return _encode_memoized(clone)


class LinkPlan:
    """Precomputed shared linking state; see the module docstring.

    Use :func:`build_link_plan` to construct. The plan is immutable and
    safe to share between any number of :meth:`apply` calls (they touch
    only local state), but not across processes building *different*
    units.
    """

    def __init__(self, units, text_base, data_alignment):
        self.text_base = text_base
        self.data_alignment = data_alignment
        self._baseline_id = None
        # id(flip object) -> (weakref, plan idx) for flips that already
        # passed apply()'s substitution-slot validation: the diversifier
        # shares one flip clone per original across a population's
        # seeds, so each clone is fully checked once per plan.
        self._flip_ok = {}
        self._build(list(units))

    # -- plan construction (once per program) --------------------------------

    def _build(self, units):
        from repro.core.substitution import is_substitutable

        if not units:
            raise LinkError("no units to plan")
        self._fixed_units = units[:-1]
        self._unit = units[-1]

        # Flatten exactly as link() does, keeping the original item
        # objects for the identity matching done in apply().
        items = []            # original LabelDef/Instr objects
        kinds = []            # _KIND_*
        spans = []            # (function name, start plan idx, end plan idx)
        seen_names = set()
        self._static_count = 0
        for unit_index, unit in enumerate(units):
            for function_code in unit.functions:
                if function_code.name in seen_names:
                    raise LinkError(
                        f"duplicate function {function_code.name!r}")
                seen_names.add(function_code.name)
                span_start = len(items)
                for item in function_code.items:
                    items.append(item)
                    if isinstance(item, LabelDef):
                        kinds.append(_KIND_LABEL)
                    elif item.is_relative_branch:
                        kinds.append(_KIND_BRANCH)
                    else:
                        kinds.append(_KIND_FIXED)
                spans.append((function_code.name, span_start, len(items)))
            if unit_index < len(units) - 1:
                self._static_count = len(items)
        self._items = items
        self._kinds = kinds
        self._spans = spans

        static_count = self._static_count
        self._fixed_spans = [entry for entry in spans
                             if entry[1] < static_count]
        # The permutation layer: program-unit spans matched by function
        # name, and the planned layout order to detect reordered tilings.
        self._span_by_name = {name: (start, end)
                              for name, start, end in spans
                              if start >= static_count}
        self._program_order = tuple(name for name, start, _ in spans
                                    if start >= static_count)

        label_index = {}
        for index, item in enumerate(items):
            if kinds[index] == _KIND_LABEL:
                if item.name in label_index:
                    raise LinkError(f"duplicate label {item.name!r}")
                label_index[item.name] = index
        self._label_index = label_index
        if "_start" not in label_index:
            raise LinkError("no _start entry point")

        # Data-section skeleton: per-symbol offsets relative to the
        # (variant-dependent) data base, plus the nonzero initial words.
        symbols_rel = {}
        words_rel = []
        cursor = 0
        for unit in units:
            for symbol, words in unit.data_symbols.items():
                if symbol in symbols_rel:
                    raise LinkError(f"duplicate data symbol {symbol!r}")
                symbols_rel[symbol] = cursor
                for word_index, value in enumerate(words):
                    if value:
                        words_rel.append((cursor + 4 * word_index, value))
                cursor += 4 * len(words)
        self._data_symbols_rel = symbols_rel
        self._data_words_rel = words_rel
        self._data_size = cursor

        # Pre-encode every fixed instruction. Instructions that touch a
        # data symbol become relocation sites: their bytes carry a probe
        # address whose disp32 field is patched per variant.
        # Substitutable instructions (dual-ModRM reg,reg forms) also get
        # their *alternate* encoding pre-computed — the substitution
        # slots apply() consumes for §6 encoding substitution.
        pre_bytes = [None] * len(items)
        relocs = {}      # plan idx -> (disp byte offset, symbol rel + addend)
        record_instrs = [None] * len(items)
        sizes = [0] * len(items)
        alt_bytes = {}   # plan idx -> flipped dual-ModRM encoding
        alt_instrs = {}  # plan idx -> shared record Instr for the flip
        for index, item in enumerate(items):
            if kinds[index] != _KIND_FIXED:
                continue
            symbol_operands = {}
            for op_index, operand in enumerate(item.operands):
                if isinstance(operand, Mem) and operand.symbol is not None:
                    if operand.symbol not in symbols_rel:
                        raise LinkError(
                            f"undefined data symbol {operand.symbol!r}")
                    symbol_operands[op_index] = operand
            if item.is_inserted_nop and item.encoding is not None:
                encoding = item.encoding
                resolved = Instr(item.mnemonic, *item.operands,
                                 block_id=item.block_id,
                                 is_inserted_nop=True)
                resolved.encoding = encoding
                resolved.size = len(encoding)
            elif symbol_operands:
                if len(symbol_operands) > 1:
                    raise PlanMismatchError(
                        f"{item!r} has multiple data-symbol operands")
                (op_index, operand), = symbol_operands.items()
                disp_offset, encoding = _locate_disp32(
                    item, symbol_operands, operand.disp)
                relocs[index] = (
                    disp_offset,
                    symbols_rel[operand.symbol] + operand.disp,
                    op_index)
                resolved = None  # record instr materialized per variant
            else:
                resolved = Instr(item.mnemonic, *item.operands,
                                 block_id=item.block_id,
                                 is_inserted_nop=item.is_inserted_nop,
                                 alternate_encoding=item.alternate_encoding)
                encoding = _encode_memoized(resolved)
                resolved.encoding = encoding
                resolved.size = len(encoding)
                if is_substitutable(item):
                    flipped = Instr(
                        item.mnemonic, *item.operands,
                        block_id=item.block_id,
                        is_inserted_nop=item.is_inserted_nop,
                        alternate_encoding=not item.alternate_encoding)
                    try:
                        alternate = _encode_memoized(flipped)
                    except EncodingError:
                        alternate = None
                    if (alternate is not None
                            and len(alternate) == len(encoding)):
                        flipped.encoding = alternate
                        flipped.size = len(alternate)
                        alt_bytes[index] = alternate
                        alt_instrs[index] = flipped
            expected = (item.size
                        if item.is_inserted_nop and item.encoding is not None
                        else _fixed_size(item))
            if len(encoding) != expected:
                raise LinkError(f"size drift for {item!r}: "
                                f"{len(encoding)} != {expected}")
            pre_bytes[index] = encoding
            record_instrs[index] = resolved
            sizes[index] = len(encoding)
        self._pre_bytes = pre_bytes
        self._relocs = relocs
        self._record_instrs = record_instrs
        self._fixed_sizes = sizes
        self._alt_bytes = alt_bytes
        self._alt_instrs = alt_instrs

        # Branch table. Widths start at link()'s initial assignment and
        # are widened to the no-NOP fixpoint, the sound starting point
        # for every variant's incremental relaxation.
        b_plan = []       # plan idx per branch ordinal
        b_target = []     # target label's plan idx
        b_widths = []     # 8 or 32 (call: always 32)
        for index, item in enumerate(items):
            if kinds[index] != _KIND_BRANCH:
                continue
            target = item.operands[0]
            if not isinstance(target, Label):
                raise LinkError(f"branch without label operand: {item!r}")
            if target.name not in label_index:
                raise LinkError(f"undefined label {target.name!r}")
            b_plan.append(index)
            b_target.append(label_index[target.name])
            b_widths.append(32 if item.mnemonic == "call" else 8)
        self._branch_plan = b_plan
        self._branch_target = b_target
        self._branch_items = [items[index] for index in b_plan]
        self._plan_to_branch = {p: k for k, p in enumerate(b_plan)}

        # Reorder safety: the baseline width fixpoint stays a sound
        # lower bound under function permutation iff every short-capable
        # (non-call) branch is intra-function — a permutation then never
        # changes any displacement such a branch can see. Checked once
        # here; apply() refuses permuted tilings of unsafe plans.
        func_of = [None] * len(items)
        for ordinal, (_name, start, end) in enumerate(spans):
            for index in range(start, end):
                func_of[index] = ordinal
        self._reorder_safe = all(
            items[p].mnemonic == "call" or func_of[p] == func_of[t]
            for p, t in zip(b_plan, b_target))

        # Baseline record ordinals (provenance): the plan's baseline
        # emits one record per non-label item, in plan order.
        record_ordinal = [-1] * len(items)
        ordinal = 0
        for index in range(len(items)):
            if kinds[index] != _KIND_LABEL:
                record_ordinal[index] = ordinal
                ordinal += 1
        self._record_ordinal = record_ordinal
        first_ordinal = {}
        for name, start, end in spans:
            first_ordinal[name] = next(
                (record_ordinal[index] for index in range(start, end)
                 if kinds[index] != _KIND_LABEL), None)
        self._first_record_ordinal = first_ordinal

        # No-NOP width fixpoint (identity mapping: merged == plan).
        self._baseline_widths = self._relax(
            self._merged_sizes(b_widths), b_widths, b_plan,
            b_target, self._branch_items)

        # Splice acceleration: the bytes of every fixed item
        # concatenated in plan order with a cumulative offset per plan
        # index, so a contiguous branch/label-free plan range splices
        # as one bytes slice. Relocation sites contribute their probe
        # bytes and substitution slots their planned encoding — both
        # are patched in place afterwards (same size by construction),
        # so neither breaks a stretch. ``_next_impure[p]`` is the first
        # index >= p that is not fixed (a label or branch).
        pure = [False] * len(items)
        blob_offset = [0] * (len(items) + 1)
        blob_parts = []
        total = 0
        for index in range(len(items)):
            blob_offset[index] = total
            if kinds[index] == _KIND_FIXED:
                pure[index] = True
                blob_parts.append(pre_bytes[index])
                total += sizes[index]
        blob_offset[len(items)] = total
        self._pure_blob = b"".join(blob_parts)
        self._blob_offset = blob_offset
        next_impure = [len(items)] * (len(items) + 1)
        for index in range(len(items) - 1, -1, -1):
            next_impure[index] = (next_impure[index + 1] if pure[index]
                                  else index)
        self._next_impure = next_impure
        # Size lookup with a sentinel tail: merged-stream codes index
        # past the plan entries, so _DYN_LABEL/-1 and _DYN_BRANCH/-2
        # land on zeros while a NOP code -(2 + size) lands on its own
        # size — one C-level map resolves the whole stream, with no
        # per-variant patching for dynamic NOPs. Branch entries carry
        # their baseline-fixpoint size — the sound lower bound every
        # variant's relaxation starts from — so apply() never
        # re-derives them.
        lookup = list(sizes)
        for ordinal, index in enumerate(b_plan):
            lookup[index] = _branch_sizes(
                items[index], self._baseline_widths[ordinal])
        self._sizes_lookup = (lookup
                              + list(range(_DYN_NOP_MAX, 0, -1))
                              + [0, 0])

    def _merged_sizes(self, widths):
        sizes = list(self._fixed_sizes)
        for ordinal, index in enumerate(self._branch_plan):
            sizes[index] = _branch_sizes(self._items[index], widths[ordinal])
        return sizes

    @staticmethod
    def _relax(msizes, widths, b_merged, b_target_merged, b_instrs):
        """Monotone widening to fixpoint over one merged stream.

        All branch arrays are parallel over branch ordinals — the
        planned branches first, any per-variant dynamic branches (sled
        skip jumps) appended after them. ``msizes`` is mutated in
        place; returns the final widths list.
        """
        short = [k for k, width in enumerate(widths) if width == 8]
        while True:
            offsets = list(accumulate(msizes, initial=0))
            changed = False
            still_short = []
            for k in short:
                merged = b_merged[k]
                displacement = (offsets[b_target_merged[k]]
                                - (offsets[merged] + msizes[merged]))
                if -128 <= displacement <= 127:
                    still_short.append(k)
                else:
                    widths[k] = 32
                    msizes[merged] = _branch_sizes(b_instrs[k], 32)
                    changed = True
            if not changed:
                return widths
            short = still_short

    # -- per-variant work ----------------------------------------------------

    def apply(self, unit, *, records="lazy"):
        """Link one diversified variant of the planned program unit.

        ``unit`` must be the planned unit's stream plus the recognized
        per-seed deltas (inserted NOPs, flipped dual-ModRM encodings,
        basic-block-shift sleds, a function permutation — what
        :func:`repro.core.variants.diversify_unit` produces for every
        supported config); anything else raises
        :class:`~repro.errors.PlanMismatchError`. ``records="eager"``
        materializes instruction records immediately (the default defers
        them until first access).

        Returns a :class:`~repro.backend.linker.LinkedBinary` that is
        bit-identical to ``link([*fixed_units, unit])``. When the
        variant exercised a §6 feature, the binary carries a lazy
        :class:`PlanProvenance` for the batch engine.
        """
        with span("link", mode="incremental"):
            return self._apply(unit, records=records)

    def _apply(self, unit, *, records):
        if unit.data_symbols != self._unit.data_symbols:
            raise PlanMismatchError("variant changed data symbols")

        items = self._items
        kinds = self._kinds
        static_count = self._static_count
        plan_count = len(items)
        span_by_name = self._span_by_name
        alt_bytes = self._alt_bytes

        permuted = (tuple(fc.name for fc in unit.functions)
                    != self._program_order)
        if permuted and not self._reorder_safe:
            raise PlanMismatchError(
                "variant permutes functions but the plan has a "
                "cross-function short-capable branch")

        # 1. Merge: static prefix verbatim, then each variant function
        # walked against its planned span (matched by name, so a
        # reordered tiling reuses the same spans in permuted order).
        # Carried items are batched into *runs* — the walk only counts
        # while the variant tracks the plan, and flushes one
        # extend/slice-assign per run when it deviates — so the
        # per-item cost of the overwhelmingly common case is a single
        # identity check.
        mitems = items[:static_count]
        mplan = list(range(static_count))
        plan_to_merged = [0] * (plan_count + 1)
        for index in range(static_count):
            plan_to_merged[index] = index
        mitems_append = mitems.append
        mplan_append = mplan.append
        subst = {}          # merged idx -> plan idx (substitution slots)
        dyn_labels = {}     # unplanned label name -> merged idx
        dyn_branches = []   # (merged idx, Instr) for unplanned branches
        dyn_emit = []       # (merged idx, bytes|None): one row per
                            # dynamic NOP (pre-encoded) or sled branch
                            # (None: bytes synthesized post-relax), in
                            # merged order; labels emit nothing
        runs = ([(0, 0, static_count)] if static_count else [])
        merged_spans = []   # (name, merged start, merged end), emit order
        seen = set()
        for function_code in unit.functions:
            name = function_code.name
            plan_span = span_by_name.get(name)
            if plan_span is None or name in seen:
                raise PlanMismatchError(
                    f"variant function {name!r} is not a planned "
                    f"program function (or repeats)")
            seen.add(name)
            plan_cursor, span_end = plan_span
            merged_start = len(mplan)
            delta = getattr(function_code, "plan_delta", None)
            if delta is not None:
                # Fast path: the diversifier recorded which item indices
                # it inserted and which it flipped, so the merge never
                # identity-checks carried items one by one. The variant's
                # item list IS the function's merged segment — same
                # length, same order — so the plan slice is copied
                # wholesale and sentinels are spliced in at the recorded
                # positions. The record is validated as it is consumed —
                # counts must close, insertions must be in-bounds and
                # ascending, each carried segment's head must be the
                # planned object (or a recorded flip), and every flip
                # must match a pre-encoded substitution slot — so a
                # stale or foreign record degrades to
                # PlanMismatchError, never to wrong bytes.
                fitems = function_code.items
                fcount = len(fitems)
                inserted, flipped = delta
                if fcount - len(inserted) != span_end - plan_cursor:
                    raise PlanMismatchError(
                        f"variant function {name!r} diverges from its "
                        f"recorded diversification delta")
                mfn = list(range(plan_cursor, span_end))
                mfn_insert = mfn.insert
                dyn_emit_append = dyn_emit.append
                runs_append = runs.append
                flipped_set = set(flipped) if flipped else _EMPTY_SET
                prev = 0
                pc = plan_cursor
                for idx in inserted:
                    if idx < prev or idx >= fcount:
                        raise PlanMismatchError(
                            f"variant function {name!r} records an "
                            f"out-of-order insertion")
                    item = fitems[idx]
                    if (isinstance(item, Instr) and item.is_inserted_nop
                            and item.encoding is not None):
                        size = item.size
                        if (size.__class__ is not int
                                or not 0 < size <= _DYN_NOP_MAX):
                            raise PlanMismatchError(
                                f"variant function {name!r} inserts a "
                                f"NOP with unsized or oversized "
                                f"encoding")
                        dyn_emit_append(
                            (merged_start + idx, item.encoding))
                        mfn_insert(idx, -2 - size)
                    elif isinstance(item, LabelDef):
                        if (item.name in self._label_index
                                or item.name in dyn_labels):
                            raise PlanMismatchError(
                                f"variant redefines label {item.name!r}")
                        dyn_labels[item.name] = merged_start + idx
                        mfn_insert(idx, _DYN_LABEL)
                    elif (isinstance(item, Instr)
                          and item.is_relative_branch
                          and isinstance(item.operands[0], Label)
                          and item.operands[0].name
                          not in self._label_index):
                        dyn_branches.append((merged_start + idx, item))
                        dyn_emit_append((merged_start + idx, None))
                        mfn_insert(idx, _DYN_BRANCH)
                    else:
                        raise PlanMismatchError(
                            f"variant inserts unplanned item {item!r}")
                    seg = idx - prev
                    if seg:
                        if (fitems[prev] is not items[pc]
                                and prev not in flipped_set):
                            raise PlanMismatchError(
                                f"variant function {name!r} diverges "
                                f"from its recorded diversification "
                                f"delta")
                        merged = merged_start + prev
                        runs_append((merged, pc, pc + seg))
                        plan_to_merged[pc:pc + seg] = range(
                            merged, merged + seg)
                        pc += seg
                    prev = idx + 1
                seg = fcount - prev
                if seg:
                    if (fitems[prev] is not items[pc]
                            and prev not in flipped_set):
                        raise PlanMismatchError(
                            f"variant function {name!r} diverges from "
                            f"its recorded diversification delta")
                    merged = merged_start + prev
                    runs_append((merged, pc, pc + seg))
                    plan_to_merged[pc:pc + seg] = range(
                        merged, merged + seg)
                flip_ok = self._flip_ok
                for f in flipped:
                    item = fitems[f]
                    plan_idx = mfn[f] if 0 <= f < fcount else -1
                    entry = flip_ok.get(id(item))
                    if (entry is not None and entry[1] == plan_idx
                            and entry[0]() is item):
                        subst[merged_start + f] = plan_idx
                        continue
                    alternate = (alt_bytes.get(plan_idx)
                                 if plan_idx >= 0 else None)
                    if alternate is None:
                        raise PlanMismatchError(
                            f"variant function {name!r} records a flip "
                            f"with no matching substitution slot")
                    planned = items[plan_idx]
                    if (item.__class__ is not Instr
                            or item.is_inserted_nop
                            or item.alternate_encoding
                            == planned.alternate_encoding
                            or item.mnemonic != planned.mnemonic
                            or item.operands != planned.operands
                            or item.block_id != planned.block_id):
                        raise PlanMismatchError(
                            f"variant function {name!r} records a flip "
                            f"with no matching substitution slot")
                    key = id(item)
                    flip_ok[key] = (weakref.ref(
                        item, lambda _ref, _key=key, _m=flip_ok:
                        _m.pop(_key, None)), plan_idx)
                    subst[merged_start + f] = plan_idx
                mplan.extend(mfn)
                mitems.extend(fitems)
                merged_spans.append((name, merged_start, len(mplan)))
                continue
            run_start = plan_cursor
            for item in function_code.items:
                if plan_cursor < span_end:
                    if item is items[plan_cursor]:
                        plan_cursor += 1
                        continue
                    # A substitution slot stays *inside* the run: the
                    # flipped encoding has the planned item's size, so
                    # only its bytes are patched after splicing.
                    alternate = alt_bytes.get(plan_cursor)
                    if alternate is not None:
                        planned = items[plan_cursor]
                        if (item.__class__ is Instr
                                and not item.is_inserted_nop
                                and item.alternate_encoding
                                != planned.alternate_encoding
                                and item.mnemonic == planned.mnemonic
                                and item.operands == planned.operands
                                and item.block_id == planned.block_id):
                            subst[len(mplan) + plan_cursor - run_start] = \
                                plan_cursor
                            plan_cursor += 1
                            continue
                if run_start != plan_cursor:
                    merged = len(mplan)
                    runs.append((merged, run_start, plan_cursor))
                    mplan.extend(range(run_start, plan_cursor))
                    mitems.extend(items[run_start:plan_cursor])
                    plan_to_merged[run_start:plan_cursor] = range(
                        merged, merged + plan_cursor - run_start)
                if (isinstance(item, Instr) and item.is_inserted_nop
                        and item.encoding is not None
                        and item.size.__class__ is int
                        and 0 < item.size <= _DYN_NOP_MAX):
                    dyn_emit.append((len(mplan), item.encoding))
                    mplan_append(-2 - item.size)
                    mitems_append(item)
                else:
                    self._merge_rare(item, mplan, mitems, dyn_labels,
                                     dyn_branches, dyn_emit)
                run_start = plan_cursor
            if run_start != plan_cursor:
                merged = len(mplan)
                runs.append((merged, run_start, plan_cursor))
                mplan.extend(range(run_start, plan_cursor))
                mitems.extend(items[run_start:plan_cursor])
                plan_to_merged[run_start:plan_cursor] = range(
                    merged, merged + plan_cursor - run_start)
            if plan_cursor != span_end:
                raise PlanMismatchError(
                    f"variant function {name!r} ends early: "
                    f"{plan_cursor}/{span_end} planned items seen")
            merged_spans.append((name, merged_start, len(mplan)))
        if len(seen) != len(span_by_name):
            missing = sorted(set(span_by_name) - seen)
            raise PlanMismatchError(
                f"variant is missing planned function(s): {missing[:4]}")
        plan_to_merged[plan_count] = len(mplan)

        # 2. Sizes + incremental relaxation from the baseline fixpoint;
        # dynamic sled branches join at link()'s all-short start. The
        # sentinel-extended lookup resolves every merged entry in one
        # C-level map — planned indices read their baked size, NOP
        # codes -(2 + size) read their own size off the tail, labels
        # and dynamic branches read zero.
        widths = list(self._baseline_widths)
        msizes = list(map(self._sizes_lookup.__getitem__, mplan))
        plan_to_branch = self._plan_to_branch
        p2m_get = plan_to_merged.__getitem__
        b_merged = list(map(p2m_get, self._branch_plan))
        b_target_merged = list(map(p2m_get, self._branch_target))
        b_instrs = self._branch_items
        dyn_ordinal = {}
        if dyn_branches:
            b_instrs = list(b_instrs)
            for merged, instr in dyn_branches:
                target = instr.operands[0].name
                target_merged = dyn_labels.get(target)
                if target_merged is None:
                    raise PlanMismatchError(
                        f"unplanned branch targets unknown label "
                        f"{target!r}")
                dyn_ordinal[merged] = len(b_merged)
                b_merged.append(merged)
                b_target_merged.append(target_merged)
                b_instrs.append(instr)
                widths.append(32 if instr.mnemonic == "call" else 8)
                msizes[merged] = _branch_sizes(instr, widths[-1])
        widths = self._relax(msizes, widths, b_merged, b_target_merged,
                             b_instrs)

        offsets = list(accumulate(msizes, initial=0))
        text_size = offsets[-1]
        text_base = self.text_base

        # 3. Symbols and data image.
        data_base = _align(text_base + text_size, self.data_alignment)
        data_delta = data_base  # relative offsets are data_base-relative
        code_symbols = {
            name: text_base + offsets[plan_to_merged[index]]
            for name, index in self._label_index.items()}
        for name, merged in dyn_labels.items():
            code_symbols[name] = text_base + offsets[merged]
        data_symbols = {name: data_base + rel
                        for name, rel in self._data_symbols_rel.items()}
        data_words = {data_delta + rel: value
                      for rel, value in self._data_words_rel}
        data_end = data_base + self._data_size

        # 4. Byte splicing. Carried runs emit their branch/label-free
        # stretches as single slices of the plan's pre-joined blob;
        # only planned branches and the dynamic merged entries between
        # runs (inserted NOPs, sled branches/labels) are synthesized
        # one by one. Relocation disp32 fields and substitution slots
        # are patched in place afterwards — both are size-preserving.
        relocs = self._relocs
        blob = self._pure_blob
        blob_offset = self._blob_offset
        next_impure = self._next_impure
        chunks = []
        chunks_append = chunks.append
        jcc = JCC_MNEMONICS
        emit_index = 0
        emit_total = len(dyn_emit)
        for run_merged, run_a, run_b in runs + [(len(mplan), 0, 0)]:
            # Dynamic merged entries before the next carried run; their
            # bytes rode along from the merge walk (NOPs) or are
            # synthesized now that offsets are final (sled branches).
            while emit_index < emit_total:
                pos, encoding = dyn_emit[emit_index]
                if pos >= run_merged:
                    break
                chunks_append(encoding if encoding is not None
                              else self._dynamic_branch_bytes(
                                  mitems[pos], pos, dyn_ordinal, widths,
                                  msizes, b_target_merged, offsets, jcc))
                emit_index += 1
            if run_a == run_b:
                continue
            p = run_a
            while p < run_b:
                q = next_impure[p]
                if q >= run_b:
                    chunks_append(blob[blob_offset[p]:blob_offset[run_b]])
                    break
                if q > p:
                    chunks_append(blob[blob_offset[p]:blob_offset[q]])
                kind = kinds[q]
                if kind == _KIND_BRANCH:
                    # Branch: synthesize opcode + displacement.
                    merged = run_merged + (q - run_a)
                    ordinal = plan_to_branch[q]
                    width = widths[ordinal]
                    size = msizes[merged]
                    target_offset = offsets[b_target_merged[ordinal]]
                    displacement = target_offset - (offsets[merged] + size)
                    mnemonic = items[q].mnemonic
                    if mnemonic == "call":
                        chunks_append(
                            b"\xE8" + (displacement
                                       & 0xFFFF_FFFF).to_bytes(4, "little"))
                    elif mnemonic == "jmp":
                        if width == 8:
                            chunks_append(bytes((0xEB, displacement & 0xFF)))
                        else:
                            chunks_append(
                                b"\xE9"
                                + (displacement
                                   & 0xFFFF_FFFF).to_bytes(4, "little"))
                    else:
                        condition = jcc[mnemonic]
                        if width == 8:
                            chunks_append(bytes((0x70 + condition,
                                                 displacement & 0xFF)))
                        else:
                            chunks_append(
                                bytes((0x0F, 0x80 + condition))
                                + (displacement
                                   & 0xFFFF_FFFF).to_bytes(4, "little"))
                # _KIND_LABEL: zero bytes.
                p = q + 1
        text = b"".join(chunks)
        if len(text) != text_size:
            raise LinkError(f"plan layout drift: {len(text)} bytes "
                            f"emitted, {text_size} laid out")
        if relocs or subst:
            patched = bytearray(text)
            for plan_idx, (disp_offset, rel_addend, _op) in relocs.items():
                start = offsets[plan_to_merged[plan_idx]] + disp_offset
                patched[start:start + 4] = (
                    (data_base + rel_addend) & 0xFFFF_FFFF).to_bytes(
                        4, "little")
            for merged, plan_idx in subst.items():
                alternate = alt_bytes[plan_idx]
                start = offsets[merged]
                patched[start:start + len(alternate)] = alternate
            text = bytes(patched)

        # Function ranges in link()'s emit order: fixed units first,
        # then the variant's (possibly permuted) function order, each
        # bounded by its own merged span — a permuted tiling makes the
        # planned "next function starts here" end index wrong, so the
        # merge walk's explicit boundaries are used instead.
        function_ranges = {
            name: (text_base + offsets[start], text_base + offsets[end])
            for name, start, end in self._fixed_spans}
        for name, merged_start, merged_end in merged_spans:
            function_ranges[name] = (text_base + offsets[merged_start],
                                     text_base + offsets[merged_end])

        def materialize_records():
            return self._materialize_records(
                mitems, mplan, msizes, offsets, widths, subst,
                dyn_ordinal, b_target_merged, text_base, data_base)

        record_list = (materialize_records() if records == "eager"
                       else _LazyRecords(materialize_records))
        binary = LinkedBinary(
            text=text, text_base=text_base,
            entry=code_symbols["_start"], code_symbols=code_symbols,
            data_symbols=data_symbols, data_base=data_base,
            data_end=data_end, data_words=data_words,
            instr_records=record_list, function_ranges=function_ranges)

        features = set()
        if subst:
            features.add(FEATURE_SUBSTITUTION)
        if dyn_branches or dyn_labels:
            features.add(FEATURE_BBSHIFT)
        if permuted:
            features.add(FEATURE_REORDERING)
        if features:
            def build_count_plan():
                return self._build_count_plan(mplan, merged_spans,
                                              dyn_branches, dyn_labels)
            binary.provenance = PlanProvenance(
                self, frozenset(features), build_count_plan)
        return binary

    def _merge_rare(self, item, mplan, mitems, dyn_labels, dyn_branches,
                    dyn_emit):
        """Classify one dynamic (unplanned) variant item — the slow
        path for basic-block-shift sleds: a fresh skip label or a fresh
        forward branch. Substitution slots and inserted NOPs never
        reach here; anything else raises
        :class:`~repro.errors.PlanMismatchError`.
        """
        if isinstance(item, LabelDef):
            if item.name in self._label_index or item.name in dyn_labels:
                raise PlanMismatchError(
                    f"variant redefines planned label {item.name!r}")
            dyn_labels[item.name] = len(mplan)
            mplan.append(_DYN_LABEL)
            mitems.append(item)
            return
        if isinstance(item, Instr) and item.is_relative_branch:
            target = item.operands[0]
            if (isinstance(target, Label)
                    and target.name not in self._label_index):
                dyn_branches.append((len(mplan), item))
                dyn_emit.append((len(mplan), None))
                mplan.append(_DYN_BRANCH)
                mitems.append(item)
                return
        raise PlanMismatchError(
            f"variant stream diverges from plan at {item!r}")

    @staticmethod
    def _dynamic_branch_bytes(instr, merged, dyn_ordinal, widths, msizes,
                              b_target_merged, offsets, jcc):
        """Synthesize one dynamic (sled skip) branch's bytes."""
        ordinal = dyn_ordinal[merged]
        width = widths[ordinal]
        size = msizes[merged]
        displacement = (offsets[b_target_merged[ordinal]]
                        - (offsets[merged] + size))
        mnemonic = instr.mnemonic
        if mnemonic == "call":
            return b"\xE8" + (displacement
                              & 0xFFFF_FFFF).to_bytes(4, "little")
        if mnemonic == "jmp":
            if width == 8:
                return bytes((0xEB, displacement & 0xFF))
            return b"\xE9" + (displacement
                              & 0xFFFF_FFFF).to_bytes(4, "little")
        condition = jcc[mnemonic]
        if width == 8:
            return bytes((0x70 + condition, displacement & 0xFF))
        return (bytes((0x0F, 0x80 + condition))
                + (displacement & 0xFFFF_FFFF).to_bytes(4, "little"))

    def _materialize_records(self, mitems, mplan, msizes, offsets, widths,
                             subst, dyn_ordinal, b_target_merged,
                             text_base, data_base):
        """Instruction records for one applied variant (deferred work)."""
        items = self._items
        kinds = self._kinds
        record_instrs = self._record_instrs
        alt_instrs = self._alt_instrs
        relocs = self._relocs
        plan_to_branch = self._plan_to_branch
        records = []
        records_append = records.append
        for merged, plan_idx in enumerate(mplan):
            address = text_base + offsets[merged]
            size = msizes[merged]
            if plan_idx < 0:
                if plan_idx <= _DYN_NOP_TOP:
                    nop = mitems[merged]
                    records_append(InstrRecord(address, size, nop.mnemonic,
                                               nop.block_id, True, nop))
                elif plan_idx == _DYN_BRANCH:
                    item = mitems[merged]
                    ordinal = dyn_ordinal[merged]
                    target_offset = offsets[b_target_merged[ordinal]]
                    displacement = target_offset - (offsets[merged] + size)
                    instr = Instr(item.mnemonic,
                                  Rel(displacement, widths[ordinal]),
                                  block_id=item.block_id,
                                  is_inserted_nop=item.is_inserted_nop)
                    instr.size = size
                    records_append(InstrRecord(
                        address, size, item.mnemonic, item.block_id,
                        item.is_inserted_nop, instr))
                continue
            kind = kinds[plan_idx]
            if kind == _KIND_LABEL:
                continue
            item = items[plan_idx]
            if kind == _KIND_FIXED:
                if merged in subst:
                    instr = alt_instrs[plan_idx]
                    records_append(InstrRecord(address, size, item.mnemonic,
                                               item.block_id,
                                               item.is_inserted_nop, instr))
                    continue
                instr = record_instrs[plan_idx]
                if instr is None:  # relocation site: per-variant operand
                    disp_offset, rel_addend, op_index = relocs[plan_idx]
                    operands = list(item.operands)
                    operand = operands[op_index]
                    operands[op_index] = Mem(
                        base=operand.base, index=operand.index,
                        scale=operand.scale,
                        disp=data_base + rel_addend)
                    instr = Instr(item.mnemonic, *operands,
                                  block_id=item.block_id,
                                  is_inserted_nop=item.is_inserted_nop,
                                  alternate_encoding=item.alternate_encoding)
                    instr.size = size
                    instr.encoding = None
                records_append(InstrRecord(address, size, item.mnemonic,
                                           item.block_id,
                                           item.is_inserted_nop, instr))
                continue
            ordinal = plan_to_branch[plan_idx]
            width = widths[ordinal]
            target_offset = offsets[b_target_merged[ordinal]]
            displacement = target_offset - (offsets[merged] + size)
            instr = Instr(item.mnemonic, Rel(displacement, width),
                          block_id=item.block_id,
                          is_inserted_nop=item.is_inserted_nop)
            instr.size = size
            records_append(InstrRecord(address, size, item.mnemonic,
                                       item.block_id, item.is_inserted_nop,
                                       instr))
        return records

    def _build_count_plan(self, mplan, merged_spans, dyn_branches,
                          dyn_labels):
        """The equivalence-format count plan for one applied variant.

        One entry per emitted record, in record order, mirroring what
        :meth:`repro.analysis.equivalence.EquivalenceProver.prove`
        derives — but read off the merge walk instead of re-proven.
        Returns ``None`` for shapes without a derivable plan (the batch
        engine then runs the real proof).
        """
        kinds = self._kinds
        record_ordinal = self._record_ordinal
        first_ordinal = self._first_record_ordinal

        # Sled interiors: every dynamic branch must jump forward over a
        # run of inserted NOPs to its (dynamic) label; the interior
        # executes zero times, the jump rides the function's first
        # carried instruction.
        label_merged = {merged: name for name, merged in dyn_labels.items()}
        sled_nops = set()
        for merged, instr in dyn_branches:
            target_merged = dyn_labels.get(instr.operands[0].name)
            if target_merged is None or target_merged <= merged:
                return None
            for index in range(merged + 1, target_merged):
                if mplan[index] > _DYN_NOP_TOP:
                    return None
                sled_nops.add(index)

        entries = []
        segments = [(None, 0, self._static_count)] + merged_spans
        for name, start, end in segments:
            pending = []
            function_first = (first_ordinal.get(name)
                              if name is not None else None)
            for merged in range(start, end):
                plan_idx = mplan[merged]
                if plan_idx >= 0:
                    if kinds[plan_idx] == _KIND_LABEL:
                        continue
                    b_index = record_ordinal[plan_idx]
                    for position in pending:
                        entries[position] = (_PLAN_NOP, b_index)
                    pending.clear()
                    entries.append((_PLAN_CARRIED, b_index))
                elif plan_idx <= _DYN_NOP_TOP:
                    if merged in sled_nops:
                        entries.append((_PLAN_SLED_NOP,))
                    else:
                        pending.append(len(entries))
                        entries.append(None)
                elif plan_idx == _DYN_BRANCH:
                    if function_first is None:
                        return None
                    entries.append((_PLAN_SLED_JMP, function_first, ()))
                # _DYN_LABEL: no record
            if pending:
                return None  # trailing NOPs: no carried successor
        return entries

    def baseline(self):
        """The undiversified link (the planned unit with zero NOPs)."""
        return self.apply(self._unit)

    def baseline_identity(self):
        """The baseline's ``identity_hash()``, linked once and memoized.

        Lets a :class:`PlanProvenance` consumer check that a variant's
        plan really is the plan of the baseline it holds without
        re-linking per variant.
        """
        if self._baseline_id is None:
            self._baseline_id = self.baseline().identity_hash()
        return self._baseline_id

    def __repr__(self):
        return (f"LinkPlan({len(self._items)} items, "
                f"{len(self._branch_plan)} branches, "
                f"{len(self._relocs)} relocs, "
                f"{len(self._label_index)} labels, "
                f"{len(self._alt_bytes)} substitution slots)")


def build_link_plan(units, text_base=DEFAULT_TEXT_BASE, data_alignment=16):
    """Precompute a :class:`LinkPlan` for ``units``.

    The *last* unit is the diversifiable program unit that
    :meth:`LinkPlan.apply` replaces per variant; all preceding units
    (the runtime library) are fixed and emitted verbatim.
    """
    return LinkPlan(units, text_base, data_alignment)
