"""Simulator throughput + population-build wall-clock tracker.

Measures the two things PR 2 optimized:

1. **Interpreter throughput** — instructions/second of the threaded-code
   fast path vs. the reference step loop, on a fixed workload mix
   (memory-bound mcf, branch-heavy libquantum, arithmetic-heavy lbm).
   Each (workload, engine) pair is timed best-of-N with the GC disabled;
   both engines run the same binaries on the same ref inputs, so the
   ratio is a pure dispatch-overhead comparison.
2. **Population-build throughput** — building the paper's 25-variant
   population (config 0-30%, profile-guided) with the artifact cache
   disabled so every build is real work. Three gated numbers:

   - ``variants_per_sec`` via the incremental :class:`LinkPlan` path
     vs. the full-``link()`` path (``REPRO_LINK_PLAN=0``), serial —
     compile-once / diversify-many must stay ≥ ``MIN_POPULATION_SPEEDUP``;
   - ``workers=N`` wall-clock must not exceed ``workers=1`` (the PR 2
     pool fan-out regressed 0.708s → 2.877s on a single-core box; the
     core-count clamp makes that inversion impossible, and this gate
     keeps it that way);
   - artifact-cache effectiveness — a cold-then-warm cached build whose
     hit/miss/put counters land in the JSON;
   - ``population_sec6`` — the composed-§6 population (substitution +
     bb-shift + reordering + NOPs) through the generalized plan vs
     full link, parity-prechecked and gated at ``MIN_SEC6_SPEEDUP``.

3. **Population-sim throughput** — the lockstep batch engine
   (:mod:`repro.sim.batch`) vs one fast-path run per variant on the
   25-variant population sweep, gated at ``MIN_BATCH_SPEEDUP``. A
   parity precheck (every workload × both paper configs in ``check``
   mode, plus exact analytic-cycle agreement) runs first; the speedup
   gate only counts when parity holds.

The JSON opens with an ``environment`` stamp (cpu count, known
simulator engines, git SHA) so numbers can be compared across machines
and revisions.

Also records (non-gating) the static verifier's throughput — full
``verify_binary`` binaries/sec, ``prove_transparency`` proofs/sec
over the same 25-variant population, and ``EquivalenceProver``
proofs/sec over a composed-§6 population of the same size — so
analysis-cost regressions are visible in the JSON diff.

Emits ``BENCH_runtime.json`` so future PRs can diff performance the
same way the table/figure benches diff the paper's numbers, and exits
nonzero if any gate fails (mix speedup, population speedup, pool
wall-clock). Gates sit below the measured margins so timing noise
doesn't flake them.

Usage::

    PYTHONPATH=src python benchmarks/bench_runtime.py [--quick] \\
        [--output BENCH_runtime.json]
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import sys
import tempfile
import time

from _harness import environment_stamp
from repro.artifacts import cache_stats, reset_cache_stats
from repro.core.config import DiversificationConfig
from repro.errors import ReproError
from repro.obs.knobs import REGISTRY
from repro.pipeline import ProgramBuild, build_population
from repro.sim.batch import PopulationSimulator, population_cycles, \
    simulate_population
from repro.sim.machine import run_binary
from repro.workloads.registry import get_workload, workload_names

#: Fixed throughput mix: one memory-bound, one branch-heavy, one
#: arithmetic-heavy workload (same trio repro.check validates).
MIX = ("429.mcf", "462.libquantum", "470.lbm")

#: Regression gate on the fast/reference mix speedup.
MIN_SPEEDUP = 2.0

#: Population-build measurement parameters (paper: 25 variants).
POPULATION_CONFIG = "0-30%"
POPULATION_SIZE = 25

#: Regression gate: incremental linking must build populations at least
#: this many times faster than the full-link path (measured ~3.9x).
MIN_POPULATION_SPEEDUP = 3.0

#: Regression gate: the generalized plan must build composed-§6
#: populations (substitution + bb-shift + reordering + NOPs) at least
#: this many times faster than the full-link path at population 25
#: (measured ~3.4x end-to-end; apply() alone is ~7.8x).
MIN_SEC6_SPEEDUP = 3.0

#: Pool builds may not exceed serial wall-clock by more than timing
#: noise (the gate that keeps the workers=N regression dead — a 4x
#: inversion when it was live, so noise headroom is safe).
POOL_TOLERANCE = 1.25

#: Regression gate: the lockstep batch engine must simulate a
#: 25-variant population at least this many times faster than running
#: the fast path once per variant (measured ~13x).
MIN_BATCH_SPEEDUP = 10.0

#: Configurations the batch-parity precheck sweeps (the two paper
#: configs the differential tracker also validates).
PARITY_CONFIGS = {
    "50%": DiversificationConfig.uniform(0.50),
    "0-30%": DiversificationConfig.profile_guided(0.00, 0.30),
}

#: Variant seeds per (workload, config) in the parity precheck.
PARITY_SEEDS = 3

#: Gate: with tracing disabled (no REPRO_TRACE), the observability
#: instrumentation on the simulate path — knob lookup, span timing, the
#: stage histogram and instruction counters — may cost at most this
#: fraction over invoking the engine directly on the sim mix.
MAX_TRACE_OVERHEAD = 0.02


def _best_of(times, fn):
    """Best wall-clock of ``times`` runs of ``fn`` (GC off while timed)."""
    best = None
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(times):
            gc.collect()
            start = time.perf_counter()
            fn()
            elapsed = time.perf_counter() - start
            if best is None or elapsed < best:
                best = elapsed
    finally:
        if gc_was_enabled:
            gc.enable()
    return best


def measure_throughput(names, repeats):
    """Per-workload and mix instrs/sec for both engines."""
    workloads = []
    for name in names:
        workload = get_workload(name)
        build = ProgramBuild(workload.source, workload.name)
        binary = build.link_baseline()
        result = build.simulate(binary, workload.ref_input)
        workloads.append((name, build, binary, workload.ref_input,
                          result.instr_count))

    per_workload = {}
    totals = {"fast": 0.0, "reference": 0.0}
    total_instrs = 0
    for name, build, binary, inputs, instrs in workloads:
        entry = {"instructions": instrs}
        for engine in ("fast", "reference"):
            seconds = _best_of(
                repeats,
                lambda: build.simulate(binary, inputs, engine=engine))
            entry[engine] = {
                "seconds": round(seconds, 4),
                "instrs_per_sec": round(instrs / seconds),
            }
            totals[engine] += seconds
        entry["speedup"] = round(entry["reference"]["seconds"]
                                 / entry["fast"]["seconds"], 2)
        per_workload[name] = entry
        total_instrs += instrs

    mix = {
        "instructions": total_instrs,
        "fast_instrs_per_sec": round(total_instrs / totals["fast"]),
        "reference_instrs_per_sec": round(total_instrs
                                          / totals["reference"]),
        "speedup": round(totals["reference"] / totals["fast"], 2),
    }
    return per_workload, mix


def measure_population_build(population_size, worker_counts, repeats=5):
    """Population-build throughput: incremental vs full link, serial
    vs pool.

    The artifact cache is disabled (``REPRO_CACHE_DIR`` scrubbed) so
    each measurement rebuilds every variant. The full-link reference
    runs with ``REPRO_LINK_PLAN=0`` on a fresh build (no memoized plan
    to leak); the incremental numbers use fresh builds too, so the
    plan-compilation cost is *inside* the timed region.
    """
    workload = get_workload(MIX[0])
    config = DiversificationConfig.profile_guided(0.00, 0.30)
    seeds = range(population_size)
    profile = ProgramBuild(workload.source,
                           workload.name).profile(workload.train_input)

    def timed(workers):
        # Fresh build per repetition: the memoized plan must not leak
        # between runs, so plan compilation is inside the timed region.
        builds = iter([ProgramBuild(workload.source, workload.name)
                       for _ in range(repeats)])
        return _best_of(repeats,
                        lambda: build_population(next(builds), config,
                                                 seeds, profile,
                                                 workers=workers))

    saved_cache = os.environ.pop("REPRO_CACHE_DIR", None)
    saved_plan = os.environ.pop("REPRO_LINK_PLAN", None)
    try:
        os.environ["REPRO_LINK_PLAN"] = "0"
        full_link_seconds = timed(1)
        del os.environ["REPRO_LINK_PLAN"]

        wall = {workers: timed(workers) for workers in worker_counts}
    finally:
        if saved_cache is not None:
            os.environ["REPRO_CACHE_DIR"] = saved_cache
        os.environ.pop("REPRO_LINK_PLAN", None)
        if saved_plan is not None:
            os.environ["REPRO_LINK_PLAN"] = saved_plan

    serial = wall[worker_counts[0]]
    pool = wall[worker_counts[-1]]
    speedup = full_link_seconds / serial
    return {
        "workload": workload.name,
        "config": POPULATION_CONFIG,
        "population_size": population_size,
        "full_link_seconds": round(full_link_seconds, 3),
        "full_link_variants_per_sec": round(
            population_size / full_link_seconds, 1),
        "variants_per_sec": round(population_size / serial, 1),
        "incremental_speedup": round(speedup, 2),
        "min_population_speedup": MIN_POPULATION_SPEEDUP,
        "wall_clock_seconds": {f"workers={workers}": round(seconds, 3)
                               for workers, seconds in wall.items()},
        "pool_tolerance": POOL_TOLERANCE,
        "speedup_ok": speedup >= MIN_POPULATION_SPEEDUP,
        "pool_ok": pool <= serial * POOL_TOLERANCE,
    }


def measure_population_sec6(population_size, repeats=3):
    """Gated: §6 population build through the generalized plan vs full
    link.

    The composed-§6 config (encoding substitution + basic-block
    shifting + function reordering on top of the paper's 0-30%
    profile-guided NOPs) used to fall off the incremental-linking fast
    path entirely; the generalized :class:`LinkPlan` keeps it on. A
    parity precheck first asserts ``plan.apply`` is bit-identical to
    the full linker on this config (a mismatch voids the speedup), then
    both paths build the full population with the artifact cache off
    and plan compilation inside the timed region — exactly the
    :func:`measure_population_build` protocol. The process-wide encode
    memo is scrubbed per repetition for *both* paths: the parity
    precheck (and every earlier bench stage) would otherwise pre-warm
    exactly the §6 encodings the timed full-link run needs, subsidizing
    the reference path in a way a fresh population-build process never
    sees.
    """
    import dataclasses

    from repro.backend import linker
    from repro.backend.linker import link
    from repro.backend.linkplan import build_link_plan
    from repro.core.variants import diversify_unit
    from repro.runtime.lib import runtime_unit

    workload = get_workload(MIX[0])
    config = dataclasses.replace(
        DiversificationConfig.profile_guided(0.00, 0.30),
        encoding_substitution=True, basic_block_shifting=True,
        function_reordering=True)
    build = ProgramBuild(workload.source, workload.name)
    profile = build.profile(workload.train_input)
    seeds = range(population_size)

    plan = build_link_plan([runtime_unit(), build.unit])
    parity_seeds = min(5, population_size)
    mismatches = []
    for seed in range(parity_seeds):
        variant = diversify_unit(build.unit, config, seed, profile)
        planned = plan.apply(variant)
        full = link([runtime_unit(), variant])  # lint: full-link-ok
        if (planned.text != full.text
                or planned.identity_hash() != full.identity_hash()):
            mismatches.append(seed)

    def timed():
        builds = iter([ProgramBuild(workload.source, workload.name)
                       for _ in range(repeats)])

        def run():
            linker._ENCODE_MEMO.clear()
            build_population(next(builds), config, seeds, profile,
                             workers=1)

        return _best_of(repeats, run)

    saved_cache = os.environ.pop("REPRO_CACHE_DIR", None)
    saved_plan = os.environ.pop("REPRO_LINK_PLAN", None)
    try:
        os.environ["REPRO_LINK_PLAN"] = "0"
        full_link_seconds = timed()
        del os.environ["REPRO_LINK_PLAN"]
        plan_seconds = timed()
    finally:
        if saved_cache is not None:
            os.environ["REPRO_CACHE_DIR"] = saved_cache
        os.environ.pop("REPRO_LINK_PLAN", None)
        if saved_plan is not None:
            os.environ["REPRO_LINK_PLAN"] = saved_plan

    speedup = full_link_seconds / plan_seconds
    parity_ok = not mismatches
    return {
        "workload": workload.name,
        "config": "0-30%+sec6",
        "population_size": population_size,
        "parity_seeds": parity_seeds,
        "parity_mismatch_seeds": mismatches,
        "parity_ok": parity_ok,
        "full_link_seconds": round(full_link_seconds, 3),
        "full_link_variants_per_sec": round(
            population_size / full_link_seconds, 1),
        "plan_seconds": round(plan_seconds, 3),
        "variants_per_sec": round(population_size / plan_seconds, 1),
        "sec6_speedup": round(speedup, 2),
        "min_sec6_speedup": MIN_SEC6_SPEEDUP,
        "speedup_ok": speedup >= MIN_SEC6_SPEEDUP,
        "ok": parity_ok and speedup >= MIN_SEC6_SPEEDUP,
    }


def measure_static_verify(population_size):
    """Static-verifier + transparency-proof throughput (non-gating).

    Builds the paper's population once, then times (a) full
    ``verify_binary`` over baseline + every variant, (b) a
    ``prove_transparency`` proof per variant, and (c) an
    ``EquivalenceProver`` proof per variant of an equal-size
    composed-§6 population (substitution + bb-shift + reordering).
    Reported as binaries/sec and proofs/sec so future decoder or
    absint changes show up as a number, not a feeling; no gate because
    the verifier is new and its cost envelope is still settling.
    """
    import dataclasses

    from repro.analysis import (EquivalenceProver, prove_transparency,
                                verify_population)

    workload = get_workload(MIX[0])
    build = ProgramBuild(workload.source, workload.name)
    config = DiversificationConfig.profile_guided(0.00, 0.30)
    sec6_config = dataclasses.replace(
        config, encoding_substitution=True, basic_block_shifting=True,
        function_reordering=True)
    profile = build.profile(workload.train_input)
    seeds = range(population_size)
    baseline = build.link_baseline()
    variants = [build.link_variant(config, seed, profile)
                for seed in seeds]
    sec6_variants = [build.link_variant(sec6_config, seed, profile)
                     for seed in seeds]
    binaries = [baseline] + variants

    verify_seconds = _best_of(
        1, lambda: verify_population(binaries, workers=1))
    transparency_seconds = _best_of(
        1, lambda: [prove_transparency(baseline, variant)
                    for variant in variants])

    # Equivalence proofs re-prove the composed-§6 population from a
    # fresh prover each run, so the timing includes the per-baseline
    # precomputation that real campaigns amortize.
    def timed_equivalence():
        prover = EquivalenceProver(baseline, baseline_name=workload.name)
        for variant in sec6_variants:
            proof = prover.prove(variant)
            assert proof.ok, proof.findings

    equivalence_seconds = _best_of(1, timed_equivalence)
    return {
        "workload": workload.name,
        "config": POPULATION_CONFIG,
        "population_size": population_size,
        "verify_seconds": round(verify_seconds, 3),
        "binaries_per_sec": round(len(binaries) / verify_seconds, 2),
        "transparency_seconds": round(transparency_seconds, 3),
        "proofs_per_sec": round(len(variants) / transparency_seconds, 2),
        "equivalence_seconds": round(equivalence_seconds, 3),
        "equivalence_proofs_per_sec": round(
            len(sec6_variants) / equivalence_seconds, 2),
    }


def batch_parity_check(names):
    """Exact batch-vs-per-variant parity across workloads and configs.

    For every workload in ``names`` × both paper configs ×
    ``PARITY_SEEDS`` seeds, runs the population through the batch
    engine in ``check`` mode — every derived result (instr count,
    output, exit code, per-address profile) is cross-checked against a
    real per-variant simulation, and any fault asymmetry or mismatch
    raises :class:`~repro.errors.BatchParityError`. Analytic population
    cycles are additionally required to equal the per-variant cost-core
    evaluation exactly. Returns ``{"ok": bool, ...}``; the ≥10x speedup
    gate is only evaluated when this passes.
    """
    from repro.sim.analytic import estimate_cycles

    checked = 0
    mismatches = []
    for name in names:
        workload = get_workload(name)
        build = ProgramBuild(workload.source, workload.name)
        baseline = build.link_baseline()
        counts = build.execution_counts(workload.train_input)
        for label, config in PARITY_CONFIGS.items():
            profile = (build.profile(workload.train_input)
                       if config.requires_profile else None)
            variants = [build.link_variant(config, seed, profile)
                        for seed in range(PARITY_SEEDS)]
            sim = PopulationSimulator(baseline, workload.train_input,
                                      count_addresses=True, mode="check")
            try:
                for variant in variants:
                    sim.result_for(variant)
            except ReproError as error:
                mismatches.append(f"{name} [{label}]: {error}")
                continue
            if sim.warnings:
                mismatches.append(f"{name} [{label}]: unexpected "
                                  f"fallback: {sim.warnings[0]}")
            base_cycles, variant_cycles = population_cycles(
                baseline, variants, counts)
            expected = ([estimate_cycles(baseline, counts)]
                        + [estimate_cycles(variant, counts)
                           for variant in variants])
            if [base_cycles] + variant_cycles != expected:
                mismatches.append(f"{name} [{label}]: population_cycles "
                                  f"diverged from per-variant estimates")
            checked += len(variants)
    return {
        "workloads": len(names),
        "configs": sorted(PARITY_CONFIGS),
        "seeds_per_config": PARITY_SEEDS,
        "variants_checked": checked,
        "mismatches": mismatches,
        "ok": not mismatches,
    }


def measure_population_sim(population_size, repeats, parity_names):
    """Gated: batch engine vs per-variant fastpath on a population sweep.

    Builds the paper's 25-variant population (mcf, 0-30%) once, then
    times the full sweep both ways: (a) one ``run_binary`` for the
    baseline plus one per variant — the pre-batch flow — and (b)
    ``simulate_population``, which executes the baseline once and
    derives every variant from its NOP-transparency records. Each timed
    batch call constructs a fresh simulator, so the transparency proofs
    and the counted baseline run are *inside* the timed region. The
    parity sweep (:func:`batch_parity_check`) runs first; a parity
    failure voids the speedup measurement.
    """
    parity = batch_parity_check(parity_names)

    workload = get_workload(MIX[0])
    build = ProgramBuild(workload.source, workload.name)
    config = DiversificationConfig.profile_guided(0.00, 0.30)
    profile = build.profile(workload.train_input)
    baseline = build.link_baseline()
    variants = [build.link_variant(config, seed, profile)
                for seed in range(population_size)]
    inputs = workload.ref_input

    per_variant_seconds = _best_of(
        repeats,
        lambda: [run_binary(binary, inputs)
                 for binary in [baseline] + variants])
    batch_seconds = _best_of(
        repeats,
        lambda: simulate_population(baseline, variants, inputs, mode="on"))

    speedup = per_variant_seconds / batch_seconds
    return {
        "workload": workload.name,
        "config": POPULATION_CONFIG,
        "population_size": population_size,
        "parity": parity,
        "per_variant_seconds": round(per_variant_seconds, 3),
        "batch_seconds": round(batch_seconds, 3),
        "variants_per_sec": round(population_size / batch_seconds, 1),
        "speedup": round(speedup, 2),
        "min_batch_speedup": MIN_BATCH_SPEEDUP,
        "speedup_ok": speedup >= MIN_BATCH_SPEEDUP,
        "ok": parity["ok"] and speedup >= MIN_BATCH_SPEEDUP,
    }


def measure_trace_overhead(repeats):
    """Tracing-disabled instrumentation cost on the sim mix (gated).

    Compares the fully-instrumented execute path (``build.simulate`` →
    ``Machine.run`` with its span, engine-knob resolution and metric
    counters; ``REPRO_TRACE`` unset, so no events are recorded) against
    constructing a :class:`Machine` and invoking the fast engine
    directly. Both sides are best-of-``repeats`` with the GC off; the
    gate keeps the observability layer honest about its "near-zero when
    disabled" promise.
    """
    from repro.sim import fastpath
    from repro.sim.machine import Machine

    assert os.environ.get("REPRO_TRACE") is None, \
        "trace-overhead measurement requires REPRO_TRACE unset"

    per_workload = {}
    instrumented_total = raw_total = 0.0
    for name in MIX:
        workload = get_workload(name)
        build = ProgramBuild(workload.source, workload.name)
        binary = build.link_baseline()
        inputs = workload.ref_input

        def raw():
            machine = Machine(binary, input_values=inputs)
            fastpath.run_machine(machine)

        instrumented = _best_of(
            repeats, lambda: build.simulate(binary, inputs))
        bare = _best_of(repeats, raw)
        instrumented_total += instrumented
        raw_total += bare
        per_workload[name] = {
            "instrumented_seconds": round(instrumented, 4),
            "raw_seconds": round(bare, 4),
        }

    overhead = instrumented_total / raw_total - 1.0
    return {
        "workloads": per_workload,
        "instrumented_seconds": round(instrumented_total, 4),
        "raw_seconds": round(raw_total, 4),
        "overhead": round(overhead, 4),
        "max_overhead": MAX_TRACE_OVERHEAD,
        "ok": overhead <= MAX_TRACE_OVERHEAD,
    }


def measure_cache(population_size):
    """Cold-then-warm cached build; returns the observed counters."""
    workload = get_workload(MIX[0])
    build = ProgramBuild(workload.source, workload.name)
    config = DiversificationConfig.profile_guided(0.00, 0.30)
    profile = build.profile(workload.train_input)
    seeds = range(population_size)

    reset_cache_stats()
    with tempfile.TemporaryDirectory() as cache_dir:
        build_population(build, config, seeds, profile,
                         cache_dir=cache_dir)
        cold = cache_stats()
        start = time.perf_counter()
        build_population(build, config, seeds, profile,
                         cache_dir=cache_dir)
        warm_seconds = time.perf_counter() - start
        warm = cache_stats()
    reset_cache_stats()
    return {
        "population_size": population_size,
        "cold": cold,
        "warm": warm,
        "warm_seconds": round(warm_seconds, 3),
        "all_warm_hits": warm["hits"] - cold["hits"] == population_size,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default="BENCH_runtime.json")
    parser.add_argument("--quick", action="store_true",
                        help="one workload, 1 timing repeat, small "
                             "populations (seconds, not minutes)")
    args = parser.parse_args(argv)

    names = MIX[:1] if args.quick else MIX
    repeats = 1 if args.quick else 3
    population_size = 20 if args.quick else POPULATION_SIZE
    pool_workers = min(4, max(2, os.cpu_count() or 1))

    per_workload, mix = measure_throughput(names, repeats)
    population = measure_population_build(population_size,
                                          (1, pool_workers),
                                          repeats=3 if args.quick else 5)
    # The §6 gate always measures the full 25-variant population — the
    # quantity the ≥3x claim is about — even in --quick.
    population_sec6 = measure_population_sec6(
        POPULATION_SIZE, repeats=2 if args.quick else 3)
    cache = measure_cache(5 if args.quick else population_size)
    static_verify = measure_static_verify(8 if args.quick
                                          else population_size)
    trace_overhead = measure_trace_overhead(3 if args.quick else 5)
    # The batch gate always measures the paper's full 25-variant sweep —
    # the quantity the ≥10x claim is about — even in --quick.
    population_sim = measure_population_sim(
        POPULATION_SIZE, repeats=2,
        parity_names=list(MIX) if args.quick else workload_names())

    failures = []
    if not population_sim["parity"]["ok"]:
        for mismatch in population_sim["parity"]["mismatches"]:
            failures.append(f"batch parity: {mismatch}")
    elif not population_sim["speedup_ok"]:
        failures.append(
            f"batch population-sim speedup {population_sim['speedup']}x "
            f"below the {MIN_BATCH_SPEEDUP}x gate")
    if mix["speedup"] < MIN_SPEEDUP:
        failures.append(f"mix speedup {mix['speedup']}x below the "
                        f"{MIN_SPEEDUP}x gate")
    if not trace_overhead["ok"]:
        failures.append(
            f"tracing-disabled instrumentation overhead "
            f"{trace_overhead['overhead']*100:.2f}% above the "
            f"{MAX_TRACE_OVERHEAD*100:.0f}% gate")
    if not population["speedup_ok"]:
        failures.append(
            f"population incremental speedup "
            f"{population['incremental_speedup']}x below the "
            f"{MIN_POPULATION_SPEEDUP}x gate")
    if not population_sec6["parity_ok"]:
        failures.append(
            f"§6 plan-apply parity failed for seed(s) "
            f"{population_sec6['parity_mismatch_seeds']}")
    elif not population_sec6["speedup_ok"]:
        failures.append(
            f"§6 population speedup {population_sec6['sec6_speedup']}x "
            f"below the {MIN_SEC6_SPEEDUP}x gate")
    if not population["pool_ok"]:
        clocks = population["wall_clock_seconds"]
        failures.append(
            f"pool population build slower than serial: "
            + ", ".join(f"{k}: {v}s" for k, v in clocks.items()))

    payload = {
        "environment": environment_stamp(),
        "mix": mix,
        "workloads": per_workload,
        "population_build": population,
        "population_sec6": population_sec6,
        "population_sim": population_sim,
        "artifact_cache": cache,
        "static_verify": static_verify,
        "trace_overhead": trace_overhead,
        "min_speedup": MIN_SPEEDUP,
        "failures": failures,
        "ok": not failures,
    }
    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=2)

    for name, entry in per_workload.items():
        print(f"{name}: fast {entry['fast']['instrs_per_sec']:,} i/s, "
              f"reference {entry['reference']['instrs_per_sec']:,} i/s "
              f"({entry['speedup']}x)")
    print(f"mix speedup: {mix['speedup']}x "
          f"(gate: >= {MIN_SPEEDUP}x)")
    clocks = population["wall_clock_seconds"]
    print(f"population build ({population['population_size']} variants, "
          f"{population['config']}): "
          f"{population['variants_per_sec']} variants/sec incremental "
          f"vs {population['full_link_variants_per_sec']} full-link "
          f"({population['incremental_speedup']}x, gate: >= "
          f"{MIN_POPULATION_SPEEDUP}x); "
          + ", ".join(f"{k}: {v}s" for k, v in clocks.items()))
    print(f"population build §6 "
          f"({population_sec6['population_size']} variants, "
          f"{population_sec6['config']}): "
          f"{population_sec6['variants_per_sec']} variants/sec via plan "
          f"vs {population_sec6['full_link_variants_per_sec']} full-link "
          f"({population_sec6['sec6_speedup']}x, gate: >= "
          f"{MIN_SEC6_SPEEDUP}x); parity "
          f"{'ok' if population_sec6['parity_ok'] else 'FAILED'} over "
          f"{population_sec6['parity_seeds']} seeds")
    parity = population_sim["parity"]
    print(f"population sim ({population_sim['population_size']} variants, "
          f"{population_sim['config']}): batch "
          f"{population_sim['batch_seconds']}s vs per-variant "
          f"{population_sim['per_variant_seconds']}s "
          f"({population_sim['speedup']}x, gate: >= {MIN_BATCH_SPEEDUP}x); "
          f"parity {'ok' if parity['ok'] else 'FAILED'} over "
          f"{parity['variants_checked']} variants "
          f"({parity['workloads']} workloads x {parity['configs']})")
    print(f"artifact cache: cold {cache['cold']}, warm {cache['warm']} "
          f"(warm rebuild: {cache['warm_seconds']}s)")
    print(f"static verify ({static_verify['population_size']} variants): "
          f"{static_verify['binaries_per_sec']} binaries/sec, "
          f"transparency {static_verify['proofs_per_sec']} proofs/sec, "
          f"equivalence (composed §6) "
          f"{static_verify['equivalence_proofs_per_sec']} proofs/sec "
          f"(non-gating)")
    print(f"trace-disabled overhead: "
          f"{trace_overhead['overhead']*100:.2f}% on the sim mix "
          f"(gate: <= {MAX_TRACE_OVERHEAD*100:.0f}%)")
    print(f"wrote {args.output}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
