"""The workload record shared by the SPEC-like suite and the case study."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Workload:
    """One benchmark program.

    - ``name`` — e.g. ``"470.lbm"``.
    - ``source`` — MinC source text.
    - ``train_input`` / ``ref_input`` — the input vectors of the paper's
      two SPEC input sets: ``train`` feeds profile collection, ``ref`` is
      what performance is measured on.
    - ``character`` — one-line note on the computational character being
      mimicked (and hence the expected instruction mix).
    """

    name: str
    source: str
    train_input: tuple = ()
    ref_input: tuple = ()
    character: str = ""

    def __repr__(self):
        return f"Workload({self.name!r})"
