"""Basic-block shifting (paper §6, future work).

NOP insertion adds little diversity at the very beginning of a binary:
displacements accumulate, so the first instructions are displaced by at
most a few bytes. The paper proposes inserting a *jumped-over* dummy
block of random size at the start of each function — the jump costs one
(well-predicted) instruction per call, while everything after the sled is
displaced by the sled's full size.

The sled is built from random NOP-table candidates so the Survivor
normalization treats it like any other inserted padding.
"""

from __future__ import annotations

from repro.backend.objfile import FunctionCode, LabelDef
from repro.x86.instructions import Instr, Label
from repro.x86.nops import site_instr

#: Candidates usable at a given remaining byte budget, keyed by
#: id(candidate table) — entries hold the table itself, so the id can
#: never be recycled while the entry lives. The filtered lists preserve
#: table order, so the rng draws are identical to filtering inline.
_USABLE_MEMO = {}


def _usable_table(candidates):
    key = id(candidates)
    entry = _USABLE_MEMO.get(key)
    if entry is not None and entry[0] is candidates:
        return entry[1]
    table = {}
    _USABLE_MEMO[key] = (candidates, table)
    return table


def shift_basic_blocks(function_code, candidates, rng, max_shift_bytes=16):
    """Insert a jumped-over NOP sled after the function's entry label."""
    if not function_code.diversifiable or max_shift_bytes <= 0:
        return function_code

    # Inlined ``rng.randrange(n)`` (here and for the candidate picks
    # below): the same getrandbits(k) rejection loop CPython's
    # ``Random._randbelow`` runs — it must consume the identical draws
    # or every seeded variant changes.
    getrandbits = rng.getrandbits
    span = max_shift_bytes + 1
    span_bits = span.bit_length()
    sled_bytes = getrandbits(span_bits)
    while sled_bytes >= span:
        sled_bytes = getrandbits(span_bits)
    if sled_bytes == 0:
        return function_code

    usable_table = _usable_table(candidates)
    skip_label = f"{function_code.name}.__shifted"
    sled = []
    remaining = sled_bytes
    while remaining > 0:
        usable = usable_table.get(remaining)
        if usable is None:
            usable = usable_table[remaining] = \
                [c for c in candidates if c.size <= remaining]
        if not usable:
            break
        usable_count = len(usable)
        pick = getrandbits(usable_count.bit_length())
        while pick >= usable_count:
            pick = getrandbits(usable_count.bit_length())
        candidate = usable[pick]
        # block id None: never executed, the jump skips the sled.
        sled.append(site_instr(candidate, None))
        remaining -= candidate.size

    items = function_code.items
    # items[0] is the function's entry LabelDef; the sled goes right after
    # it, behind a skip jump, so calls land on the jump and hop the sled.
    entry_block = None
    for item in items:
        if isinstance(item, Instr):
            entry_block = item.block_id
            break
    jump = Instr("jmp", Label(skip_label), block_id=entry_block)
    insertion = [jump] + sled + [LabelDef(skip_label)]
    new_items = items[:1]
    new_items += insertion
    new_items += items[1:]
    shifted = FunctionCode(function_code.name, new_items,
                           diversifiable=function_code.diversifiable)
    delta = getattr(function_code, "plan_delta", None)
    if delta is not None:
        # Shift the recorded insertion/flip indices past the sled and
        # claim the sled's own items, keeping LinkPlan.apply()'s merge
        # record accurate through this pass.
        inserted, flipped = delta
        sled_len = len(insertion)
        shifted.plan_delta = (
            tuple(i for i in inserted if i < 1)
            + tuple(range(1, 1 + sled_len))
            + tuple(i + sled_len for i in inserted if i >= 1),
            tuple(f if f < 1 else f + sled_len for f in flipped))
    return shifted
