"""Coverage-guided differential fuzzing of the whole pipeline.

``repro.check`` validates 20 hand-written workloads; this package makes
the semantics-preservation argument *adversarial* by generating its own
candidates and running each one differentially through every execution
engine the project has:

- :mod:`repro.fuzz.generate` — a CSmith-style seeded generator of
  well-typed, terminating-by-construction MinC programs;
- :mod:`repro.fuzz.mutate` — AST-level mutators that evolve interesting
  corpus entries (constant/operator twiddling, statement deletion and
  duplication, subtree splice);
- :mod:`repro.fuzz.campaign` — the differential driver: IR reference
  interpreter vs baseline binary vs K diversified variants per paper
  config, with a coverage signature (CFG shape, verifier outcomes,
  NOP-placement buckets, fault codes) deciding which candidates join
  the corpus;
- :mod:`repro.fuzz.corpus` — a content-addressed on-disk corpus DB with
  deterministic replay by entry id;
- :mod:`repro.fuzz.shrink` — a greedy AST-level reducer that turns any
  divergence into a minimal reproducer;
- :mod:`repro.fuzz.inject` — seeded miscompile injection (test-only
  hooks) proving the differential oracle actually detects the bug
  classes it exists for.

Wired into the CLI as ``repro-diversify fuzz``; see ``docs/FUZZING.md``.
"""

from repro.fuzz.campaign import (
    CampaignStats, FuzzParams, evaluate_candidate, replay, run_fuzz_campaign,
)
from repro.fuzz.corpus import Corpus, CorpusEntry, derive_seed
from repro.fuzz.generate import generate_inputs, generate_program
from repro.fuzz.mutate import mutate_program
from repro.fuzz.shrink import shrink_source

__all__ = [
    "CampaignStats", "FuzzParams", "evaluate_candidate", "replay",
    "run_fuzz_campaign",
    "Corpus", "CorpusEntry", "derive_seed",
    "generate_inputs", "generate_program",
    "mutate_program",
    "shrink_source",
]
