"""Simulator edge cases: rotates, unsigned MUL, wide division, xchg."""

from repro.backend.linker import link
from repro.backend.objfile import FunctionCode, LabelDef, ObjectUnit
from repro.sim.machine import Machine
from repro.x86.instructions import Imm, Instr, Mem
from repro.x86.registers import EAX, EBX, ECX, EDX


def run_instrs(instrs, steps):
    unit = ObjectUnit("t")
    unit.add_function(FunctionCode("_start",
                                   [LabelDef("_start")] + list(instrs)))
    machine = Machine(link([unit]))
    for _ in range(steps):
        machine.step()
    return machine


class TestRotates:
    def test_rol(self):
        machine = run_instrs([
            Instr("mov", EAX, Imm(0x80000001)),
            Instr("rol", EAX, Imm(1)),
        ], 2)
        assert machine.regs[0] == 0x00000003
        assert machine.cf == 1  # low bit of result

    def test_ror(self):
        machine = run_instrs([
            Instr("mov", EAX, Imm(1)),
            Instr("ror", EAX, Imm(1)),
        ], 2)
        assert machine.regs[0] == 0x80000000
        assert machine.cf == 1  # high bit of result

    def test_rotate_full_circle(self):
        machine = run_instrs([
            Instr("mov", EAX, Imm(0x12345678)),
            Instr("rol", EAX, Imm(16)),
            Instr("rol", EAX, Imm(16)),
        ], 3)
        assert machine.regs[0] == 0x12345678


class TestMul:
    def test_mul_is_unsigned_and_widens(self):
        machine = run_instrs([
            Instr("mov", EAX, Imm(-1)),   # 0xFFFFFFFF unsigned
            Instr("mov", ECX, Imm(2)),
            Instr("mul", ECX),
        ], 3)
        # 0xFFFFFFFF * 2 = 0x1_FFFFFFFE
        assert machine.regs[0] == 0xFFFFFFFE
        assert machine.regs[2] == 1
        assert machine.cf == 1 and machine.of == 1

    def test_mul_no_overflow_clears_flags(self):
        machine = run_instrs([
            Instr("mov", EAX, Imm(3)),
            Instr("mov", ECX, Imm(4)),
            Instr("mul", ECX),
        ], 3)
        assert machine.regs[0] == 12
        assert machine.regs[2] == 0
        assert machine.cf == 0


class TestWideDivision:
    def test_64bit_dividend(self):
        # EDX:EAX = 0x1_00000000 (4294967296), divide by 3.
        machine = run_instrs([
            Instr("mov", EDX, Imm(1)),
            Instr("mov", EAX, Imm(0)),
            Instr("mov", ECX, Imm(3)),
            Instr("idiv", ECX),
        ], 4)
        assert machine.regs[0] == 4294967296 // 3
        assert machine.regs[2] == 4294967296 % 3

    def test_negative_wide_dividend(self):
        # EDX:EAX = -10 (sign-extended), divide by 3 -> -3 rem -1.
        machine = run_instrs([
            Instr("mov", EAX, Imm(-10)),
            Instr("cdq"),
            Instr("mov", ECX, Imm(3)),
            Instr("idiv", ECX),
        ], 4)
        assert machine.regs[0] == (-3) & 0xFFFFFFFF
        assert machine.regs[2] == (-1) & 0xFFFFFFFF


class TestXchg:
    def test_xchg_registers(self):
        machine = run_instrs([
            Instr("mov", EAX, Imm(1)),
            Instr("mov", EBX, Imm(2)),
            Instr("xchg", EAX, EBX),
        ], 3)
        assert machine.regs[0] == 2
        assert machine.regs[3] == 1

    def test_xchg_with_memory(self):
        from repro.x86.registers import ESP
        machine = run_instrs([
            Instr("push", Imm(77)),
            Instr("mov", EAX, Imm(5)),
            Instr("xchg", Mem(base=ESP), EAX),
        ], 3)
        assert machine.regs[0] == 77
        assert machine.memory.read_u32(machine.regs[4]) == 5


class TestSetccWritesLowByteOnly:
    def test_upper_bytes_preserved(self):
        machine = run_instrs([
            Instr("mov", EAX, Imm(0x12345600)),
            Instr("mov", ECX, Imm(1)),
            Instr("test", ECX, ECX),
            Instr("setne", EAX),
        ], 4)
        assert machine.regs[0] == 0x12345601
