"""447.dealII — finite element analysis.

The original assembles sparse stiffness matrices and runs iterative
solvers. The miniature assembles a banded (tridiagonal-plus) system from
per-element contributions and relaxes it with Jacobi iterations —
assembly is store-heavy, the solve is a balanced load/multiply loop.
"""

from repro.workloads.base import Workload
from repro.workloads.coldcode import bank_for

SOURCE = """
// 447.dealII miniature: banded FEM assembly + Jacobi relaxation.
int diag[512];
int lower[512];
int upper[512];
int rhs[512];
int solution[512];
int next_solution[512];

void assemble(int n, int seed) {
  int i;
  for (i = 0; i < n; i++) {
    diag[i] = 0; lower[i] = 0; upper[i] = 0; rhs[i] = 0;
  }
  int x = seed;
  int e;
  // Element loop: each element scatters a 2x2 local matrix.
  for (e = 0; e < n - 1; e++) {
    x = (x * 1103515245 + 12345) & 2147483647;
    int stiff = 64 + x % 64;
    diag[e] += stiff * 2;
    diag[e + 1] += stiff * 2;
    upper[e] -= stiff;
    lower[e + 1] -= stiff;
    x = (x * 1103515245 + 12345) & 2147483647;
    rhs[e] += (x % 512);
    rhs[e + 1] += (x % 512);
  }
}

int jacobi_sweep(int n) {
  int i;
  int delta = 0;
  // Hot loop: the banded matrix-vector relaxation.
  for (i = 0; i < n; i++) {
    int acc = rhs[i] * 256;
    if (i > 0) { acc -= lower[i] * solution[i - 1]; }
    if (i < n - 1) { acc -= upper[i] * solution[i + 1]; }
    int d = diag[i];
    if (d == 0) { d = 1; }
    int v = acc / d;
    int diff = v - solution[i];
    if (diff < 0) { diff = -diff; }
    delta += diff;
    next_solution[i] = v;
  }
  for (i = 0; i < n; i++) { solution[i] = next_solution[i]; }
  return delta;
}

int main() {
  int n = input();
  int sweeps = input();
  int refinements = input();
  int seed = input();
  if (n > 512) { n = 512; }
  int total = 0;
  int r;
  for (r = 0; r < refinements; r++) {
    assemble(n, seed + r * 3);
    int i;
    for (i = 0; i < n; i++) { solution[i] = 0; }
    int s;
    int delta = 0;
    for (s = 0; s < sweeps; s++) {
      delta = jacobi_sweep(n);
      if (delta < n) { break; }
    }
    total = (total + delta + solution[n / 2]) & 16777215;
  }
  print(total);
  return 0;
}
"""

WORKLOAD = Workload(
    name="447.dealII",
    source=SOURCE + bank_for("447.dealII"),
    train_input=(96, 10, 2, 9),
    ref_input=(384, 20, 3, 27),
    character="FEM assembly + Jacobi: balanced loads/multiplies/divides",
)
