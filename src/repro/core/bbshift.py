"""Basic-block shifting (paper §6, future work).

NOP insertion adds little diversity at the very beginning of a binary:
displacements accumulate, so the first instructions are displaced by at
most a few bytes. The paper proposes inserting a *jumped-over* dummy
block of random size at the start of each function — the jump costs one
(well-predicted) instruction per call, while everything after the sled is
displaced by the sled's full size.

The sled is built from random NOP-table candidates so the Survivor
normalization treats it like any other inserted padding.
"""

from __future__ import annotations

from repro.backend.objfile import FunctionCode, LabelDef
from repro.x86.instructions import Instr, Label


def shift_basic_blocks(function_code, candidates, rng, max_shift_bytes=16):
    """Insert a jumped-over NOP sled after the function's entry label."""
    if not function_code.diversifiable or max_shift_bytes <= 0:
        return function_code

    sled_bytes = rng.randrange(max_shift_bytes + 1)
    if sled_bytes == 0:
        return function_code

    skip_label = f"{function_code.name}.__shifted"
    sled = []
    remaining = sled_bytes
    while remaining > 0:
        usable = [c for c in candidates if c.size <= remaining]
        if not usable:
            break
        candidate = usable[rng.randrange(len(usable))]
        nop = candidate.to_instr()
        nop.block_id = None  # never executed: the jump skips the sled
        sled.append(nop)
        remaining -= candidate.size

    items = list(function_code.items)
    # items[0] is the function's entry LabelDef; the sled goes right after
    # it, behind a skip jump, so calls land on the jump and hop the sled.
    entry_block = None
    for item in items:
        if isinstance(item, Instr):
            entry_block = item.block_id
            break
    jump = Instr("jmp", Label(skip_label), block_id=entry_block)
    insertion = [jump] + sled + [LabelDef(skip_label)]
    new_items = items[:1] + insertion + items[1:]
    return FunctionCode(function_code.name, new_items,
                        diversifiable=function_code.diversifiable)
