"""Liveness analysis and linear-scan register allocation.

Allocatable registers are the callee-saved trio EBX/ESI/EDI; EAX, ECX and
EDX are reserved as instruction-selection scratch (and for the return
value, shift counts and division, respectively). Virtual registers that do
not receive a physical register are assigned frame slots.

The algorithm is classic Poletto–Sarkar linear scan over conservative
whole-interval live ranges derived from a backward dataflow liveness
analysis on the block-ordered instruction list.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.x86.registers import EBX, EDI, ESI

#: Registers handed out by the allocator, in preference order.
ALLOCATABLE = (EBX, ESI, EDI)


@dataclass
class Allocation:
    """The result of register allocation for one function.

    ``assignment`` maps each virtual register to either a
    :class:`~repro.x86.registers.Register` or an integer frame-slot index
    (0-based; the frame layout turns it into an EBP offset).
    """

    assignment: dict
    slot_count: int
    used_callee_saved: tuple

    def location(self, vreg):
        return self.assignment[vreg]


def block_liveness(function):
    """Backward dataflow liveness; returns (live_in, live_out) per label."""
    # use[b]: used before defined in b; def[b]: defined in b.
    use_sets = {}
    def_sets = {}
    for block in function.blocks:
        used = set()
        defined = set()
        for instr in block.instrs:
            for reg in instr.used_regs():
                if reg not in defined:
                    used.add(reg)
            defined.update(instr.defs())
        use_sets[block.label] = used
        def_sets[block.label] = defined

    live_in = {block.label: set() for block in function.blocks}
    live_out = {block.label: set() for block in function.blocks}
    changed = True
    while changed:
        changed = False
        for block in reversed(function.blocks):
            label = block.label
            out = set()
            for successor in block.successors():
                out |= live_in[successor]
            new_in = use_sets[label] | (out - def_sets[label])
            if out != live_out[label] or new_in != live_in[label]:
                live_out[label] = out
                live_in[label] = new_in
                changed = True
    return live_in, live_out


def live_intervals(function):
    """Conservative whole live intervals over linearized positions.

    Returns ``{vreg: (start, end)}`` where positions number the
    instructions of all blocks in layout order. Parameters start at
    position -1 (live on entry).
    """
    live_in, live_out = block_liveness(function)
    intervals = {}

    def extend(vreg, position):
        start, end = intervals.get(vreg, (position, position))
        intervals[vreg] = (min(start, position), max(end, position))

    position = 0
    block_bounds = {}
    for block in function.blocks:
        start = position
        position += len(block.instrs)
        block_bounds[block.label] = (start, position - 1)

    for block in function.blocks:
        start, end = block_bounds[block.label]
        # Anything live across the block covers the whole block.
        for vreg in live_in[block.label]:
            extend(vreg, start)
        for vreg in live_out[block.label]:
            extend(vreg, end)
        position = start
        for instr in block.instrs:
            for vreg in instr.used_regs():
                extend(vreg, position)
            for vreg in instr.defs():
                extend(vreg, position)
            position += 1

    for param in function.params:
        if param in intervals:
            start, end = intervals[param]
            intervals[param] = (-1, end)
        else:
            intervals[param] = (-1, -1)
    return intervals


def allocate_function(function):
    """Linear-scan allocation; returns an :class:`Allocation`."""
    intervals = live_intervals(function)
    order = sorted(intervals.items(), key=lambda kv: (kv[1][0], kv[1][1],
                                                      kv[0].number))
    free = list(ALLOCATABLE)
    active = []  # (end, vreg, register), sorted by end
    assignment = {}
    slot_count = 0

    def expire(position):
        nonlocal active
        keep = []
        for end, vreg, register in active:
            if end < position:
                free.append(register)
            else:
                keep.append((end, vreg, register))
        active = keep

    for vreg, (start, end) in order:
        expire(start)
        if free:
            register = free.pop(0)
            assignment[vreg] = register
            active.append((end, vreg, register))
            active.sort(key=lambda entry: entry[0])
        else:
            # Spill the interval that ends last (it blocks the register
            # longest); if that's the current one, the current spills.
            furthest_end, furthest_vreg, register = active[-1]
            if furthest_end > end:
                assignment[vreg] = assignment[furthest_vreg]
                assignment[furthest_vreg] = slot_count
                slot_count += 1
                active[-1] = (end, vreg, register)
                active.sort(key=lambda entry: entry[0])
            else:
                assignment[vreg] = slot_count
                slot_count += 1

    used = tuple(reg for reg in ALLOCATABLE
                 if any(loc is reg for loc in assignment.values()))
    return Allocation(assignment, slot_count, used)
