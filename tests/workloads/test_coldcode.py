"""Cold-code bank tests."""

import pytest

from repro.minc import compile_to_ir
from repro.workloads.coldcode import (
    BANK_SIZES, bank_for, cold_code_bank,
)
from repro.workloads.registry import SPEC_ORDER


def test_bank_sizes_cover_the_whole_suite():
    assert set(BANK_SIZES) == set(SPEC_ORDER)


def test_bank_sizes_follow_table2_ordering():
    # Table 2 sorts by baseline gadget count; the banks must respect the
    # same relative ordering (lbm smallest ... xalancbmk largest).
    expected_order = [
        "470.lbm", "429.mcf", "462.libquantum", "401.bzip2", "473.astar",
        "433.milc", "458.sjeng", "456.hmmer", "444.namd", "482.sphinx3",
        "464.h264ref", "450.soplex", "447.dealII", "453.povray",
        "400.perlbench", "445.gobmk", "471.omnetpp", "403.gcc",
        "483.xalancbmk",
    ]
    sizes = [BANK_SIZES[name] for name in expected_order]
    assert sizes == sorted(sizes)


def test_bank_is_deterministic():
    assert cold_code_bank("x", 10, 42) == cold_code_bank("x", 10, 42)
    assert cold_code_bank("x", 10, 42) != cold_code_bank("x", 10, 43)


def test_zero_count_bank_is_empty():
    assert cold_code_bank("x", 0, 1) == ""


def test_bank_compiles_as_real_code():
    source = ("int main() { return 0; }\n"
              + cold_code_bank("t", 12, 7))
    module = compile_to_ir(source)
    # Every bank function plus the dispatcher is present.
    names = set(module.functions)
    assert "__cold_dispatch_t" in names
    assert sum(1 for n in names if n.startswith("__cold_t_")) == 12


def test_dispatcher_reaches_every_function():
    source = ("int main() { return 0; }\n"
              + cold_code_bank("t", 6, 3))
    module = compile_to_ir(source)
    from repro.ir.instructions import Call
    dispatcher = module.function("__cold_dispatch_t")
    callees = {instr.callee
               for block in dispatcher.blocks
               for instr in block.instrs
               if isinstance(instr, Call)}
    assert callees == {f"__cold_t_{i}" for i in range(6)}


def test_bank_functions_are_executable():
    # Cold code is never executed by workloads, but it must still be
    # *correct* code: call the dispatcher directly and check it returns.
    source = ("int main() { print(__cold_dispatch_t(3)); return 0; }\n"
              + cold_code_bank("t", 6, 3))
    from repro.pipeline import ProgramBuild
    build = ProgramBuild(source, "coldtest")
    reference = build.run_reference(())
    result = build.simulate(build.link_baseline(), ())
    assert result.output == reference.output


def test_bank_for_unknown_benchmark_is_empty():
    assert bank_for("999.unknown") == ""
