"""Differential variant validation and fault injection (``repro check``).

The paper's entire argument rests on an invariant it never mechanically
checks: diversification must be *semantics-preserving*. This package
makes the invariant first-class:

- :mod:`repro.check.differential` — run the IR reference interpreter,
  the baseline binary and every diversified variant on shared inputs and
  compare outputs, exit codes and instruction-count bounds, producing
  structured :class:`DivergenceReport` objects instead of asserts.
- :mod:`repro.check.faults` — deterministic seeded injectors that
  corrupt binaries, profiles and configs, plus a campaign runner that
  verifies every injected fault surfaces as a typed
  :class:`~repro.errors.ReproError` subclass with context — never a bare
  ``KeyError``/``struct.error``/silent wrong answer.

Both layers are wired into the CLI as ``repro-diversify check``.
"""

from repro.check.differential import (
    DivergenceReport, Observation, ValidationResult,
    observe_binary, observe_reference, require_equivalent,
    validate_population, validate_workload, validate_workloads,
    DEFAULT_CHECK_WORKLOADS,
)
from repro.check.faults import (
    ALL_INJECTORS, CampaignResult, FaultCase, FaultInjector, FaultTarget,
    run_campaign, target_from_source, target_from_workload,
)

__all__ = [
    "DivergenceReport", "Observation", "ValidationResult",
    "observe_binary", "observe_reference", "require_equivalent",
    "validate_population", "validate_workload", "validate_workloads",
    "DEFAULT_CHECK_WORKLOADS",
    "ALL_INJECTORS", "CampaignResult", "FaultCase", "FaultInjector",
    "FaultTarget", "run_campaign", "target_from_source",
    "target_from_workload",
]
