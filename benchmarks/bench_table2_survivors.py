"""E4 — Table 2: surviving gadgets on SPEC CPU 2006 binaries.

For every benchmark and every configuration, builds a population of
``REPRO_POPULATION`` diversified binaries and counts, with the Survivor
algorithm, how many gadgets remain functionally equivalent *at the same
offset* as in the undiversified original (averaged over the population).

Columns mirror the paper's Table 2:

- ``Baseline``    — gadgets in the undiversified binary,
- one column per pNOP configuration — mean surviving gadgets,
- ``Extra%``      — extra survivors of 0-30% versus 50% (best-to-worst),
- ``Surviving%``  — survivors at 0-30% as a share of the baseline.

Expected shape: benchmarks sort by baseline gadget count; Surviving%
*falls* as binaries grow; the absolute impact of profiling (Extra%) is
small compared to the destruction rate.
"""

from benchmarks._harness import (
    CONFIG_ORDER, POPULATION_SIZE, baseline_signatures, spec_names,
    variant_signatures,
)
from repro.reporting import format_table


def survivors_for(name, label, seed):
    original = baseline_signatures(name)
    variant = variant_signatures(name, label, seed)
    return sum(1 for offset, signature in variant.items()
               if original.get(offset) == signature)


def run_table():
    rows = {}
    for name in spec_names():
        baseline_count = len(baseline_signatures(name))
        means = {}
        for label in CONFIG_ORDER:
            counts = [survivors_for(name, label, seed)
                      for seed in range(POPULATION_SIZE)]
            means[label] = sum(counts) / len(counts)
        rows[name] = (baseline_count, means)
    return rows


def test_table2_surviving_gadgets(benchmark):
    rows = benchmark.pedantic(run_table, rounds=1, iterations=1)

    ordered = sorted(spec_names(), key=lambda n: rows[n][0])
    display = []
    for name in ordered:
        baseline_count, means = rows[name]
        best = means["50%"]
        worst = means["0-30%"]
        extra = 100 * (worst - best) / max(best, 1e-9)
        surviving = 100 * worst / max(baseline_count, 1)
        display.append((name, baseline_count)
                       + tuple(means[label] for label in CONFIG_ORDER)
                       + (f"{extra:.0f}%", f"{surviving:.2f}%"))

    print()
    print(format_table(
        ("Benchmark", "Baseline") + CONFIG_ORDER
        + ("Extra%", "Surviving%"),
        display,
        title=f"Table 2: surviving gadgets (mean of {POPULATION_SIZE} "
              "variants per configuration)"))

    # -- shape assertions ---------------------------------------------------
    # Diversification destroys the overwhelming majority of gadgets.
    for name in spec_names():
        baseline_count, means = rows[name]
        assert means["50%"] < 0.5 * baseline_count, name

    # Effectiveness increases with binary size: the largest benchmark
    # retains a smaller *fraction* than the smallest (paper: 18.29%
    # for lbm down to 0.05% for xalancbmk).
    smallest = ordered[0]
    largest = ordered[-1]

    def surviving_fraction(name):
        baseline_count, means = rows[name]
        return means["0-30%"] / max(baseline_count, 1)

    assert surviving_fraction(largest) < surviving_fraction(smallest)

    # Profiling's absolute impact is small: averaged over the suite, the
    # extra survivors of 0-30% versus 50% are a few percent of baseline.
    total_extra = sum(rows[n][1]["0-30%"] - rows[n][1]["50%"]
                      for n in spec_names())
    total_baseline = sum(rows[n][0] for n in spec_names())
    assert total_extra / total_baseline < 0.05
