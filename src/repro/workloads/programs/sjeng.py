"""458.sjeng — chess engine.

The original is alpha-beta game-tree search: recursive descent, move
generation, incremental evaluation against piece-square tables, heavy in
compares and branches with moderate memory traffic. The miniature plays
a capture-only negamax on an 8×8 board of weighted pieces.
"""

from repro.workloads.base import Workload
from repro.workloads.coldcode import bank_for

SOURCE = """
// 458.sjeng miniature: negamax with capture move generation.
int board[64];
int piece_value[8];
int history_table[64];

void setup(int seed) {
  piece_value[0] = 0;   piece_value[1] = 100; piece_value[2] = 300;
  piece_value[3] = 310; piece_value[4] = 500; piece_value[5] = 900;
  piece_value[6] = 0;   piece_value[7] = 0;
  int i;
  int x = seed;
  for (i = 0; i < 64; i++) {
    x = (x * 1103515245 + 12345) & 2147483647;
    int r = x % 10;
    if (r < 7) {
      board[i] = 0;
    } else {
      // piece type 1..5, sign = side
      int piece = 1 + x % 5;
      if ((x >> 8) & 1) { board[i] = piece; } else { board[i] = -piece; }
    }
    history_table[i] = 0;
  }
}

int evaluate(int side) {
  int score = 0;
  int i;
  for (i = 0; i < 64; i++) {
    int p = board[i];
    if (p > 0) { score += piece_value[p]; }
    if (p < 0) { score -= piece_value[-p]; }
  }
  if (side < 0) { return -score; }
  return score;
}

int negamax(int side, int depth, int alpha, int beta) {
  if (depth == 0) { return evaluate(side); }
  int best = evaluate(side) - 50;
  int from;
  for (from = 0; from < 64; from++) {
    int p = board[from];
    if ((side > 0 && p <= 0) || (side < 0 && p >= 0)) { continue; }
    int d;
    for (d = 0; d < 4; d++) {
      int to = from;
      if (d == 0) { to = from + 1; }
      if (d == 1) { to = from - 1; }
      if (d == 2) { to = from + 8; }
      if (d == 3) { to = from - 8; }
      if (to < 0 || to > 63) { continue; }
      int captured = board[to];
      // capture-only search: target must hold an enemy piece
      if ((side > 0 && captured >= 0) || (side < 0 && captured <= 0)) {
        continue;
      }
      board[to] = p;
      board[from] = 0;
      int score = -negamax(-side, depth - 1, -beta, -alpha);
      board[from] = p;
      board[to] = captured;
      if (score > best) { best = score; history_table[from]++; }
      if (best > alpha) { alpha = best; }
      if (alpha >= beta) { return best; }
    }
  }
  return best;
}

int main() {
  int positions = input();
  int depth = input();
  int seed = input();
  int total = 0;
  int g;
  for (g = 0; g < positions; g++) {
    setup(seed + g * 13);
    total = (total + negamax(1, depth, -100000, 100000)) & 16777215;
  }
  int i;
  for (i = 0; i < 64; i++) { total = (total + history_table[i]) & 16777215; }
  print(total);
  return 0;
}
"""

WORKLOAD = Workload(
    name="458.sjeng",
    source=SOURCE + bank_for("458.sjeng"),
    train_input=(1, 2, 7),
    ref_input=(5, 3, 19),
    character="alpha-beta tree search: branch-dense, recursive",
)
