#!/usr/bin/env python
"""Figure 2 demo: how NOP insertion displaces code and destroys gadgets.

Shows, on a real compiled function:

1. the disassembly of a code window before and after diversification —
   every instruction after an inserted NOP is displaced, and the
   displacement accumulates;
2. an *unintended* gadget (instructions hidden inside an immediate) that
   exists in the original binary and disappears from the diversified
   one, exactly as the paper's Figure 2 illustrates.

Run:  python examples/gadget_removal_demo.py
"""

from repro import DiversificationConfig, ProgramBuild
from repro.security.gadgets import find_gadgets
from repro.security.survivor import surviving_gadgets
from repro.x86.asmwriter import format_instr

# The constant 0x00C2C358 stores as bytes 58 C3 C2 00: decoding from the
# second byte yields POP EAX; RET — a classic unintended gadget.
SOURCE = """
int config[4];

int main() {
  config[0] = 12763992;   // 0x00C2C358: hides "pop eax; ret"
  config[1] = input();
  int i;
  int acc = 0;
  for (i = 0; i < 50; i++) { acc += config[i & 3] ^ i; }
  print(acc);
  return 0;
}
"""


def disassemble_window(binary, function, limit=14):
    start, end = binary.function_ranges[function]
    lines = []
    for record in binary.instr_records:
        if start <= record.address < end and len(lines) < limit:
            marker = " <== inserted NOP" if record.is_inserted_nop else ""
            lines.append(format_instr(record.instr,
                                      address=record.address) + marker)
    return "\n".join(lines)


def main():
    build = ProgramBuild(SOURCE, "figure2")
    baseline = build.link_baseline()
    config = DiversificationConfig.uniform(0.5)
    variant = build.link_variant(config, seed=4)

    print("=== main() before diversification ===")
    print(disassemble_window(baseline, "main"))
    print("\n=== main() after diversification (pNOP=50%, seed=4) ===")
    print(disassemble_window(variant, "main"))

    base_gadgets = find_gadgets(baseline.text)
    var_gadgets = find_gadgets(variant.text)
    unintended = [
        (offset, gadget) for offset, gadget in base_gadgets.items()
        if gadget.mnemonics() == ("pop", "ret")
    ]
    print(f"\noriginal binary: {len(base_gadgets)} gadgets, including "
          f"{len(unintended)} pop;ret gadget(s) hidden inside immediates:")
    for offset, gadget in unintended:
        print(f"  +{offset:#06x}: {'; '.join(gadget.mnemonics())}   "
              f"bytes {gadget.raw.hex(' ')}")

    survivors, offsets = surviving_gadgets(baseline.text, variant.text)
    destroyed = [offset for offset, _g in unintended
                 if offset not in set(offsets)]
    print(f"\ndiversified binary: {len(var_gadgets)} gadgets; "
          f"{survivors} survive at their original offsets")
    print(f"unintended pop;ret gadgets destroyed: "
          f"{len(destroyed)}/{len(unintended)}")

    print("\nBoth binaries still compute the same result:")
    for name, binary in (("baseline", baseline), ("variant", variant)):
        result = build.simulate(binary, (3,))
        print(f"  {name:9s}: output={result.output}")


if __name__ == "__main__":
    main()
