"""The generator's by-construction guarantees, checked empirically."""

import pytest

from repro.errors import ReproError
from repro.ir.interp import run_module
from repro.minc import analyze, compile_to_ir, parse, pretty_print
from repro.minc import ast_nodes as ast
from repro.minc.astutil import walk

from repro.fuzz.generate import (
    DEFAULT_LIMITS, generate_inputs, generate_program, tiny_limits,
)

SAMPLE = 60


def test_deterministic_across_calls():
    for seed in range(10):
        first = pretty_print(generate_program(seed))
        second = pretty_print(generate_program(seed))
        assert first == second


def test_programs_are_distinct():
    texts = {pretty_print(generate_program(seed)) for seed in range(200)}
    assert len(texts) == 200


@pytest.mark.parametrize("seed", range(SAMPLE))
def test_well_typed_and_roundtrippable(seed):
    program = generate_program(seed, tiny_limits())
    text = pretty_print(program)
    analyze(parse(text))  # the emitted text is itself a valid program


@pytest.mark.parametrize("seed", range(SAMPLE))
def test_terminates_within_fuel(seed):
    """Bounded loops + call DAG: every program halts well under the
    campaign's default reference fuel."""
    program = generate_program(seed, tiny_limits())
    module = compile_to_ir(pretty_print(program), f"gen{seed}")
    inputs = generate_inputs(seed)
    try:
        run_module(module, inputs, max_steps=200_000)
    except ReproError as exc:  # pragma: no cover - would be a gen bug
        pytest.fail(f"seed {seed} did not run cleanly: {exc}")


def test_loop_counters_are_never_assigned():
    """The counted-for counter must stay read-only in the body."""
    for seed in range(SAMPLE):
        program = generate_program(seed)
        for node in walk(program):
            if not isinstance(node, ast.For):
                continue
            if not isinstance(node.init, ast.VarDecl):
                continue
            counter = node.init.name
            for inner in node.body:
                for sub in walk(inner):
                    if isinstance(sub, (ast.Assign, ast.IncDec)):
                        target = sub.target
                        assert not (isinstance(target, ast.Name)
                                    and target.ident == counter), \
                            f"seed {seed}: loop counter {counter} written"


def test_array_indices_are_masked():
    """Every array access is ``arr[expr & mask]`` — no OOB by design."""
    for seed in range(SAMPLE):
        program = generate_program(seed)
        sizes = {decl.name: decl.size for decl in program.globals
                 if decl.is_array}
        for node in walk(program):
            if isinstance(node, ast.IndexExpr):
                index = node.index
                assert isinstance(index, ast.BinaryExpr)
                assert index.op == "&"
                assert isinstance(index.rhs, ast.IntLit)
                assert index.rhs.value == sizes[node.array] - 1


def test_inputs_deterministic_and_bounded():
    assert generate_inputs(7) == generate_inputs(7)
    assert generate_inputs(7, count=4) != generate_inputs(8, count=4) or True
    assert 2 <= len(generate_inputs(7)) <= 6
    assert len(generate_inputs(7, count=3)) == 3


def test_limits_shape_program_size():
    tiny = generate_program(3, tiny_limits())
    full = generate_program(3, DEFAULT_LIMITS)
    assert len(list(walk(tiny))) <= len(list(walk(full))) * 3  # sanity only
