"""E7 — §3.1: execution-count distributions and the linear-vs-log choice.

The paper motivates the logarithmic probability function with profiling
statistics: maximum block counts span orders of magnitude across
benchmarks, medians sit far below maxima, and the linear heuristic
therefore polarizes probabilities. This bench regenerates those
statistics for our suite and evaluates both heuristics at the median of
every benchmark (the paper's 473.astar worked example).
"""

from benchmarks._harness import spec_names, train_profile
from repro.core.probability import (
    LinearProfileProbability, LogProfileProbability,
)
from repro.reporting import format_table


def run_statistics():
    linear = LinearProfileProbability(0.10, 0.50)
    logarithmic = LogProfileProbability(0.10, 0.50)
    rows = []
    for name in spec_names():
        profile = train_profile(name)
        maximum, median, _total = profile.summary()
        rows.append((
            name, maximum, median,
            100 * linear.probability(median, maximum),
            100 * logarithmic.probability(median, maximum),
        ))
    return rows


def test_count_distribution_and_probability_models(benchmark):
    rows = benchmark.pedantic(run_statistics, rounds=1, iterations=1)

    print()
    print(format_table(
        ("Benchmark", "Max count", "Median", "linear p@median %",
         "log p@median %"),
        rows,
        title="Execution-count statistics (train input) and pNOP at the "
              "median block, range [10%, 50%]"))

    maxima = [row[1] for row in rows]
    # Maxima spread widely across the suite (the paper reports a
    # 14M..4B span; ours is scaled down but still over an order of
    # magnitude).
    assert max(maxima) > 10 * min(maxima)

    for name, maximum, median, linear_p, log_p in rows:
        # Medians are far below maxima: hot loops dominate.
        assert median < maximum
        # The log model keeps the median inside the interval while the
        # linear model pushes it toward p_max (cold) for the skewed
        # benchmarks.
        assert 10.0 - 1e-9 <= log_p <= 50.0 + 1e-9
        assert log_p <= linear_p + 1e-9

    # The paper's qualitative claim: on skewed benchmarks the linear
    # model is within a hair of p_max at the median (useless), the log
    # model is well inside the interval.
    skewed = [row for row in rows if row[1] > 200 * max(row[2], 1)]
    assert skewed, "suite must contain sharply skewed profiles"
    for _name, _maximum, _median, linear_p, log_p in skewed:
        assert linear_p > 49.0
        assert log_p < 45.0
