"""456.hmmer — profile HMM sequence search.

The original's Viterbi inner loop is one of SPEC's hottest single loops
(the paper reports its 4-billion maximum execution count). The miniature
runs the same three-state dynamic program over synthetic sequences: the
M/I/D recurrence with running maxima, executed model_len × seq_len times
per alignment — a sharply skewed count distribution.
"""

from repro.workloads.base import Workload
from repro.workloads.coldcode import bank_for

SOURCE = """
// 456.hmmer miniature: three-state Viterbi dynamic program.
int match_score[4096];
int vit_m[128];
int vit_i[128];
int vit_d[128];
int prev_m[128];
int prev_i[128];
int prev_d[128];
int sequence[512];
int NEG = -100000000;

void init_model(int model_len, int seed) {
  int i;
  int x = seed;
  for (i = 0; i < model_len * 4; i++) {
    x = (x * 1103515245 + 12345) & 2147483647;
    match_score[i] = (x % 21) - 10;
  }
}

void make_sequence(int len, int seed) {
  int i;
  int x = seed;
  for (i = 0; i < len; i++) {
    x = (x * 1103515245 + 12345) & 2147483647;
    sequence[i] = x & 3;
  }
}

int viterbi(int model_len, int seq_len) {
  int k;
  for (k = 0; k <= model_len; k++) {
    prev_m[k] = NEG; prev_i[k] = NEG; prev_d[k] = NEG;
  }
  prev_m[0] = 0;
  int pos;
  int best = NEG;
  for (pos = 0; pos < seq_len; pos++) {
    int sym = sequence[pos];
    vit_m[0] = NEG; vit_i[0] = prev_m[0] - 2; vit_d[0] = NEG;
    // THE hot loop: the M/I/D recurrence, executed model*seq times.
    for (k = 1; k <= model_len; k++) {
      int sc = match_score[(k - 1) * 4 + sym];
      int from_m = prev_m[k - 1];
      int from_i = prev_i[k - 1] - 3;
      int from_d = prev_d[k - 1] - 1;
      int m = from_m;
      if (from_i > m) { m = from_i; }
      if (from_d > m) { m = from_d; }
      vit_m[k] = m + sc;
      int im = prev_m[k] - 4;
      int ii = prev_i[k] - 1;
      if (im > ii) { vit_i[k] = im; } else { vit_i[k] = ii; }
      int dm = vit_m[k - 1] - 5;
      int dd = vit_d[k - 1] - 1;
      if (dm > dd) { vit_d[k] = dm; } else { vit_d[k] = dd; }
      if (vit_m[k] > best) { best = vit_m[k]; }
    }
    for (k = 0; k <= model_len; k++) {
      prev_m[k] = vit_m[k];
      prev_i[k] = vit_i[k];
      prev_d[k] = vit_d[k];
    }
  }
  return best;
}

int main() {
  int model_len = input();
  int seq_len = input();
  int n_seqs = input();
  int seed = input();
  if (model_len > 120) { model_len = 120; }
  if (seq_len > 512) { seq_len = 512; }
  init_model(model_len, seed);
  int total = 0;
  int s;
  for (s = 0; s < n_seqs; s++) {
    make_sequence(seq_len, seed + s * 7);
    total = (total + viterbi(model_len, seq_len)) & 16777215;
  }
  print(total);
  return 0;
}
"""

WORKLOAD = Workload(
    name="456.hmmer",
    source=SOURCE + bank_for("456.hmmer"),
    train_input=(24, 64, 1, 11),
    ref_input=(48, 128, 2, 3),
    character="Viterbi DP: one dominant hot loop, sharply skewed counts",
)
