"""Deterministic cold-code banks.

The paper's SPEC binaries span three orders of magnitude in size (Table
2: 344 gadgets for 470.lbm up to 566,342 for 483.xalancbmk), and its
security results hinge on that spread: the *fraction* of gadgets
surviving diversification falls as binaries grow, while the absolute
floor (undiversified libc) stays constant.

Our hand-written kernels are all a few KB, so each workload links a
deterministic bank of **cold functions** scaled to its benchmark's
relative size: plausible utility/error-path/feature code that a real
application carries but a benchmark run never executes (real binaries
are mostly cold code — the premise of the whole paper). The bank is

- deterministic: generated from a fixed seed, so builds are
  reproducible;
- real code: compiled, optimized, register-allocated and linked like
  everything else, and diversified by the NOP pass (profiles assign it
  count 0 → maximally cold → pNOP = p_max);
- performance-neutral: never executed, so Figure-4 numbers are
  unaffected.

See DESIGN.md §2 for the substitution note.
"""

from __future__ import annotations

import random

_OPERATORS = ("+", "-", "^", "&", "|")


def _cold_function(prefix, index, rng):
    """One cold utility function: branchy integer/array code."""
    lines = [f"int __cold_{prefix}_{index}(int x) {{"]
    lines.append(f"  int a = x ^ {rng.randint(1, 0xFFFF)};")
    lines.append(f"  int b = (a * {rng.randint(3, 99)}) >> "
                 f"{rng.randint(1, 7)};")
    statements = rng.randint(2, 5)
    for statement in range(statements):
        kind = rng.randrange(4)
        if kind == 0:
            op = rng.choice(_OPERATORS)
            lines.append(f"  a = (a {op} b) + {rng.randint(-64, 64)};")
        elif kind == 1:
            lines.append(f"  __coldbuf_{prefix}[(a + {statement}) & 63]"
                         f" = b ^ {rng.randint(0, 255)};")
        elif kind == 2:
            lines.append(f"  if (b > {rng.randint(0, 1 << 12)}) "
                         f"{{ b = b - a; }} else {{ b = b + "
                         f"{rng.randint(1, 9)}; }}")
        else:
            lines.append(f"  b = __coldbuf_{prefix}[(b - a) & 63] "
                         f"+ {rng.randint(1, 500)};")
    lines.append(f"  return a - b + {rng.randint(-128, 128)};")
    lines.append("}")
    return "\n".join(lines)


def cold_code_bank(prefix, count, seed):
    """MinC source for ``count`` cold functions plus their dispatcher.

    The dispatcher makes every bank function statically reachable (the
    shape of a feature table / error-handler registry); no benchmark
    ever calls it at run time.
    """
    if count <= 0:
        return ""
    rng = random.Random(seed)
    parts = ["", f"// cold-code bank ({count} functions; see "
                 "repro.workloads.coldcode)",
             f"int __coldbuf_{prefix}[64];"]
    for index in range(count):
        parts.append(_cold_function(prefix, index, rng))
    dispatcher = [f"int __cold_dispatch_{prefix}(int selector) {{",
                  "  int result = 0;"]
    for index in range(count):
        dispatcher.append(
            f"  if (selector == {index + 1}) "
            f"{{ result += __cold_{prefix}_{index}(selector); }}")
    dispatcher.append("  return result;")
    dispatcher.append("}")
    parts.append("\n".join(dispatcher))
    return "\n".join(parts) + "\n"


#: Bank sizes per benchmark, ordered so baseline gadget counts replicate
#: the relative ordering of the paper's Table 2 (lbm smallest ...
#: xalancbmk largest). Sizes are scaled to keep the full 19 × 5 × 25
#: population study tractable in pure Python.
BANK_SIZES = {
    "470.lbm": 20,
    "429.mcf": 40,
    "462.libquantum": 52,
    "401.bzip2": 64,
    "473.astar": 74,
    "433.milc": 92,
    "458.sjeng": 98,
    "456.hmmer": 105,
    "444.namd": 113,
    "482.sphinx3": 121,
    "464.h264ref": 133,
    "450.soplex": 145,
    "447.dealII": 151,
    "453.povray": 168,
    "400.perlbench": 174,
    "445.gobmk": 186,
    "471.omnetpp": 204,
    "403.gcc": 228,
    "483.xalancbmk": 300,
}


def bank_for(benchmark_name):
    """The cold-code bank source for one SPEC-like workload."""
    count = BANK_SIZES.get(benchmark_name, 0)
    prefix = benchmark_name.split(".", 1)[-1].lower()
    # Seed from the benchmark number so banks are stable per workload.
    seed = sum(ord(ch) for ch in benchmark_name)
    return cold_code_bank(prefix, count, seed)
