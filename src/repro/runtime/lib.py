"""Hand-written runtime library routines.

These play the role of the C library objects that the linker adds to every
binary. Crucially, they are **not diversified**: the paper's compiler only
diversifies code it generates, while libc ships as fixed object code. The
paper traces the ~40 gadgets that survive in at least half of the
population back to exactly these objects (§5.2), and this module is what
reproduces that floor in our experiments.

Conventions match the compiled code: cdecl-like stack arguments, result in
EAX, EBX/ESI/EDI callee-saved. I/O and process exit go through ``INT
0x80`` (see :mod:`repro.sim.machine` for the syscall table).

Every instruction is tagged ``block_id = (name, "body")`` so the analytic
cost engine can attribute runtime cycles; the only routines with non-zero
execution counts in compiled programs are ``_start``, ``__print_int`` and
``__read_int`` (the rest are the usual statically-linked ballast).
"""

from __future__ import annotations

from repro.backend.objfile import FunctionCode, LabelDef, ObjectUnit
from repro.ir.instructions import Input, Print
from repro.x86.instructions import Imm, Instr, Label, Mem
from repro.x86.registers import EAX, EBX, ECX, EDX, EDI, ESI, ESP


class _Asm:
    """Tiny assembler DSL for hand-written routines."""

    def __init__(self, name):
        self.name = name
        self.items = [LabelDef(name)]

    def label(self, suffix):
        self.items.append(LabelDef(self.name + suffix))
        return self

    def ref(self, suffix):
        return Label(self.name + suffix)

    def emit(self, mnemonic, *operands):
        self.items.append(Instr(mnemonic, *operands,
                                block_id=(self.name, "body")))
        return self

    def code(self):
        return FunctionCode(self.name, self.items, diversifiable=False)


def _start():
    asm = _Asm("_start")
    asm.emit("call", Label("main"))
    asm.emit("mov", EBX, EAX)       # exit code = main's return value
    asm.emit("mov", EAX, Imm(0))    # sys_exit
    asm.emit("int", Imm(0x80))
    asm.emit("hlt")                 # trap if exit ever returns
    return asm.code()


def _print_int():
    """print_int(value): write one integer to the program output."""
    asm = _Asm("__print_int")
    asm.emit("push", EBX)
    asm.emit("mov", EBX, Mem(base=ESP, disp=8))
    asm.emit("mov", EAX, Imm(1))    # sys_print_int
    asm.emit("int", Imm(0x80))
    asm.emit("pop", EBX)
    asm.emit("ret")
    return asm.code()


def _read_int():
    """read_int(): next integer of the input vector, 0 past the end."""
    asm = _Asm("__read_int")
    asm.emit("mov", EAX, Imm(2))    # sys_read_int
    asm.emit("int", Imm(0x80))
    asm.emit("ret")
    return asm.code()


def _abs():
    """abs(x)"""
    asm = _Asm("__abs")
    asm.emit("mov", EAX, Mem(base=ESP, disp=4))
    asm.emit("test", EAX, EAX)
    asm.emit("jns", asm.ref(".done"))
    asm.emit("neg", EAX)
    asm.label(".done")
    asm.emit("ret")
    return asm.code()


def _imin():
    """imin(a, b)"""
    asm = _Asm("__imin")
    asm.emit("mov", EAX, Mem(base=ESP, disp=4))
    asm.emit("mov", ECX, Mem(base=ESP, disp=8))
    asm.emit("cmp", EAX, ECX)
    asm.emit("jle", asm.ref(".done"))
    asm.emit("mov", EAX, ECX)
    asm.label(".done")
    asm.emit("ret")
    return asm.code()


def _imax():
    """imax(a, b)"""
    asm = _Asm("__imax")
    asm.emit("mov", EAX, Mem(base=ESP, disp=4))
    asm.emit("mov", ECX, Mem(base=ESP, disp=8))
    asm.emit("cmp", EAX, ECX)
    asm.emit("jge", asm.ref(".done"))
    asm.emit("mov", EAX, ECX)
    asm.label(".done")
    asm.emit("ret")
    return asm.code()


def _memcpyw():
    """memcpyw(dst, src, nwords): copy 32-bit words."""
    asm = _Asm("__memcpyw")
    asm.emit("push", ESI)
    asm.emit("push", EDI)
    asm.emit("mov", EDI, Mem(base=ESP, disp=12))
    asm.emit("mov", ESI, Mem(base=ESP, disp=16))
    asm.emit("mov", ECX, Mem(base=ESP, disp=20))
    asm.label(".loop")
    asm.emit("test", ECX, ECX)
    asm.emit("je", asm.ref(".done"))
    asm.emit("mov", EAX, Mem(base=ESI))
    asm.emit("mov", Mem(base=EDI), EAX)
    asm.emit("add", ESI, Imm(4))
    asm.emit("add", EDI, Imm(4))
    asm.emit("dec", ECX)
    asm.emit("jmp", asm.ref(".loop"))
    asm.label(".done")
    asm.emit("pop", EDI)
    asm.emit("pop", ESI)
    asm.emit("ret")
    return asm.code()


def _memsetw():
    """memsetw(dst, value, nwords): fill 32-bit words."""
    asm = _Asm("__memsetw")
    asm.emit("push", EDI)
    asm.emit("mov", EDI, Mem(base=ESP, disp=8))
    asm.emit("mov", EAX, Mem(base=ESP, disp=12))
    asm.emit("mov", ECX, Mem(base=ESP, disp=16))
    asm.label(".loop")
    asm.emit("test", ECX, ECX)
    asm.emit("je", asm.ref(".done"))
    asm.emit("mov", Mem(base=EDI), EAX)
    asm.emit("add", EDI, Imm(4))
    asm.emit("dec", ECX)
    asm.emit("jmp", asm.ref(".loop"))
    asm.label(".done")
    asm.emit("pop", EDI)
    asm.emit("ret")
    return asm.code()


def _gcd():
    """gcd(a, b) by Euclid's algorithm (IDIV remainder loop)."""
    asm = _Asm("__gcd")
    asm.emit("mov", EAX, Mem(base=ESP, disp=4))
    asm.emit("mov", ECX, Mem(base=ESP, disp=8))
    asm.label(".loop")
    asm.emit("test", ECX, ECX)
    asm.emit("je", asm.ref(".done"))
    asm.emit("cdq")
    asm.emit("idiv", ECX)
    asm.emit("mov", EAX, ECX)
    asm.emit("mov", ECX, EDX)
    asm.emit("jmp", asm.ref(".loop"))
    asm.label(".done")
    asm.emit("ret")
    return asm.code()


def _strlenw():
    """strlenw(addr): count words until a zero word."""
    asm = _Asm("__strlenw")
    asm.emit("mov", ECX, Mem(base=ESP, disp=4))
    asm.emit("mov", EAX, Imm(0))
    asm.label(".loop")
    asm.emit("mov", EDX, Mem(base=ECX))
    asm.emit("test", EDX, EDX)
    asm.emit("je", asm.ref(".done"))
    asm.emit("inc", EAX)
    asm.emit("add", ECX, Imm(4))
    asm.emit("jmp", asm.ref(".loop"))
    asm.label(".done")
    asm.emit("ret")
    return asm.code()


def _sumw():
    """sumw(addr, nwords): 32-bit wrapping sum of a word buffer."""
    asm = _Asm("__sumw")
    asm.emit("mov", ECX, Mem(base=ESP, disp=4))
    asm.emit("mov", EDX, Mem(base=ESP, disp=8))
    asm.emit("mov", EAX, Imm(0))
    asm.label(".loop")
    asm.emit("test", EDX, EDX)
    asm.emit("je", asm.ref(".done"))
    asm.emit("add", EAX, Mem(base=ECX))
    asm.emit("add", ECX, Imm(4))
    asm.emit("dec", EDX)
    asm.emit("jmp", asm.ref(".loop"))
    asm.label(".done")
    asm.emit("ret")
    return asm.code()


def _swapw():
    """swapw(addr_a, addr_b): exchange two words in memory."""
    asm = _Asm("__swapw")
    asm.emit("mov", ECX, Mem(base=ESP, disp=4))
    asm.emit("mov", EDX, Mem(base=ESP, disp=8))
    asm.emit("mov", EAX, Mem(base=ECX))
    asm.emit("push", EAX)
    asm.emit("mov", EAX, Mem(base=EDX))
    asm.emit("mov", Mem(base=ECX), EAX)
    asm.emit("pop", EAX)
    asm.emit("mov", Mem(base=EDX), EAX)
    asm.emit("ret")
    return asm.code()


def _udiv10():
    """udiv10(x): x / 10 for non-negative x (itoa-style helper)."""
    asm = _Asm("__udiv10")
    asm.emit("mov", EAX, Mem(base=ESP, disp=4))
    asm.emit("mov", ECX, Imm(10))
    asm.emit("cdq")
    asm.emit("idiv", ECX)
    asm.emit("ret")
    return asm.code()


_BUILDERS = (
    _start, _print_int, _read_int, _abs, _imin, _imax, _memcpyw,
    _memsetw, _gcd, _strlenw, _sumw, _swapw, _udiv10,
)

#: Names of every runtime routine, in link order.
RUNTIME_FUNCTION_NAMES = tuple(builder().name for builder in _BUILDERS)


def runtime_unit():
    """A fresh :class:`ObjectUnit` holding the whole runtime library."""
    unit = ObjectUnit("runtime")
    for builder in _BUILDERS:
        unit.add_function(builder())
    return unit


def runtime_call_counts(module, block_counts):
    """Execution counts for runtime blocks, derived from IR-level counts.

    ``block_counts`` maps (function_name, block_label) → count for the
    program's own code. Runtime routines reached from compiled code are
    ``_start`` (once), ``__print_int`` (one call per executed Print) and
    ``__read_int`` (one per executed Input); everything else is unused
    ballast with count 0.
    """
    print_calls = 0
    read_calls = 0
    for function in module.functions.values():
        for block in function.blocks:
            count = block_counts.get((function.name, block.label), 0)
            if not count:
                continue
            for instr in block.instrs:
                if isinstance(instr, Print):
                    print_calls += count
                elif isinstance(instr, Input):
                    read_calls += count
    return {
        ("_start", "body"): 1,
        ("__print_int", "body"): print_calls,
        ("__read_int", "body"): read_calls,
    }
