"""The eight IA-32 general-purpose registers.

Register objects are interned: there is exactly one :class:`Register`
instance per architectural register, so identity comparison is safe and
they can be used as dictionary keys throughout the backend and simulator.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Register:
    """A 32-bit general-purpose register.

    Attributes:
        name: canonical lower-case mnemonic, e.g. ``"eax"``.
        code: the 3-bit register number used in ModRM/SIB encodings.
    """

    name: str
    code: int

    def __repr__(self):
        return self.name.upper()

    def __reduce__(self):
        # Unpickle to the interned singleton, not a fresh instance, so
        # identity comparisons stay valid for objects that crossed a
        # process boundary (parallel population builds, artifact cache).
        return (register_by_code, (self.code,))


EAX = Register("eax", 0)
ECX = Register("ecx", 1)
EDX = Register("edx", 2)
EBX = Register("ebx", 3)
ESP = Register("esp", 4)
EBP = Register("ebp", 5)
ESI = Register("esi", 6)
EDI = Register("edi", 7)

#: All general-purpose registers, indexed by their encoding number.
GPR_REGISTERS = (EAX, ECX, EDX, EBX, ESP, EBP, ESI, EDI)

_BY_NAME = {reg.name: reg for reg in GPR_REGISTERS}


def register_by_code(code):
    """Return the register with the given 3-bit encoding number."""
    return GPR_REGISTERS[code]


def register_by_name(name):
    """Return the register with the given (case-insensitive) name."""
    return _BY_NAME[name.lower()]
