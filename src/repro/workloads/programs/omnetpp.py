"""471.omnetpp — discrete event network simulation.

The original simulates an Ethernet with a future-event set: heap
operations, per-event handler dispatch, queue bookkeeping — pointer-ish
traversal over many mid-sized functions. The miniature simulates packet
switching between nodes with an event heap, per-node FIFO queues and
collision/backoff logic.
"""

from repro.workloads.base import Workload
from repro.workloads.coldcode import bank_for

SOURCE = """
// 471.omnetpp miniature: event-driven packet switch simulation.
int ev_time[1024];
int ev_node[1024];
int ev_kind[1024];
int ev_count = 0;
int queue_head[32];
int queue_len[32];
int queue_store[1024];   // 32 nodes x 32 slots
int node_busy[32];
int stat_delivered = 0;
int stat_dropped = 0;
int stat_collisions = 0;

void heap_insert(int time, int node, int kind) {
  if (ev_count >= 1024) { stat_dropped++; return; }
  int i = ev_count;
  ev_time[i] = time;
  ev_node[i] = node;
  ev_kind[i] = kind;
  ev_count++;
  while (i > 0) {
    int parent = (i - 1) / 2;
    if (ev_time[parent] <= ev_time[i]) { break; }
    int t;
    t = ev_time[parent]; ev_time[parent] = ev_time[i]; ev_time[i] = t;
    t = ev_node[parent]; ev_node[parent] = ev_node[i]; ev_node[i] = t;
    t = ev_kind[parent]; ev_kind[parent] = ev_kind[i]; ev_kind[i] = t;
    i = parent;
  }
}

int heap_extract_min() {
  // Returns packed (time<<8 | node<<3 | kind); caller unpacks.
  int time = ev_time[0];
  int node = ev_node[0];
  int kind = ev_kind[0];
  ev_count--;
  ev_time[0] = ev_time[ev_count];
  ev_node[0] = ev_node[ev_count];
  ev_kind[0] = ev_kind[ev_count];
  int i = 0;
  while (1) {
    int left = 2 * i + 1;
    int right = 2 * i + 2;
    int small = i;
    if (left < ev_count && ev_time[left] < ev_time[small]) { small = left; }
    if (right < ev_count && ev_time[right] < ev_time[small]) { small = right; }
    if (small == i) { break; }
    int t;
    t = ev_time[small]; ev_time[small] = ev_time[i]; ev_time[i] = t;
    t = ev_node[small]; ev_node[small] = ev_node[i]; ev_node[i] = t;
    t = ev_kind[small]; ev_kind[small] = ev_kind[i]; ev_kind[i] = t;
    i = small;
  }
  return (time << 8) | (node << 3) | kind;
}

void enqueue_packet(int node, int payload) {
  if (queue_len[node] >= 32) { stat_dropped++; return; }
  int slot = (queue_head[node] + queue_len[node]) & 31;
  queue_store[node * 32 + slot] = payload;
  queue_len[node]++;
}

int dequeue_packet(int node) {
  int payload = queue_store[node * 32 + queue_head[node]];
  queue_head[node] = (queue_head[node] + 1) & 31;
  queue_len[node]--;
  return payload;
}

void handle_arrival(int now, int node, int x) {
  if (node_busy[node]) {
    stat_collisions++;
    // Exponential-ish backoff: retry later.
    heap_insert(now + 4 + (x & 15), node, 0);
    return;
  }
  enqueue_packet(node, x & 255);
  heap_insert(now + 2 + (x & 3), node, 1);
  node_busy[node] = 1;
}

void handle_departure(int now, int node, int nodes, int x) {
  if (queue_len[node] > 0) {
    int payload = dequeue_packet(node);
    stat_delivered++;
    int dest = (node + 1 + (payload & 7)) % nodes;
    heap_insert(now + 3 + (payload & 7), dest, 0);
  }
  if (queue_len[node] > 0) {
    heap_insert(now + 2, node, 1);
  } else {
    node_busy[node] = 0;
  }
}

int main() {
  int nodes = input();
  int initial_events = input();
  int max_events = input();
  int seed = input();
  if (nodes > 32) { nodes = 32; }
  int i;
  for (i = 0; i < 32; i++) {
    queue_head[i] = 0; queue_len[i] = 0; node_busy[i] = 0;
  }
  int x = seed;
  for (i = 0; i < initial_events; i++) {
    x = (x * 1103515245 + 12345) & 2147483647;
    heap_insert(x & 63, x % nodes, 0);
  }
  int processed = 0;
  // Main event loop: heap pops + dispatch, the omnetpp shape.
  while (ev_count > 0 && processed < max_events) {
    int packed = heap_extract_min();
    int now = packed >> 8;
    int node = (packed >> 3) & 31;
    int kind = packed & 7;
    x = (x * 1103515245 + 12345) & 2147483647;
    if (kind == 0) {
      handle_arrival(now, node % nodes, x);
    } else {
      handle_departure(now, node % nodes, nodes, x);
    }
    processed++;
  }
  print((stat_delivered * 100000 + stat_collisions * 100
         + (stat_dropped & 99)) & 16777215);
  return 0;
}
"""

WORKLOAD = Workload(
    name="471.omnetpp",
    source=SOURCE + bank_for("471.omnetpp"),
    train_input=(8, 30, 900, 3),
    ref_input=(32, 120, 6000, 11),
    character="discrete-event simulation: heap churn + handler dispatch",
)
