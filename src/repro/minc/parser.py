"""Recursive-descent parser for MinC.

Grammar (EBNF; ``{}`` repetition, ``[]`` option)::

    program     = { global | function } ;
    global      = "int" IDENT [ "[" NUMBER "]" ]
                  [ "=" ( expr-number | "{" number-list "}" ) ] ";" ;
    function    = ( "int" | "void" ) IDENT "(" [ params ] ")" block ;
    params      = "int" IDENT { "," "int" IDENT } ;
    block       = "{" { statement } "}" ;
    statement   = var-decl | assign-or-expr ";" | if | while | for
                | "break" ";" | "continue" ";"
                | "return" [ expr ] ";" | "print" "(" expr ")" ";"
                | block ;
    var-decl    = "int" IDENT [ "=" expr ] ";" ;
    if          = "if" "(" expr ")" statement [ "else" statement ] ;
    while       = "while" "(" expr ")" statement ;
    for         = "for" "(" [ simple ] ";" [ expr ] ";" [ simple ] ")"
                  statement ;
    simple      = assignment | inc-dec | expr ;

    expr        = logical-or ;  (with C precedence down to primary)
    primary     = NUMBER | IDENT | IDENT "(" args ")" | IDENT "[" expr "]"
                | "input" "(" ")" | "(" expr ")" | ("-"|"!"|"~") unary ;

Global initializers must be integer literals (optionally negated).
"""

from __future__ import annotations

from repro.errors import MincSyntaxError
from repro.minc import ast_nodes as ast
from repro.minc.lexer import tokenize

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
               "<<=", ">>="}

#: Binary precedence levels, lowest binding first.
_PRECEDENCE = (
    ("||",),
    ("&&",),
    ("|",),
    ("^",),
    ("&",),
    ("==", "!="),
    ("<", "<=", ">", ">="),
    ("<<", ">>"),
    ("+", "-"),
    ("*", "/", "%"),
)


class _Parser:
    def __init__(self, tokens):
        self.tokens = tokens
        self.position = 0

    # -- token plumbing ------------------------------------------------------

    @property
    def current(self):
        return self.tokens[self.position]

    def peek(self, offset=1):
        index = min(self.position + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self):
        token = self.current
        if token.kind != "eof":
            self.position += 1
        return token

    def check(self, kind):
        return self.current.kind == kind

    def accept(self, kind):
        if self.check(kind):
            return self.advance()
        return None

    def expect(self, kind):
        if not self.check(kind):
            raise MincSyntaxError(
                f"expected {kind!r}, found {self.current.kind!r}",
                self.current.line, self.current.column)
        return self.advance()

    # -- top level -------------------------------------------------------------

    def parse_program(self):
        program = ast.Program(line=1)
        while not self.check("eof"):
            if self.check("void"):
                program.functions.append(self.parse_function())
            elif self.check("int"):
                # int NAME ( → function; otherwise global.
                if self.peek(2).kind == "(":
                    program.functions.append(self.parse_function())
                else:
                    program.globals.append(self.parse_global())
            else:
                raise MincSyntaxError(
                    f"expected declaration, found {self.current.kind!r}",
                    self.current.line, self.current.column)
        return program

    def parse_global(self):
        line = self.expect("int").line
        name = self.expect("ident").value
        decl = ast.GlobalDecl(name=name, line=line)
        if self.accept("["):
            decl.is_array = True
            decl.size = self._literal_int()
            self.expect("]")
            if decl.size <= 0:
                raise MincSyntaxError(f"array {name!r} must have positive "
                                      "size", line)
        if self.accept("="):
            if self.accept("{"):
                if not decl.is_array:
                    raise MincSyntaxError(
                        f"brace initializer on scalar {name!r}", line)
                values = [self._literal_int()]
                while self.accept(","):
                    values.append(self._literal_int())
                self.expect("}")
                decl.init = values
            else:
                decl.init = [self._literal_int()]
        self.expect(";")
        return decl

    def _literal_int(self):
        negative = bool(self.accept("-"))
        token = self.expect("number")
        return -token.value if negative else token.value

    def parse_function(self):
        returns_value = self.current.kind == "int"
        line = self.advance().line  # int | void
        name = self.expect("ident").value
        self.expect("(")
        params = []
        if not self.check(")"):
            while True:
                self.expect("int")
                params.append(self.expect("ident").value)
                if not self.accept(","):
                    break
        self.expect(")")
        body = self.parse_block()
        return ast.FuncDecl(name=name, params=params,
                            returns_value=returns_value, body=body, line=line)

    # -- statements --------------------------------------------------------------

    def parse_block(self):
        self.expect("{")
        statements = []
        while not self.check("}"):
            statements.append(self.parse_statement())
        self.expect("}")
        return statements

    def parse_statement(self):
        token = self.current
        if token.kind == "{":
            # A bare block is a statement; flatten via a no-cond If? Keep a
            # dedicated representation: reuse If(cond=1) would obscure
            # intent, so blocks simply inline as a statement list carrier.
            return ast.If(cond=ast.IntLit(value=1, line=token.line),
                          then_body=self.parse_block(), else_body=[],
                          line=token.line)
        if token.kind == "int":
            return self.parse_var_decl()
        if token.kind == "if":
            return self.parse_if()
        if token.kind == "while":
            return self.parse_while()
        if token.kind == "for":
            return self.parse_for()
        if token.kind == "break":
            self.advance()
            self.expect(";")
            return ast.Break(line=token.line)
        if token.kind == "continue":
            self.advance()
            self.expect(";")
            return ast.Continue(line=token.line)
        if token.kind == "return":
            self.advance()
            value = None if self.check(";") else self.parse_expr()
            self.expect(";")
            return ast.Return(value=value, line=token.line)
        if token.kind == "print":
            self.advance()
            self.expect("(")
            value = self.parse_expr()
            self.expect(")")
            self.expect(";")
            return ast.PrintStmt(value=value, line=token.line)
        statement = self.parse_simple()
        self.expect(";")
        return statement

    def parse_var_decl(self):
        line = self.expect("int").line
        name = self.expect("ident").value
        init = None
        if self.accept("="):
            init = self.parse_expr()
        self.expect(";")
        return ast.VarDecl(name=name, init=init, line=line)

    def parse_if(self):
        line = self.expect("if").line
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        then_body = self._statement_as_list()
        else_body = []
        if self.accept("else"):
            else_body = self._statement_as_list()
        return ast.If(cond=cond, then_body=then_body, else_body=else_body,
                      line=line)

    def parse_while(self):
        line = self.expect("while").line
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        return ast.While(cond=cond, body=self._statement_as_list(), line=line)

    def parse_for(self):
        line = self.expect("for").line
        self.expect("(")
        init = None if self.check(";") else self.parse_for_clause()
        self.expect(";")
        cond = None if self.check(";") else self.parse_expr()
        self.expect(";")
        step = None if self.check(")") else self.parse_simple()
        self.expect(")")
        return ast.For(init=init, cond=cond, step=step,
                       body=self._statement_as_list(), line=line)

    def parse_for_clause(self):
        if self.check("int"):
            line = self.expect("int").line
            name = self.expect("ident").value
            init = None
            if self.accept("="):
                init = self.parse_expr()
            return ast.VarDecl(name=name, init=init, line=line)
        return self.parse_simple()

    def _statement_as_list(self):
        """Parse one statement; blocks flatten to their statement list."""
        if self.check("{"):
            return self.parse_block()
        return [self.parse_statement()]

    def parse_simple(self):
        """Assignment, increment/decrement, or bare expression."""
        start = self.position
        target = self.parse_unary()
        token = self.current
        if token.kind in _ASSIGN_OPS:
            if not isinstance(target, (ast.Name, ast.IndexExpr)):
                raise MincSyntaxError("invalid assignment target",
                                      token.line, token.column)
            self.advance()
            value = self.parse_expr()
            return ast.Assign(target=target, op=token.kind, value=value,
                              line=token.line)
        if token.kind in ("++", "--"):
            if not isinstance(target, (ast.Name, ast.IndexExpr)):
                raise MincSyntaxError("invalid increment target",
                                      token.line, token.column)
            self.advance()
            return ast.IncDec(target=target, op=token.kind, line=token.line)
        # Plain expression statement: reparse from the start so binary
        # operators above unary precedence are included.
        self.position = start
        return ast.ExprStmt(expr=self.parse_expr(), line=token.line)

    # -- expressions -----------------------------------------------------------

    def parse_expr(self):
        return self._parse_binary(0)

    def _parse_binary(self, level):
        if level >= len(_PRECEDENCE):
            return self.parse_unary()
        lhs = self._parse_binary(level + 1)
        while self.current.kind in _PRECEDENCE[level]:
            op = self.advance()
            rhs = self._parse_binary(level + 1)
            lhs = ast.BinaryExpr(op=op.kind, lhs=lhs, rhs=rhs, line=op.line)
        return lhs

    def parse_unary(self):
        token = self.current
        if token.kind in ("-", "!", "~"):
            self.advance()
            operand = self.parse_unary()
            return ast.UnaryExpr(op=token.kind, operand=operand,
                                 line=token.line)
        return self.parse_primary()

    def parse_primary(self):
        token = self.current
        if token.kind == "number":
            self.advance()
            return ast.IntLit(value=token.value, line=token.line)
        if token.kind == "input":
            self.advance()
            self.expect("(")
            self.expect(")")
            return ast.InputExpr(line=token.line)
        if token.kind == "(":
            self.advance()
            expr = self.parse_expr()
            self.expect(")")
            return expr
        if token.kind == "ident":
            self.advance()
            if self.accept("("):
                args = []
                if not self.check(")"):
                    args.append(self.parse_expr())
                    while self.accept(","):
                        args.append(self.parse_expr())
                self.expect(")")
                return ast.CallExpr(callee=token.value, args=args,
                                    line=token.line)
            if self.accept("["):
                index = self.parse_expr()
                self.expect("]")
                return ast.IndexExpr(array=token.value, index=index,
                                     line=token.line)
            return ast.Name(ident=token.value, line=token.line)
        raise MincSyntaxError(f"unexpected token {token.kind!r}",
                              token.line, token.column)


def parse(source):
    """Parse MinC source text into an :class:`~repro.minc.ast_nodes.Program`."""
    return _Parser(tokenize(source)).parse_program()
