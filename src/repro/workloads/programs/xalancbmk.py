"""483.xalancbmk — XSLT processor.

The original transforms XML trees: tree construction, template matching,
attribute handling, output serialization — by far the largest binary of
the suite (over half a million gadgets in the paper's Table 2). The
miniature builds a random document tree in flat arrays and runs several
template-driven transformation passes over it, spread across many
functions so its text section is the suite's largest.
"""

from repro.workloads.base import Workload
from repro.workloads.coldcode import bank_for

SOURCE = """
// 483.xalancbmk miniature: tree transform passes over a flat DOM.
int node_tag[2048];
int node_parent[2048];
int node_first_child[2048];
int node_next_sibling[2048];
int node_attr[2048];
int node_value[2048];
int node_count = 0;
int out_buffer[4096];
int out_count = 0;
int template_match[64];
int template_action[64];
int match_stats[64];

int new_node(int tag, int parent, int value) {
  if (node_count >= 2048) { return -1; }
  int id = node_count;
  node_count++;
  node_tag[id] = tag;
  node_parent[id] = parent;
  node_first_child[id] = -1;
  node_next_sibling[id] = -1;
  node_attr[id] = 0;
  node_value[id] = value;
  if (parent >= 0) {
    int child = node_first_child[parent];
    if (child < 0) {
      node_first_child[parent] = id;
    } else {
      while (node_next_sibling[child] >= 0) {
        child = node_next_sibling[child];
      }
      node_next_sibling[child] = id;
    }
  }
  return id;
}

int build_document(int nodes, int seed) {
  node_count = 0;
  int root = new_node(0, -1, 0);
  int x = seed;
  int i;
  for (i = 1; i < nodes; i++) {
    x = (x * 1103515245 + 12345) & 2147483647;
    int parent = x % node_count;
    x = (x * 1103515245 + 12345) & 2147483647;
    int tag = 1 + x % 12;
    x = (x * 1103515245 + 12345) & 2147483647;
    new_node(tag, parent, x & 1023);
  }
  return root;
}

void build_templates(int count, int seed) {
  int x = seed;
  int i;
  for (i = 0; i < count; i++) {
    x = (x * 1103515245 + 12345) & 2147483647;
    template_match[i] = 1 + x % 12;
    x = (x * 1103515245 + 12345) & 2147483647;
    template_action[i] = x % 4;
    match_stats[i] = 0;
  }
}

int match_template(int node, int templates) {
  int tag = node_tag[node];
  int i;
  for (i = 0; i < templates; i++) {
    if (template_match[i] == tag) {
      match_stats[i]++;
      return i;
    }
  }
  return -1;
}

void emit_output(int word) {
  if (out_count < 4096) {
    out_buffer[out_count] = word;
    out_count++;
  }
}

int node_depth(int node) {
  int depth = 0;
  int cursor = node_parent[node];
  while (cursor >= 0) {
    depth++;
    cursor = node_parent[cursor];
  }
  return depth;
}

void apply_action(int node, int action) {
  if (action == 0) {
    emit_output(node_tag[node] * 256 + (node_value[node] & 255));
  } else if (action == 1) {
    node_attr[node] = (node_attr[node] + node_value[node]) & 65535;
  } else if (action == 2) {
    emit_output(node_depth(node));
  } else {
    node_value[node] = (node_value[node] * 3 + 7) & 1023;
  }
}

int transform_subtree(int node, int templates) {
  int visited = 0;
  int t = match_template(node, templates);
  if (t >= 0) { apply_action(node, template_action[t]); }
  int child = node_first_child[node];
  // Recursive descent over the sibling chain, the Xalan walk.
  while (child >= 0) {
    visited += transform_subtree(child, templates);
    child = node_next_sibling[child];
  }
  return visited + 1;
}

int count_by_tag(int tag) {
  int i;
  int n = 0;
  for (i = 0; i < node_count; i++) {
    if (node_tag[i] == tag) { n++; }
  }
  return n;
}

int serialize() {
  int checksum = 0;
  int i;
  for (i = 0; i < out_count; i++) {
    checksum = (checksum * 31 + out_buffer[i]) & 16777215;
  }
  return checksum;
}

int attribute_sum() {
  int i;
  int acc = 0;
  for (i = 0; i < node_count; i++) {
    acc = (acc + node_attr[i]) & 16777215;
  }
  return acc;
}

int main() {
  int nodes = input();
  int templates = input();
  int passes = input();
  int seed = input();
  if (nodes > 2048) { nodes = 2048; }
  if (templates > 64) { templates = 64; }
  int root = build_document(nodes, seed);
  build_templates(templates, seed + 1);
  int total = 0;
  int p;
  for (p = 0; p < passes; p++) {
    out_count = 0;
    total = (total + transform_subtree(root, templates)) & 16777215;
    total = (total + serialize()) & 16777215;
  }
  int tag;
  for (tag = 1; tag <= 12; tag++) {
    total = (total + count_by_tag(tag) * tag) & 16777215;
  }
  total = (total + attribute_sum()) & 16777215;
  print(total);
  return 0;
}
"""

WORKLOAD = Workload(
    name="483.xalancbmk",
    source=SOURCE + bank_for("483.xalancbmk"),
    train_input=(192, 16, 2, 7),
    ref_input=(1024, 48, 4, 3),
    character="tree transforms: pointer-chasing walks over a flat DOM, "
              "largest code footprint of the suite",
)
