"""Content-addressed on-disk cache for diversified variant binaries.

Population studies (Figure 4 overheads, the Table-2/3 survivor counts,
the ``repro.check`` campaign) rebuild the same (source, config, seed,
profile) variants over and over across runs. A variant is fully
determined by those inputs — diversification draws every random decision
from a ``random.Random(seed)`` — so the linked binary can be cached on
disk keyed by their content hash and reused by any later process.

Layout: ``<root>/<key[:2]>/<key>.pkl`` where ``key`` is the SHA-256 over
(cache version, source text, program name, opt level, config description,
seed, profile JSON). Payloads are pickled
:class:`~repro.backend.linker.LinkedBinary` objects framed by a magic +
length + SHA-256 header; writes go through a temp file + ``os.replace``
so concurrent workers never observe a torn entry, and any short,
digest-failing or otherwise corrupt entry is detected by the frame,
retried once (a racing writer may just have finished), then unlinked
and counted as a miss — never returned half-unpickled.

The cache is opt-in: pass ``cache_dir`` to the population builders or set
``REPRO_CACHE_DIR``.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile

from repro.obs import metrics
from repro.obs.knobs import knob_value

#: Bump when variant generation, linking, or the binary layout changes
#: meaning: stale entries from older code must never be returned.
#: v2: entries are framed (magic + length + payload digest) so torn or
#: partially-written files are detected instead of unpickled.
CACHE_VERSION = 2

#: Entry frame: magic, 8-byte little-endian payload length, SHA-256 of
#: the payload, then the pickled binary. ``os.replace`` already makes
#: writes atomic on POSIX; the frame guards the remaining torn-read
#: windows — a crashed writer's leftover temp promoted by an older
#: code path, a truncating filesystem, or a reader racing a non-atomic
#: copy of the cache directory — by making every short or corrupt file
#: detectable before ``pickle`` sees it.
_ENTRY_MAGIC = b"RPVC"
_HEADER_SIZE = len(_ENTRY_MAGIC) + 8 + 32

#: The process-wide hit/miss/put totals live in the shared metrics
#: registry (:mod:`repro.obs.metrics`) under these counter names, so
#: they travel to the parent inside the same named
#: :class:`~repro.obs.metrics.MetricsDelta` as every other worker
#: metric. The helpers below keep the original cache_stats() API.
_STAT_KEYS = ("hits", "misses", "puts")


def cache_stats():
    """Snapshot of the process-wide cache counters."""
    counters = metrics.counters()
    return {key: counters.get(f"cache.{key}", 0) for key in _STAT_KEYS}


def reset_cache_stats():
    """Zero the process-wide cache counters (test/bench isolation)."""
    for key in _STAT_KEYS:
        metrics.zero(f"cache.{key}")


def record_cache_stats(hits=0, misses=0, puts=0):
    """Fold externally-observed counts (keyword-named) in.

    Worker pools no longer call this with a positional tuple — they
    ship a whole :class:`~repro.obs.metrics.MetricsDelta` keyed by
    counter name — but out-of-tree callers keep the keyword API.
    """
    metrics.inc("cache.hits", hits)
    metrics.inc("cache.misses", misses)
    metrics.inc("cache.puts", puts)


def variant_key(source, name, opt_level, config, seed, profile=None):
    """Content hash identifying one variant build.

    ``repr(config)`` covers every knob of a
    :class:`~repro.core.config.DiversificationConfig` (it and its
    probability models are dataclasses with generated reprs);
    ``profile.to_json()`` is deterministic (sorted edges), so equal
    profiles hash equally regardless of collection order.
    """
    digest = hashlib.sha256()
    for part in (f"v{CACHE_VERSION}", source, name, str(opt_level),
                 repr(config), str(seed),
                 profile.to_json() if profile is not None else "<no-profile>"):
        encoded = part.encode("utf-8")
        digest.update(len(encoded).to_bytes(8, "little"))
        digest.update(encoded)
    return digest.hexdigest()


class VariantCache:
    """A directory of pickled variant binaries, keyed by content hash."""

    def __init__(self, root):
        self.root = os.fspath(root)
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.corrupt = 0

    def _path(self, key):
        return os.path.join(self.root, key[:2], key + ".pkl")

    def _read_entry(self, path):
        """One framed read attempt: the payload bytes, or ``None`` when
        the file is absent, short, or fails its digest."""
        try:
            with open(path, "rb") as handle:
                blob = handle.read()
        except OSError:
            return None
        if (len(blob) < _HEADER_SIZE
                or not blob.startswith(_ENTRY_MAGIC)):
            return None
        length = int.from_bytes(blob[4:12], "little")
        payload = blob[_HEADER_SIZE:]
        if len(payload) != length:
            return None
        if hashlib.sha256(payload).digest() != blob[12:_HEADER_SIZE]:
            return None
        return payload

    def get(self, key):
        """The cached binary for ``key``, or ``None`` on any miss/error.

        Concurrent-safe: entries are framed with a length + digest
        header, so a torn or partially-visible file is detected, retried
        once (a racing writer's ``os.replace`` may land in between), and
        finally removed and counted as ``cache.corrupt`` rather than
        returned as a half-unpickled binary.
        """
        path = self._path(key)
        payload = self._read_entry(path)
        exists = os.path.exists(path)
        if payload is None and exists:
            payload = self._read_entry(path)  # retry: writer may finish
        if payload is not None:
            try:
                binary = pickle.loads(payload)
            except (pickle.PickleError, EOFError, AttributeError,
                    ImportError, IndexError):
                payload = None
        if payload is None:
            if exists:
                # Framed-but-broken (or unframed v1) entry: it can never
                # become readable, so drop it for the next writer.
                self.corrupt += 1
                metrics.inc("cache.corrupt")
                try:
                    os.unlink(path)
                except OSError:
                    pass
            self.misses += 1
            metrics.inc("cache.misses")
            return None
        self.hits += 1
        metrics.inc("cache.hits")
        return binary

    def put(self, key, binary):
        """Store ``binary`` under ``key`` (atomic, best-effort)."""
        path = self._path(key)
        payload = pickle.dumps(binary, protocol=pickle.HIGHEST_PROTOCOL)
        header = (_ENTRY_MAGIC + len(payload).to_bytes(8, "little")
                  + hashlib.sha256(payload).digest())
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            fd, tmp_path = tempfile.mkstemp(dir=os.path.dirname(path),
                                            suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(header)
                    handle.write(payload)
                os.replace(tmp_path, path)
            except BaseException:
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
                raise
        except OSError:
            return  # a full/read-only disk must not fail the build
        self.puts += 1
        metrics.inc("cache.puts")

    def stats(self):
        """This instance's counter snapshot (hits/misses/puts/corrupt)."""
        return {"hits": self.hits, "misses": self.misses,
                "puts": self.puts, "corrupt": self.corrupt}

    def __repr__(self):
        return (f"VariantCache({self.root!r}, hits={self.hits}, "
                f"misses={self.misses}, puts={self.puts})")


def cache_from_env(cache_dir=None):
    """Resolve the cache to use: explicit dir, else ``REPRO_CACHE_DIR``.

    Returns ``None`` (caching disabled) when neither is set or the value
    is empty.
    """
    if cache_dir is None:
        cache_dir = knob_value("REPRO_CACHE_DIR")
    if not cache_dir:
        return None
    return VariantCache(cache_dir)
