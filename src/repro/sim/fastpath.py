"""Threaded-code fast path for the x86-32 simulator.

The reference interpreter (:meth:`repro.sim.machine.Machine.step`) pays,
on every executed instruction, for a mnemonic if/elif chain and an
``isinstance`` ladder per operand access. This module removes both costs
by *specializing at decode time*: each decoded instruction becomes one
bound closure — a threaded-code handler — with every operand access
resolved once (register index, masked immediate constant, or a
precomputed effective-address thunk) and the fall-through / branch-target
EIPs baked in as constants. Dispatch is then a single dict lookup
(``eip -> handler``) and a call.

Because text is immutable (the simulator enforces W^X), the decoded
instructions and the specialized handlers are shared *per binary* across
every :class:`~repro.sim.machine.Machine` instance, keyed on the
:class:`~repro.backend.linker.LinkedBinary` in a
``WeakKeyDictionary``. Profile collection, differential checks and
population studies that re-run the same binary never decode (or
specialize) the same instruction twice.

Semantics are bit-for-bit those of the reference path — same outputs,
exit codes, instruction counts, flag values and fault messages; the
``repro.check`` differential harness and ``tests/check`` assert exact
parity on every registered workload. The reference path is retained
(``Machine.run(engine="reference")``) precisely so that the two can be
compared forever.
"""

from __future__ import annotations

import operator
import struct
import weakref

from repro.errors import DecodingError, MachineFault, SimulationLimitExceeded
from repro.sim.memory import STACK_TOP
from repro.x86.decoder import decode_cached
from repro.x86.instructions import CONDITION_CODES, Imm, Mem
from repro.x86.registers import Register

_U32 = struct.Struct("<I")

_MASK = 0xFFFF_FFFF
_SIGN = 0x8000_0000

_PARITY = tuple(int(bin(value).count("1") % 2 == 0) for value in range(256))


def _signed(value):
    return value - 0x1_0000_0000 if value & _SIGN else value


# ---------------------------------------------------------------------------
# Shared per-binary caches. ``_caches(binary)`` returns ``(decode_cache,
# program)`` where ``decode_cache`` maps text *offset* -> Instr (shared
# with Machine._fetch and fault reporting) and ``program`` maps absolute
# EIP -> specialized handler. Keyed weakly so dropping a binary frees
# its program.
# ---------------------------------------------------------------------------

_SHARED = weakref.WeakKeyDictionary()


def _caches(binary):
    entry = _SHARED.get(binary)
    if entry is None:
        entry = ({}, {})
        _SHARED[binary] = entry
    return entry


def shared_decode_cache(binary):
    """The binary's shared ``offset -> Instr`` decode cache."""
    return _caches(binary)[0]


def shared_program(binary):
    """The binary's shared ``eip -> handler`` threaded program."""
    return _caches(binary)[1]


class _CannotSpecialize(Exception):
    """Operand shape outside the specializer's cases (never produced by
    the decoder; kept as a safety valve for hand-built instructions)."""


# ---------------------------------------------------------------------------
# Operand specialization: resolve each operand to a closure once.
# ---------------------------------------------------------------------------

def ea_thunk(mem):
    """Effective-address closure for a :class:`Mem` operand.

    The addressing case (disp-only, base, base+index*scale, index*scale)
    is chosen once here instead of being re-branched on every access.
    """
    disp = mem.disp
    if mem.base is not None:
        base = mem.base.code
        if mem.index is not None:
            index, scale = mem.index.code, mem.scale

            def ea(m, _b=base, _i=index, _s=scale, _d=disp):
                r = m.regs
                return (r[_b] + r[_i] * _s + _d) & 0xFFFF_FFFF
        else:
            def ea(m, _b=base, _d=disp):
                return (m.regs[_b] + _d) & 0xFFFF_FFFF
    elif mem.index is not None:
        index, scale = mem.index.code, mem.scale

        def ea(m, _i=index, _s=scale, _d=disp):
            return (m.regs[_i] * _s + _d) & 0xFFFF_FFFF
    else:
        address = disp & _MASK

        def ea(_m, _a=address):
            return _a
    return ea


def reader(operand):
    """Value-read closure for one operand (reg / imm / mem)."""
    kind = type(operand)
    if kind is Register:
        code = operand.code

        def get(m, _c=code):
            return m.regs[_c]
    elif kind is Imm:
        value = operand.value & _MASK

        def get(_m, _v=value):
            return _v
    elif kind is Mem:
        ea = ea_thunk(operand)

        def get(m, _ea=ea):
            return m.memory.read32(_ea(m))
    else:
        raise _CannotSpecialize(operand)
    return get


def writer(operand):
    """Value-write closure for one operand (reg / mem)."""
    kind = type(operand)
    if kind is Register:
        code = operand.code

        def put(m, value, _c=code):
            m.regs[_c] = value
    elif kind is Mem:
        ea = ea_thunk(operand)

        def put(m, value, _ea=ea):
            m.memory.write32(_ea(m), value)
    else:
        raise _CannotSpecialize(operand)
    return put


# ---------------------------------------------------------------------------
# Condition-code tests (read the same flag fields the reference updates).
# ---------------------------------------------------------------------------

_CC_TESTS = {
    "e": lambda m: m.zf,
    "ne": lambda m: not m.zf,
    "l": lambda m: m.sf != m.of,
    "ge": lambda m: m.sf == m.of,
    "le": lambda m: m.zf or m.sf != m.of,
    "g": lambda m: not m.zf and m.sf == m.of,
    "b": lambda m: m.cf,
    "ae": lambda m: not m.cf,
    "be": lambda m: m.cf or m.zf,
    "a": lambda m: not (m.cf or m.zf),
    "s": lambda m: m.sf,
    "ns": lambda m: not m.sf,
    "o": lambda m: m.of,
    "no": lambda m: not m.of,
    "p": lambda m: m.pf,
    "np": lambda m: not m.pf,
}


# ---------------------------------------------------------------------------
# Mnemonic -> specializer table (replaces the reference if/elif chain).
# Each factory receives (instr, addr, nxt) — nxt being the already-masked
# fall-through EIP — and returns ``handler(machine) -> next_eip`` where
# ``None`` signals a clean halt.
# ---------------------------------------------------------------------------

_SPECIALIZERS = {}


def _spec(*mnemonics):
    def register(factory):
        for mnemonic in mnemonics:
            _SPECIALIZERS[mnemonic] = factory
        return factory
    return register


@_spec("mov")
def _mk_mov(instr, addr, nxt):
    dst, src = instr.operands
    if type(dst) is Register:
        code = dst.code
        if type(src) is Register:
            source = src.code

            def h(m, _d=code, _s=source, _n=nxt):
                r = m.regs
                r[_d] = r[_s]
                return _n
        elif type(src) is Imm:
            value = src.value & _MASK

            def h(m, _d=code, _v=value, _n=nxt):
                m.regs[_d] = _v
                return _n
        elif src.base is not None and src.index is None:
            # reg <- [base+disp]: the dominant load shape. EA inlined,
            # and for EBP bases (locals/spills — almost always stack)
            # the stack-segment hit is inlined too, skipping the read32
            # call entirely on the expected path.
            base, disp = src.base.code, src.disp
            if base == 5:  # EBP
                def h(m, _d=code, _o=disp, _n=nxt, _u=_U32.unpack_from,
                      _top=STACK_TOP):
                    r = m.regs
                    a = (r[5] + _o) & 0xFFFF_FFFF
                    mem = m.memory
                    sb = mem.stack_base
                    if sb <= a and a + 4 <= _top:
                        r[_d] = _u(mem.stack, a - sb)[0]
                    else:
                        r[_d] = mem.read32(a)
                    return _n
            else:
                def h(m, _d=code, _b=base, _o=disp, _n=nxt,
                      _u=_U32.unpack_from):
                    r = m.regs
                    a = (r[_b] + _o) & 0xFFFF_FFFF
                    mem = m.memory
                    db = mem.data_base
                    if db <= a and a + 4 <= mem.data_end:
                        r[_d] = _u(mem.data, a - db)[0]
                    else:
                        r[_d] = mem.read32(a)
                    return _n
        else:
            ea = ea_thunk(src)

            def h(m, _d=code, _ea=ea, _n=nxt):
                m.regs[_d] = m.memory.read32(_ea(m))
                return _n
        return h
    if type(src) is Register and dst.base is not None and dst.index is None:
        source, base, disp = src.code, dst.base.code, dst.disp
        if base == 5:  # EBP: store to a local, inline the stack hit
            def h(m, _s=source, _o=disp, _n=nxt, _p=_U32.pack_into,
                  _top=STACK_TOP):
                r = m.regs
                a = (r[5] + _o) & 0xFFFF_FFFF
                mem = m.memory
                sb = mem.stack_base
                if sb <= a and a + 4 <= _top:
                    _p(mem.stack, a - sb, r[_s])
                else:
                    mem.write32(a, r[_s])
                return _n
            return h

        def h(m, _s=source, _b=base, _o=disp, _n=nxt):
            r = m.regs
            m.memory.write32((r[_b] + _o) & 0xFFFF_FFFF, r[_s])
            return _n
        return h
    ea = ea_thunk(dst)
    get = reader(src)

    def h(m, _ea=ea, _g=get, _n=nxt):
        m.memory.write32(_ea(m), _g(m))
        return _n
    return h


@_spec("lea")
def _mk_lea(instr, addr, nxt):
    dst, src = instr.operands
    if type(dst) is not Register or type(src) is not Mem:
        raise _CannotSpecialize(instr)
    code, ea = dst.code, ea_thunk(src)

    def h(m, _d=code, _ea=ea, _n=nxt):
        m.regs[_d] = _ea(m)
        return _n
    return h


@_spec("add")
def _mk_add(instr, addr, nxt):
    dst, src = instr.operands
    if type(dst) is Register:
        code = dst.code
        if type(src) is Imm:
            addend = src.value & _MASK

            def h(m, _d=code, _b=addend, _n=nxt, _pt=_PARITY):
                r = m.regs
                a = r[_d]
                wide = a + _b
                result = wide & 0xFFFF_FFFF
                m.cf = 1 if wide > 0xFFFF_FFFF else 0
                m.of = 1 if (a ^ result) & (_b ^ result) & 0x8000_0000 else 0
                m.zf = 1 if result == 0 else 0
                m.sf = result >> 31
                m.pf = _pt[result & 0xFF]
                r[_d] = result
                return _n
            return h
        if type(src) is Register:
            source = src.code

            def h(m, _d=code, _s=source, _n=nxt, _pt=_PARITY):
                r = m.regs
                a = r[_d]
                b = r[_s]
                wide = a + b
                result = wide & 0xFFFF_FFFF
                m.cf = 1 if wide > 0xFFFF_FFFF else 0
                m.of = 1 if (a ^ result) & (b ^ result) & 0x8000_0000 else 0
                m.zf = 1 if result == 0 else 0
                m.sf = result >> 31
                m.pf = _pt[result & 0xFF]
                r[_d] = result
                return _n
            return h
    get0, get1 = reader(dst), reader(src)
    put0 = writer(dst)

    def h(m, _g0=get0, _g1=get1, _p0=put0, _n=nxt, _pt=_PARITY):
        a = _g0(m)
        b = _g1(m)
        wide = a + b
        result = wide & 0xFFFF_FFFF
        m.cf = 1 if wide > 0xFFFF_FFFF else 0
        m.of = 1 if (a ^ result) & (b ^ result) & 0x8000_0000 else 0
        m.zf = 1 if result == 0 else 0
        m.sf = result >> 31
        m.pf = _pt[result & 0xFF]
        _p0(m, result)
        return _n
    return h


def _sub_flags_handler(get0, get1, put0, nxt):
    """sub/cmp share the computation; cmp passes ``put0=None``."""
    def h(m, _g0=get0, _g1=get1, _p0=put0, _n=nxt, _pt=_PARITY):
        a = _g0(m)
        b = _g1(m)
        result = (a - b) & 0xFFFF_FFFF
        m.cf = 1 if a < b else 0
        m.of = 1 if (a ^ b) & (a ^ result) & 0x8000_0000 else 0
        m.zf = 1 if result == 0 else 0
        m.sf = result >> 31
        m.pf = _pt[result & 0xFF]
        if _p0 is not None:
            _p0(m, result)
        return _n
    return h


@_spec("sub")
def _mk_sub(instr, addr, nxt):
    dst, src = instr.operands
    if type(dst) is Register:
        code = dst.code
        if type(src) is Imm:
            operand = src.value & _MASK

            def h(m, _d=code, _b=operand, _n=nxt, _pt=_PARITY):
                r = m.regs
                a = r[_d]
                result = (a - _b) & 0xFFFF_FFFF
                m.cf = 1 if a < _b else 0
                m.of = 1 if (a ^ _b) & (a ^ result) & 0x8000_0000 else 0
                m.zf = 1 if result == 0 else 0
                m.sf = result >> 31
                m.pf = _pt[result & 0xFF]
                r[_d] = result
                return _n
            return h
        if type(src) is Register:
            source = src.code

            def h(m, _d=code, _s=source, _n=nxt, _pt=_PARITY):
                r = m.regs
                a = r[_d]
                b = r[_s]
                result = (a - b) & 0xFFFF_FFFF
                m.cf = 1 if a < b else 0
                m.of = 1 if (a ^ b) & (a ^ result) & 0x8000_0000 else 0
                m.zf = 1 if result == 0 else 0
                m.sf = result >> 31
                m.pf = _pt[result & 0xFF]
                r[_d] = result
                return _n
            return h
    return _sub_flags_handler(reader(dst), reader(src), writer(dst), nxt)


@_spec("cmp")
def _mk_cmp(instr, addr, nxt):
    dst, src = instr.operands
    if type(dst) is Register:
        code = dst.code
        if type(src) is Imm:
            operand = src.value & _MASK

            def h(m, _d=code, _b=operand, _n=nxt, _pt=_PARITY):
                a = m.regs[_d]
                result = (a - _b) & 0xFFFF_FFFF
                m.cf = 1 if a < _b else 0
                m.of = 1 if (a ^ _b) & (a ^ result) & 0x8000_0000 else 0
                m.zf = 1 if result == 0 else 0
                m.sf = result >> 31
                m.pf = _pt[result & 0xFF]
                return _n
            return h
        if type(src) is Register:
            source = src.code

            def h(m, _d=code, _s=source, _n=nxt, _pt=_PARITY):
                r = m.regs
                a = r[_d]
                b = r[_s]
                result = (a - b) & 0xFFFF_FFFF
                m.cf = 1 if a < b else 0
                m.of = 1 if (a ^ b) & (a ^ result) & 0x8000_0000 else 0
                m.zf = 1 if result == 0 else 0
                m.sf = result >> 31
                m.pf = _pt[result & 0xFF]
                return _n
            return h
    return _sub_flags_handler(reader(dst), reader(src), None, nxt)


def _logic_handler(get0, get1, put0, operator, nxt):
    def h(m, _g0=get0, _g1=get1, _p0=put0, _op=operator, _n=nxt,
          _pt=_PARITY):
        result = _op(_g0(m), _g1(m))
        m.cf = 0
        m.of = 0
        m.zf = 1 if result == 0 else 0
        m.sf = result >> 31
        m.pf = _pt[result & 0xFF]
        if _p0 is not None:
            _p0(m, result)
        return _n
    return h


@_spec("and")
def _mk_and(instr, addr, nxt):
    return _logic_handler(reader(instr.operands[0]),
                          reader(instr.operands[1]),
                          writer(instr.operands[0]),
                          operator.and_, nxt)


@_spec("or")
def _mk_or(instr, addr, nxt):
    return _logic_handler(reader(instr.operands[0]),
                          reader(instr.operands[1]),
                          writer(instr.operands[0]),
                          operator.or_, nxt)


@_spec("xor")
def _mk_xor(instr, addr, nxt):
    return _logic_handler(reader(instr.operands[0]),
                          reader(instr.operands[1]),
                          writer(instr.operands[0]),
                          operator.xor, nxt)


@_spec("test")
def _mk_test(instr, addr, nxt):
    return _logic_handler(reader(instr.operands[0]),
                          reader(instr.operands[1]), None,
                          operator.and_, nxt)


@_spec("inc")
def _mk_inc(instr, addr, nxt):
    get0, put0 = reader(instr.operands[0]), writer(instr.operands[0])

    def h(m, _g0=get0, _p0=put0, _n=nxt, _pt=_PARITY):
        a = _g0(m)
        result = (a + 1) & 0xFFFF_FFFF
        m.of = 1 if a == 0x7FFF_FFFF else 0
        m.zf = 1 if result == 0 else 0  # CF preserved
        m.sf = result >> 31
        m.pf = _pt[result & 0xFF]
        _p0(m, result)
        return _n
    return h


@_spec("dec")
def _mk_dec(instr, addr, nxt):
    get0, put0 = reader(instr.operands[0]), writer(instr.operands[0])

    def h(m, _g0=get0, _p0=put0, _n=nxt, _pt=_PARITY):
        a = _g0(m)
        result = (a - 1) & 0xFFFF_FFFF
        m.of = 1 if a == 0x8000_0000 else 0
        m.zf = 1 if result == 0 else 0  # CF preserved
        m.sf = result >> 31
        m.pf = _pt[result & 0xFF]
        _p0(m, result)
        return _n
    return h


@_spec("neg")
def _mk_neg(instr, addr, nxt):
    get0, put0 = reader(instr.operands[0]), writer(instr.operands[0])

    def h(m, _g0=get0, _p0=put0, _n=nxt, _pt=_PARITY):
        a = _g0(m)
        result = (-a) & 0xFFFF_FFFF
        m.cf = 1 if a != 0 else 0
        m.of = 1 if a == 0x8000_0000 else 0
        m.zf = 1 if result == 0 else 0
        m.sf = result >> 31
        m.pf = _pt[result & 0xFF]
        _p0(m, result)
        return _n
    return h


@_spec("not")
def _mk_not(instr, addr, nxt):
    get0, put0 = reader(instr.operands[0]), writer(instr.operands[0])

    def h(m, _g0=get0, _p0=put0, _n=nxt):
        _p0(m, ~_g0(m) & 0xFFFF_FFFF)
        return _n
    return h


@_spec("imul")
def _mk_imul(instr, addr, nxt):
    ops = instr.operands
    put0 = writer(ops[0])
    if len(ops) == 3:
        get1 = reader(ops[1])
        factor = ops[2].value

        def h(m, _g1=get1, _f=factor, _p0=put0, _n=nxt):
            a = _g1(m)
            if a & 0x8000_0000:
                a -= 0x1_0000_0000
            value = a * _f
            result = value & 0xFFFF_FFFF
            signed = result - 0x1_0000_0000 if result & 0x8000_0000 \
                else result
            m.cf = m.of = 1 if value != signed else 0
            _p0(m, result)
            return _n
        return h
    get0, get1 = reader(ops[0]), reader(ops[1])

    def h(m, _g0=get0, _g1=get1, _p0=put0, _n=nxt):
        a = _g0(m)
        if a & 0x8000_0000:
            a -= 0x1_0000_0000
        b = _g1(m)
        if b & 0x8000_0000:
            b -= 0x1_0000_0000
        value = a * b
        result = value & 0xFFFF_FFFF
        signed = result - 0x1_0000_0000 if result & 0x8000_0000 else result
        m.cf = m.of = 1 if value != signed else 0
        _p0(m, result)
        return _n
    return h


@_spec("mul")
def _mk_mul(instr, addr, nxt):
    get0 = reader(instr.operands[0])

    def h(m, _g0=get0, _n=nxt):
        r = m.regs
        product = r[0] * _g0(m)
        r[0] = product & 0xFFFF_FFFF
        high = (product >> 32) & 0xFFFF_FFFF
        r[2] = high
        m.cf = m.of = 1 if high else 0
        return _n
    return h


@_spec("idiv")
def _mk_idiv(instr, addr, nxt):
    get0 = reader(instr.operands[0])

    def h(m, _g0=get0, _n=nxt):
        divisor = _g0(m)
        if divisor & 0x8000_0000:
            divisor -= 0x1_0000_0000
        r = m.regs
        dividend = (r[2] << 32) | r[0]
        if dividend & (1 << 63):
            dividend -= 1 << 64
        if divisor == 0:
            quotient = remainder = 0
        else:
            quotient = abs(dividend) // abs(divisor)
            if (dividend < 0) != (divisor < 0):
                quotient = -quotient
            remainder = dividend - quotient * divisor
        r[0] = quotient & 0xFFFF_FFFF
        r[2] = remainder & 0xFFFF_FFFF
        return _n
    return h


@_spec("cdq")
def _mk_cdq(instr, addr, nxt):
    def h(m, _n=nxt):
        r = m.regs
        r[2] = 0xFFFF_FFFF if r[0] & 0x8000_0000 else 0
        return _n
    return h


def _shift_body(mnemonic):
    """Result+flags computation for one shift/rotate mnemonic.

    Count is in [1, 31] here — the zero-count early-out (no flag writes,
    no result write) happens in the handler, as in the reference.
    """
    if mnemonic == "shl":
        def body(m, a, count, _pt=_PARITY):
            result = (a << count) & 0xFFFF_FFFF
            m.cf = (a >> (32 - count)) & 1
            m.zf = 1 if result == 0 else 0
            m.sf = result >> 31
            m.pf = _pt[result & 0xFF]
            return result
    elif mnemonic == "shr":
        def body(m, a, count, _pt=_PARITY):
            result = a >> count
            m.cf = (a >> (count - 1)) & 1
            m.zf = 1 if result == 0 else 0
            m.sf = result >> 31
            m.pf = _pt[result & 0xFF]
            return result
    elif mnemonic == "sar":
        def body(m, a, count, _pt=_PARITY):
            signed_a = a - 0x1_0000_0000 if a & 0x8000_0000 else a
            result = (signed_a >> count) & 0xFFFF_FFFF
            m.cf = (signed_a >> (count - 1)) & 1
            m.zf = 1 if result == 0 else 0
            m.sf = result >> 31
            m.pf = _pt[result & 0xFF]
            return result
    elif mnemonic == "rol":
        def body(m, a, count):
            result = ((a << count) | (a >> (32 - count))) & 0xFFFF_FFFF
            m.cf = result & 1
            return result
    else:  # ror
        def body(m, a, count):
            result = ((a >> count) | (a << (32 - count))) & 0xFFFF_FFFF
            m.cf = (result >> 31) & 1
            return result
    return body


@_spec("shl", "shr", "sar", "rol", "ror")
def _mk_shift(instr, addr, nxt):
    ops = instr.operands
    get0, put0 = reader(ops[0]), writer(ops[0])
    body = _shift_body(instr.mnemonic)
    count_operand = ops[1]
    if type(count_operand) is Register:
        count_reg = count_operand.code

        def h(m, _g0=get0, _p0=put0, _b=body, _c=count_reg, _n=nxt):
            count = m.regs[_c] & 31
            a = _g0(m)
            if count == 0:
                return _n  # no flag updates on zero count
            _p0(m, _b(m, a, count))
            return _n
        return h
    count = count_operand.value & 31
    if count == 0:
        def h(m, _g0=get0, _n=nxt):
            _g0(m)  # the reference still reads (and can fault on) the operand
            return _n
        return h

    def h(m, _g0=get0, _p0=put0, _b=body, _c=count, _n=nxt):
        _p0(m, _b(m, _g0(m), _c))
        return _n
    return h


@_spec("push")
def _mk_push(instr, addr, nxt):
    get0 = reader(instr.operands[0])

    def h(m, _g0=get0, _n=nxt):
        value = _g0(m)
        r = m.regs
        sp = (r[4] - 4) & 0xFFFF_FFFF
        r[4] = sp
        m.memory.write32(sp, value)
        return _n
    return h


@_spec("pop")
def _mk_pop(instr, addr, nxt):
    put0 = writer(instr.operands[0])

    def h(m, _p0=put0, _n=nxt):
        r = m.regs
        sp = r[4]
        value = m.memory.read32(sp)
        r[4] = (sp + 4) & 0xFFFF_FFFF
        _p0(m, value)
        return _n
    return h


@_spec("xchg")
def _mk_xchg(instr, addr, nxt):
    get0, get1 = reader(instr.operands[0]), reader(instr.operands[1])
    put0, put1 = writer(instr.operands[0]), writer(instr.operands[1])

    def h(m, _g0=get0, _g1=get1, _p0=put0, _p1=put1, _n=nxt):
        a = _g0(m)
        b = _g1(m)
        _p0(m, b)
        _p1(m, a)
        return _n
    return h


@_spec("call")
def _mk_call(instr, addr, nxt):
    target = (nxt + instr.operands[0].value) & _MASK

    def h(m, _t=target, _n=nxt):
        r = m.regs
        sp = (r[4] - 4) & 0xFFFF_FFFF
        r[4] = sp
        m.memory.write32(sp, _n)
        m.call_stack.append(_n)
        return _t
    return h


@_spec("call_reg")
def _mk_call_reg(instr, addr, nxt):
    get0 = reader(instr.operands[0])

    def h(m, _g0=get0, _n=nxt):
        target = _g0(m)
        r = m.regs
        sp = (r[4] - 4) & 0xFFFF_FFFF
        r[4] = sp
        m.memory.write32(sp, _n)
        m.call_stack.append(_n)
        return target
    return h


@_spec("ret")
def _mk_ret(instr, addr, nxt):
    extra = instr.operands[0].value if instr.operands else 0

    def h(m, _e=extra):
        r = m.regs
        sp = r[4]
        value = m.memory.read32(sp)
        r[4] = (sp + 4 + _e) & 0xFFFF_FFFF
        stack = m.call_stack
        if stack:
            stack.pop()
        return value
    return h


@_spec("jmp")
def _mk_jmp(instr, addr, nxt):
    target = (nxt + instr.operands[0].value) & _MASK

    def h(_m, _t=target):
        return _t
    return h


@_spec("jmp_reg")
def _mk_jmp_reg(instr, addr, nxt):
    get0 = reader(instr.operands[0])

    def h(m, _g0=get0):
        return _g0(m)
    return h


@_spec("nop")
def _mk_nop(instr, addr, nxt):
    def h(_m, _n=nxt):
        return _n
    return h


@_spec("hlt")
def _mk_hlt(instr, addr, nxt):
    message = f"HLT executed at {addr:#010x}"

    def h(_m, _msg=message):
        raise MachineFault(_msg)
    return h


@_spec("int")
def _mk_int(instr, addr, nxt):
    vector = instr.operands[0].value
    if vector != 0x80:
        message = f"unsupported interrupt {vector:#x}"

        def h(_m, _msg=message):
            raise MachineFault(_msg)
        return h

    def h(m, _n=nxt):
        number = m.regs[0]
        if number == 1:  # print_int
            value = m.regs[3]
            m.output.append(value - 0x1_0000_0000
                            if value & 0x8000_0000 else value)
            m.regs[0] = 0
            return _n
        if number == 2:  # read_int
            position = m.input_position
            values = m.input_values
            if position < len(values):
                value = values[position]
                m.input_position = position + 1
            else:
                value = 0
            m.regs[0] = value & 0xFFFF_FFFF
            return _n
        if number == 0:  # exit
            value = m.regs[3]
            m.exit_code = value - 0x1_0000_0000 \
                if value & 0x8000_0000 else value
            m.halted = True
            m.eip = _n
            return None
        raise MachineFault(f"unknown syscall {number}")
    return h


def _mk_jcc(test):
    def factory(instr, addr, nxt, _t=test):
        taken = (nxt + instr.operands[0].value) & _MASK

        def h(m, _c=_t, _k=taken, _n=nxt):
            return _k if _c(m) else _n
        return h
    return factory


# Hand-inlined Jcc handlers for every condition: conditional branches are
# ~10% of the dynamic mix and the generic factory above pays a closure
# call per test. Each factory here reads the flag fields directly.

def _jcc_inline(body_factory):
    def factory(instr, addr, nxt):
        taken = (nxt + instr.operands[0].value) & _MASK
        return body_factory(taken, nxt)
    return factory


_JCC_INLINE = {
    "e": lambda k, n: lambda m, _k=k, _n=n: _k if m.zf else _n,
    "ne": lambda k, n: lambda m, _k=k, _n=n: _n if m.zf else _k,
    "l": lambda k, n: lambda m, _k=k, _n=n: _k if m.sf != m.of else _n,
    "ge": lambda k, n: lambda m, _k=k, _n=n: _k if m.sf == m.of else _n,
    "le": lambda k, n: lambda m, _k=k, _n=n: (
        _k if m.zf or m.sf != m.of else _n),
    "g": lambda k, n: lambda m, _k=k, _n=n: (
        _k if not m.zf and m.sf == m.of else _n),
    "b": lambda k, n: lambda m, _k=k, _n=n: _k if m.cf else _n,
    "ae": lambda k, n: lambda m, _k=k, _n=n: _n if m.cf else _k,
    "be": lambda k, n: lambda m, _k=k, _n=n: _k if m.cf or m.zf else _n,
    "a": lambda k, n: lambda m, _k=k, _n=n: _n if m.cf or m.zf else _k,
    "s": lambda k, n: lambda m, _k=k, _n=n: _k if m.sf else _n,
    "ns": lambda k, n: lambda m, _k=k, _n=n: _n if m.sf else _k,
    "o": lambda k, n: lambda m, _k=k, _n=n: _k if m.of else _n,
    "no": lambda k, n: lambda m, _k=k, _n=n: _n if m.of else _k,
    "p": lambda k, n: lambda m, _k=k, _n=n: _k if m.pf else _n,
    "np": lambda k, n: lambda m, _k=k, _n=n: _n if m.pf else _k,
}


def _mk_setcc(test):
    def factory(instr, addr, nxt, _t=test):
        get0 = reader(instr.operands[0])
        put0 = writer(instr.operands[0])

        def h(m, _c=_t, _g0=get0, _p0=put0, _n=nxt):
            flag = 1 if _c(m) else 0
            _p0(m, (_g0(m) & 0xFFFF_FF00) | flag)
            return _n
        return h
    return factory


for _cc in CONDITION_CODES:
    _SPECIALIZERS["j" + _cc] = _jcc_inline(_JCC_INLINE[_cc])
    _SPECIALIZERS["set" + _cc] = _mk_setcc(_CC_TESTS[_cc])
del _cc


# ---------------------------------------------------------------------------
# Handler construction and the batch run loop.
# ---------------------------------------------------------------------------

def specialize(instr, addr):
    """Build the threaded-code handler for one decoded instruction.

    Falls back to the reference ``Machine._execute`` for any mnemonic or
    operand shape outside the specializer table, so hand-built
    instructions degrade to reference semantics instead of failing.
    """
    nxt = (addr + instr.size) & _MASK
    factory = _SPECIALIZERS.get(instr.mnemonic)
    if factory is not None:
        try:
            return factory(instr, addr, nxt)
        except _CannotSpecialize:
            pass

    def h(m, _i=instr, _n=nxt):
        return m._execute(_i, _n) & 0xFFFF_FFFF
    return h


def _specialize_at(machine, eip, step, decode_cache, program):
    """Cold path: decode + specialize the instruction at ``eip``.

    Machine state is synced first so any fault (execute fault outside
    text, undecodable bytes) carries the same context as the reference
    path.
    """
    machine.eip = eip
    machine.instr_count = step
    binary = machine.binary
    offset = eip - binary.text_base
    text = binary.text
    if not 0 <= offset < len(text):
        machine.memory.code_window(eip, 16)  # raises the execute fault
    try:
        instr = decode_cached(text, offset, decode_cache)
    except DecodingError as exc:
        machine._fault(f"cannot decode instruction at {eip:#010x}: {exc}",
                       cause=exc, encoding=text[offset:offset + 8].hex())
    handler = specialize(instr, eip)
    program[eip] = handler
    return handler


def run_machine(machine):
    """Run ``machine`` to exit (or fault) on the threaded fast path.

    The step-limit and address-counting branches are hoisted out of the
    inner dispatch loop: execution proceeds in ``for``-loop chunks sized
    by the remaining step budget, so the hot path per instruction is one
    dict lookup, one handler call and one halt check — no limit compare,
    no explicit step counter. The exact step count is recovered from the
    chunk index wherever it is observable (halt, fault context, the
    limit error), matching the reference interpreter bit for bit.
    Address counts accumulate in a flat per-offset array and are merged
    into the ``addr_counts`` dict on the way out.
    """
    if machine.halted:
        return
    decode_cache, program = _caches(machine.binary)
    eip = machine.eip
    start = machine.instr_count
    limit = machine.max_steps
    budget = limit - start
    flat = None
    if machine.count_addresses:
        text_base = machine.binary.text_base
        flat = [0] * len(machine.binary.text)
    index = -1
    halted = False
    try:
        if budget > 0:
            if flat is None:
                for index in range(budget):
                    try:
                        handler = program[eip]
                    except KeyError:
                        handler = _specialize_at(machine, eip,
                                                 start + index + 1,
                                                 decode_cache, program)
                    nxt = handler(machine)
                    if nxt is None:
                        halted = True
                        break
                    eip = nxt
            else:
                for index in range(budget):
                    try:
                        handler = program[eip]
                    except KeyError:
                        handler = _specialize_at(machine, eip,
                                                 start + index + 1,
                                                 decode_cache, program)
                    flat[eip - text_base] += 1
                    nxt = handler(machine)
                    if nxt is None:
                        halted = True
                        break
                    eip = nxt
        if not halted:
            # Budget exhausted with the machine still running: the next
            # step would push the count past the limit, exactly as the
            # reference interpreter reports it.
            steps = (start if start > limit else limit) + 1
            machine.eip = eip
            machine.instr_count = steps
            raise SimulationLimitExceeded(
                f"exceeded {limit} steps",
                context={"limit": limit, "steps": steps, "eip": eip})
    except MachineFault as fault:
        machine.eip = eip
        machine.instr_count = start + index + 1
        for key, value in machine.fault_context().items():
            fault.context.setdefault(key, value)
        raise
    finally:
        if flat is not None:
            counts = machine.addr_counts
            for offset, value in enumerate(flat):
                if value:
                    address = text_base + offset
                    counts[address] = counts.get(address, 0) + value
    machine.instr_count = start + index + 1
    # On halt the exit handler already advanced machine.eip past the INT.
