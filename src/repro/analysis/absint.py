"""Abstract interpretation over the recovered machine CFG.

Two per-function analyses, both classic forward dataflow to fixpoint on
the instruction-level graph from :mod:`repro.analysis.cfg`:

- **Stack height** — the abstract state is ``(height, ebp_height)``
  where ``height`` is the number of bytes pushed since function entry
  and ``ebp_height`` the height snapshotted by ``mov ebp, esp`` (both
  ``None`` = unknown). Every ``ret`` must see height 0 (push/pop/ESP
  adjustments balanced on *all* paths), ``pop`` below the return
  address and ``add esp`` past the frame are flagged, and memory
  operands may not address below the current stack pointer (no red
  zone on IA-32).

- **Def-before-use** — a *must* analysis: the state is the set of
  registers (plus the ``flags`` pseudo-register) guaranteed written on
  every path from entry; meet is intersection. Callee-saved registers
  and the stack pointer hold caller values at entry, so only
  EAX/ECX/EDX/flags can be caught uninitialized — exactly the scratch
  state the calling convention leaves undefined. ``mul``/``idiv`` and
  calls *kill* flags (architecturally undefined afterwards), so a
  conditional branch consuming stale flags across them is flagged too.

Both run the fixpoint first and emit findings in a single reporting
sweep afterwards, so each defective site yields exactly one finding.
"""

from __future__ import annotations

from repro.analysis.cfg import Finding
from repro.x86.instructions import (
    Imm, JCC_MNEMONICS, Mem, SETCC_MNEMONICS,
)
from repro.x86.registers import Register

_ALU_WRITING = ("add", "or", "and", "sub", "xor")
_SHIFTS = ("rol", "ror", "shl", "shr", "sar")

#: Defined at function entry: the stack pointer, the frame pointer and
#: the callee-saved registers all hold live caller values.
ENTRY_DEFINED = frozenset({"esp", "ebp", "ebx", "esi", "edi"})

#: Everything the def-use domain can contain.
ALL_DEFINABLE = frozenset({"eax", "ecx", "edx", "ebx", "esp", "ebp",
                           "esi", "edi", "flags"})


def _operand_regs(operand):
    """Register names an operand *reads* (Mem reads base and index)."""
    if isinstance(operand, Register):
        return {operand.name}
    if isinstance(operand, Mem):
        regs = set()
        if operand.base is not None:
            regs.add(operand.base.name)
        if operand.index is not None:
            regs.add(operand.index.name)
        return regs
    return set()


def effects(instr):
    """(uses, defs, kills) of one instruction over the def-use domain.

    ``defs`` are written with well-defined values; ``kills`` become
    architecturally undefined (flags after ``mul``/``idiv``, the
    scratch registers across a call).
    """
    mnemonic = instr.mnemonic
    ops = instr.operands
    uses, defs, kills = set(), set(), set()

    if mnemonic == "mov":
        dst, src = ops
        uses |= _operand_regs(src)
        if isinstance(dst, Mem):
            uses |= _operand_regs(dst)
        else:
            defs.add(dst.name)
    elif mnemonic in _ALU_WRITING:
        dst, src = ops
        if (mnemonic in ("xor", "sub") and isinstance(dst, Register)
                and dst is src):
            defs |= {dst.name, "flags"}  # zeroing idiom: a pure def
        else:
            uses |= _operand_regs(dst) | _operand_regs(src)
            if isinstance(dst, Register):
                defs.add(dst.name)
            defs.add("flags")
    elif mnemonic in ("cmp", "test"):
        dst, src = ops
        uses |= _operand_regs(dst) | _operand_regs(src)
        defs.add("flags")
    elif mnemonic in _SHIFTS:
        dst, count = ops
        uses |= _operand_regs(dst)
        if isinstance(count, Register):
            uses.add(count.name)
        if isinstance(dst, Register):
            defs.add(dst.name)
        defs.add("flags")
    elif mnemonic == "lea":
        dst, src = ops
        uses |= _operand_regs(src)
        defs.add(dst.name)
    elif mnemonic == "xchg":
        dst, src = ops
        uses |= _operand_regs(dst) | _operand_regs(src)
        if isinstance(dst, Register):
            defs.add(dst.name)
        defs.add(src.name)
    elif mnemonic == "push":
        uses |= _operand_regs(ops[0])
    elif mnemonic == "pop":
        if isinstance(ops[0], Register):
            defs.add(ops[0].name)
        else:
            uses |= _operand_regs(ops[0])
    elif mnemonic in ("inc", "dec", "neg"):
        uses |= _operand_regs(ops[0])
        if isinstance(ops[0], Register):
            defs.add(ops[0].name)
        defs.add("flags")
    elif mnemonic == "not":
        uses |= _operand_regs(ops[0])
        if isinstance(ops[0], Register):
            defs.add(ops[0].name)
    elif mnemonic == "imul":
        if len(ops) == 2:
            uses |= _operand_regs(ops[0]) | _operand_regs(ops[1])
        else:
            uses |= _operand_regs(ops[1])
        defs |= {ops[0].name, "flags"}
    elif mnemonic == "mul":
        uses |= {"eax"} | _operand_regs(ops[0])
        defs |= {"eax", "edx"}
        kills.add("flags")
    elif mnemonic == "idiv":
        uses |= {"eax", "edx"} | _operand_regs(ops[0])
        defs |= {"eax", "edx"}
        kills.add("flags")
    elif mnemonic == "cdq":
        uses.add("eax")
        defs.add("edx")
    elif mnemonic in SETCC_MNEMONICS:
        uses.add("flags")
        # setcc writes only the low byte; the other 24 bits flow through.
        uses |= _operand_regs(ops[0])
        if isinstance(ops[0], Register):
            defs.add(ops[0].name)
    elif mnemonic in JCC_MNEMONICS:
        uses.add("flags")
    elif mnemonic in ("call", "call_reg"):
        if mnemonic == "call_reg":
            uses |= _operand_regs(ops[0])
        defs.add("eax")  # the return-value register
        kills |= {"ecx", "edx", "flags"}  # caller-saved scratch
    elif mnemonic == "int":
        # Our syscall ABI: number in EAX, argument in EBX, result in EAX;
        # the machine preserves everything else including flags.
        uses |= {"eax", "ebx"}
        defs.add("eax")
    # jmp, jmp_reg (operand read below), ret, nop, hlt: nothing extra.
    if mnemonic == "jmp_reg":
        uses |= _operand_regs(ops[0])

    return uses, defs, kills


# ---------------------------------------------------------------------------
# Stack-height analysis
# ---------------------------------------------------------------------------

def _is_reg(operand, name):
    return isinstance(operand, Register) and operand.name == name


def _stack_transfer(instr, height, ebp):
    """Abstract post-state of one instruction; ``None`` components are
    unknown (TOP)."""
    mnemonic = instr.mnemonic
    ops = instr.operands

    if mnemonic == "push":
        return (None if height is None else height + 4), ebp
    if mnemonic == "pop":
        new_height = None if height is None else height - 4
        op = ops[0]
        if _is_reg(op, "esp"):
            return None, ebp
        if _is_reg(op, "ebp"):
            return new_height, None  # caller's EBP restored
        return new_height, ebp
    if mnemonic in ("sub", "add") and _is_reg(ops[0], "esp"):
        if not isinstance(ops[1], Imm) or height is None:
            return None, ebp
        delta = ops[1].value if mnemonic == "sub" else -ops[1].value
        return height + delta, ebp
    if mnemonic == "mov":
        dst, src = ops
        if _is_reg(dst, "esp"):
            if _is_reg(src, "esp"):
                return height, ebp  # Table-1 NOP
            if _is_reg(src, "ebp"):
                return ebp, ebp
            return None, ebp
        if _is_reg(dst, "ebp"):
            if _is_reg(src, "ebp"):
                return height, ebp  # Table-1 NOP
            if _is_reg(src, "esp"):
                return height, height
            return height, None
        return height, ebp
    if mnemonic == "xchg":
        dst, src = ops
        if isinstance(dst, Register) and dst is src:
            return height, ebp  # Table-1 NOP
        touched = {op.name for op in ops if isinstance(op, Register)}
        return (None if "esp" in touched else height,
                None if "ebp" in touched else ebp)
    if mnemonic in ("call", "call_reg", "int"):
        return height, ebp  # callee balances; verified per callee

    # Any other write to ESP/EBP loses tracking.
    _uses, defs, _kills = effects(instr)
    if "esp" in defs:
        height = None
    if "ebp" in defs:
        ebp = None
    return height, ebp


def _stack_checks(instr, height, ebp, address, function):
    """Findings triggered by executing ``instr`` in state (height, ebp)."""
    findings = []
    mnemonic = instr.mnemonic

    for operand in instr.operands:
        if not isinstance(operand, Mem):
            continue
        if operand.base is not None and operand.base.name == "esp":
            if operand.disp < 0:
                findings.append(Finding(
                    "verify.stack",
                    f"memory access below the stack pointer: {operand!r}",
                    address=address, function=function))
        elif (operand.base is not None and operand.base.name == "ebp"
              and ebp is not None and height is not None
              and operand.disp < ebp - height):
            findings.append(Finding(
                "verify.stack",
                f"frame access below the allocated frame: {operand!r} "
                f"(frame bottom is ebp{ebp - height:+d})",
                address=address, function=function))

    if mnemonic == "pop" and height is not None and height < 4:
        findings.append(Finding(
            "verify.stack",
            f"pop at stack height {height} would consume the return "
            f"address", address=address, function=function))
    if (mnemonic == "add" and _is_reg(instr.operands[0], "esp")
            and isinstance(instr.operands[1], Imm) and height is not None
            and height - instr.operands[1].value < 0):
        findings.append(Finding(
            "verify.stack",
            f"add esp, {instr.operands[1].value} at height {height} "
            f"releases more stack than the function owns",
            address=address, function=function))
    if mnemonic == "ret":
        if height is None:
            findings.append(Finding(
                "verify.stack", "stack height unknown at ret",
                address=address, function=function))
        elif height != 0:
            findings.append(Finding(
                "verify.stack",
                f"stack height {height} != 0 at ret: pushes and pops "
                f"are unbalanced on some path", address=address,
                function=function))
    return findings


def _join_heights(first, second):
    """Join two (height, ebp) states; returns (state, conflicted)."""
    conflict = False
    height_a, ebp_a = first
    height_b, ebp_b = second
    if height_a is None or height_b is None:
        height = None
    elif height_a != height_b:
        height, conflict = None, True
    else:
        height = height_a
    if ebp_a is None or ebp_b is None:
        ebp = None
    elif ebp_a != ebp_b:
        ebp, conflict = None, True
    else:
        ebp = ebp_a
    return (height, ebp), conflict


def analyze_stack(cfg, function):
    """Stack-height findings for one function of the recovered CFG."""
    start, end = cfg.binary.function_ranges[function]
    addresses = cfg.function_addresses(function)
    if not addresses or start not in cfg.instrs:
        return []

    in_states = {start: (0, None)}
    conflicts = set()
    worklist = [start]
    while worklist:
        address = worklist.pop()
        instr = cfg.instrs[address]
        height, ebp = _stack_transfer(instr, *in_states[address])
        for successor in cfg.intra_successors(address, start, end):
            previous = in_states.get(successor)
            if previous is None:
                in_states[successor] = (height, ebp)
                worklist.append(successor)
                continue
            joined, conflict = _join_heights(previous, (height, ebp))
            if conflict:
                conflicts.add(successor)
            if joined != previous:
                in_states[successor] = joined
                worklist.append(successor)

    findings = []
    for address in addresses:
        if address not in in_states:
            continue  # unreachable from the function entry
        height, ebp = in_states[address]
        findings.extend(_stack_checks(cfg.instrs[address], height, ebp,
                                      address, function))
    for address in sorted(conflicts):
        findings.append(Finding(
            "verify.stack",
            "joining paths disagree on the stack height",
            address=address, function=function))
    return findings


# ---------------------------------------------------------------------------
# Def-before-use analysis
# ---------------------------------------------------------------------------

def analyze_defuse(cfg, function):
    """Def-before-use findings for one function of the recovered CFG."""
    start, end = cfg.binary.function_ranges[function]
    addresses = cfg.function_addresses(function)
    if not addresses or start not in cfg.instrs:
        return []

    in_states = {start: ENTRY_DEFINED}
    worklist = [start]
    while worklist:
        address = worklist.pop()
        _uses, defs, kills = effects(cfg.instrs[address])
        out_state = (in_states[address] | defs) - kills
        for successor in cfg.intra_successors(address, start, end):
            previous = in_states.get(successor)
            if previous is None:
                in_states[successor] = out_state
                worklist.append(successor)
            else:
                met = previous & out_state  # must-defined: intersection
                if met != previous:
                    in_states[successor] = met
                    worklist.append(successor)

    findings = []
    for address in addresses:
        defined = in_states.get(address)
        if defined is None:
            continue
        uses, _defs, _kills = effects(cfg.instrs[address])
        for name in sorted(uses - defined):
            what = "flags" if name == "flags" else f"register {name}"
            findings.append(Finding(
                "verify.defuse",
                f"{what} read before any definition on some path "
                f"({cfg.instrs[address]!r})",
                address=address, function=function))
    return findings
