"""E8 — §6: the version-space trade-off.

The paper's discussion: "the probability where a maximum number of
versions are available is pNOP = 50%. The number of versions decreases
for both larger and smaller values of pNOP", and the developer trades
that version space against overhead when choosing a range.

This bench quantifies the trade-off on a real workload: for each paper
configuration it reports the diversification entropy (log2 of the
variant space Algorithm 1 samples from), the runtime overhead, and the
entropy *density* in hot versus cold code for the profile-guided
configurations — showing exactly where the guided pass pays for its
speed (hot-code version space) and where it keeps diversity (cold code,
which is most of the binary).
"""

from benchmarks._harness import (
    PERF_SEEDS, train_profile, variant_overhead,
)
from repro.core.config import PAPER_CONFIGS
from repro.core.policies import block_probability_function
from repro.reporting import format_table
from repro.security.entropy import (
    bernoulli_entropy, optimal_uniform_probability, unit_entropy,
)

_NAME = "473.astar"
_CONFIG_ORDER = ("50%", "30%", "25-50%", "10-50%", "0-30%")


def run_analysis():
    from benchmarks._harness import build_for

    build = build_for(_NAME)
    profile = train_profile(_NAME)
    rows = []
    for label in _CONFIG_ORDER:
        config = PAPER_CONFIGS[label]
        policy = block_probability_function(
            config, profile if config.requires_profile else None)
        bits, visited = unit_entropy(build.unit, policy,
                                     len(config.nop_candidates))
        overheads = [variant_overhead(_NAME, label, seed)
                     for seed in range(PERF_SEEDS)]
        rows.append((label, bits, bits / visited,
                     100 * sum(overheads) / len(overheads)))
    return rows


def test_entropy_vs_overhead_tradeoff(benchmark):
    rows = benchmark.pedantic(run_analysis, rounds=1, iterations=1)

    print()
    print(format_table(
        ("configuration", "entropy (bits)", "bits/instr", "overhead %"),
        rows,
        title=f"Version-space vs overhead on {_NAME} "
              "(diversification entropy of Algorithm 1)"))
    print(f"\nper-instruction maximum sits at p = "
          f"{optimal_uniform_probability(5):.3f} with 5 candidates "
          "(= 1/2 for the paper's insert-bit alone); "
          f"H_b(0.5)={bernoulli_entropy(0.5):.2f}, "
          f"H_b(0.3)={bernoulli_entropy(0.3):.2f} bits")

    by_label = {row[0]: row for row in rows}
    # §6's claim at the insert-bit level: 50% offers more versions than
    # 30%.
    assert by_label["50%"][1] > by_label["30%"][1]
    # Profile-guided ranges trade entropy for speed, but keep MOST of
    # the version space (cold code dominates instruction counts) while
    # shedding most of the overhead.
    full = by_label["50%"]
    guided = by_label["10-50%"]
    assert guided[1] > 0.5 * full[1]        # keeps >half the bits
    assert guided[3] < 0.5 * full[3]        # sheds >half the overhead
    # Entropy ordering matches range width at the cold end.
    assert by_label["10-50%"][1] > by_label["0-30%"][1]
