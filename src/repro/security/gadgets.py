"""Gadget enumeration.

A gadget is a decodable instruction sequence that

- starts at *any* byte offset of the text section (x86's unaligned,
  variable-length encoding means attackers can enter instructions
  mid-stream — the paper's Figure 2 turns on exactly this property),
- contains no control-flow instructions except its terminator, and
- ends in a **free branch**: ``RET``, ``RET imm16``, ``CALL r/m`` or
  ``JMP r/m`` — instructions that let the attacker choose where execution
  goes next.

The enumeration is the standard backward scan: find every free-branch
byte position, then try every start offset within a window before it and
keep the starts whose linear decode lands exactly on the free branch.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.x86.decoder import try_decode
from repro.x86.instructions import (
    FREE_BRANCH_MNEMONICS, RELATIVE_BRANCH_MNEMONICS,
)

#: Sentinel for "no instruction decodes at this offset".
_INVALID = object()

#: Free-branch byte signatures: opcode byte -> handler kind.
_RET = 0xC3
_RET_IMM = 0xC2
_GROUP_FF = 0xFF

#: Maximum instructions per gadget, matching common scanner defaults.
DEFAULT_MAX_INSTRS = 5
#: Start-offset window before a free branch, in bytes.
DEFAULT_WINDOW = 20

#: Global byte-window → decoded-instruction memo shared across scans.
_DECODE_MEMO = {}
_DECODE_MEMO_LIMIT = 1_000_000


@dataclass(frozen=True)
class Gadget:
    """One gadget: its text-section offset and decoded instructions."""

    offset: int
    instrs: tuple
    raw: bytes

    @property
    def terminator(self):
        return self.instrs[-1]

    @property
    def size(self):
        return len(self.raw)

    def mnemonics(self):
        return tuple(instr.mnemonic for instr in self.instrs)

    def __repr__(self):
        body = "; ".join(self.mnemonics())
        return f"Gadget(+{self.offset:#x}: {body})"


def free_branch_ends(text):
    """Byte offsets immediately *after* each free-branch instruction.

    Returns a list of (end_offset, branch_length) pairs. Offsets are
    relative to the start of ``text``.
    """
    ends = []
    length = len(text)
    for position in range(length):
        opcode = text[position]
        if opcode == _RET:
            ends.append((position + 1, 1))
        elif opcode == _RET_IMM and position + 3 <= length:
            ends.append((position + 3, 3))
        elif opcode == _GROUP_FF and position + 2 <= length:
            extension = (text[position + 1] >> 3) & 7
            if extension in (2, 4):  # call r/m, jmp r/m
                instr = try_decode(text, position)
                if instr is not None and instr.is_free_branch:
                    ends.append((position + instr.size, instr.size))
    return ends


def find_gadgets(text, max_instrs=DEFAULT_MAX_INSTRS,
                 window=DEFAULT_WINDOW):
    """Enumerate all gadgets of a text section.

    Returns ``{start_offset: Gadget}``. Every byte offset is decoded at
    most once (a shared decode cache) and the gadget at each offset is
    the forward walk of up to ``max_instrs`` instructions that reaches a
    free branch with no interior control flow (software interrupts are
    allowed mid-gadget — the classic ``int 0x80; ret`` syscall gadget).

    ``window`` bounds the gadget's non-terminator byte length, mirroring
    the lookback window of conventional scanners. When several free
    branches are reachable from one start, the first one wins: the
    attacker's decode stops at the first free branch anyway.
    """
    text = bytes(text)
    length = len(text)
    decode_cache = [None] * (length + 1)  # None=unvisited
    memo = _DECODE_MEMO

    def decode_at(offset):
        cached = decode_cache[offset]
        if cached is None:
            # Population studies scan hundreds of variants that share
            # most of their bytes, so decode results are memoized
            # globally by their byte window (12 bytes covers the longest
            # supported encoding).
            if offset + 12 <= length:
                key = text[offset:offset + 12]
                cached = memo.get(key)
                if cached is None:
                    cached = try_decode(text, offset) or _INVALID
                    if len(memo) < _DECODE_MEMO_LIMIT:
                        memo[key] = cached
            else:
                # Too close to the end for a full window: decode results
                # depend on truncation, so bypass the global memo.
                cached = try_decode(text, offset) or _INVALID
            decode_cache[offset] = cached
        return cached

    free_branches = FREE_BRANCH_MNEMONICS
    relative_branches = RELATIVE_BRANCH_MNEMONICS
    gadgets = {}
    for start in range(length):
        instrs = []
        position = start
        found = None
        for _ in range(max_instrs):
            instr = decode_at(position)
            if instr is _INVALID:
                break
            instrs.append(instr)
            position += instr.size
            mnemonic = instr.mnemonic
            if mnemonic in free_branches:
                found = instr
                break
            # Software interrupts are allowed mid-gadget (the classic
            # ``int 0x80; ret`` syscall gadget); other control flow ends
            # the attacker's decode.
            if mnemonic in relative_branches:
                break
            if position >= length:
                break
        if found is None:
            continue
        body_bytes = position - start - found.size
        if body_bytes > window:
            continue
        gadgets[start] = Gadget(start, tuple(instrs), text[start:position])
    return gadgets


def gadget_count(text, **kwargs):
    """Number of gadgets in a text section (Table 2's Baseline column)."""
    return len(find_gadgets(text, **kwargs))
