"""The Survivor comparison algorithm (paper §5.2).

Survivor takes the text sections of an original and a diversified binary
and counts the functionally equivalent gadgets that remain at the same
offset:

1. enumerate gadget start offsets in both sections (candidate matches are
   pairs of valid gadgets at identical offsets, both ending in a free
   branch);
2. **normalize** both byte sequences by deleting every NOP-candidate
   encoding — whether or not the diversifier actually inserted it —
   which can only make the two sides *more* similar, so the resulting
   count conservatively overestimates survival;
3. a candidate survives if the normalized sequences are byte-identical.

Offsets (not absolute addresses) are compared, so ASLR-style base
randomization does not interfere with the measurement.
"""

from __future__ import annotations

from repro.security.gadgets import find_gadgets
from repro.x86.nops import strip_nop_candidates


def normalized_bytes(gadget):
    """The gadget's bytes with every NOP-candidate encoding removed."""
    return strip_nop_candidates(gadget.raw)


def gadget_signatures(text, gadgets=None, **kwargs):
    """``{offset: normalized_bytes}`` for every gadget of a section.

    ``gadgets`` may carry a precomputed :func:`find_gadgets` result for
    the same ``text`` — callers that also need the raw gadget set (the
    boundary classification in ``repro-diversify verify --gadgets``)
    scan once and share it.
    """
    if gadgets is None:
        gadgets = find_gadgets(text, **kwargs)
    return {offset: normalized_bytes(gadget)
            for offset, gadget in gadgets.items()}


def surviving_gadgets(original_text, diversified_text, *,
                      original_signatures=None, **kwargs):
    """Count gadgets surviving diversification.

    ``original_signatures`` may carry a precomputed
    :func:`gadget_signatures` of the original section (the population
    studies reuse it across 25 comparisons).

    Returns ``(count, offsets)`` — the number of survivors and their
    offsets.
    """
    if original_signatures is None:
        original_signatures = gadget_signatures(original_text, **kwargs)
    diversified_signatures = gadget_signatures(diversified_text, **kwargs)

    offsets = [
        offset
        for offset, signature in diversified_signatures.items()
        if original_signatures.get(offset) == signature
    ]
    return len(offsets), sorted(offsets)
