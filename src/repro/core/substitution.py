"""Equivalent-encoding substitution (paper §6's "equivalent instruction
substitution", at encoding granularity).

x86's ModRM scheme gives every register-to-register MOV and ALU
operation **two byte-distinct encodings** for the identical architectural
operation: ``op r/m, r`` (direction bit 0) and ``op r, r/m`` (direction
bit 1) — e.g. ``mov ebx, eax`` is both ``89 C3`` and ``8B D8``. Flipping
the direction changes the emitted bytes (destroying byte-matched
gadgets) with *zero* semantic or size difference — no displacement, no
flags, no cycles. This is the compiler-side analogue of the in-place
instruction-substitution technique of Pappas et al. (cited as [27] in
the paper), and composes orthogonally with NOP insertion, exactly as §6
suggests.

The pass flips each substitutable instruction with probability 1/2.
"""

from __future__ import annotations

from repro.backend.objfile import FunctionCode, ObjectUnit
from repro.x86.instructions import Instr
from repro.x86.nops import is_nop_candidate_instr
from repro.x86.registers import Register

#: Mnemonics with a ModRM direction bit for reg,reg forms.
SUBSTITUTABLE_MNEMONICS = frozenset(
    {"mov", "add", "or", "and", "sub", "xor", "cmp"})


def is_substitutable(instr):
    """True if the instruction has a byte-distinct equivalent encoding.

    Table-1 NOP candidates are exempt: their exact encodings are part of
    the Survivor normalization contract.
    """
    if instr.mnemonic not in SUBSTITUTABLE_MNEMONICS:
        return False
    if len(instr.operands) != 2:
        return False
    dst, src = instr.operands
    if not (isinstance(dst, Register) and isinstance(src, Register)):
        return False
    return not is_nop_candidate_instr(instr)


def substitute_encodings(function_code, rng, probability=0.5):
    """Flip encoding directions through one function; returns a new
    FunctionCode."""
    if not function_code.diversifiable:
        return function_code
    new_items = []
    for item in function_code.items:
        if (isinstance(item, Instr) and is_substitutable(item)
                and rng.random() < probability):
            flipped = Instr(item.mnemonic, *item.operands,
                            block_id=item.block_id,
                            is_inserted_nop=item.is_inserted_nop,
                            alternate_encoding=not item.alternate_encoding)
            new_items.append(flipped)
        else:
            new_items.append(item)
    return FunctionCode(function_code.name, new_items,
                        diversifiable=function_code.diversifiable)


def substitute_unit(unit, rng, probability=0.5):
    """Apply encoding substitution to every function of a unit."""
    result = ObjectUnit(unit.name, data_symbols=dict(unit.data_symbols))
    for function_code in unit.functions:
        result.add_function(substitute_encodings(function_code, rng,
                                                 probability))
    return result
