PYTHON ?= python
export PYTHONPATH := src

.PHONY: test lint verify-smoke fuzz-smoke serve-smoke bench \
	bench-serve bench-quick check

# Tier-1: lint, the quick perf gates (mix speedup, population
# incremental-link speedup, pool-vs-serial wall clock, batch-engine
# population-sim speedup with its parity precheck), a static-verify
# smoke over the representative workload trio, a bounded differential
# fuzzing campaign, a serve-daemon load smoke (latency/backpressure
# gates at reduced request counts), then the full pytest suite — so a
# taxonomy, perf, verifier, semantics or serving regression fails the
# default flow, not just the full bench.
test: lint bench-quick verify-smoke fuzz-smoke serve-smoke
	$(PYTHON) -m pytest -x -q

# Serve-daemon load smoke: boots the daemon, exercises the memo-hit,
# cold, artifact-cache and backpressure paths, and applies the same
# gates as the full bench (hit p50 <= 5ms, cold >= 100 variants/s at
# concurrency 10, >= 1 typed rejection under burst).
serve-smoke:
	$(PYTHON) benchmarks/bench_serve.py --smoke \
		--output BENCH_serve_smoke.json

bench-serve:
	$(PYTHON) benchmarks/bench_serve.py

lint:
	$(PYTHON) tools/lint_errors.py

# Bounded coverage-guided differential fuzzing campaign (~10s budget,
# hard 25s wall-clock lid inside --quick): generated + mutated MinC
# programs, reference interpreter vs baseline vs diversified variants
# of both paper configs. Fails on any genuine divergence.
fuzz-smoke:
	$(PYTHON) -m repro.cli fuzz --quick

# Static verifier + NOP-transparency smoke: three workloads, both paper
# configs (no --p/--range = uniform-50% and profile-guided 0-30%).
verify-smoke:
	$(PYTHON) -m repro.cli verify 429.mcf 462.libquantum 470.lbm \
		--variants 2

bench:
	$(PYTHON) benchmarks/bench_runtime.py

bench-quick:
	$(PYTHON) benchmarks/bench_runtime.py --quick \
		--output BENCH_runtime_quick.json

check:
	$(PYTHON) benchmarks/check_campaign.py --quick
