"""Simulator fuel limits, fault context, and pipeline degradation."""

from dataclasses import replace

import pytest

from repro.core.config import DiversificationConfig
from repro.core.probability import UniformProbability
from repro.errors import (
    DecodingError, MachineFault, ProfileError, ReproError,
    SimulationLimitExceeded, SimulatorError,
)
from repro.pipeline import ProgramBuild
from repro.profiling.profile_data import ProfileData
from repro.sim.machine import run_binary
from tests.conftest import FIB_SOURCE

DEEP_SOURCE = """
int deep(int n) {
  if (n == 0) { return 0; }
  return deep(n - 1) + 1;
}

int main() {
  print(deep(input()));
  return 0;
}
"""


@pytest.fixture(scope="module")
def fib_binary(fib_build):
    return fib_build.link_baseline()


class TestFuelLimits:
    def test_step_limit_raises_typed_error(self, fib_binary):
        with pytest.raises(SimulationLimitExceeded) as excinfo:
            run_binary(fib_binary, (10,), max_steps=50)
        error = excinfo.value
        assert isinstance(error, SimulatorError)
        assert error.code == "sim.limit"
        assert error.context["limit"] == 50
        assert error.context["steps"] > 50
        assert "eip" in error.context

    def test_stack_overflow_is_a_machine_fault(self):
        build = ProgramBuild(DEEP_SOURCE, "deep")
        binary = build.link_baseline()
        # Plenty of steps, almost no stack: recursion must trip the
        # stack guard, not the step limit.
        with pytest.raises(MachineFault) as excinfo:
            run_binary(binary, (100_000,), stack_size=512)
        error = excinfo.value
        assert "stack overflow" in str(error)
        assert error.context["access"] == "write"
        assert "address" in error.context

    def test_generous_fuel_still_completes(self, fib_build, fib_binary):
        result = fib_build.simulate(fib_binary, (9,), max_steps=10_000_000,
                                    stack_size=65536)
        assert result.exit_code == result.output[0] % 256


class TestFaultContext:
    def test_truncated_binary_fault_carries_machine_state(self, fib_binary):
        corrupted = replace(fib_binary, text=fib_binary.text[:40])
        with pytest.raises(MachineFault) as excinfo:
            run_binary(corrupted, (9,))
        context = excinfo.value.context
        assert excinfo.value.code == "sim.fault"
        for key in ("eip", "step", "call_stack"):
            assert key in context, context

    def test_garbage_opcode_wraps_decoding_error(self, fib_binary):
        # 0x0F 0xFF is no instruction the decoder knows.
        corrupted = replace(fib_binary,
                            text=b"\x0f\xff" + fib_binary.text[2:])
        with pytest.raises(MachineFault) as excinfo:
            run_binary(corrupted, (9,))
        error = excinfo.value
        assert isinstance(error.__cause__, DecodingError)
        assert "encoding" in error.context

    def test_wild_write_reports_segments(self, fib_binary):
        # Clamp the stack so the very first push lands outside every
        # mapped segment; context must include the segment map.
        with pytest.raises(MachineFault) as excinfo:
            run_binary(fib_binary, (9,), stack_size=0)
        context = excinfo.value.context
        assert {"address", "access", "text", "data", "stack"} <= set(context)


class TestGracefulDegradation:
    def test_link_variant_fallback_is_opt_in(self, fib_build):
        config = DiversificationConfig.profile_guided(0.1, 0.5)
        with pytest.raises(ProfileError):
            fib_build.link_variant(config, seed=1, profile=None)

    def test_link_variant_fallback_records_warning(self):
        build = ProgramBuild(FIB_SOURCE, "fib-fallback")
        config = DiversificationConfig.profile_guided(0.1, 0.5)
        variant = build.link_variant(config, seed=1, profile=None,
                                     fallback=True)
        assert variant.text
        assert any("falling back" in warning for warning in build.warnings)
        result = build.simulate(variant, (9,))
        baseline = build.simulate(build.link_baseline(), (9,))
        assert result.output == baseline.output

    def test_overhead_degrades_when_collection_fails(self, monkeypatch):
        build = ProgramBuild(FIB_SOURCE, "fib-degrade")

        def broken_profile(input_values=(), key=None):
            raise ProfileError("instrumentation exploded")

        monkeypatch.setattr(build, "profile", broken_profile)
        config = DiversificationConfig.profile_guided(0.1, 0.5)
        # execution_counts also goes through profile(); restore it for the
        # ref run only after the train-time failure has been recorded.
        original = ProgramBuild.profile

        def flaky_profile(input_values=(), key=None):
            if not build.warnings:
                raise ProfileError("instrumentation exploded")
            return original(build, input_values, key=key)

        monkeypatch.setattr(build, "profile", flaky_profile)
        overhead = build.overhead(config, seed=3, train_input=(6,),
                                  ref_input=(9,))
        assert any("falling back" in warning for warning in build.warnings)
        assert overhead == overhead  # finite, not NaN
        assert overhead >= 0.0

    def test_uniform_fallback_keeps_other_knobs(self):
        config = DiversificationConfig.profile_guided(
            0.1, 0.4, basic_block_shifting=True)
        fallback = config.uniform_fallback()
        assert not fallback.requires_profile
        assert isinstance(fallback.probability_model, UniformProbability)
        assert fallback.probability_model.p == 0.4
        assert fallback.basic_block_shifting

    def test_uniform_fallback_is_identity_for_uniform(self):
        config = DiversificationConfig.uniform(0.3)
        assert config.uniform_fallback() is config


class TestProfileValidation:
    def test_negative_block_count_rejected(self, fib_build):
        profile = fib_build.profile((6,))
        bad = ProfileData(dict(profile.edge_counts),
                          dict(profile.block_counts))
        key = sorted(bad.block_counts)[0]
        bad.block_counts[key] = -5
        with pytest.raises(ProfileError) as excinfo:
            bad.validate()
        assert excinfo.value.context["count"] == -5

    def test_boolean_count_rejected(self, fib_build):
        profile = fib_build.profile((6,))
        bad = ProfileData(dict(profile.edge_counts),
                          dict(profile.block_counts))
        key = next(iter(bad.edge_counts))
        bad.edge_counts[key] = True
        with pytest.raises(ProfileError):
            bad.validate()

    def test_roundtrip_still_validates(self, fib_build):
        profile = fib_build.profile((6,))
        restored = ProfileData.from_json(profile.to_json())
        assert restored.edge_counts == profile.edge_counts

    def test_errors_are_repro_errors(self):
        assert issubclass(ProfileError, ReproError)
        assert issubclass(MachineFault, SimulatorError)
        assert issubclass(SimulationLimitExceeded, SimulatorError)
