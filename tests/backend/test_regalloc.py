"""Register allocation tests: liveness, assignment validity."""

from repro.backend.regalloc import (
    ALLOCATABLE, allocate_function, block_liveness, live_intervals,
)
from repro.ir import Binary, Copy, Function, FunctionBuilder, Return
from repro.ir.values import Const
from repro.minc import compile_to_ir
from repro.opt import optimize_module
from repro.x86.registers import Register


def build_straightline(instr_specs):
    """Function with one block; specs build the vregs implicitly."""
    function = Function("f")
    builder = FunctionBuilder(function)
    builder.start_block("entry")
    return function, builder


class TestLiveness:
    def test_value_live_across_block(self):
        module = compile_to_ir("""
        int main() {
          int x = input();
          int i;
          int acc = 0;
          for (i = 0; i < 3; i++) { acc += x; }
          print(acc);
          return 0;
        }
        """)
        function = module.function("main")
        live_in, live_out = block_liveness(function)
        # Something must be live into the loop body (x and acc at least).
        loop_blocks = [b for b in function.blocks if live_in[b.label]]
        assert loop_blocks

    def test_dead_value_not_live_out(self):
        function = Function("f")
        builder = FunctionBuilder(function)
        builder.start_block("entry")
        dead = builder.const(5)
        builder.ret(Const(0))
        live_in, live_out = block_liveness(function)
        assert dead not in live_out[function.entry.label]


class TestIntervals:
    def test_params_start_before_body(self):
        function = Function("f", param_count=2)
        builder = FunctionBuilder(function)
        builder.start_block("entry")
        builder.ret(function.params[0])
        intervals = live_intervals(function)
        assert intervals[function.params[0]][0] == -1
        assert intervals[function.params[1]] == (-1, -1)


class TestAllocation:
    def test_few_values_all_get_registers(self):
        function = Function("f")
        builder = FunctionBuilder(function)
        builder.start_block("entry")
        a = builder.const(1)
        b = builder.binary("add", a, Const(2))
        builder.ret(b)
        allocation = allocate_function(function)
        assert isinstance(allocation.assignment[a], Register)
        assert allocation.slot_count == 0

    def test_pressure_forces_spills(self):
        # 8 simultaneously-live values > 3 allocatable registers.
        lines = ["int main() {"]
        for index in range(8):
            lines.append(f"  int v{index} = input();")
        total = " + ".join(f"v{index}" for index in range(8))
        lines.append(f"  print({total});")
        lines.append("  return 0; }")
        module = optimize_module(compile_to_ir("\n".join(lines)))
        allocation = allocate_function(module.function("main"))
        registers = [loc for loc in allocation.assignment.values()
                     if isinstance(loc, Register)]
        slots = [loc for loc in allocation.assignment.values()
                 if isinstance(loc, int)]
        assert slots, "high pressure must spill"
        assert set(registers) <= set(ALLOCATABLE)

    def test_no_overlapping_register_assignment(self):
        # Two values with overlapping intervals must not share a register.
        module = optimize_module(compile_to_ir("""
        int main() {
          int a = input();
          int b = input();
          int c = input();
          int d = input();
          print(a + b);
          print(c + d);
          print(a + c);
          print(b + d);
          return 0;
        }
        """))
        function = module.function("main")
        intervals = live_intervals(function)
        allocation = allocate_function(function)
        assigned = [(vreg, loc) for vreg, loc
                    in allocation.assignment.items()
                    if isinstance(loc, Register)]
        for index, (vreg_a, reg_a) in enumerate(assigned):
            for vreg_b, reg_b in assigned[index + 1:]:
                if reg_a is not reg_b:
                    continue
                start_a, end_a = intervals[vreg_a]
                start_b, end_b = intervals[vreg_b]
                overlap = not (end_a < start_b or end_b < start_a)
                assert not overlap, (vreg_a, vreg_b, reg_a)

    def test_used_callee_saved_reported(self):
        function = Function("f")
        builder = FunctionBuilder(function)
        builder.start_block("entry")
        value = builder.const(1)
        builder.ret(value)
        allocation = allocate_function(function)
        for register in allocation.used_callee_saved:
            assert register in ALLOCATABLE
