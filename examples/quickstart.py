#!/usr/bin/env python
"""Quickstart: compile, profile, diversify, run.

Walks the whole pipeline on a small program:

1. compile MinC source to an x86-32 binary and run it on the simulator,
2. collect an edge profile on a training input,
3. build two diversified variants — naive pNOP=50% and the paper's
   profile-guided 0-30% — and check they behave identically,
4. compare their estimated runtime overhead and surviving-gadget counts.

Run:  python examples/quickstart.py
"""

from repro import DiversificationConfig, ProgramBuild
from repro.security.gadgets import gadget_count
from repro.security.survivor import surviving_gadgets

SOURCE = """
int histogram[64];

int classify(int value) {
  if (value < 0) { return 0; }
  if (value < 100) { return 1; }
  if (value < 10000) { return 2; }
  return 3;
}

int main() {
  int n = input();
  int seed = input();
  int x = seed;
  int i;
  for (i = 0; i < n; i++) {
    x = (x * 1103515245 + 12345) & 2147483647;
    int bucket = classify(x % 20000 - 100) * 16 + (x & 15);
    histogram[bucket] = histogram[bucket] + 1;
  }
  int total = 0;
  for (i = 0; i < 64; i++) { total += histogram[i] * i; }
  print(total);
  return 0;
}
"""

TRAIN_INPUT = (500, 7)    # the paper's "train" input set
REF_INPUT = (5000, 99)    # the paper's "ref" input set


def main():
    build = ProgramBuild(SOURCE, "quickstart")

    # 1. Baseline: compile + link + simulate the real bytes.
    baseline = build.link_baseline()
    result = build.simulate(baseline, REF_INPUT)
    print(f"baseline: text={len(baseline.text)} bytes, "
          f"output={result.output}, "
          f"instructions executed={result.instr_count}")

    # 2. Training run -> edge profile (LLVM-style optimal edge counts).
    profile = build.profile(TRAIN_INPUT)
    maximum, median, _total = profile.summary()
    print(f"profile : max block count={maximum}, median={median}")

    # 3. Two diversified variants.
    naive_config = DiversificationConfig.uniform(0.50)
    guided_config = DiversificationConfig.profile_guided(0.0, 0.30)
    naive = build.link_variant(naive_config, seed=1)
    guided = build.link_variant(guided_config, seed=1, profile=profile)

    for label, variant in (("pNOP=50%", naive), ("pNOP=0-30%", guided)):
        check = build.simulate(variant, REF_INPUT)
        assert check.output == result.output, "diversified output differs!"
        print(f"{label:11s}: text={len(variant.text)} bytes "
              f"(+{len(variant.text) - len(baseline.text)}), "
              "output identical")

    # 4. Cost and security of each variant.
    counts = build.execution_counts(REF_INPUT)
    base_cycles = build.cycles(baseline, counts)
    total_gadgets = gadget_count(baseline.text)
    print(f"\n{'config':11s} {'overhead':>9s} {'survivors':>10s} "
          f"(of {total_gadgets} gadgets)")
    for label, variant in (("pNOP=50%", naive), ("pNOP=0-30%", guided)):
        overhead = build.cycles(variant, counts) / base_cycles - 1
        survivors, _offsets = surviving_gadgets(baseline.text,
                                                variant.text)
        print(f"{label:11s} {100 * overhead:8.2f}% {survivors:10d}")

    print("\nThe profile-guided variant keeps NOPs out of the hot loop: "
          "nearly the same gadget destruction at a fraction of the cost.")


if __name__ == "__main__":
    main()
