"""Tests for the NOP candidate table (paper Table 1)."""

from hypothesis import given, settings, strategies as st

from repro.x86 import decode, encode
from repro.x86.nops import (
    DEFAULT_NOP_CANDIDATES, NOP_CANDIDATES, XCHG_NOP_CANDIDATES,
    candidate_by_name, is_nop_candidate_bytes, is_nop_candidate_instr,
    match_nop_candidate, strip_nop_candidates,
)

#: The exact rows of the paper's Table 1.
TABLE_1 = {
    "nop": ("90", None),
    "mov esp, esp": ("89e4", "IN"),
    "mov ebp, ebp": ("89ed", "IN"),
    "lea esi, [esi]": ("8d36", "SS:"),
    "lea edi, [edi]": ("8d3f", "AAS"),
    "xchg esp, esp": ("87e4", "IN"),
    "xchg ebp, ebp": ("87ed", "IN"),
}


def test_table1_is_complete():
    assert {c.name for c in NOP_CANDIDATES} == set(TABLE_1)


def test_table1_encodings():
    for candidate in NOP_CANDIDATES:
        expected_hex, _second = TABLE_1[candidate.name]
        assert candidate.encoding.hex() == expected_hex


def test_table1_second_byte_decodings():
    for candidate in NOP_CANDIDATES:
        _hex, second = TABLE_1[candidate.name]
        assert candidate.second_byte_decoding == second


def test_default_set_excludes_bus_locking_candidates():
    assert len(DEFAULT_NOP_CANDIDATES) == 5
    assert len(XCHG_NOP_CANDIDATES) == 2
    assert all(not c.locks_bus for c in DEFAULT_NOP_CANDIDATES)
    assert all(c.locks_bus for c in XCHG_NOP_CANDIDATES)


def test_candidate_instrs_encode_to_their_table_bytes():
    for candidate in NOP_CANDIDATES:
        assert encode(candidate.to_instr()) == candidate.encoding


def test_candidate_instrs_roundtrip_through_decoder():
    for candidate in NOP_CANDIDATES:
        decoded = decode(candidate.encoding)
        assert is_nop_candidate_instr(decoded), candidate.name


def test_candidate_by_name():
    assert candidate_by_name("nop").encoding == b"\x90"


def test_match_prefers_longest_encoding():
    # 89 e4 must match "mov esp, esp", not be skipped.
    matched = match_nop_candidate(bytes.fromhex("89e4c3"), 0)
    assert matched.name == "mov esp, esp"


def test_non_candidate_mov_is_not_matched():
    assert not is_nop_candidate_bytes(bytes.fromhex("89d8"))  # mov eax,ebx


def test_strip_removes_all_candidates():
    data = bytes.fromhex("90 89e4 01d8 8d36 87ed c3".replace(" ", ""))
    assert strip_nop_candidates(data) == bytes.fromhex("01d8c3")


def test_strip_is_idempotent():
    data = bytes.fromhex("9089e48d3f55c3")
    once = strip_nop_candidates(data)
    assert strip_nop_candidates(once) == once


@given(st.binary(max_size=64))
@settings(max_examples=200)
def test_strip_never_grows_and_removes_every_candidate_prefix(data):
    stripped = strip_nop_candidates(data)
    assert len(stripped) <= len(data)
    # After stripping, no position starts a candidate that survives a
    # second pass (idempotence on arbitrary bytes).
    assert strip_nop_candidates(stripped) == stripped
