"""The x86-32 CPU simulator.

Executes the byte image of a :class:`~repro.backend.linker.LinkedBinary`
instruction by instruction: fetch (with a decode cache keyed on text
offset and shared across every Machine running the same binary — text is
immutable), execute, account cycles. Flags, wrapping arithmetic and
truncating IDIV follow IA-32; the one documented deviation is that IDIV
by zero yields quotient 0 / remainder 0 instead of #DE, matching the
IR's total division semantics so differential tests are exact.

:meth:`Machine.run` executes on one of two engines: ``"fast"`` (the
default) runs the threaded-code interpreter in
:mod:`repro.sim.fastpath`; ``"reference"`` runs the :meth:`Machine.step`
loop in this module. The two agree exactly on (output, exit_code,
instr_count) — the differential tests in ``tests/check`` hold them to
it — so the reference path doubles as the correctness oracle for the
fast one. ``REPRO_SIM_ENGINE`` selects the engine when callers don't.

System calls use ``INT 0x80`` with EAX selecting:

====  ==========================  ==============================
EAX   call                        effect
====  ==========================  ==============================
0     exit                        terminate, exit code in EBX
1     print_int                   append signed EBX to output
2     read_int                    EAX := next input value (or 0)
====  ==========================  ==============================
"""

from __future__ import annotations

from repro.errors import (
    DecodingError, MachineFault, SimulationLimitExceeded, SimulatorError,
)
from repro.obs import metrics
from repro.obs.knobs import knob_value, validate_knob_value
from repro.obs.trace import span
from repro.sim import fastpath
from repro.sim.memory import DEFAULT_STACK_SIZE, Memory, STACK_TOP
from repro.x86.decoder import decode
from repro.x86.instructions import (
    CONDITION_CODES, Imm, Mem, SETCC_MNEMONICS,
)
from repro.x86.registers import Register

_MASK = 0xFFFF_FFFF
_SIGN = 0x8000_0000

_PARITY = [0] * 256
for _value in range(256):
    _PARITY[_value] = int(bin(_value).count("1") % 2 == 0)


def _signed(value):
    return value - 0x1_0000_0000 if value & _SIGN else value


class SimResult:
    """Outcome of a simulated run."""

    def __init__(self, output, exit_code, instr_count, addr_counts):
        self.output = output
        self.exit_code = exit_code
        self.instr_count = instr_count
        self.addr_counts = addr_counts

    def __repr__(self):
        return (f"SimResult(exit={self.exit_code}, "
                f"instrs={self.instr_count})")


class Machine:
    """One simulated process."""

    def __init__(self, binary, input_values=(), max_steps=500_000_000,
                 count_addresses=False, stack_size=DEFAULT_STACK_SIZE):
        self.binary = binary
        self.memory = Memory(binary, stack_size=stack_size)
        self.regs = [0] * 8  # EAX ECX EDX EBX ESP EBP ESI EDI
        self.regs[4] = STACK_TOP - 64  # ESP, small headroom below the top
        self.eip = binary.entry
        self.cf = self.zf = self.sf = self.of = self.pf = 0
        self.halted = False
        self.exit_code = 0
        self.output = []
        self.input_values = list(input_values)
        self.input_position = 0
        self.max_steps = max_steps
        self.instr_count = 0
        self.count_addresses = count_addresses
        self.addr_counts = {}
        self.call_stack = []  # return addresses of live CALLs (snapshot aid)
        # Decoded instructions keyed by text offset, shared with every
        # other Machine running this binary (text is immutable).
        self._decode_cache = fastpath.shared_decode_cache(binary)

    # -- fault reporting ----------------------------------------------------

    def fault_context(self):
        """Machine state for error context: eip, step, call stack, instr."""
        context = {
            "eip": self.eip,
            "step": self.instr_count,
            "call_stack": [addr for addr in self.call_stack[-8:]],
        }
        instr = self._decode_cache.get(self.eip - self.binary.text_base)
        if instr is not None:
            context["instr"] = repr(instr)
        return context

    def _fault(self, message, cause=None, **extra):
        context = self.fault_context()
        context.update(extra)
        raise MachineFault(message, context=context) from cause

    # -- operand access -----------------------------------------------------

    def _ea(self, mem):
        address = mem.disp
        if mem.base is not None:
            address += self.regs[mem.base.code]
        if mem.index is not None:
            address += self.regs[mem.index.code] * mem.scale
        return address & _MASK

    def _get(self, operand):
        if isinstance(operand, Register):
            return self.regs[operand.code]
        if isinstance(operand, Imm):
            return operand.value & _MASK
        if isinstance(operand, Mem):
            return self.memory.read_u32(self._ea(operand))
        self._fault(f"cannot read operand {operand!r}")

    def _set(self, operand, value):
        value &= _MASK
        if isinstance(operand, Register):
            self.regs[operand.code] = value
        elif isinstance(operand, Mem):
            self.memory.write_u32(self._ea(operand), value)
        else:
            self._fault(f"cannot write operand {operand!r}")

    # -- flags ---------------------------------------------------------------

    def _flags_result(self, result):
        self.zf = int(result == 0)
        self.sf = (result >> 31) & 1
        self.pf = _PARITY[result & 0xFF]

    def _flags_add(self, a, b, result_wide):
        result = result_wide & _MASK
        self.cf = int(result_wide > _MASK)
        self.of = int(((a ^ result) & (b ^ result) & _SIGN) != 0)
        self._flags_result(result)

    def _flags_sub(self, a, b):
        result = (a - b) & _MASK
        self.cf = int(a < b)
        self.of = int(((a ^ b) & (a ^ result) & _SIGN) != 0)
        self._flags_result(result)
        return result

    def _flags_logic(self, result):
        self.cf = 0
        self.of = 0
        self._flags_result(result)

    def _condition(self, cc):
        if cc == "e":
            return self.zf
        if cc == "ne":
            return not self.zf
        if cc == "l":
            return self.sf != self.of
        if cc == "ge":
            return self.sf == self.of
        if cc == "le":
            return self.zf or self.sf != self.of
        if cc == "g":
            return not self.zf and self.sf == self.of
        if cc == "b":
            return self.cf
        if cc == "ae":
            return not self.cf
        if cc == "be":
            return self.cf or self.zf
        if cc == "a":
            return not (self.cf or self.zf)
        if cc == "s":
            return self.sf
        if cc == "ns":
            return not self.sf
        if cc == "o":
            return self.of
        if cc == "no":
            return not self.of
        if cc == "p":
            return self.pf
        if cc == "np":
            return not self.pf
        self._fault(f"unknown condition {cc!r}")

    # -- stack ----------------------------------------------------------------

    def _push(self, value):
        self.regs[4] = (self.regs[4] - 4) & _MASK
        self.memory.write_u32(self.regs[4], value)

    def _pop(self):
        value = self.memory.read_u32(self.regs[4])
        self.regs[4] = (self.regs[4] + 4) & _MASK
        return value

    # -- execution ---------------------------------------------------------------

    def _fetch(self):
        offset = self.eip - self.binary.text_base
        instr = self._decode_cache.get(offset)
        if instr is None:
            window = self.memory.code_window(self.eip, 16)
            try:
                instr = decode(window, 0)
            except DecodingError as exc:
                self._fault(f"cannot decode instruction at "
                            f"{self.eip:#010x}: {exc}", cause=exc,
                            encoding=window[:8].hex())
            self._decode_cache[offset] = instr
        return instr

    def step(self):
        """Execute one instruction."""
        if self.halted:
            raise SimulatorError("machine is halted")
        self.instr_count += 1
        if self.instr_count > self.max_steps:
            raise SimulationLimitExceeded(
                f"exceeded {self.max_steps} steps",
                context={"limit": self.max_steps, "steps": self.instr_count,
                         "eip": self.eip})
        if self.count_addresses:
            counts = self.addr_counts
            counts[self.eip] = counts.get(self.eip, 0) + 1
        try:
            instr = self._fetch()
            next_eip = self._execute(instr, self.eip + instr.size)
        except MachineFault as fault:
            # Memory faults are raised without machine state; add it.
            for key, value in self.fault_context().items():
                fault.context.setdefault(key, value)
            raise
        self.eip = next_eip & _MASK

    def _execute(self, instr, next_eip):
        """Dispatch one decoded instruction; returns the next EIP."""
        mnemonic = instr.mnemonic
        ops = instr.operands

        if mnemonic == "mov":
            self._set(ops[0], self._get(ops[1]))
        elif mnemonic == "add":
            a = self._get(ops[0])
            b = self._get(ops[1])
            self._flags_add(a, b, a + b)
            self._set(ops[0], a + b)
        elif mnemonic == "sub":
            a = self._get(ops[0])
            b = self._get(ops[1])
            self._set(ops[0], self._flags_sub(a, b))
        elif mnemonic == "cmp":
            self._flags_sub(self._get(ops[0]), self._get(ops[1]))
        elif mnemonic == "and":
            result = self._get(ops[0]) & self._get(ops[1])
            self._flags_logic(result)
            self._set(ops[0], result)
        elif mnemonic == "or":
            result = self._get(ops[0]) | self._get(ops[1])
            self._flags_logic(result)
            self._set(ops[0], result)
        elif mnemonic == "xor":
            result = self._get(ops[0]) ^ self._get(ops[1])
            self._flags_logic(result)
            self._set(ops[0], result)
        elif mnemonic == "test":
            self._flags_logic(self._get(ops[0]) & self._get(ops[1]))
        elif mnemonic == "lea":
            self._set(ops[0], self._ea(ops[1]))
        elif mnemonic == "inc":
            a = self._get(ops[0])
            result = (a + 1) & _MASK
            self.of = int(a == 0x7FFF_FFFF)
            self._flags_result(result)  # CF preserved
            self._set(ops[0], result)
        elif mnemonic == "dec":
            a = self._get(ops[0])
            result = (a - 1) & _MASK
            self.of = int(a == _SIGN)
            self._flags_result(result)  # CF preserved
            self._set(ops[0], result)
        elif mnemonic == "neg":
            a = self._get(ops[0])
            result = (-a) & _MASK
            self.cf = int(a != 0)
            self.of = int(a == _SIGN)
            self._flags_result(result)
            self._set(ops[0], result)
        elif mnemonic == "not":
            self._set(ops[0], ~self._get(ops[0]))
        elif mnemonic == "imul":
            if len(ops) == 3:
                value = _signed(self._get(ops[1])) * ops[2].value
            else:
                value = _signed(self._get(ops[0])) * _signed(self._get(ops[1]))
            result = value & _MASK
            overflowed = int(value != _signed(result))
            self.cf = self.of = overflowed
            self._set(ops[0], result)
        elif mnemonic == "mul":
            product = self.regs[0] * self._get(ops[0])
            self.regs[0] = product & _MASK
            self.regs[2] = (product >> 32) & _MASK
            self.cf = self.of = int(self.regs[2] != 0)
        elif mnemonic == "idiv":
            divisor = _signed(self._get(ops[0]))
            dividend = (self.regs[2] << 32) | self.regs[0]
            if dividend & (1 << 63):
                dividend -= 1 << 64
            if divisor == 0:
                quotient, remainder = 0, 0
            else:
                quotient = abs(dividend) // abs(divisor)
                if (dividend < 0) != (divisor < 0):
                    quotient = -quotient
                remainder = dividend - quotient * divisor
            self.regs[0] = quotient & _MASK
            self.regs[2] = remainder & _MASK
        elif mnemonic == "cdq":
            self.regs[2] = _MASK if self.regs[0] & _SIGN else 0
        elif mnemonic in ("shl", "shr", "sar", "rol", "ror"):
            self._shift(mnemonic, ops)
        elif mnemonic == "push":
            self._push(self._get(ops[0]))
        elif mnemonic == "pop":
            self._set(ops[0], self._pop())
        elif mnemonic == "xchg":
            a = self._get(ops[0])
            b = self._get(ops[1])
            self._set(ops[0], b)
            self._set(ops[1], a)
        elif mnemonic == "call":
            self._push(next_eip)
            self.call_stack.append(next_eip)
            next_eip = (next_eip + ops[0].value) & _MASK
        elif mnemonic == "call_reg":
            target = self._get(ops[0])
            self._push(next_eip)
            self.call_stack.append(next_eip)
            next_eip = target
        elif mnemonic == "ret":
            next_eip = self._pop()
            if self.call_stack:
                self.call_stack.pop()
            if ops:
                self.regs[4] = (self.regs[4] + ops[0].value) & _MASK
        elif mnemonic == "jmp":
            next_eip = (next_eip + ops[0].value) & _MASK
        elif mnemonic == "jmp_reg":
            next_eip = self._get(ops[0])
        elif mnemonic == "nop":
            pass
        elif mnemonic == "int":
            self._syscall(ops[0].value)
        elif mnemonic == "hlt":
            self._fault(f"HLT executed at {self.eip:#010x}")
        elif mnemonic in SETCC_MNEMONICS:
            flag = int(bool(self._condition(mnemonic[3:])))
            current = self._get(ops[0])
            self._set(ops[0], (current & ~0xFF) | flag)
        elif mnemonic[0] == "j" and mnemonic[1:] in CONDITION_CODES:
            if self._condition(mnemonic[1:]):
                next_eip = (next_eip + ops[0].value) & _MASK
        else:
            self._fault(f"cannot execute {instr!r} at {self.eip:#010x}")

        return next_eip

    def _shift(self, mnemonic, ops):
        count_operand = ops[1]
        if isinstance(count_operand, Register):
            count = self.regs[count_operand.code] & 31
        else:
            count = count_operand.value & 31
        a = self._get(ops[0])
        if count == 0:
            return  # no flag updates on zero count
        if mnemonic == "shl":
            result = (a << count) & _MASK
            self.cf = (a >> (32 - count)) & 1
            self._flags_result(result)
        elif mnemonic == "shr":
            result = a >> count
            self.cf = (a >> (count - 1)) & 1
            self._flags_result(result)
        elif mnemonic == "sar":
            signed_a = _signed(a)
            result = (signed_a >> count) & _MASK
            self.cf = (signed_a >> (count - 1)) & 1
            self._flags_result(result)
        elif mnemonic == "rol":
            count %= 32
            result = ((a << count) | (a >> (32 - count))) & _MASK if count else a
            self.cf = result & 1
        else:  # ror
            count %= 32
            result = ((a >> count) | (a << (32 - count))) & _MASK if count else a
            self.cf = (result >> 31) & 1
        self._set(ops[0], result)

    def _syscall(self, vector):
        if vector != 0x80:
            self._fault(f"unsupported interrupt {vector:#x}")
        number = self.regs[0]
        if number == 0:  # exit
            self.exit_code = _signed(self.regs[3])
            self.halted = True
        elif number == 1:  # print_int
            self.output.append(_signed(self.regs[3]))
            self.regs[0] = 0
        elif number == 2:  # read_int
            if self.input_position < len(self.input_values):
                value = self.input_values[self.input_position]
                self.input_position += 1
            else:
                value = 0
            self.regs[0] = value & _MASK
        else:
            self._fault(f"unknown syscall {number}")

    def run(self, engine=None):
        """Run to exit; returns a :class:`SimResult`.

        ``engine`` selects ``"fast"`` (threaded-code interpreter) or
        ``"reference"`` (the :meth:`step` loop); ``None`` defers to the
        ``REPRO_SIM_ENGINE`` environment variable, defaulting to fast.
        An unknown value — from either source — is rejected through the
        knob registry's single validation path, so both forms raise the
        same typed :class:`~repro.errors.ConfigError` naming the knob,
        the offending value and the valid engines.
        """
        if engine is None:
            engine = knob_value("REPRO_SIM_ENGINE")
        else:
            engine = validate_knob_value("REPRO_SIM_ENGINE", engine)
        with span("simulate", engine=engine) as timing:
            if engine == "fast":
                fastpath.run_machine(self)
            else:
                while not self.halted:
                    self.step()
        metrics.inc("sim.instructions", self.instr_count)
        if timing.seconds > 0:
            metrics.observe("sim.instrs_per_sec",
                            self.instr_count / timing.seconds)
        return SimResult(self.output, self.exit_code, self.instr_count,
                         self.addr_counts)


def run_binary(binary, input_values=(), max_steps=500_000_000,
               count_addresses=False, stack_size=DEFAULT_STACK_SIZE,
               engine=None):
    """Convenience wrapper: simulate a binary to completion.

    ``max_steps`` and ``stack_size`` are the run's fuel: a binary that
    spins past the step budget raises
    :class:`~repro.errors.SimulationLimitExceeded`, and one that grows
    its stack past ``stack_size`` faults with a
    :class:`~repro.errors.MachineFault` naming the overflow. ``engine``
    is forwarded to :meth:`Machine.run`.
    """
    machine = Machine(binary, input_values=input_values, max_steps=max_steps,
                      count_addresses=count_addresses, stack_size=stack_size)
    return machine.run(engine=engine)
