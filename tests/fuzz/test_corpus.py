"""Corpus DB: content addressing, persistence, replay lookup."""

import json
import os

import pytest

from repro.errors import ReproError

from repro.fuzz.corpus import Corpus, CorpusEntry, derive_seed, entry_id_for

SOURCE = "int main() { print(42); return 0; }"


def test_entry_id_is_content_addressed():
    assert entry_id_for(SOURCE, (1, 2)) == entry_id_for(SOURCE, (1, 2))
    assert entry_id_for(SOURCE, (1, 2)) != entry_id_for(SOURCE, (2, 1))
    assert entry_id_for(SOURCE, ()) != entry_id_for(SOURCE + " ", ())


def test_derive_seed_stable_and_distinct():
    assert derive_seed("gen", 0, 1) == derive_seed("gen", 0, 1)
    assert derive_seed("gen", 0, 1) != derive_seed("gen", 0, 2)
    assert derive_seed("gen", 0, 1) != derive_seed("mut", 0, 1)
    # works for non-int parts too (the string-seed retry case)
    assert derive_seed("retry", "seed-a") != derive_seed("retry", "seed-b")


def test_memory_corpus_add_get():
    corpus = Corpus()
    entry = CorpusEntry.create(SOURCE, (1,), "generated")
    assert corpus.add(entry)
    assert not corpus.add(entry)  # dedup by id
    assert len(corpus) == 1
    assert corpus.get(entry.entry_id).source == SOURCE


def test_prefix_lookup_and_errors():
    corpus = Corpus()
    entry = CorpusEntry.create(SOURCE, (1,), "generated")
    corpus.add(entry)
    assert corpus.get(entry.entry_id[:6]).entry_id == entry.entry_id
    with pytest.raises(ReproError):
        corpus.get("doesnotexist")


def test_disk_roundtrip(tmp_path):
    root = tmp_path / "corpus"
    corpus = Corpus(root)
    entry = CorpusEntry.create(SOURCE, (3, 4), "mutant",
                               parent="abcd", features=("edge:x", "exit:0"))
    corpus.add(entry)
    # two-level content-addressed layout
    path = root / entry.entry_id[:2] / f"{entry.entry_id}.json"
    assert path.is_file()
    # a fresh corpus pointed at the same root sees the entry
    reloaded = Corpus(root).get(entry.entry_id)
    assert reloaded == entry


def test_torn_entry_is_skipped(tmp_path):
    root = tmp_path / "corpus"
    corpus = Corpus(root)
    entry = CorpusEntry.create(SOURCE, (), "generated")
    corpus.add(entry)
    shard = root / "zz"
    os.makedirs(shard, exist_ok=True)
    (shard / "zz00000000000000.json").write_text("{not json")
    survivors = Corpus(root)
    assert survivors.ids() == [entry.entry_id]


def test_no_temp_files_left_behind(tmp_path):
    root = tmp_path / "corpus"
    corpus = Corpus(root)
    corpus.add(CorpusEntry.create(SOURCE, (), "generated"))
    leftovers = [name for _, _, names in os.walk(root) for name in names
                 if name.endswith(".tmp")]
    assert leftovers == []


def test_entry_json_is_stable():
    entry = CorpusEntry.create(SOURCE, (1,), "generated")
    again = CorpusEntry.from_json(entry.to_json())
    assert again == entry
    assert json.loads(entry.to_json())["entry_id"] == entry.entry_id
