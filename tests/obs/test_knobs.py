"""Knob-registry round trips and the misparse regression tests.

Every registered ``REPRO_*`` knob must (a) produce its default when
unset or empty, (b) accept every declared spelling, and (c) reject
anything else with a :class:`~repro.errors.ConfigError` that names the
valid choices — the fix for ``REPRO_STATIC_VERIFY=ful`` silently
meaning "sample" and ``REPRO_WORKERS=abc`` dying with a bare
``ValueError``.
"""

import pytest

from repro.errors import ConfigError
from repro.obs.knobs import REGISTRY, all_knobs, knob_value


class TestRegistryRoundTrips:
    """Generic valid/invalid/default round trip for every knob."""

    @pytest.mark.parametrize("name", sorted(REGISTRY))
    def test_unset_and_empty_mean_default(self, name):
        knob = REGISTRY[name]
        assert knob.parse(None) == knob.default
        assert knob.parse("") == knob.default
        assert knob.parse("   ") == knob.default
        assert knob_value(name, environ={}) == knob.default

    @pytest.mark.parametrize("name", sorted(REGISTRY))
    def test_every_declared_spelling_parses(self, name):
        knob = REGISTRY[name]
        if knob.kind in ("choice", "bool"):
            for spelling, canonical in knob.choices.items():
                assert knob.parse(spelling) == canonical
                # Spellings are case-insensitive and whitespace-proof.
                assert knob.parse(f"  {spelling.upper()} ") == canonical
        elif knob.kind == "int":
            probe = 7 if knob.minimum is None else max(knob.minimum, 7)
            assert knob.parse(str(probe)) == probe
            assert knob_value(name, environ={name: str(probe)}) == probe
        else:  # path
            assert knob.parse("/tmp/somewhere") == "/tmp/somewhere"

    @pytest.mark.parametrize("name", sorted(REGISTRY))
    def test_garbage_rejected_for_typed_knobs(self, name):
        knob = REGISTRY[name]
        if knob.kind == "path":
            return  # any non-empty string is a valid path
        with pytest.raises(ConfigError) as excinfo:
            knob.parse("definitely-not-a-value")
        assert excinfo.value.context["knob"] == name
        if knob.kind in ("choice", "bool"):
            assert excinfo.value.context["choices"] == \
                sorted(knob.choices)

    @pytest.mark.parametrize("name", sorted(REGISTRY))
    def test_environ_resolution_matches_parse(self, name):
        knob = REGISTRY[name]
        if knob.kind in ("choice", "bool"):
            spelling = next(iter(knob.choices))
            assert knob_value(name, environ={name: spelling}) == \
                knob.choices[spelling]

    def test_all_knobs_sorted_and_complete(self):
        names = [knob.name for knob in all_knobs()]
        assert names == sorted(REGISTRY)
        # Every knob carries a doc line for `repro-diversify knobs`.
        assert all(knob.doc for knob in all_knobs())

    def test_unregistered_name_is_a_typed_error(self):
        with pytest.raises(ConfigError) as excinfo:
            knob_value("REPRO_NO_SUCH_KNOB")
        assert "REPRO_NO_SUCH_KNOB" in str(excinfo.value)
        assert "REPRO_SIM_ENGINE" in excinfo.value.context["registered"]


class TestStaticVerifyRegression:
    """``REPRO_STATIC_VERIFY=ful`` used to silently mean "sample"."""

    @pytest.mark.parametrize("typo", ["ful", "smaple", "alll", "enable"])
    def test_typo_rejected_with_choices(self, typo):
        with pytest.raises(ConfigError) as excinfo:
            knob_value("REPRO_STATIC_VERIFY",
                       environ={"REPRO_STATIC_VERIFY": typo})
        message = str(excinfo.value)
        assert typo in message
        assert "sample" in message and "all" in message
        assert excinfo.value.context["knob"] == "REPRO_STATIC_VERIFY"

    @pytest.mark.parametrize("raw, expected", [
        ("off", None), ("no", None), ("false", None), ("0", None),
        ("sample", "sample"), ("on", "sample"), ("yes", "sample"),
        ("true", "sample"), ("1", "sample"),
        ("all", "all"), ("full", "all"), ("FULL", "all"),
    ])
    def test_canonicalization(self, raw, expected):
        assert knob_value("REPRO_STATIC_VERIFY",
                          environ={"REPRO_STATIC_VERIFY": raw}) == expected


class TestSimEngineRegression:
    """``REPRO_SIM_ENGINE`` misparse must fail loudly, env or param."""

    def test_env_typo_rejected(self):
        with pytest.raises(ConfigError) as excinfo:
            knob_value("REPRO_SIM_ENGINE",
                       environ={"REPRO_SIM_ENGINE": "fats"})
        assert "fast" in str(excinfo.value)
        assert "reference" in str(excinfo.value)

    def test_machine_run_validates_env(self, monkeypatch, fib_build):
        monkeypatch.setenv("REPRO_SIM_ENGINE", "fastest")
        binary = fib_build.link_baseline()
        from repro.sim.machine import Machine
        machine = Machine(binary, input_values=[3])
        with pytest.raises(ConfigError) as excinfo:
            machine.run()
        assert excinfo.value.context["knob"] == "REPRO_SIM_ENGINE"
        assert excinfo.value.context["value"] == "fastest"

    def test_machine_run_validates_param(self, fib_build):
        binary = fib_build.link_baseline()
        from repro.sim.machine import Machine
        machine = Machine(binary, input_values=[3])
        with pytest.raises(ConfigError):
            machine.run(engine="bogus")


class TestWorkersRegression:
    def test_non_integer_rejected(self):
        with pytest.raises(ConfigError) as excinfo:
            knob_value("REPRO_WORKERS", environ={"REPRO_WORKERS": "abc"})
        assert "not an integer" in str(excinfo.value)
        assert excinfo.value.context["knob"] == "REPRO_WORKERS"

    def test_below_minimum_rejected(self):
        with pytest.raises(ConfigError) as excinfo:
            knob_value("REPRO_WORKERS", environ={"REPRO_WORKERS": "-2"})
        assert "minimum" in str(excinfo.value)

    def test_zero_means_cpu_count(self):
        assert knob_value("REPRO_WORKERS",
                          environ={"REPRO_WORKERS": "0"}) == 0
