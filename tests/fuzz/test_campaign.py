"""Campaign driver: clean runs, coverage growth, replay determinism."""

import pytest

from repro.obs import metrics

from repro.fuzz import Corpus, FuzzParams, evaluate_candidate, replay, \
    run_fuzz_campaign
from repro.fuzz.campaign import paper_configs
from repro.fuzz.generate import tiny_limits

QUICK = dict(variants=1, fuel=100_000, limits=tiny_limits())


def test_healthy_pipeline_has_no_divergences():
    stats = run_fuzz_campaign(FuzzParams(programs=10, **QUICK))
    assert stats.execs == 10
    assert stats.findings == []
    assert stats.genuine_findings == []


def test_coverage_admits_corpus_entries():
    corpus = Corpus()
    stats = run_fuzz_campaign(FuzzParams(programs=12, **QUICK), corpus)
    assert stats.coverage_size > 0
    assert stats.corpus_entries == len(corpus) > 0
    # early candidates light up many new features; later ones fewer
    assert stats.corpus_entries <= stats.execs


def test_campaign_is_deterministic():
    first = run_fuzz_campaign(FuzzParams(programs=8, seed=5, **QUICK))
    second = run_fuzz_campaign(FuzzParams(programs=8, seed=5, **QUICK))
    assert first.summary()["coverage_size"] == \
        second.summary()["coverage_size"]
    assert first.generated == second.generated
    assert first.mutants == second.mutants


def test_master_seed_changes_the_stream():
    a = run_fuzz_campaign(FuzzParams(programs=6, seed=1, **QUICK))
    b = run_fuzz_campaign(FuzzParams(programs=6, seed=2, **QUICK))
    assert a.coverage_size != b.coverage_size or \
        a.skipped != b.skipped  # distinct campaigns, overwhelmingly


def test_wall_clock_budget_stops_early():
    stats = run_fuzz_campaign(FuzzParams(programs=100_000, seconds=0.3,
                                         **QUICK))
    assert stats.stopped_early
    assert stats.execs < 100_000


def test_replay_reproduces_the_evaluation():
    corpus = Corpus()
    params = FuzzParams(programs=8, **QUICK)
    run_fuzz_campaign(params, corpus)
    entry_id = corpus.ids()[0]
    _entry, first = replay(corpus, entry_id, params)
    _entry, second = replay(corpus, entry_id, params)
    assert first.status == second.status
    assert first.features == second.features
    assert len(first.reports) == len(second.reports) == 0


def test_evaluate_candidate_classifies_nontermination():
    looping = "int main() { int x = 1; while (x) { x = 1; } return 0; }"
    result = evaluate_candidate(looping, (), FuzzParams(fuel=10_000))
    assert result.status == "ref_timeout"
    assert result.skipped


def test_evaluate_candidate_classifies_reference_error():
    oob = "int a[8];\nint main() { return a[100]; }"
    result = evaluate_candidate(oob, (), FuzzParams(fuel=10_000))
    assert result.status == "ref_error"
    assert result.skipped


def test_counters_are_emitted():
    before = metrics.counters().get("fuzz.execs", 0)
    run_fuzz_campaign(FuzzParams(programs=3, **QUICK))
    assert metrics.counters()["fuzz.execs"] >= before + 3


def test_paper_configs_are_the_two_from_the_paper():
    uniform, guided = paper_configs()
    assert not uniform.requires_profile
    assert guided.requires_profile
