"""Property test: the analytic size calculator matches real encodings.

The linker's layout engine uses :func:`instruction_size` instead of
encoding every instruction (a major speedup); a mismatch would silently
corrupt branch offsets, so the two are cross-checked exhaustively here
(the linker also asserts equality at final emission).
"""

from hypothesis import given, settings

from repro.x86.encoder import encode, instruction_size
from tests.x86.test_roundtrip_property import (
    alu_instructions, misc_instructions, mov_instructions,
)


@given(mov_instructions())
@settings(max_examples=300)
def test_mov_sizes_match(instr):
    assert instruction_size(instr) == len(encode(instr))


@given(alu_instructions())
@settings(max_examples=300)
def test_alu_sizes_match(instr):
    assert instruction_size(instr) == len(encode(instr))


@given(misc_instructions())
@settings(max_examples=300)
def test_misc_sizes_match(instr):
    assert instruction_size(instr) == len(encode(instr))


def test_alternate_encodings_keep_their_size():
    from repro.x86.instructions import Instr
    from repro.x86.registers import EAX, EBX
    for mnemonic in ("mov", "add", "sub", "xor", "cmp", "and", "or"):
        flipped = Instr(mnemonic, EBX, EAX, alternate_encoding=True)
        assert instruction_size(flipped) == len(encode(flipped))


def test_symbolic_memory_counts_as_disp32():
    from repro.x86.instructions import Instr, Mem
    from repro.x86.registers import EAX
    instr = Instr("mov", EAX, Mem(symbol="table", disp=4))
    # opcode + modrm + disp32
    assert instruction_size(instr) == 6
