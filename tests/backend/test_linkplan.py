"""LinkPlan parity: incremental linking must be bit-exact vs link().

The compile-once / diversify-many contract: for every registered
workload, both paper config families (uniform and 0-30% profile-guided)
and several seeds, a variant linked through the precomputed
:class:`LinkPlan` is byte-identical to the full :func:`link` output —
text, symbols, data image, ``identity_hash()`` and instruction records.
Also covers the feature-slot predicate (``plan_features``), detected
mismatch fallback for genuinely foreign streams, the
``REPRO_LINK_PLAN=0`` kill switch, plan memoization, and the pickle
round trip of the lowered unit shipped to pool workers. The dedicated
§6 parity sweep (every workload x every §6 config) lives in
``test_linkplan_sec6.py``.
"""

import pickle
from functools import lru_cache

import pytest

from repro.backend.linker import link
from repro.backend.linkplan import (
    FEATURE_BBSHIFT, FEATURE_REORDERING, FEATURE_SUBSTITUTION,
    build_link_plan, plan_features,
)
from repro.core.config import DiversificationConfig
from repro.core.variants import diversify_unit
from repro.errors import PlanMismatchError
from repro.pipeline import ProgramBuild
from repro.runtime.lib import runtime_unit
from repro.workloads.registry import get_workload, workload_names

SEEDS = (0, 1, 2)

CONFIGS = {
    "uniform-50%": DiversificationConfig.uniform(0.50),
    "0-30%": DiversificationConfig.profile_guided(0.00, 0.30),
}


@lru_cache(maxsize=None)
def _state(name):
    """Shared (workload, build, plan) per workload: the expensive part."""
    workload = get_workload(name)
    build = ProgramBuild(workload.source, workload.name)
    plan = build_link_plan([runtime_unit(), build.unit])
    return workload, build, plan


def _profile_for(name, config):
    workload, build, _plan = _state(name)
    if not config.requires_profile:
        return None
    return build.profile(workload.train_input)


def _assert_bit_identical(planned, full):
    assert planned.text == full.text
    assert planned.identity_hash() == full.identity_hash()
    assert planned.text_base == full.text_base
    assert planned.entry == full.entry
    assert planned.code_symbols == full.code_symbols
    assert planned.data_symbols == full.data_symbols
    assert planned.data_base == full.data_base
    assert planned.data_end == full.data_end
    assert planned.data_words == full.data_words
    assert planned.function_ranges == full.function_ranges
    planned_records = list(planned.instr_records)
    full_records = list(full.instr_records)
    assert len(planned_records) == len(full_records)
    for ours, theirs in zip(planned_records, full_records):
        assert ours.address == theirs.address
        assert ours.size == theirs.size
        assert ours.mnemonic == theirs.mnemonic
        assert ours.block_id == theirs.block_id
        assert ours.is_inserted_nop == theirs.is_inserted_nop
        assert ours.instr.mnemonic == theirs.instr.mnemonic


@pytest.mark.parametrize("name", workload_names())
def test_baseline_parity(name):
    _workload, build, plan = _state(name)
    _assert_bit_identical(plan.baseline(),
                          link([runtime_unit(), build.unit]))


@pytest.mark.parametrize("name", workload_names())
@pytest.mark.parametrize("label", sorted(CONFIGS))
def test_variant_parity(name, label):
    _workload, build, plan = _state(name)
    config = CONFIGS[label]
    profile = _profile_for(name, config)
    for seed in SEEDS:
        variant = diversify_unit(build.unit, config, seed, profile)
        _assert_bit_identical(plan.apply(variant),
                              link([runtime_unit(), variant]))


def test_xchg_nops_are_nop_transparent():
    config = DiversificationConfig.uniform(0.5, include_xchg_nops=True)
    assert not plan_features(config)
    _workload, build, plan = _state("429.mcf")
    variant = diversify_unit(build.unit, config, seed=3)
    _assert_bit_identical(plan.apply(variant),
                          link([runtime_unit(), variant]))


class TestPlanFeatures:
    """§6 configs are planned feature slots now, not a cliff."""

    @pytest.mark.parametrize("knob,feature", [
        ("basic_block_shifting", FEATURE_BBSHIFT),
        ("encoding_substitution", FEATURE_SUBSTITUTION),
        ("function_reordering", FEATURE_REORDERING),
    ])
    def test_feature_slots(self, knob, feature):
        config = DiversificationConfig.uniform(0.5, **{knob: True})
        assert plan_features(config) == frozenset({feature})

    def test_nop_only_configs_need_no_features(self):
        for config in CONFIGS.values():
            assert plan_features(config) == frozenset()

    def test_sec6_variants_apply_through_the_plan(self):
        _workload, build, plan = _state("429.mcf")
        config = DiversificationConfig.uniform(
            0.5, encoding_substitution=True)
        for seed in range(5):
            variant = diversify_unit(build.unit, config, seed)
            _assert_bit_identical(plan.apply(variant),
                                  link([runtime_unit(), variant]))

    def test_apply_detects_foreign_stream(self):
        """A stream the plan never saw is detected, not mislinked."""
        _workload, build, plan = _state("429.mcf")
        other = get_workload("470.lbm")
        other_build = ProgramBuild(other.source, other.name)
        with pytest.raises(PlanMismatchError):
            plan.apply(other_build.unit)

    def test_pipeline_matches_full_link(self, monkeypatch):
        workload = get_workload("429.mcf")
        config = DiversificationConfig.uniform(
            0.5, function_reordering=True)
        build = ProgramBuild(workload.source, workload.name)
        via_plan_path = build.link_variant(config, seed=2)
        monkeypatch.setenv("REPRO_LINK_PLAN", "0")
        full = ProgramBuild(workload.source,
                            workload.name).link_variant(config, seed=2)
        assert via_plan_path.text == full.text
        assert via_plan_path.identity_hash() == full.identity_hash()


class TestPipelineIntegration:
    def test_plan_is_memoized(self):
        workload = get_workload("470.lbm")
        build = ProgramBuild(workload.source, workload.name)
        assert build.link_plan() is build.link_plan()

    def test_kill_switch_disables_plan(self, monkeypatch):
        workload = get_workload("470.lbm")
        monkeypatch.setenv("REPRO_LINK_PLAN", "0")
        build = ProgramBuild(workload.source, workload.name)
        build.link_baseline()
        build.link_variant(DiversificationConfig.uniform(0.3), seed=0)
        assert build._link_plan is None

    def test_baseline_matches_full_link(self):
        workload = get_workload("470.lbm")
        build = ProgramBuild(workload.source, workload.name)
        _assert_bit_identical(build.link_baseline(),
                              link([runtime_unit(), build.unit]))


class TestUnitPickleRoundTrip:
    """The worker protocol ships pickle.dumps(build.unit)."""

    def test_round_tripped_unit_builds_identical_variants(self):
        _workload, build, _plan = _state("429.mcf")
        blob = pickle.dumps(build.unit, protocol=pickle.HIGHEST_PROTOCOL)
        unit = pickle.loads(blob)
        assert unit is not build.unit
        config = DiversificationConfig.uniform(0.5)
        plan = build_link_plan([runtime_unit(), unit])
        for seed in SEEDS:
            variant = diversify_unit(unit, config, seed)
            original = diversify_unit(build.unit, config, seed)
            _assert_bit_identical(plan.apply(variant),
                                  link([runtime_unit(), original]))

    def test_register_interning_survives_pickle(self):
        _workload, build, _plan = _state("429.mcf")
        unit = pickle.loads(pickle.dumps(build.unit))
        from repro.x86.registers import GPR_REGISTERS
        interned = set(map(id, GPR_REGISTERS))
        for function_code in unit.functions:
            for item in function_code.items:
                for operand in getattr(item, "operands", ()):
                    if type(operand).__name__ == "Register":
                        assert id(operand) in interned
