"""Variant/population generation and basic-block shifting tests."""

import random

import pytest

from repro.backend.linker import link
from repro.core.bbshift import shift_basic_blocks
from repro.core.config import DiversificationConfig, PAPER_CONFIGS
from repro.core.variants import diversify_unit, variant_seeds
from repro.pipeline import ProgramBuild
from repro.runtime.lib import runtime_unit
from repro.x86.nops import DEFAULT_NOP_CANDIDATES, NOP_CANDIDATES
from tests.conftest import FIB_SOURCE


@pytest.fixture(scope="module")
def build():
    return ProgramBuild(FIB_SOURCE, "fib")


class TestConfig:
    def test_paper_configs_complete(self):
        assert set(PAPER_CONFIGS) == {"50%", "30%", "25-50%", "10-50%",
                                      "0-30%"}

    def test_candidate_sets(self):
        default = DiversificationConfig.uniform(0.5)
        assert len(default.nop_candidates) == 5
        extended = DiversificationConfig.uniform(
            0.5, include_xchg_nops=True)
        assert len(extended.nop_candidates) == 7

    def test_describe(self):
        assert PAPER_CONFIGS["0-30%"].describe() == "pNOP=0%-30%"
        assert PAPER_CONFIGS["50%"].describe() == "pNOP=50%"


class TestVariants:
    def test_seeded_variants_reproducible(self, build):
        config = PAPER_CONFIGS["50%"]
        first = build.link_variant(config, seed=9)
        second = build.link_variant(config, seed=9)
        assert first.text == second.text

    def test_different_seeds_give_different_binaries(self, build):
        config = PAPER_CONFIGS["50%"]
        texts = {build.link_variant(config, seed=s).text
                 for s in range(6)}
        assert len(texts) == 6

    def test_variant_seeds_helper(self):
        assert list(variant_seeds(3)) == [0, 1, 2]
        assert list(variant_seeds(2, base_seed=10)) == [10, 11]

    def test_runtime_functions_never_diversified(self, build):
        config = PAPER_CONFIGS["50%"]
        baseline = build.link_baseline()
        variant = build.link_variant(config, seed=4)
        # All runtime functions stay at identical offsets (they are laid
        # out before the diversified program code).
        for name in ("_start", "__print_int", "__read_int", "__memcpyw"):
            assert baseline.function_ranges[name] == \
                variant.function_ranges[name]
        # Their bytes are identical too, except for relocations into the
        # displaced program code (_start's `call main`), so compare the
        # routines that reference no program symbols.
        for name in ("__print_int", "__read_int", "__memcpyw"):
            start, end = baseline.function_ranges[name]
            base_bytes = baseline.text[start - baseline.text_base:
                                       end - baseline.text_base]
            var_bytes = variant.text[start - variant.text_base:
                                     end - variant.text_base]
            assert base_bytes == var_bytes

    def test_variant_grows_text(self, build):
        baseline = build.link_baseline()
        variant = build.link_variant(PAPER_CONFIGS["50%"], seed=1)
        assert len(variant.text) > len(baseline.text)

    def test_xchg_candidates_used_when_enabled(self, build):
        config = DiversificationConfig.uniform(0.5,
                                               include_xchg_nops=True)
        unit = diversify_unit(build.unit, config, seed=0)
        mnemonics = {i.mnemonic for fc in unit.functions
                     for i in fc.instructions() if i.is_inserted_nop}
        assert "xchg" in mnemonics


class TestSemanticPreservation:
    @pytest.mark.parametrize("label", sorted(PAPER_CONFIGS))
    def test_every_paper_config_preserves_output(self, build, label):
        config = PAPER_CONFIGS[label]
        profile = build.profile((7,)) if config.requires_profile else None
        reference = build.run_reference((9,))
        variant = build.link_variant(config, seed=11, profile=profile)
        result = build.simulate(variant, (9,))
        assert result.output == reference.output
        assert result.exit_code == reference.exit_code

    def test_xchg_variant_preserves_output(self, build):
        config = DiversificationConfig.uniform(0.5,
                                               include_xchg_nops=True)
        reference = build.run_reference((8,))
        variant = build.link_variant(config, seed=2)
        result = build.simulate(variant, (8,))
        assert result.output == reference.output


class TestBasicBlockShifting:
    def test_sled_is_jumped_over(self, build):
        config = DiversificationConfig.uniform(
            0.0, basic_block_shifting=True, max_shift_bytes=16)
        reference = build.run_reference((9,))
        variant = build.link_variant(config, seed=5)
        result = build.simulate(variant, (9,))
        assert result.output == reference.output
        assert result.exit_code == reference.exit_code

    def test_shift_displaces_function_starts(self, build):
        config = DiversificationConfig.uniform(
            0.0, basic_block_shifting=True, max_shift_bytes=16)
        baseline = build.link_baseline()
        variant = build.link_variant(config, seed=6)
        # Program functions after the first shifted one start elsewhere.
        moved = [
            name for name in ("fib", "main")
            if baseline.function_ranges[name][0]
            != variant.function_ranges[name][0]
        ]
        assert moved

    def test_shift_size_bounded(self):
        rng = random.Random(0)
        from repro.backend.objfile import FunctionCode, LabelDef
        from repro.x86.instructions import Imm, Instr
        from repro.x86.registers import EAX
        items = [LabelDef("f"),
                 Instr("mov", EAX, Imm(1), block_id=("f", "e")),
                 Instr("ret", block_id=("f", "e"))]
        function = FunctionCode("f", items)
        for seed in range(30):
            shifted = shift_basic_blocks(function, DEFAULT_NOP_CANDIDATES,
                                         random.Random(seed),
                                         max_shift_bytes=8)
            sled_bytes = sum(
                i.size or 1 for i in shifted.instructions()
                if i.is_inserted_nop)
            assert sled_bytes <= 8

    def test_zero_max_shift_is_identity(self):
        from repro.backend.objfile import FunctionCode, LabelDef
        from repro.x86.instructions import Instr
        function = FunctionCode("f", [LabelDef("f"), Instr("ret")])
        assert shift_basic_blocks(function, NOP_CANDIDATES,
                                  random.Random(0),
                                  max_shift_bytes=0) is function
