"""Three-address intermediate representation.

The IR sits between the MinC front end and the x86 backend, mirroring the
role of LLVM IR in the paper's pipeline (Figure 3): the front end builds a
control-flow graph of basic blocks per function, the optimizer rewrites it,
the profiler instruments its edges, and the backend lowers it.

Modules:

- :mod:`repro.ir.values` — virtual registers and constants.
- :mod:`repro.ir.instructions` — the instruction set.
- :mod:`repro.ir.module` — ``Module`` / ``Function`` / ``Block`` containers.
- :mod:`repro.ir.builder` — convenience construction API.
- :mod:`repro.ir.verifier` — structural invariant checks.
- :mod:`repro.ir.interp` — reference interpreter (also the profiling
  execution engine).
"""

from repro.ir.values import Const, VirtualReg
from repro.ir.instructions import (
    ALoad, AStore, Binary, Branch, Call, CondBranch, Copy, Input, Print,
    Return, Unary, BINARY_OPS, COMPARISON_OPS,
)
from repro.ir.module import Block, Function, GlobalArray, Module
from repro.ir.builder import FunctionBuilder
from repro.ir.verifier import verify_module
from repro.ir.interp import ExecutionLimitExceeded, Interpreter, run_module

__all__ = [
    "Const", "VirtualReg",
    "ALoad", "AStore", "Binary", "Branch", "Call", "CondBranch", "Copy",
    "Input", "Print", "Return", "Unary", "BINARY_OPS", "COMPARISON_OPS",
    "Block", "Function", "GlobalArray", "Module",
    "FunctionBuilder", "verify_module",
    "ExecutionLimitExceeded", "Interpreter", "run_module",
]
