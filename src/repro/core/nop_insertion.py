"""Algorithm 1: the probabilistic NOP-insertion pass.

For every instruction of the low-level representation the pass makes two
random decisions, exactly as the paper's pseudocode::

    for i in IList:
        roll = random(0.0, 1.0)
        if roll < pNOP:
            nopIndex = random(0, numNOPs)
            insert(i, NOPTable[nopIndex])

The profile-guided variant replaces the constant ``pNOP`` with the
per-block policy from :mod:`repro.core.policies`. Inserted NOPs inherit
the block id of the instruction they precede (they execute exactly as
often), and are marked ``is_inserted_nop`` for the cost model and for
analyses that want ground truth.

The pass runs on label-bearing instruction lists *before* layout, so the
linker recomputes every branch offset around the inserted bytes; the
displacement accumulation of the paper's Figure 2 is therefore a real
consequence of linking, not an emulation.
"""

from __future__ import annotations

from repro.backend.objfile import FunctionCode, ObjectUnit
from repro.obs import metrics
from repro.x86.instructions import Instr
from repro.x86.nops import site_instr

#: Sentinel distinct from any block id (including ``None``).
_UNSET = object()

#: Block-heat buckets, classified by the insertion probability the
#: policy assigned: profile-guided configs give *hot* blocks p near
#: p_min and *cold* blocks p_max, so low p is a proxy for high heat.
#: Uniform configs land every block in one bucket by construction.
_HEAT_THRESHOLDS = ((0.05, "hot"), (0.25, "warm"))


def _heat_class(p):
    for threshold, label in _HEAT_THRESHOLDS:
        if p < threshold:
            return label
    return "cold"


def roll_table(function_code, probability_for_block, candidates):
    """Precompute one (position, p, heat, site instrs) row per
    instruction.

    The policy is a pure function of the block id, so the per-item
    decisions of :func:`insert_nops` depend on the seed only through the
    rng rolls — everything else is the same for every variant of a
    population. The table hands ``insert_nops`` exactly the loop its
    rolls need, in item order, so the consumed rng stream is identical
    to the untabled walk. Each row's last field is the block's tuple of
    shared pre-encoded NOP instances (one per candidate, see
    :func:`~repro.x86.nops.site_instr`), so an insertion is a plain
    index into the row.
    """
    cache = {}
    table = []
    for position, item in enumerate(function_code.items):
        if isinstance(item, Instr):
            block_id = item.block_id
            entry = cache.get(block_id)
            if entry is None:
                p = probability_for_block(block_id)
                entry = cache[block_id] = (
                    p, _heat_class(p),
                    tuple(site_instr(c, block_id) for c in candidates))
            table.append((position, entry[0], entry[1], entry[2]))
    return tuple(table)


def insert_nops(function_code, candidates, rng, probability_for_block,
                table=None):
    """Diversify one function; returns a new :class:`FunctionCode`.

    ``candidates`` is the NOP table (sequence of
    :class:`~repro.x86.nops.NopCandidate`), ``rng`` a seeded
    ``random.Random``, ``probability_for_block`` the per-block policy,
    ``table`` an optional precomputed :func:`roll_table` for this
    function and policy (populations reuse one table across all seeds).
    Non-diversifiable functions (runtime objects) pass through untouched.
    """
    if not function_code.diversifiable:
        return function_code

    candidate_count = len(candidates)
    new_items = []
    inserted = []
    append = new_items.append
    roll_once = rng.random
    # Inlined ``rng.randrange(candidate_count)``: the same
    # getrandbits(k) rejection loop CPython's ``Random._randbelow``
    # runs, minus the argument-checking wrapper — it must consume the
    # identical draws or every seeded variant changes.
    getrandbits = rng.getrandbits
    index_bits = candidate_count.bit_length()
    inserted_by_heat = {}
    if table is not None:
        # Tabled walk: one roll per precomputed row; untouched
        # stretches copy over as whole slices.
        items = function_code.items
        extend = new_items.extend
        inserted_append = inserted.append
        previous = 0
        for position, p_nop, heat, sites in table:
            if roll_once() < p_nop:
                nop_index = getrandbits(index_bits)
                while nop_index >= candidate_count:
                    nop_index = getrandbits(index_bits)
                extend(items[previous:position])
                inserted_append(len(new_items))
                append(sites[nop_index])
                previous = position
                inserted_by_heat[heat] = \
                    inserted_by_heat.get(heat, 0) + 1
        extend(items[previous:])
        return _finish(function_code, new_items, inserted,
                       inserted_by_heat)
    # Consecutive instructions almost always share a block, so the
    # policy (and its heat class) is consulted once per block run, not
    # once per instruction. Per-heat insertion counts accumulate in a
    # local dict and fold into the shared metrics once per function.
    last_block = last_p = _UNSET
    last_heat = "cold"
    for item in function_code.items:
        if isinstance(item, Instr):
            block_id = item.block_id
            if block_id != last_block:
                last_p = probability_for_block(block_id)
                last_heat = _heat_class(last_p)
                last_block = block_id
            p_nop = last_p
            roll = roll_once()
            if roll < p_nop:
                nop_index = getrandbits(index_bits)
                while nop_index >= candidate_count:
                    nop_index = getrandbits(index_bits)
                nop = candidates[nop_index].to_instr()
                nop.block_id = block_id
                inserted.append(len(new_items))
                append(nop)
                inserted_by_heat[last_heat] = \
                    inserted_by_heat.get(last_heat, 0) + 1
        append(item)
    return _finish(function_code, new_items, inserted, inserted_by_heat)


def _finish(function_code, new_items, inserted, inserted_by_heat):
    """Fold metrics and stamp the merge record on the diversified
    function."""
    if inserted_by_heat:
        total = 0
        for heat, count in inserted_by_heat.items():
            metrics.inc(f"nops.inserted.{heat}", count)
            total += count
        metrics.inc("nops.inserted", total)
    result = FunctionCode(function_code.name, new_items,
                          diversifiable=function_code.diversifiable)
    # Record which output indices the pass inserted, so LinkPlan.apply()
    # can merge against its plan without re-diffing the whole stream.
    # Downstream passes keep the record consistent or drop it; apply()
    # validates it and falls back to a full diff if it ever disagrees.
    result.plan_delta = (tuple(inserted), ())
    return result


def insert_nops_in_unit(unit, candidates, rng, probability_for_block):
    """Diversify every function of an object unit; returns a new unit."""
    diversified = ObjectUnit(unit.name,
                             data_symbols=dict(unit.data_symbols))
    for function_code in unit.functions:
        diversified.add_function(
            insert_nops(function_code, candidates, rng,
                        probability_for_block))
    return diversified


def count_inserted_nops(function_code_or_unit):
    """How many instructions in the LR are diversifier-inserted NOPs."""
    if isinstance(function_code_or_unit, ObjectUnit):
        return sum(count_inserted_nops(fc)
                   for fc in function_code_or_unit.functions)
    return sum(1 for item in function_code_or_unit.items
               if isinstance(item, Instr) and item.is_inserted_nop)
