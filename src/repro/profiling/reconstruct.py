"""Reconstruct the full edge profile from counter values.

Given the counter values (counts of the non-tree edges) the remaining tree
edge counts follow from flow conservation: at every node of the profile
graph, inflow equals outflow. The spanning tree is peeled leaf-by-leaf —
a node with exactly one unknown incident edge determines that edge — which
always terminates because a tree always has a leaf.

The reconstructed profile is expressed in the original module's label
space: virtual entry edges ``(fn, None, entry)`` carry invocation counts,
return edges are dropped (they are not CFG edges), and block counts derive
as the sum of incoming edge counts.
"""

from __future__ import annotations

from repro.errors import ProfileError
from repro.profiling.profile_data import ProfileData
from repro.profiling.spanning_tree import (
    EXIT_NODE, build_profile_graph, choose_counter_edges,
)


def _solve_function(function, known):
    """Solve all profile-graph edge counts given the counter values.

    ``known`` maps (source, target) → count for the counter edges.
    Returns a dict with every profile-graph edge's count.
    """
    edges = build_profile_graph(function)
    counts = dict(known)
    unknown = [edge for edge in edges if edge not in counts]

    incident = {}
    for edge in edges:
        for node in edge:
            incident.setdefault(node, []).append(edge)

    pending = set(unknown)
    progress = True
    while pending and progress:
        progress = False
        for node, node_edges in incident.items():
            open_edges = [e for e in node_edges if e in pending]
            if len(open_edges) != 1:
                continue
            edge = open_edges[0]
            inflow = sum(counts.get(e, 0) for e in node_edges
                         if e[1] == node and e not in pending)
            outflow = sum(counts.get(e, 0) for e in node_edges
                          if e[0] == node and e not in pending)
            if edge[1] == node:  # unknown edge flows in
                counts[edge] = outflow - inflow
            else:               # unknown edge flows out
                counts[edge] = inflow - outflow
            if counts[edge] < 0:
                raise ProfileError(
                    f"negative reconstructed count on {edge} "
                    f"in {function.name!r}")
            pending.discard(edge)
            progress = True
    if pending:
        raise ProfileError(
            f"could not reconstruct {len(pending)} edges in "
            f"{function.name!r}; counter placement is not a spanning-tree "
            "complement")
    return counts


def reconstruct_profile(module, imap, counter_values):
    """Full :class:`ProfileData` from counters of an instrumented run.

    ``module`` must be the *uninstrumented* module (same CFG shape the
    counters were planned on). ``imap`` is the
    :class:`~repro.profiling.instrument.InstrumentationMap`;
    ``counter_values`` the counter array contents after the training run.
    """
    if len(counter_values) < len(imap.counters):
        raise ProfileError("counter vector shorter than the counter map")

    per_function = {}
    for index, (function_name, source, target) in enumerate(imap.counters):
        per_function.setdefault(function_name, {})[(source, target)] = (
            counter_values[index])

    edge_counts = {}
    for function in module.functions.values():
        known = per_function.get(function.name, {})
        expected, _tree = choose_counter_edges(function)
        if set(known) != set(expected):
            raise ProfileError(
                f"counter map mismatch for {function.name!r}")
        solved = _solve_function(function, known)
        for (source, target), count in solved.items():
            if count == 0:
                continue
            if source == EXIT_NODE:
                edge_counts[(function.name, None, target)] = count
            elif target == EXIT_NODE:
                continue  # return edges are not CFG edges
            else:
                edge_counts[(function.name, source, target)] = count
    return ProfileData.from_edges(edge_counts)
