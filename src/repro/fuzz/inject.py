"""Seeded miscompile injection: proving the oracle can actually see.

A differential fuzzer that never fires is indistinguishable from one
that cannot fire. This module plants known miscompile classes into
otherwise-correct variant binaries — through the campaign's test-only
``variant_hook`` — so the test suite can assert each class is caught:

- **wrong branch target** — a short branch's rel8 displacement is
  nudged, so control lands one instruction off;
- **dropped instruction** — a real instruction's bytes are overwritten
  with single-byte NOPs (layout-preserving, effect-deleting);
- **bad NOP encoding** — an *inserted* NOP's bytes are replaced by a
  same-length encoding that is not semantics-neutral (``inc eax``),
  the exact bug class Algorithm 1's transparency argument rules out.

All corruptions are pure byte edits on a copy of the binary image
(``dataclasses.replace`` on ``text``, the same idiom as the fault
campaign) — the simulator decodes what it is given, so the planted bug
flows through the normal execute path and must be caught by the
*observables*, not by any metadata check.
"""

from __future__ import annotations

from dataclasses import replace

from repro.errors import ReproError

#: Same-length non-neutral replacements for an inserted NOP: byte 0 is
#: ``inc eax`` (0x40) — architecturally well-formed, one byte, and
#: visibly wrong the moment EAX carries live data — padded with real
#: NOPs to preserve layout.
_POISON_FIRST_BYTE = 0x40


def _patch(binary, offset, new_bytes):
    """A copy of ``binary`` with ``new_bytes`` spliced into text."""
    text = bytearray(binary.text)
    text[offset:offset + len(new_bytes)] = new_bytes
    return replace(binary, text=bytes(text))


def _main_range(binary):
    start, end = binary.function_ranges.get(
        "main", (binary.text_base, binary.text_end))
    return start, end


def branch_sites(binary):
    """Records of short conditional/unconditional branches in main.

    Restricted to 2-byte encodings (opcode + rel8) so the corruption is
    a single displacement byte and to ``main`` so the corrupted path is
    actually executed.
    """
    start, end = _main_range(binary)
    return [record for record in binary.instr_records
            if start <= record.address < end
            and record.mnemonic.startswith("j")
            and record.size == 2]


def inject_wrong_branch(binary, site):
    """Nudge one branch's rel8 displacement by +1 instruction byte."""
    offset = site.address - binary.text_base
    displacement = binary.text[offset + 1]
    return _patch(binary, offset + 1, bytes([(displacement + 1) & 0xFF]))


def droppable_sites(binary):
    """Real (non-inserted-NOP) instructions in main that can be blanked.

    Control-flow instructions are excluded — dropping one usually runs
    off into the next function, which faults loudly; the interesting
    (silent) version of this bug drops a data instruction.
    """
    start, end = _main_range(binary)
    skip = ("j", "call", "ret", "push", "pop", "hlt")
    return [record for record in binary.instr_records
            if start <= record.address < end
            and not record.is_inserted_nop
            and not record.mnemonic.startswith(skip)]


def inject_drop_instruction(binary, site):
    """Overwrite one instruction with NOPs (layout-preserving drop)."""
    offset = site.address - binary.text_base
    return _patch(binary, offset, b"\x90" * site.size)


def nop_sites(binary):
    """Inserted-NOP records in main — Algorithm 1's own insertions."""
    start, end = _main_range(binary)
    return [record for record in binary.instr_records
            if start <= record.address < end and record.is_inserted_nop]


def inject_bad_nop(binary, site):
    """Swap one inserted NOP for a same-length non-neutral encoding."""
    offset = site.address - binary.text_base
    poison = bytes([_POISON_FIRST_BYTE]) + b"\x90" * (site.size - 1)
    return _patch(binary, offset, poison)


#: bug class name -> (site enumerator, injector).
BUG_CLASSES = {
    "wrong_branch_target": (branch_sites, inject_wrong_branch),
    "dropped_instruction": (droppable_sites, inject_drop_instruction),
    "bad_nop_encoding": (nop_sites, inject_bad_nop),
}


def make_hook(bug_class, site_index=None):
    """A ``FuzzParams.variant_hook`` planting one bug class.

    With ``site_index=None`` every applicable site is corrupted — the
    right default for a *detectability* proof, because a single
    non-neutral NOP is often locally unobservable (EAX dead across the
    insertion point) while the class as a whole is not. With an integer,
    only that site (modulo the available sites) is corrupted. Binaries
    with no applicable site pass through untouched. Raises for unknown
    bug classes so a typo'd test fails loudly.
    """
    try:
        enumerate_sites, injector = BUG_CLASSES[bug_class]
    except KeyError:
        raise ReproError(
            f"unknown injected bug class {bug_class!r}",
            code="fuzz.inject",
            context={"known": sorted(BUG_CLASSES)}) from None

    def hook(binary):
        sites = enumerate_sites(binary)
        if not sites:
            return binary
        if site_index is not None:
            return injector(binary, sites[site_index % len(sites)])
        for site in sites:
            binary = injector(binary, site)
        return binary

    return hook
