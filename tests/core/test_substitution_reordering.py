"""Tests for the §6 extensions: equivalent-encoding substitution and
function reordering."""

import random

import pytest

from repro.core.config import DiversificationConfig
from repro.core.substitution import (
    is_substitutable, substitute_encodings, SUBSTITUTABLE_MNEMONICS,
)
from repro.backend.objfile import FunctionCode, LabelDef
from repro.pipeline import ProgramBuild
from repro.x86 import decode, encode
from repro.x86.instructions import Imm, Instr, Mem
from repro.x86.registers import EAX, EBX, ESP
from tests.conftest import FIB_SOURCE


@pytest.fixture(scope="module")
def build():
    return ProgramBuild(FIB_SOURCE, "fib_subst")


class TestDualEncodings:
    def test_mov_has_two_encodings(self):
        direct = encode(Instr("mov", EBX, EAX))
        alternate = encode(Instr("mov", EBX, EAX,
                                 alternate_encoding=True))
        assert direct != alternate
        assert direct == bytes.fromhex("89c3")
        assert alternate == bytes.fromhex("8bd8")

    @pytest.mark.parametrize("mnemonic",
                             sorted(SUBSTITUTABLE_MNEMONICS))
    def test_both_encodings_decode_to_same_instruction(self, mnemonic):
        original = Instr(mnemonic, EBX, EAX)
        flipped = Instr(mnemonic, EBX, EAX, alternate_encoding=True)
        assert decode(encode(original)) == original
        assert decode(encode(flipped)) == original  # same semantics
        assert encode(original) != encode(flipped)

    def test_sizes_identical(self):
        for mnemonic in SUBSTITUTABLE_MNEMONICS:
            direct = encode(Instr(mnemonic, EBX, EAX))
            alternate = encode(Instr(mnemonic, EBX, EAX,
                                     alternate_encoding=True))
            assert len(direct) == len(alternate)

    def test_non_reg_reg_not_substitutable(self):
        assert not is_substitutable(Instr("mov", EAX, Imm(5)))
        assert not is_substitutable(Instr("mov", EAX, Mem(base=EBX)))
        assert not is_substitutable(Instr("idiv", EAX))

    def test_nop_candidates_not_substitutable(self):
        # mov esp, esp is a Table-1 candidate; its encoding must stay
        # exactly 89 E4 for Survivor normalization to recognize it.
        assert not is_substitutable(Instr("mov", ESP, ESP))


class TestSubstitutionPass:
    def make_function(self, count=200):
        items = [LabelDef("f")]
        for _ in range(count):
            items.append(Instr("mov", EBX, EAX, block_id=("f", "e")))
        return FunctionCode("f", items)

    def test_flip_rate_tracks_probability(self):
        function = self.make_function(1000)
        result = substitute_encodings(function, random.Random(0), 0.5)
        flipped = sum(1 for i in result.instructions()
                      if i.alternate_encoding)
        assert 400 < flipped < 600

    def test_runtime_functions_untouched(self):
        function = self.make_function()
        function.diversifiable = False
        assert substitute_encodings(function, random.Random(0)) \
            is function

    def test_substitution_preserves_behaviour(self, build):
        config = DiversificationConfig.uniform(
            0.0, encoding_substitution=True)
        reference = build.run_reference((9,))
        variant = build.link_variant(config, seed=3)
        result = build.simulate(variant, (9,))
        assert result.output == reference.output
        assert result.exit_code == reference.exit_code

    def test_substitution_changes_bytes_without_growth(self, build):
        baseline = build.link_baseline()
        config = DiversificationConfig.uniform(
            0.0, encoding_substitution=True)
        variant = build.link_variant(config, seed=3)
        assert len(variant.text) == len(baseline.text)
        assert variant.text != baseline.text

    def test_substitution_kills_gadgets_without_displacement(self, build):
        from repro.security.survivor import surviving_gadgets
        baseline = build.link_baseline()
        config = DiversificationConfig.uniform(
            0.0, encoding_substitution=True)
        variant = build.link_variant(config, seed=5)
        from repro.security.gadgets import find_gadgets
        total = len(find_gadgets(baseline.text))
        count, _offsets = surviving_gadgets(baseline.text, variant.text)
        assert count < total


class TestFunctionReordering:
    def test_reordering_preserves_behaviour(self, build):
        config = DiversificationConfig.uniform(
            0.0, function_reordering=True)
        reference = build.run_reference((9,))
        for seed in range(4):
            variant = build.link_variant(config, seed=seed)
            result = build.simulate(variant, (9,))
            assert result.output == reference.output

    def test_reordering_permutes_function_ranges(self, build):
        config = DiversificationConfig.uniform(
            0.0, function_reordering=True)
        baseline = build.link_baseline()
        orders = set()
        for seed in range(6):
            variant = build.link_variant(config, seed=seed)
            order = tuple(sorted(("fib", "main"),
                                 key=lambda n:
                                 variant.function_ranges[n][0]))
            orders.add(order)
            # Runtime stays at the front regardless.
            assert variant.function_ranges["_start"] == \
                baseline.function_ranges["_start"]
        assert len(orders) == 2  # both orders of the two functions seen

    def test_reordering_composes_with_nops(self, build):
        config = DiversificationConfig.uniform(
            0.3, function_reordering=True, encoding_substitution=True)
        reference = build.run_reference((8,))
        variant = build.link_variant(config, seed=11)
        result = build.simulate(variant, (8,))
        assert result.output == reference.output
        assert "+subst" in config.describe()
        assert "+reorder" in config.describe()
