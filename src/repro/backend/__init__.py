"""x86-32 backend: lowering, register allocation, emission, linking.

Pipeline position (paper Figure 3): IR → **LR** (machine instructions with
labels, one list per function) → *NOP insertion happens here* → layout /
branch relaxation → linked binary image.

- :mod:`repro.backend.objfile` — the LR containers (:class:`CodeItem`
  lists per function, object units).
- :mod:`repro.backend.regalloc` — liveness analysis and linear-scan
  register allocation.
- :mod:`repro.backend.lowering` — IR instruction selection.
- :mod:`repro.backend.linker` — layout, branch relaxation, symbol
  resolution, final image.
"""

from repro.backend.objfile import FunctionCode, LabelDef, ObjectUnit
from repro.backend.lowering import lower_function, lower_module
from repro.backend.linker import LinkedBinary, link
from repro.backend.regalloc import Allocation, allocate_function

__all__ = [
    "FunctionCode", "LabelDef", "ObjectUnit",
    "lower_function", "lower_module",
    "LinkedBinary", "link",
    "Allocation", "allocate_function",
]
