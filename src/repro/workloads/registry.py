"""Lookup of workloads by name.

``SPEC_ORDER`` lists the 19 SPEC CPU 2006 benchmark names in the paper's
Figure 4 order; workload modules are imported lazily so importing the
registry stays cheap.
"""

from __future__ import annotations

import importlib

from repro.errors import WorkloadError

#: Figure 4's benchmark order.
SPEC_ORDER = (
    "400.perlbench", "401.bzip2", "403.gcc", "429.mcf", "433.milc",
    "444.namd", "445.gobmk", "447.dealII", "450.soplex", "453.povray",
    "456.hmmer", "458.sjeng", "462.libquantum", "464.h264ref", "470.lbm",
    "471.omnetpp", "473.astar", "482.sphinx3", "483.xalancbmk",
)

_MODULE_FOR_NAME = {name: name.split(".", 1)[1].lower()
                    for name in SPEC_ORDER}

_EXTRA_WORKLOADS = {"php": ("repro.workloads.php", "WORKLOAD")}


def get_workload(name):
    """Fetch one workload by its benchmark name (e.g. ``"470.lbm"``)."""
    if name in _MODULE_FOR_NAME:
        module = importlib.import_module(
            f"repro.workloads.programs.{_MODULE_FOR_NAME[name]}")
        return module.WORKLOAD
    if name in _EXTRA_WORKLOADS:
        module_name, attribute = _EXTRA_WORKLOADS[name]
        return getattr(importlib.import_module(module_name), attribute)
    raise WorkloadError(f"unknown workload {name!r}; known: "
                        f"{', '.join(workload_names())}")


def workload_names():
    """All known workload names, SPEC suite first."""
    return list(SPEC_ORDER) + sorted(_EXTRA_WORKLOADS)


def all_spec_workloads():
    """The full SPEC-like suite in Figure-4 order."""
    return [get_workload(name) for name in SPEC_ORDER]
