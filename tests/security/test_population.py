"""Population survival tests (paper Table 3's measurement)."""

from repro.core.config import PAPER_CONFIGS
from repro.security.population import (
    population_signatures, population_survival,
)


def test_thresholds_monotone(fib_build):
    config = PAPER_CONFIGS["30%"]
    texts = [fib_build.link_variant(config, seed=s).text
             for s in range(8)]
    result = population_survival(texts, thresholds=(1, 2, 4, 8))
    assert result[1] >= result[2] >= result[4] >= result[8]


def test_identical_population_survives_everywhere(fib_build):
    text = fib_build.link_baseline().text
    result = population_survival([text] * 5, thresholds=(2, 5))
    assert result[2] == result[5]
    assert result[5] > 0


def test_runtime_floor_survives_in_all_variants(fib_build):
    # Gadgets in the undiversified runtime appear in every variant at
    # the same offsets: the ≥N count is at least the libc floor.
    config = PAPER_CONFIGS["50%"]
    texts = [fib_build.link_variant(config, seed=s).text
             for s in range(6)]
    result = population_survival(texts, thresholds=(6,))
    assert result[6] > 0


def test_signatures_reuse_matches_direct(fib_build):
    config = PAPER_CONFIGS["30%"]
    texts = [fib_build.link_variant(config, seed=s).text
             for s in range(4)]
    signatures = population_signatures(texts)
    direct = population_survival(texts, thresholds=(2, 3))
    cached = population_survival(texts, thresholds=(2, 3),
                                 signatures=signatures)
    assert direct == cached


def test_same_offset_different_content_counted_separately():
    # Two variants with *different* gadgets at the same offset do not
    # form a shared gadget.
    variant_a = bytes.fromhex("5bc3")  # pop ebx; ret
    variant_b = bytes.fromhex("58c3")  # pop eax; ret
    result = population_survival([variant_a, variant_b], thresholds=(2,))
    assert result[2] == 1  # only the bare ret at offset 1 is shared
