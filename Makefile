PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench bench-quick check

# Tier-1: the full pytest suite plus the quick perf gates (mix speedup,
# population incremental-link speedup, pool-vs-serial wall clock) so a
# perf regression fails the default flow, not just the full bench.
test: bench-quick
	$(PYTHON) -m pytest -x -q

bench:
	$(PYTHON) benchmarks/bench_runtime.py

bench-quick:
	$(PYTHON) benchmarks/bench_runtime.py --quick \
		--output BENCH_runtime_quick.json

check:
	$(PYTHON) benchmarks/check_campaign.py --quick
