"""Property tests: encode→decode is the identity on instruction objects."""

from hypothesis import given, settings, strategies as st

from repro.x86 import GPR_REGISTERS, decode, encode
from repro.x86.instructions import Imm, Instr, Mem, Rel
from repro.x86.registers import ESP

registers = st.sampled_from(GPR_REGISTERS)
non_esp_registers = st.sampled_from(
    [r for r in GPR_REGISTERS if r is not ESP])
imm32 = st.integers(min_value=-(2**31), max_value=2**31 - 1)


@st.composite
def memory_operands(draw):
    base = draw(st.none() | registers)
    index = draw(st.none() | non_esp_registers)
    scale = draw(st.sampled_from([1, 2, 4, 8])) if index else 1
    disp = draw(imm32)
    return Mem(base=base, index=index, scale=scale, disp=disp)


@st.composite
def alu_instructions(draw):
    mnemonic = draw(st.sampled_from(["add", "sub", "and", "or", "xor",
                                     "cmp"]))
    shape = draw(st.sampled_from(["rr", "rm", "mr", "ri", "mi"]))
    if shape == "rr":
        ops = (draw(registers), draw(registers))
    elif shape == "rm":
        ops = (draw(registers), draw(memory_operands()))
    elif shape == "mr":
        ops = (draw(memory_operands()), draw(registers))
    elif shape == "ri":
        ops = (draw(registers), Imm(draw(imm32)))
    else:
        ops = (draw(memory_operands()), Imm(draw(imm32)))
    return Instr(mnemonic, *ops)


@st.composite
def mov_instructions(draw):
    shape = draw(st.sampled_from(["rr", "ri", "rm", "mr", "mi"]))
    if shape == "rr":
        ops = (draw(registers), draw(registers))
    elif shape == "ri":
        ops = (draw(registers), Imm(draw(imm32)))
    elif shape == "rm":
        ops = (draw(registers), draw(memory_operands()))
    elif shape == "mr":
        ops = (draw(memory_operands()), draw(registers))
    else:
        ops = (draw(memory_operands()), Imm(draw(imm32)))
    return Instr("mov", *ops)


@st.composite
def branch_instructions(draw):
    kind = draw(st.sampled_from(["jmp8", "jmp32", "jcc8", "jcc32", "call"]))
    if kind == "jmp8":
        return Instr("jmp", Rel(draw(st.integers(-128, 127)), 8))
    if kind == "jmp32":
        return Instr("jmp", Rel(draw(imm32), 32))
    cc = draw(st.sampled_from(["e", "ne", "l", "le", "g", "ge", "b", "a"]))
    if kind == "jcc8":
        return Instr("j" + cc, Rel(draw(st.integers(-128, 127)), 8))
    if kind == "jcc32":
        return Instr("j" + cc, Rel(draw(imm32), 32))
    return Instr("call", Rel(draw(imm32), 32))


@st.composite
def misc_instructions(draw):
    kind = draw(st.sampled_from(
        ["push_r", "pop_r", "inc", "dec", "neg", "not", "idiv", "imul",
         "lea", "shift", "test", "ret", "cdq", "nop", "int"]))
    if kind == "push_r":
        return Instr("push", draw(registers))
    if kind == "pop_r":
        return Instr("pop", draw(registers))
    if kind in ("inc", "dec"):
        return Instr(kind, draw(registers))
    if kind in ("neg", "not", "idiv"):
        return Instr(kind, draw(st.one_of(registers, memory_operands())))
    if kind == "imul":
        return Instr("imul", draw(registers),
                     draw(st.one_of(registers, memory_operands())))
    if kind == "lea":
        return Instr("lea", draw(registers), draw(memory_operands()))
    if kind == "shift":
        mnemonic = draw(st.sampled_from(["shl", "shr", "sar", "rol",
                                         "ror"]))
        return Instr(mnemonic, draw(registers),
                     Imm(draw(st.integers(2, 31))))
    if kind == "test":
        return Instr("test", draw(registers), draw(registers))
    if kind == "ret":
        return Instr("ret")
    if kind == "cdq":
        return Instr("cdq")
    if kind == "nop":
        return Instr("nop")
    return Instr("int", Imm(0x80))


any_instruction = st.one_of(alu_instructions(), mov_instructions(),
                            branch_instructions(), misc_instructions())


@given(any_instruction)
@settings(max_examples=400)
def test_encode_decode_roundtrip(instr):
    encoding = encode(instr)
    decoded = decode(encoding)
    assert decoded == instr
    assert decoded.size == len(encoding)


@given(any_instruction)
@settings(max_examples=200)
def test_reencoding_decoded_instruction_is_stable(instr):
    encoding = encode(instr)
    assert encode(decode(encoding)) == encoding
