"""A3 — ablation: basic-block shifting (paper §6 future work).

NOP insertion adds little diversity at the *start* of the diversified
region: an instruction's displacement is the sum of all NOPs inserted
before it, so the first instructions barely move and their gadgets
survive with probability roughly ``(1 - p)^j`` after ``j`` instructions.
§6 proposes a jumped-over dummy block at each function entry so even
offset-zero code is displaced.

Two measurements over seeded populations:

- **displacement profile** — the mean displacement of the 5th, 50th and
  500th program-code instruction: without shifting it starts near zero
  and accumulates; with shifting even the earliest code moves;
- **early-gadget survival** — Survivor restricted to the first bytes of
  program code, where the paper expects most survivors to concentrate;
- the **overhead delta** of shifting (one extra jump per call).
"""

from benchmarks._harness import baseline_binary, baseline_signatures, \
    ref_counts
from repro.core.config import DiversificationConfig
from repro.reporting import format_table
from repro.runtime.lib import RUNTIME_FUNCTION_NAMES
from repro.security.survivor import gadget_signatures

_NAME = "473.astar"
_SEEDS = 20
_EARLY_WINDOW = 400  # bytes of program code
_PROBE_INSTRS = (5, 50, 500)


def _program_records(binary):
    runtime_end = max(binary.function_ranges[name][1]
                      for name in RUNTIME_FUNCTION_NAMES)
    return [record for record in binary.instr_records
            if record.address >= runtime_end
            and not record.is_inserted_nop]


def run_ablation():
    from benchmarks._harness import build_for

    build = build_for(_NAME)
    baseline = baseline_binary(_NAME)
    original = baseline_signatures(_NAME)
    counts = ref_counts(_NAME)
    base_cycles = build.cycles(baseline, counts)
    base_records = _program_records(baseline)
    start = base_records[0].address - baseline.text_base
    early_total = sum(1 for offset in original
                      if start <= offset < start + _EARLY_WINDOW)

    plain = DiversificationConfig.uniform(0.10)
    shifted = DiversificationConfig.uniform(
        0.10, basic_block_shifting=True, max_shift_bytes=16)

    results = {}
    for label, config in (("plain", plain), ("bbshift", shifted)):
        displacement_sums = [0.0] * len(_PROBE_INSTRS)
        early_survivors = 0
        overheads = []
        for seed in range(_SEEDS):
            variant = build.link_variant(config, seed)
            variant_records = _program_records(variant)
            for index, probe in enumerate(_PROBE_INSTRS):
                displacement_sums[index] += (
                    variant_records[probe].address
                    - base_records[probe].address)
            signatures = gadget_signatures(variant.text)
            early_survivors += sum(
                1 for offset, signature in signatures.items()
                if start <= offset < start + _EARLY_WINDOW
                and original.get(offset) == signature)
            overheads.append(build.cycles(variant, counts)
                             / base_cycles - 1)
        results[label] = {
            "displacements": [total / _SEEDS
                              for total in displacement_sums],
            "early_survival": early_survivors / (_SEEDS
                                                 * max(early_total, 1)),
            "overhead": 100 * sum(overheads) / len(overheads),
        }
    return results, early_total


def test_ablation_basic_block_shifting(benchmark):
    results, early_total = benchmark.pedantic(run_ablation, rounds=1,
                                              iterations=1)

    rows = []
    for label, data in results.items():
        rows.append((label,)
                    + tuple(data["displacements"])
                    + (100 * data["early_survival"], data["overhead"]))
    headers = (("Configuration",)
               + tuple(f"disp@{p}" for p in _PROBE_INSTRS)
               + ("early survival %", "overhead %"))
    print()
    print(format_table(
        headers, rows,
        title=f"Ablation: basic-block shifting on {_NAME} at pNOP=10% "
              f"(mean over {_SEEDS} seeds; displacement in bytes at the "
              f"Nth program instruction; {early_total} gadgets in the "
              f"first {_EARLY_WINDOW} program bytes)"))

    plain = results["plain"]
    shift = results["bbshift"]

    # §6's observation: without shifting, displacement starts near zero
    # and accumulates along the binary.
    assert plain["displacements"][0] < plain["displacements"][1] \
        < plain["displacements"][2]
    assert plain["displacements"][0] < 8
    # Early code survives diversification measurably often...
    assert plain["early_survival"] > 0
    # ...and shifting both displaces the earliest code more and kills
    # most of its survival.
    assert shift["displacements"][0] > plain["displacements"][0]
    assert shift["early_survival"] < 0.6 * plain["early_survival"]
    # At near-zero additional runtime cost.
    assert shift["overhead"] < plain["overhead"] + 2.0
