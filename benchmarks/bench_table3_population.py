"""E5 — Table 3: gadgets surviving across the diversified population.

An attacker content with compromising a *subset* of targets looks for
gadgets shared by many diversified binaries (ignoring the original). For
each benchmark and configuration this bench counts gadgets — identified
by (offset, normalized bytes) — present in at least 2 (~10%), 5 (~20%)
and ceil(N/2) of the N variants.

Expected shape (paper §5.2):

- ≥2-of-N counts can exceed the baseline gadget count (the same baseline
  gadget is counted at several displaced offsets);
- ≥half-of-N counts are essentially constant across benchmarks and
  configurations: the floor of gadgets in the undiversified C library
  objects the linker adds to every binary.
"""

import math

from benchmarks._harness import (
    CONFIG_ORDER, POPULATION_SIZE, baseline_signatures,
    population_dynamic_stats, spec_names, variant_signatures,
)
from repro.reporting import format_table
from repro.security.population import population_survival

_THRESHOLDS = tuple(sorted({2, max(3, POPULATION_SIZE // 5),
                            math.ceil(POPULATION_SIZE / 2)}))


def run_table():
    rows = {}
    for name in spec_names():
        per_config = {}
        for label in CONFIG_ORDER:
            signatures = [variant_signatures(name, label, seed)
                          for seed in range(POPULATION_SIZE)]
            per_config[label] = population_survival(
                [], thresholds=_THRESHOLDS, signatures=signatures)
        rows[name] = per_config
    return rows


def test_table3_population_survival(benchmark):
    rows = benchmark.pedantic(run_table, rounds=1, iterations=1)

    display = []
    ordered = sorted(spec_names(), key=lambda n: len(baseline_signatures(n)))
    for name in ordered:
        row = [name]
        for threshold in _THRESHOLDS:
            for label in CONFIG_ORDER:
                row.append(rows[name][label][threshold])
        display.append(tuple(row))

    headers = ["Benchmark"]
    for threshold in _THRESHOLDS:
        for label in CONFIG_ORDER:
            headers.append(f">={threshold}:{label}")
    print()
    print(format_table(
        tuple(headers), display,
        title=f"Table 3: gadgets surviving in >=k of {POPULATION_SIZE} "
              f"variants (k = {_THRESHOLDS})"))

    low = _THRESHOLDS[0]
    half = _THRESHOLDS[-1]
    for name in spec_names():
        for label in CONFIG_ORDER:
            counts = rows[name][label]
            # Monotone in the threshold.
            ordered = [counts[t] for t in _THRESHOLDS]
            assert ordered == sorted(ordered, reverse=True), (name, label)

    # The >=half column is the undiversified-runtime floor: non-zero and
    # nearly constant across benchmarks and configurations.
    half_counts = [rows[name][label][half]
                   for name in spec_names() for label in CONFIG_ORDER]
    assert min(half_counts) > 0
    assert max(half_counts) < 4 * max(min(half_counts), 1)

    # Displacement multiplicity: the same baseline gadget lands at
    # different offsets in different variants and is counted once per
    # offset, so the ≥2 column far exceeds the cross-population floor
    # (in the paper, it even exceeds the baseline count).
    for name in spec_names():
        assert rows[name]["0-30%"][low] > 1.5 * rows[name]["0-30%"][half], \
            name
    exceeded = [name for name in spec_names()
                if rows[name]["0-30%"][low] > len(baseline_signatures(name))]
    print(f"benchmarks where >= {low}-of-{POPULATION_SIZE} exceeds the "
          f"baseline gadget count: {exceeded or 'none at this scale'}")

    # Informational (non-asserting): dynamic instruction overhead of a
    # representative slice of the populations above, derived in one pass
    # per population by the lockstep batch engine.
    display = []
    for name in ("429.mcf", "462.libquantum", "470.lbm"):
        for label in ("50%", "0-30%"):
            stats = population_dynamic_stats(name, label)
            display.append((name, label,
                            f"{stats['mean_instr_overhead']:.2%}",
                            f"{stats['max_instr_overhead']:.2%}",
                            stats["fallbacks"]))
    print(format_table(
        ("Benchmark", "Config", "mean instr ovh", "max instr ovh",
         "fallbacks"), display,
        title=f"Batch-derived dynamic overhead ({POPULATION_SIZE} "
              f"variants, train input)"))
