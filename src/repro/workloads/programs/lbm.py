"""470.lbm — lattice Boltzmann method.

The real benchmark streams a 3D fluid lattice: almost every dynamic
instruction is a load or a store with trivial arithmetic between them, so
it is firmly memory-bound — the paper measured essentially zero NOP
overhead on it. This miniature runs a 1D five-point stencil relaxation
with the same character: per cell, a five-load gather, two streaming
stores, and a handful of adds.
"""

from repro.workloads.base import Workload
from repro.workloads.coldcode import bank_for

SOURCE = """
// 470.lbm miniature: five-point stencil sweeps over a cell lattice.
int cells[1024];
int next_cells[1024];
int momentum[1024];

void init_lattice(int seed) {
  int i;
  int x = seed;
  for (i = 0; i < 1024; i++) {
    x = (x * 1103515245 + 12345) & 2147483647;
    cells[i] = x % 997;
  }
}

void sweep() {
  int i;
  // The hot loop: a five-point gather plus two streaming stores per
  // cell (real LBM reads 19 distributions per site) -- the paper's
  // memory-bound extreme.
  for (i = 2; i < 1022; i++) {
    int gathered = cells[i - 2] + cells[i - 1] + cells[i] + cells[i]
                 + cells[i + 1] + cells[i + 2];
    next_cells[i] = gathered >> 2;
    momentum[i] = momentum[i] + (gathered & 255);
  }
  next_cells[0] = next_cells[2];
  next_cells[1] = next_cells[2];
  next_cells[1023] = next_cells[1021];
  next_cells[1022] = next_cells[1021];
  for (i = 0; i < 1024; i++) {
    cells[i] = next_cells[i];
  }
}

int checksum() {
  int i;
  int sum = 0;
  for (i = 0; i < 1024; i++) {
    sum = (sum + cells[i] + momentum[i]) & 16777215;
  }
  return sum;
}

int main() {
  int timesteps = input();
  int seed = input();
  init_lattice(seed);
  int t;
  for (t = 0; t < timesteps; t++) {
    sweep();
  }
  print(checksum());
  return 0;
}
"""

WORKLOAD = Workload(
    name="470.lbm",
    source=SOURCE + bank_for("470.lbm"),
    train_input=(3, 11),
    ref_input=(14, 7),
    character="memory-bound stencil streaming; expected ~0% NOP overhead",
)
