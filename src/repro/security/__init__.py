"""Security analysis: gadget discovery, Survivor, population studies,
attack scanners.

- :mod:`repro.security.gadgets` — Shacham-style gadget enumeration from
  arbitrary byte offsets.
- :mod:`repro.security.survivor` — the paper's Survivor comparison
  (§5.2): offset-matched candidates, NOP normalization, conservative
  equivalence.
- :mod:`repro.security.population` — gadgets shared by ≥k of N variants
  (Table 3).
- :mod:`repro.security.ropgadget` — a ROPgadget-style classifying scanner.
- :mod:`repro.security.microgadgets` — a microgadgets-style scanner for
  2-3 byte gadgets.
- :mod:`repro.security.attack` — chain construction + feasibility
  verdicts, including executing a built chain on the simulator.
- :mod:`repro.security.entropy` — diversification entropy (the §6
  number-of-versions analysis).
"""

from repro.security.gadgets import Gadget, find_gadgets, gadget_count
from repro.security.survivor import normalized_bytes, surviving_gadgets
from repro.security.population import population_survival
from repro.security.ropgadget import RopGadgetScanner
from repro.security.microgadgets import MicroGadgetScanner
from repro.security.attack import AttackResult, attempt_attack, build_exit_chain
from repro.security.entropy import (
    bernoulli_entropy, distinct_variants, per_instruction_entropy,
    unit_entropy,
)

__all__ = [
    "Gadget", "find_gadgets", "gadget_count",
    "normalized_bytes", "surviving_gadgets",
    "population_survival",
    "RopGadgetScanner", "MicroGadgetScanner",
    "AttackResult", "attempt_attack", "build_exit_chain",
    "bernoulli_entropy", "distinct_variants", "per_instruction_entropy",
    "unit_entropy",
]
