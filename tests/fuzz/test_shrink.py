"""Shrinker contract: monotone reduction, validity, predicate safety."""

import pytest

from repro.errors import ReproError
from repro.minc import analyze, parse, pretty_print

from repro.fuzz.generate import generate_program
from repro.fuzz.shrink import shrink_source

BIG = """\
int g0 = 7;
int arr0[16] = {1, 2, 3};

int f0(int p1) {
    int v2 = p1 * 3;
    print(v2);
    return v2 + g0;
}

int main() {
    int a = 5;
    int b = 6;
    for (int i = 0; i < 4; i++) {
        a += i;
    }
    if (a > b) {
        print(1234);
    } else {
        print(b);
    }
    print(f0(a));
    return 0;
}
"""


def test_shrinks_toward_predicate_core():
    """Keep only what the predicate needs: the 'print(1234)' call."""
    reduced, steps = shrink_source(BIG, lambda text: "1234" in text)
    assert steps > 0
    assert "1234" in reduced
    assert len(reduced) < len(BIG) / 2
    analyze(parse(reduced))  # still a valid program


def test_result_is_a_fixpoint_of_validity():
    reduced, _steps = shrink_source(BIG, lambda text: "print" in text)
    assert pretty_print(parse(reduced)) == reduced


def test_unsatisfied_input_raises():
    with pytest.raises(ReproError):
        shrink_source(BIG, lambda text: "no-such-token" in text)


def test_eval_budget_bounds_work():
    calls = []

    def predicate(text):
        calls.append(text)
        return True

    shrink_source(BIG, predicate, max_evals=10)
    # one call for the initial check, at most max_evals during reduction
    assert len(calls) <= 11


def test_generated_program_shrinks():
    source = pretty_print(generate_program(5))
    reduced, _steps = shrink_source(source,
                                    lambda text: "main" in text)
    assert len(reduced) <= len(source)
    analyze(parse(reduced))
