"""Pretty-printer for MinC ASTs, with a parse round-trip guarantee.

The fuzzing corpus (:mod:`repro.fuzz.corpus`) stores programs as source
*text* — content-addressed, diffable, replayable without pickling AST
objects — so generated and mutated ASTs must print to text that parses
back to the same program. The guarantee, tested over every workload
source and every generated program:

    ``ast_equal(parse(pretty_print(p)), p)``        (structure round-trip)
    ``pretty_print(parse(t)) == t``  for ``t = pretty_print(p)``  (fixpoint)

Printing is precedence-aware (minimal parentheses, left-associativity
preserved), bodies are always braced (the parser flattens braced bodies
to statement lists, so bracing is canonical), and a negative integer
literal prints as ``-N`` — which re-parses as unary minus over ``N``;
:func:`ast_equal` treats the two spellings as the same program.
"""

from __future__ import annotations

from dataclasses import fields, is_dataclass

from repro.minc import ast_nodes as ast
from repro.minc.parser import _PRECEDENCE

#: op -> binding level, lowest binding first (mirrors the parser).
_LEVELS = {op: index
           for index, ops in enumerate(_PRECEDENCE)
           for op in ops}
_UNARY_LEVEL = len(_PRECEDENCE)
_PRIMARY_LEVEL = _UNARY_LEVEL + 1

_INDENT = "  "


# -- expressions ---------------------------------------------------------------


def _expr(node, min_level=0):
    """Render ``node``, parenthesized if it binds looser than ``min_level``."""
    text, level = _render_expr(node)
    if level < min_level:
        return f"({text})"
    return text


def _render_expr(node):
    """(text, binding level) of one expression node."""
    if isinstance(node, ast.IntLit):
        # A negative literal prints like unary minus and re-parses as
        # one; ast_equal() normalizes the two spellings.
        level = _PRIMARY_LEVEL if node.value >= 0 else _UNARY_LEVEL
        return str(node.value), level
    if isinstance(node, ast.Name):
        return node.ident, _PRIMARY_LEVEL
    if isinstance(node, ast.IndexExpr):
        return f"{node.array}[{_expr(node.index)}]", _PRIMARY_LEVEL
    if isinstance(node, ast.CallExpr):
        args = ", ".join(_expr(arg) for arg in node.args)
        return f"{node.callee}({args})", _PRIMARY_LEVEL
    if isinstance(node, ast.InputExpr):
        return "input()", _PRIMARY_LEVEL
    if isinstance(node, ast.UnaryExpr):
        operand = _expr(node.operand, _UNARY_LEVEL)
        if node.op == "-" and operand.startswith("-"):
            # "--x" would lex as a decrement token; force "-(-x)".
            operand = f"({_expr(node.operand)})"
        return f"{node.op}{operand}", _UNARY_LEVEL
    if isinstance(node, ast.BinaryExpr):
        level = _LEVELS[node.op]
        lhs = _expr(node.lhs, level)          # left-assoc: same level ok
        rhs = _expr(node.rhs, level + 1)      # right side must bind tighter
        return f"{lhs} {node.op} {rhs}", level
    raise TypeError(f"not a MinC expression node: {type(node).__name__}")


# -- statements ----------------------------------------------------------------


def _simple(node):
    """Render an assignment/inc-dec/decl/expression without a semicolon
    (the ``for``-clause position)."""
    if isinstance(node, ast.VarDecl):
        if node.init is None:
            return f"int {node.name}"
        return f"int {node.name} = {_expr(node.init)}"
    if isinstance(node, ast.Assign):
        return f"{_expr(node.target)} {node.op} {_expr(node.value)}"
    if isinstance(node, ast.IncDec):
        return f"{_expr(node.target)}{node.op}"
    if isinstance(node, ast.ExprStmt):
        return _expr(node.expr)
    raise TypeError(f"not a simple statement: {type(node).__name__}")


def _block(body, indent, lines):
    for statement in body:
        _stmt(statement, indent, lines)


def _stmt(node, indent, lines):
    pad = _INDENT * indent
    if isinstance(node, (ast.VarDecl, ast.Assign, ast.IncDec, ast.ExprStmt)):
        lines.append(f"{pad}{_simple(node)};")
    elif isinstance(node, ast.If):
        lines.append(f"{pad}if ({_expr(node.cond)}) {{")
        _block(node.then_body, indent + 1, lines)
        if node.else_body:
            lines.append(f"{pad}}} else {{")
            _block(node.else_body, indent + 1, lines)
        lines.append(f"{pad}}}")
    elif isinstance(node, ast.While):
        lines.append(f"{pad}while ({_expr(node.cond)}) {{")
        _block(node.body, indent + 1, lines)
        lines.append(f"{pad}}}")
    elif isinstance(node, ast.For):
        init = "" if node.init is None else _simple(node.init)
        cond = "" if node.cond is None else _expr(node.cond)
        step = "" if node.step is None else _simple(node.step)
        lines.append(f"{pad}for ({init}; {cond}; {step}) {{")
        _block(node.body, indent + 1, lines)
        lines.append(f"{pad}}}")
    elif isinstance(node, ast.Break):
        lines.append(f"{pad}break;")
    elif isinstance(node, ast.Continue):
        lines.append(f"{pad}continue;")
    elif isinstance(node, ast.Return):
        if node.value is None:
            lines.append(f"{pad}return;")
        else:
            lines.append(f"{pad}return {_expr(node.value)};")
    elif isinstance(node, ast.PrintStmt):
        lines.append(f"{pad}print({_expr(node.value)});")
    else:
        raise TypeError(f"not a MinC statement node: {type(node).__name__}")


# -- declarations --------------------------------------------------------------


def _global(decl):
    text = f"int {decl.name}"
    if decl.is_array:
        text += f"[{decl.size}]"
    if decl.init:
        if decl.is_array:
            text += " = {" + ", ".join(str(v) for v in decl.init) + "}"
        else:
            text += f" = {decl.init[0]}"
    return text + ";"


def pretty_print(program):
    """Render a :class:`~repro.minc.ast_nodes.Program` as MinC source."""
    lines = []
    for decl in program.globals:
        lines.append(_global(decl))
    for func in program.functions:
        if lines:
            lines.append("")
        kind = "int" if func.returns_value else "void"
        params = ", ".join(f"int {name}" for name in func.params)
        lines.append(f"{kind} {func.name}({params}) {{")
        _block(func.body, 1, lines)
        lines.append("}")
    return "\n".join(lines) + "\n"


# -- structural equality -------------------------------------------------------


def _key(node):
    """A line-number-insensitive comparison key for AST values.

    ``UnaryExpr("-", IntLit(n))`` normalizes to ``IntLit(-n)`` — the two
    are indistinguishable spellings of one constant, and the printer
    emits whichever is shorter.
    """
    if isinstance(node, ast.IntLit):
        return ("IntLit", node.value)
    if isinstance(node, ast.UnaryExpr) and node.op == "-":
        operand = _key(node.operand)
        if operand[0] == "IntLit":
            return ("IntLit", -operand[1])
    if is_dataclass(node) and not isinstance(node, type):
        values = tuple(_key(getattr(node, f.name))
                       for f in fields(node) if f.name != "line")
        return (type(node).__name__,) + values
    if isinstance(node, (list, tuple)):
        return ("[]",) + tuple(_key(item) for item in node)
    return ("=", node)


def ast_equal(a, b):
    """Structural equality of two AST (sub)trees, ignoring source lines
    and the unary-minus-vs-negative-literal spelling distinction."""
    return _key(a) == _key(b)
