"""Static analysis over linked machine code.

Independent of the simulator: everything here reasons about the bytes of
a :class:`~repro.backend.linker.LinkedBinary` (plus its symbol tables)
and proves properties on *all* paths, not just the ones a workload input
happens to execute. Three layers:

- :mod:`repro.analysis.cfg` — recursive-descent disassembly into a
  machine-level control-flow graph;
- :mod:`repro.analysis.passes` / :mod:`repro.analysis.absint` — the
  verifier: branch-target, relocation, encoder-agreement, stack-height
  and def-before-use checks;
- :mod:`repro.analysis.transparency` — the NOP-transparency proof that a
  diversified variant is exactly "baseline + Table-1 NOP insertions +
  recomputed displacements" (the static counterpart of
  :mod:`repro.check.differential`);
- :mod:`repro.analysis.equivalence` — the generalized §6 semantics-
  preservation proof covering encoding substitution, basic-block
  shifting and function reordering, with the generalized address map
  that powers exact ΔBreakpad symbolication for those configs.

See ``docs/ANALYSIS.md`` for the algorithms and knobs.
"""

from repro.analysis.cfg import Finding, MachineCFG, recover_cfg
from repro.analysis.equivalence import (
    EquivalenceMap, EquivalenceProver, EquivalenceReport,
    prove_equivalence, require_equivalent,
)
from repro.analysis.passes import (
    VerifyReport, require_verified, verify_binary, verify_population,
)
from repro.analysis.transparency import (
    AddressMap, TransparencyProver, TransparencyReport, prove_transparency,
    require_transparent,
)

__all__ = [
    "Finding",
    "MachineCFG",
    "recover_cfg",
    "VerifyReport",
    "require_verified",
    "verify_binary",
    "verify_population",
    "AddressMap",
    "TransparencyProver",
    "TransparencyReport",
    "prove_transparency",
    "require_transparent",
    "EquivalenceMap",
    "EquivalenceProver",
    "EquivalenceReport",
    "prove_equivalence",
    "require_equivalent",
]
