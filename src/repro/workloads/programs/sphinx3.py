"""482.sphinx3 — speech recognition.

The original spends its time scoring Gaussian mixtures and walking
Hidden-Markov lattices: short, extremely hot scalar loops. Together with
perlbench it shows the paper's maximum NOP overhead (~25% at pNOP=50%),
so the miniature keeps its hot loops issue-bound: senone scoring over
values held in scalars (one packed load feeds four score updates) and a
beam-pruned lattice recurrence.
"""

from repro.workloads.base import Workload
from repro.workloads.coldcode import bank_for

SOURCE = """
// 482.sphinx3 miniature: packed senone scoring + lattice recurrence.
int frames[1024];
int lattice_prev[64];
int lattice_cur[64];

void make_frames(int n, int seed) {
  int i;
  int x = seed;
  for (i = 0; i < n; i++) {
    x = (x * 1103515245 + 12345) & 2147483647;
    frames[i] = x;
  }
}

int senone_score(int n, int mean, int ivar) {
  int score = 0;
  int i;
  // Hot loop 1: per frame word, four packed components scored with
  // subtract/multiply/shift/accumulate -- all register traffic.
  for (i = 0; i < n; i++) {
    int w = frames[i];
    int k;
    for (k = 0; k < 4; k++) {
      int c = (w >> (k * 8)) & 255;
      int d = c - mean;
      int contrib = (d * d * ivar) >> 9;
      if (contrib > 4095) { contrib = 4095; }
      score = (score + contrib) & 16777215;
    }
  }
  return score;
}

int lattice_step(int states, int obs) {
  int s;
  int best = -1000000000;
  // Hot loop 2: HMM recurrence with beam check, scalar compares.
  for (s = 0; s < states; s++) {
    int stay = lattice_prev[s];
    int from_left = -1000000000;
    if (s > 0) { from_left = lattice_prev[s - 1] - 3; }
    int v = stay;
    if (from_left > v) { v = from_left; }
    v = v + ((obs >> (s & 7)) & 15) - 7;
    lattice_cur[s] = v;
    if (v > best) { best = v; }
  }
  int beam = best - 40;
  for (s = 0; s < states; s++) {
    if (lattice_cur[s] < beam) { lattice_cur[s] = -1000000000; }
    lattice_prev[s] = lattice_cur[s];
  }
  return best;
}

int main() {
  int n_frames = input();
  int states = input();
  int passes = input();
  int seed = input();
  if (n_frames > 1024) { n_frames = 1024; }
  if (states > 64) { states = 64; }
  make_frames(n_frames, seed);
  int s;
  for (s = 0; s < states; s++) { lattice_prev[s] = 0; }
  int total = 0;
  int p;
  for (p = 0; p < passes; p++) {
    int mixture;
    // Real decoders score hundreds of senones per frame; eight mixture
    // evaluations per pass keep the scalar scoring loop dominant.
    for (mixture = 0; mixture < 8; mixture++) {
      total = (total + senone_score(n_frames, 90 + mixture * 3 + p,
                                    3 + (mixture & 3))) & 16777215;
    }
    int f;
    for (f = 0; f < n_frames; f += 8) {
      total = (total + lattice_step(states, frames[f])) & 16777215;
    }
  }
  print(total);
  return 0;
}
"""

WORKLOAD = Workload(
    name="482.sphinx3",
    source=SOURCE + bank_for("482.sphinx3"),
    train_input=(256, 24, 1, 13),
    ref_input=(1024, 48, 3, 77),
    character="issue-bound scoring loops (the paper's other worst case)",
)
