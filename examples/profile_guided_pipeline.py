#!/usr/bin/env python
"""The full profile-guided workflow on a SPEC-like workload.

Reproduces the paper's two-compile pipeline on one benchmark
(456.hmmer, whose Viterbi loop is SPEC's classic hot spot):

1. train build → run on the *train* input → edge profile (shown both via
   the direct observer and via real counter instrumentation with
   spanning-tree reconstruction — they must agree);
2. final builds at each paper configuration → overhead on the *ref*
   input;
3. a look at where NOPs actually land: hot-loop blocks versus cold
   blocks.

Run:  python examples/profile_guided_pipeline.py
"""

from repro import PAPER_CONFIGS, ProgramBuild, get_workload
from repro.ir import Interpreter
from repro.pipeline import build_ir
from repro.profiling import instrument_module, reconstruct_profile
from repro.profiling.instrument import counters_from_interp
from repro.reporting import format_table


def main():
    workload = get_workload("456.hmmer")
    build = ProgramBuild(workload.source, workload.name)

    # --- 1. profile collection, two ways --------------------------------
    profile = build.profile(workload.train_input)
    maximum, median, total = profile.summary()
    print(f"{workload.name}: direct profile — max={maximum} "
          f"median={median} total={total}")

    instrumented = build_ir(workload.source, workload.name)
    imap = instrument_module(instrumented)
    interp = Interpreter(instrumented,
                         input_values=workload.train_input)
    interp.run()
    counters = counters_from_interp(interp)
    reconstructed = reconstruct_profile(build.module, imap, counters)
    assert reconstructed.block_counts == profile.block_counts
    print(f"instrumented profile ({imap.counter_count()} counters on "
          f"spanning-tree complement edges) reconstructs identically\n")

    # --- 2. the five paper configurations --------------------------------
    counts = build.execution_counts(workload.ref_input)
    baseline_cycles = build.cycles(build.link_baseline(), counts)
    rows = []
    for label in ("50%", "30%", "25-50%", "10-50%", "0-30%"):
        config = PAPER_CONFIGS[label]
        p = profile if config.requires_profile else None
        overheads = []
        for seed in range(3):
            variant = build.link_variant(config, seed, p)
            overheads.append(
                build.cycles(variant, counts) / baseline_cycles - 1)
        rows.append((label, 100 * sum(overheads) / len(overheads)))
    print(format_table(("configuration", "overhead %"), rows,
                       title=f"{workload.name} slowdown on the ref input "
                             "(mean of 3 variants)"))

    # --- 3. where do the NOPs land? ---------------------------------------
    config = PAPER_CONFIGS["0-30%"]
    variant = build.link_variant(config, seed=0, profile=profile)
    hottest = max(profile.block_counts, key=profile.block_counts.get)
    hot_nops = sum(1 for record in variant.instr_records
                   if record.is_inserted_nop
                   and record.block_id == hottest)
    cold_nops = sum(1 for record in variant.instr_records
                    if record.is_inserted_nop
                    and profile.block_counts.get(record.block_id, 0) == 0)
    total_nops = sum(1 for record in variant.instr_records
                     if record.is_inserted_nop)
    print(f"\nNOP placement at 0-30%: {total_nops} NOPs total; "
          f"{hot_nops} in the hottest block "
          f"({hottest}, count={profile.block_counts[hottest]}); "
          f"{cold_nops} in never-executed blocks")
    print("Hot code stays clean; cold code absorbs the diversity.")


if __name__ == "__main__":
    main()
