"""A4 — ablation: composing diversifying transformations (§6).

§6 argues a compiler should stack orthogonal techniques: "a compiler may
use all these available techniques to improve security, as most of them
are orthogonal". This bench composes the implemented transformations on
one benchmark and measures marginal security (survivors vs the original)
and cost:

- NOP insertion alone (the paper's technique, 0-30% guided),
- + equivalent-encoding substitution (byte-level, size-free),
- + basic-block shifting (entry displacement),
- + function reordering (layout-level).

Expected: the libc floor is identical at every step (no compiler-side
transformation reaches it); program-region survivor counts stay flat —
at this binary scale they are dominated by Survivor's *conservative
coincidental matches* (similar-shaped cold functions aligning at equal
offsets), which displacement cannot remove — while the stacked
transformations add layout entropy at zero size growth and negligible
runtime cost. The value of composition here is entropy (distinct
binaries an attacker must analyze), not the Survivor count, which is
already floor-bound by NOP insertion alone.
"""

from benchmarks._harness import (
    baseline_binary, baseline_signatures, ref_counts, train_profile,
)
from repro.core.config import DiversificationConfig
from repro.core.probability import LogProfileProbability
from repro.reporting import format_table
from repro.runtime.lib import RUNTIME_FUNCTION_NAMES
from repro.security.survivor import gadget_signatures

_NAME = "453.povray"
_SEEDS = 5


def _config(**extras):
    return DiversificationConfig(
        probability_model=LogProfileProbability(0.0, 0.30), **extras)


_LADDER = (
    ("NOPs only (0-30%)", _config()),
    ("+ encoding substitution", _config(encoding_substitution=True)),
    ("+ block shifting", _config(encoding_substitution=True,
                                 basic_block_shifting=True)),
    ("+ function reordering", _config(encoding_substitution=True,
                                      basic_block_shifting=True,
                                      function_reordering=True)),
)


def run_ladder():
    from benchmarks._harness import build_for

    build = build_for(_NAME)
    baseline = baseline_binary(_NAME)
    original = baseline_signatures(_NAME)
    counts = ref_counts(_NAME)
    base_cycles = build.cycles(baseline, counts)
    profile = train_profile(_NAME)

    # Survivors inside the undiversified runtime are a fixed floor no
    # transformation can touch; the ladder's effect shows in the
    # *program region*.
    runtime_end = max(baseline.function_ranges[name][1]
                      for name in RUNTIME_FUNCTION_NAMES)
    program_start = runtime_end - baseline.text_base

    rows = []
    for label, config in _LADDER:
        floor_survivors = []
        program_survivors = []
        overheads = []
        for seed in range(_SEEDS):
            variant = build.link_variant(config, seed, profile)
            signatures = gadget_signatures(variant.text)
            floor = program = 0
            for offset, signature in signatures.items():
                if original.get(offset) != signature:
                    continue
                if offset < program_start:
                    floor += 1
                else:
                    program += 1
            floor_survivors.append(floor)
            program_survivors.append(program)
            overheads.append(build.cycles(variant, counts)
                             / base_cycles - 1)
        rows.append((label,
                     sum(floor_survivors) / _SEEDS,
                     sum(program_survivors) / _SEEDS,
                     100 * sum(overheads) / len(overheads)))
    return rows, len(original)


def test_ablation_composition(benchmark):
    rows, baseline_count = benchmark.pedantic(run_ladder, rounds=1,
                                              iterations=1)

    print()
    print(format_table(
        ("transformations", "libc-floor survivors",
         "program survivors", "overhead %"), rows,
        title=f"Ablation: composing transformations on {_NAME} "
              f"({baseline_count} baseline gadgets, mean of {_SEEDS} "
              "variants)"))

    nop_only = rows[0]
    full = rows[-1]
    # The libc floor is untouchable by any compiler-side transformation
    # (and is identical for every ladder step).
    for _label, floor, _program, _overhead in rows:
        assert floor == nop_only[1]
    # Program-region "survivors" at this scale are dominated by
    # Survivor's conservative coincidental matches (similar-shaped cold
    # functions aligning at the same offset), which no layout
    # transformation can remove; the ladder must not *increase* them
    # beyond noise...
    assert full[2] <= nop_only[2] + 6
    # ...while the stacked transformations add layout entropy at zero
    # size cost (substitution/reordering) and negligible runtime cost.
    for _label, _floor, _program, overhead in rows:
        assert overhead < nop_only[3] + 2.0
