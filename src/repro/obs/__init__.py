"""repro.obs — zero-dependency observability for the pipeline.

Three small pieces, one import surface:

- :mod:`repro.obs.trace` — nestable wall-clock spans with optional
  JSON-lines export (``REPRO_TRACE=path.jsonl``);
- :mod:`repro.obs.metrics` — process-wide named counters/histograms
  with picklable :class:`~repro.obs.metrics.MetricsDelta` objects that
  pool workers ship back to the parent;
- :mod:`repro.obs.knobs` — the declarative registry of every
  ``REPRO_*`` environment variable, the only sanctioned way to read
  one (invalid values raise :class:`~repro.errors.ConfigError` naming
  the valid choices instead of being silently misread).

See ``docs/OBSERVABILITY.md`` for the full tour.
"""

from repro.obs.knobs import Knob, all_knobs, knob_value  # noqa: F401
from repro.obs.metrics import MetricsDelta  # noqa: F401
from repro.obs.trace import span  # noqa: F401
