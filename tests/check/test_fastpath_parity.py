"""Fast-engine vs. reference-engine parity on every registered workload.

The threaded-code fast path must be observationally identical to the
reference step loop — same output vector, exit code, and dynamic
instruction count — on every program the repo can produce. This reuses
the ``repro.check`` observation machinery as the comparison net and also
covers the parallel/cached population-build paths, which must yield the
same binaries as a serial in-process build.
"""

import pytest

from repro.check.differential import observe_binary
from repro.core.config import DiversificationConfig
from repro.pipeline import ProgramBuild, build_population
from repro.workloads.registry import get_workload, workload_names


def _assert_parity(build, binary, inputs):
    fast = observe_binary(build, binary, inputs, engine="fast")
    reference = observe_binary(build, binary, inputs, engine="reference")
    assert fast.first_divergence(reference) is None
    assert fast.instr_count == reference.instr_count


@pytest.mark.parametrize("name", workload_names())
def test_baseline_parity_on_workload(name):
    workload = get_workload(name)
    build = ProgramBuild(workload.source, workload.name)
    binary = build.link_baseline()
    _assert_parity(build, binary, workload.ref_input)


@pytest.mark.parametrize("name", ["429.mcf", "462.libquantum", "470.lbm"])
def test_variant_parity_on_workload(name):
    workload = get_workload(name)
    build = ProgramBuild(workload.source, workload.name)
    config = DiversificationConfig.profile_guided(0.00, 0.30)
    profile = build.profile(workload.train_input)
    variant = build.link_variant(config, seed=1, profile=profile)
    _assert_parity(build, variant, workload.ref_input)


def test_parallel_population_matches_serial(fib_build):
    config = DiversificationConfig.uniform(0.50)
    seeds = range(4)
    serial = build_population(fib_build, config, seeds, workers=1)
    parallel = build_population(fib_build, config, seeds, workers=2)
    assert [b.identity_hash() for b in serial] == \
        [b.identity_hash() for b in parallel]


def test_artifact_cache_roundtrip(fib_build, tmp_path):
    config = DiversificationConfig.uniform(0.30)
    seeds = range(3)
    first = build_population(fib_build, config, seeds,
                             cache_dir=tmp_path)
    cached = build_population(fib_build, config, seeds,
                              cache_dir=tmp_path)
    assert [b.identity_hash() for b in first] == \
        [b.identity_hash() for b in cached]
    # A cache-loaded binary still runs identically under both engines.
    _assert_parity(fib_build, cached[0], (6,))
