"""Decode IA-32 bytes back into :class:`~repro.x86.instructions.Instr`.

Two consumers with different needs share this module:

- the **simulator** decodes the emitted byte stream linearly from known
  instruction boundaries, and
- the **gadget scanners** decode from *arbitrary* offsets, where any byte
  may or may not start a valid instruction.

``decode`` raises :class:`~repro.errors.DecodingError` on bytes outside the
supported subset; ``try_decode`` returns ``None`` instead. Decoded
instructions carry ``size`` and ``encoding``.
"""

from __future__ import annotations

import struct

from repro.errors import DecodingError
from repro.x86.instructions import CONDITION_CODES, Imm, Instr, Mem, Rel
from repro.x86.registers import EAX, ECX, register_by_code

_I32 = struct.Struct("<i")
_U16 = struct.Struct("<H")

_ALU_BY_BASE = {
    0x00: "add", 0x08: "or", 0x20: "and",
    0x28: "sub", 0x30: "xor", 0x38: "cmp",
}
_ALU_BY_EXT = {0: "add", 1: "or", 4: "and", 5: "sub", 6: "xor", 7: "cmp"}
_SHIFT_BY_EXT = {0: "rol", 1: "ror", 4: "shl", 5: "shr", 7: "sar"}


class _Cursor:
    """A bounds-checked reader over the byte buffer."""

    def __init__(self, data, offset):
        self.data = data
        self.start = offset
        self.position = offset

    def u8(self):
        if self.position >= len(self.data):
            raise DecodingError("truncated instruction")
        value = self.data[self.position]
        self.position += 1
        return value

    def s8(self):
        value = self.u8()
        return value - 256 if value >= 128 else value

    def s32(self):
        if self.position + 4 > len(self.data):
            raise DecodingError("truncated 32-bit immediate")
        (value,) = _I32.unpack_from(self.data, self.position)
        self.position += 4
        return value

    def u16(self):
        if self.position + 2 > len(self.data):
            raise DecodingError("truncated 16-bit immediate")
        (value,) = _U16.unpack_from(self.data, self.position)
        self.position += 2
        return value


def _decode_modrm(cursor):
    """Decode ModRM (+SIB, +disp); returns (reg_field, rm_operand)."""
    modrm = cursor.u8()
    mod = modrm >> 6
    reg_field = (modrm >> 3) & 7
    rm = modrm & 7

    if mod == 0b11:
        return reg_field, register_by_code(rm)

    if rm == 0b100:
        sib = cursor.u8()
        scale = 1 << (sib >> 6)
        index_code = (sib >> 3) & 7
        base_code = sib & 7
        index = None if index_code == 0b100 else register_by_code(index_code)
        if base_code == 0b101 and mod == 0b00:
            base = None
            disp = cursor.s32()
        else:
            base = register_by_code(base_code)
            if mod == 0b01:
                disp = cursor.s8()
            elif mod == 0b10:
                disp = cursor.s32()
            else:
                disp = 0
        return reg_field, Mem(base=base, index=index, scale=scale, disp=disp)

    if mod == 0b00 and rm == 0b101:
        return reg_field, Mem(disp=cursor.s32())

    base = register_by_code(rm)
    if mod == 0b01:
        disp = cursor.s8()
    elif mod == 0b10:
        disp = cursor.s32()
    else:
        disp = 0
    return reg_field, Mem(base=base, disp=disp)


# ---------------------------------------------------------------------------
# Opcode dispatch table. Gadget scanning decodes every byte offset of a
# text section, so decode speed matters; a 256-entry handler table
# replaces a ~30-branch if-chain per instruction.
# ---------------------------------------------------------------------------

def _alu_rm_r(mnemonic):
    def handler(cursor):
        reg_field, rm = _decode_modrm(cursor)
        return Instr(mnemonic, rm, register_by_code(reg_field))
    return handler


def _alu_r_rm(mnemonic):
    def handler(cursor):
        reg_field, rm = _decode_modrm(cursor)
        return Instr(mnemonic, register_by_code(reg_field), rm)
    return handler


def _alu_eax_imm(mnemonic):
    def handler(cursor):
        return Instr(mnemonic, EAX, Imm(cursor.s32()))
    return handler


def _single_reg(mnemonic, base_opcode, opcode):
    register = register_by_code(opcode - base_opcode)

    def handler(_cursor):
        return Instr(mnemonic, register)
    return handler


def _jcc8(condition):
    def handler(cursor):
        return Instr("j" + condition, Rel(cursor.s8(), 8))
    return handler


def _decode_0f(cursor):
    second = cursor.u8()
    if second == 0xAF:
        reg_field, rm = _decode_modrm(cursor)
        return Instr("imul", register_by_code(reg_field), rm)
    if 0x80 <= second <= 0x8F:
        condition = CONDITION_CODES[second - 0x80]
        return Instr("j" + condition, Rel(cursor.s32(), 32))
    if 0x90 <= second <= 0x9F:
        condition = CONDITION_CODES[second - 0x90]
        _reg_field, rm = _decode_modrm(cursor)
        return Instr("set" + condition, rm)
    raise DecodingError(f"unsupported 0F opcode {second:#04x}")


def _decode_group_imm(opcode):
    def handler(cursor):
        reg_field, rm = _decode_modrm(cursor)
        if reg_field not in _ALU_BY_EXT:
            raise DecodingError(f"unsupported ALU extension /{reg_field}")
        value = cursor.s32() if opcode == 0x81 else cursor.s8()
        return Instr(_ALU_BY_EXT[reg_field], rm, Imm(value))
    return handler


def _decode_test_rm_r(cursor):
    reg_field, rm = _decode_modrm(cursor)
    return Instr("test", rm, register_by_code(reg_field))


def _decode_xchg_rm_r(cursor):
    reg_field, rm = _decode_modrm(cursor)
    return Instr("xchg", rm, register_by_code(reg_field))


def _decode_mov_rm_r(cursor):
    reg_field, rm = _decode_modrm(cursor)
    return Instr("mov", rm, register_by_code(reg_field))


def _decode_mov_r_rm(cursor):
    reg_field, rm = _decode_modrm(cursor)
    return Instr("mov", register_by_code(reg_field), rm)


def _decode_lea(cursor):
    reg_field, rm = _decode_modrm(cursor)
    if not isinstance(rm, Mem):
        raise DecodingError("lea requires a memory operand")
    return Instr("lea", register_by_code(reg_field), rm)


def _decode_pop_rm(cursor):
    reg_field, rm = _decode_modrm(cursor)
    if reg_field != 0:
        raise DecodingError(f"unsupported 8F extension /{reg_field}")
    return Instr("pop", rm)


def _decode_shift(opcode):
    def handler(cursor):
        reg_field, rm = _decode_modrm(cursor)
        if reg_field not in _SHIFT_BY_EXT:
            raise DecodingError(
                f"unsupported shift extension /{reg_field}")
        mnemonic = _SHIFT_BY_EXT[reg_field]
        if opcode == 0xC1:
            return Instr(mnemonic, rm, Imm(cursor.u8()))
        if opcode == 0xD1:
            return Instr(mnemonic, rm, Imm(1))
        return Instr(mnemonic, rm, ECX)
    return handler


def _decode_mov_rm_imm(cursor):
    reg_field, rm = _decode_modrm(cursor)
    if reg_field != 0:
        raise DecodingError(f"unsupported C7 extension /{reg_field}")
    return Instr("mov", rm, Imm(cursor.s32()))


def _decode_imul_imm(cursor):
    reg_field, rm = _decode_modrm(cursor)
    return Instr("imul", register_by_code(reg_field), rm,
                 Imm(cursor.s32()))


def _decode_f7(cursor):
    reg_field, rm = _decode_modrm(cursor)
    if reg_field == 0:
        return Instr("test", rm, Imm(cursor.s32()))
    group = {2: "not", 3: "neg", 4: "mul", 7: "idiv"}
    if reg_field in group:
        return Instr(group[reg_field], rm)
    raise DecodingError(f"unsupported F7 extension /{reg_field}")


def _decode_ff(cursor):
    reg_field, rm = _decode_modrm(cursor)
    group = {0: "inc", 1: "dec", 2: "call_reg", 4: "jmp_reg", 6: "push"}
    if reg_field in group:
        return Instr(group[reg_field], rm)
    raise DecodingError(f"unsupported FF extension /{reg_field}")


def _build_dispatch_table():
    table = [None] * 256
    for base, mnemonic in _ALU_BY_BASE.items():
        table[base + 1] = _alu_rm_r(mnemonic)
        table[base + 3] = _alu_r_rm(mnemonic)
        table[base + 5] = _alu_eax_imm(mnemonic)
    for opcode in range(0x40, 0x48):
        table[opcode] = _single_reg("inc", 0x40, opcode)
    for opcode in range(0x48, 0x50):
        table[opcode] = _single_reg("dec", 0x48, opcode)
    for opcode in range(0x50, 0x58):
        table[opcode] = _single_reg("push", 0x50, opcode)
    for opcode in range(0x58, 0x60):
        table[opcode] = _single_reg("pop", 0x58, opcode)
    for opcode in range(0x70, 0x80):
        table[opcode] = _jcc8(CONDITION_CODES[opcode - 0x70])
    table[0x0F] = _decode_0f
    table[0x68] = lambda c: Instr("push", Imm(c.s32()))
    table[0x69] = _decode_imul_imm
    table[0x6A] = lambda c: Instr("push", Imm(c.s8()))
    table[0x81] = _decode_group_imm(0x81)
    table[0x83] = _decode_group_imm(0x83)
    table[0x85] = _decode_test_rm_r
    table[0x87] = _decode_xchg_rm_r
    table[0x89] = _decode_mov_rm_r
    table[0x8B] = _decode_mov_r_rm
    table[0x8D] = _decode_lea
    table[0x8F] = _decode_pop_rm
    table[0x90] = lambda _c: Instr("nop")
    for opcode in range(0x91, 0x98):
        register = register_by_code(opcode - 0x90)
        table[opcode] = (lambda reg: lambda _c:
                         Instr("xchg", EAX, reg))(register)
    table[0x99] = lambda _c: Instr("cdq")
    table[0xA9] = lambda c: Instr("test", EAX, Imm(c.s32()))
    for opcode in range(0xB8, 0xC0):
        register = register_by_code(opcode - 0xB8)
        table[opcode] = (lambda reg: lambda c:
                         Instr("mov", reg, Imm(c.s32())))(register)
    table[0xC1] = _decode_shift(0xC1)
    table[0xC2] = lambda c: Instr("ret", Imm(c.u16()))
    table[0xC3] = lambda _c: Instr("ret")
    table[0xC7] = _decode_mov_rm_imm
    table[0xCD] = lambda c: Instr("int", Imm(c.u8()))
    table[0xD1] = _decode_shift(0xD1)
    table[0xD3] = _decode_shift(0xD3)
    table[0xE8] = lambda c: Instr("call", Rel(c.s32(), 32))
    table[0xE9] = lambda c: Instr("jmp", Rel(c.s32(), 32))
    table[0xEB] = lambda c: Instr("jmp", Rel(c.s8(), 8))
    table[0xF4] = lambda _c: Instr("hlt")
    table[0xF7] = _decode_f7
    table[0xFF] = _decode_ff
    return table


_DISPATCH = _build_dispatch_table()


def _decode_one(cursor):
    opcode = cursor.u8()
    handler = _DISPATCH[opcode]
    if handler is None:
        raise DecodingError(f"unsupported opcode {opcode:#04x}")
    return handler(cursor)


def decode(data, offset=0):
    """Decode one instruction starting at ``offset``.

    Returns an :class:`Instr` with ``size`` and ``encoding`` populated.
    Raises :class:`~repro.errors.DecodingError` on invalid or truncated
    bytes.
    """
    cursor = _Cursor(data, offset)
    instr = _decode_one(cursor)
    instr.size = cursor.position - cursor.start
    instr.encoding = bytes(data[cursor.start:cursor.position])
    return instr


def decode_cached(data, offset, cache):
    """Decode at ``offset``, memoizing into ``cache`` (offset -> Instr).

    The decode→specialize hook used by the simulator fast path: because
    text is immutable, one cache (keyed on the owning binary) serves
    every :class:`~repro.sim.machine.Machine` run of that binary, and
    decoding straight from the full buffer skips the per-instruction
    window copy the reference fetch path makes.
    """
    instr = cache.get(offset)
    if instr is None:
        instr = decode(data, offset)
        cache[offset] = instr
    return instr


def try_decode(data, offset=0):
    """Like :func:`decode` but returns ``None`` on invalid bytes."""
    # Fast path: an unsupported (or out-of-range) first opcode byte
    # needs no exception machinery. Gadget scans hit this constantly —
    # e.g. the 0x00 bytes of small immediates.
    if offset >= len(data) or _DISPATCH[data[offset]] is None:
        return None
    try:
        return decode(data, offset)
    except DecodingError:
        return None


def decode_all(data, offset=0, end=None):
    """Linear-sweep decode of ``data[offset:end]`` into an instruction list.

    Raises if any byte position does not start a valid instruction, so this
    is only appropriate for byte streams produced by our own emitter.
    """
    if end is None:
        end = len(data)
    instructions = []
    position = offset
    while position < end:
        instr = decode(data, position)
        instructions.append(instr)
        position += instr.size
    return instructions
