"""Pinned workload outputs.

Each SPEC-like program prints a checksum; these pins freeze the exact
values so that any semantic drift in a workload, the front end, the
optimizer or the interpreter is caught immediately (diversification
tests elsewhere then guarantee the compiled binaries agree with these
same values).
"""

import pytest

from repro.pipeline import ProgramBuild
from repro.workloads.registry import get_workload

#: name -> (train output, ref output)
GOLDEN = {
    "400.perlbench": ([1149940], [8210402]),
    "401.bzip2": ([8467], [30102]),
    "403.gcc": ([2034], [156632]),
    "429.mcf": ([8536], [146912]),
    "433.milc": ([14476334], [13944829]),
    "444.namd": ([387144], [632167]),
    "445.gobmk": ([505], [1984]),
    "447.dealII": ([1588], [2337]),
    "450.soplex": ([16773814], [16776020]),
    "453.povray": ([175261], [288644]),
    "456.hmmer": ([66], [273]),
    "458.sjeng": ([1313], [1178]),
    "462.libquantum": ([6798424], [6656464]),
    "464.h264ref": ([42969], [15904]),
    "470.lbm": ([2152784], [1685235]),
    "471.omnetpp": ([10657384], [2474924]),
    "473.astar": ([377], [2216]),
    "482.sphinx3": ([386010], [4681353]),
    "483.xalancbmk": ([7803489], [10086005]),
}


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_workload_outputs_pinned(name):
    workload = get_workload(name)
    build = ProgramBuild(workload.source, workload.name)
    expected_train, expected_ref = GOLDEN[name]
    assert build.run_reference(workload.train_input).output == \
        expected_train
    assert build.run_reference(workload.ref_input).output == expected_ref
