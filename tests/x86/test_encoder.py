"""Encoder unit tests: exact byte sequences for known instructions."""

import pytest

from repro.errors import EncodingError
from repro.x86 import EAX, EBP, EBX, ECX, EDI, EDX, ESI, ESP, encode
from repro.x86.instructions import Imm, Instr, Label, Mem, Rel


def enc(mnemonic, *operands):
    return encode(Instr(mnemonic, *operands)).hex()


class TestMov:
    def test_reg_reg(self):
        assert enc("mov", EAX, EBX) == "89d8"

    def test_reg_imm(self):
        assert enc("mov", EAX, Imm(42)) == "b82a000000"

    def test_reg_imm_by_register_number(self):
        assert enc("mov", EDI, Imm(1)) == "bf01000000"

    def test_reg_mem(self):
        assert enc("mov", ECX, Mem(base=EBX)) == "8b0b"

    def test_mem_reg(self):
        assert enc("mov", Mem(base=EBX), ECX) == "890b"

    def test_mem_imm(self):
        assert enc("mov", Mem(base=EAX), Imm(7)) == "c70007000000"

    def test_negative_immediate(self):
        assert enc("mov", EAX, Imm(-1)) == "b8ffffffff"


class TestAddressing:
    def test_base_disp8(self):
        assert enc("mov", EAX, Mem(base=EBX, disp=8)) == "8b4308"

    def test_base_disp32(self):
        assert enc("mov", EAX, Mem(base=EBX, disp=0x1234)) == "8b8334120000"

    def test_negative_disp8(self):
        assert enc("mov", EAX, Mem(base=EBP, disp=-4)) == "8b45fc"

    def test_ebp_base_needs_disp(self):
        # [EBP] with mod=00 means disp32 absolute, so EBP forces disp8=0.
        assert enc("mov", EAX, Mem(base=EBP)) == "8b4500"

    def test_esp_base_needs_sib(self):
        assert enc("mov", EAX, Mem(base=ESP)) == "8b0424"

    def test_esp_base_disp8(self):
        assert enc("mov", EAX, Mem(base=ESP, disp=4)) == "8b442404"

    def test_absolute(self):
        assert enc("mov", EAX, Mem(disp=0x08049000)) == "a1".replace(
            "a1", "8b0500900408")  # we use the generic ModRM form

    def test_scaled_index(self):
        assert enc("mov", EAX,
                   Mem(base=EBX, index=ECX, scale=4)) == "8b048b"

    def test_index_without_base(self):
        assert enc("mov", EAX,
                   Mem(index=ECX, scale=4, disp=0x1000)) == "8b048d00100000"

    def test_esp_cannot_be_index(self):
        with pytest.raises(ValueError):
            Mem(base=EAX, index=ESP)

    def test_unresolved_symbol_rejected(self):
        with pytest.raises(EncodingError):
            enc("mov", EAX, Mem(symbol="some_array"))


class TestAlu:
    def test_add_reg_reg(self):
        assert enc("add", EAX, EBX) == "01d8"

    def test_add_small_imm_uses_imm8_form(self):
        assert enc("add", EAX, Imm(5)) == "83c005"

    def test_add_large_imm_uses_imm32_form(self):
        assert enc("add", EAX, Imm(300)) == "81c02c010000"

    def test_sub_reg_mem(self):
        assert enc("sub", EAX, Mem(base=EBX)) == "2b03"

    def test_cmp_mem_imm(self):
        assert enc("cmp", Mem(base=EBP, disp=-4), Imm(0)) == "837dfc00"

    def test_xor_self(self):
        assert enc("xor", EAX, EAX) == "31c0"

    def test_test_reg_reg(self):
        assert enc("test", EAX, EAX) == "85c0"


class TestShifts:
    def test_shl_imm(self):
        assert enc("shl", EAX, Imm(3)) == "c1e003"

    def test_shift_by_one_uses_d1(self):
        assert enc("shl", EAX, Imm(1)) == "d1e0"

    def test_sar_cl(self):
        assert enc("sar", EAX, ECX) == "d3f8"

    def test_variable_count_must_be_ecx(self):
        with pytest.raises(EncodingError):
            enc("shl", EAX, EBX)


class TestStackAndCalls:
    def test_push_reg(self):
        assert enc("push", EBP) == "55"

    def test_pop_reg(self):
        assert enc("pop", EBP) == "5d"

    def test_push_small_imm(self):
        assert enc("push", Imm(1)) == "6a01"

    def test_push_large_imm(self):
        assert enc("push", Imm(0x1234)) == "6834120000"

    def test_push_mem(self):
        assert enc("push", Mem(base=ESP, disp=4)) == "ff742404"

    def test_ret(self):
        assert enc("ret") == "c3"

    def test_ret_imm(self):
        assert enc("ret", Imm(8)) == "c20800"

    def test_call_rel32(self):
        assert enc("call", Rel(-5, 32)) == "e8fbffffff"

    def test_call_reg(self):
        assert enc("call_reg", EAX) == "ffd0"

    def test_jmp_reg(self):
        assert enc("jmp_reg", EAX) == "ffe0"


class TestBranches:
    def test_jmp_rel8(self):
        assert enc("jmp", Rel(5, 8)) == "eb05"

    def test_jmp_rel32(self):
        assert enc("jmp", Rel(5, 32)) == "e905000000"

    def test_je_rel8(self):
        assert enc("je", Rel(-2, 8)) == "74fe"

    def test_jne_rel32(self):
        assert enc("jne", Rel(0x100, 32)) == "0f8500010000"

    def test_jl_jg_jle_jge(self):
        assert enc("jl", Rel(1, 8)) == "7c01"
        assert enc("jg", Rel(1, 8)) == "7f01"
        assert enc("jle", Rel(1, 8)) == "7e01"
        assert enc("jge", Rel(1, 8)) == "7d01"

    def test_unresolved_label_rejected(self):
        with pytest.raises(EncodingError):
            enc("jmp", Label("somewhere"))


class TestMiscellaneous:
    def test_imul_reg_reg(self):
        assert enc("imul", ECX, EDX) == "0fafca"

    def test_imul_three_operand(self):
        assert enc("imul", EAX, EAX, Imm(10)) == "69c00a000000"

    def test_idiv(self):
        assert enc("idiv", ECX) == "f7f9"

    def test_cdq(self):
        assert enc("cdq") == "99"

    def test_neg_not(self):
        assert enc("neg", EAX) == "f7d8"
        assert enc("not", EAX) == "f7d0"

    def test_inc_dec_reg(self):
        assert enc("inc", ESI) == "46"
        assert enc("dec", EDI) == "4f"

    def test_lea(self):
        assert enc("lea", EDI,
                   Mem(base=EAX, index=EBX, scale=4, disp=12)) == "8d7c980c"

    def test_int80(self):
        assert enc("int", Imm(0x80)) == "cd80"

    def test_sete(self):
        assert enc("sete", EAX) == "0f94c0"

    def test_setl(self):
        assert enc("setl", EAX) == "0f9cc0"

    def test_setcc_needs_byte_register(self):
        with pytest.raises(EncodingError):
            enc("sete", ESI)

    def test_unknown_mnemonic(self):
        with pytest.raises(EncodingError):
            enc("bogus")
