"""Stream-mode transparency proofs and the AddressMap they produce.

The stream proof is the serving daemon's per-request verifier: one walk
over the variant's raw text against precompiled baseline facts, no
variant record materialization. These tests pin down (a) verdict parity
with the two existing modes on genuine variants, (b) rejection of
corrupted ones, and (c) the exactness of the derived address map.
"""

import dataclasses
from functools import lru_cache

import pytest

from repro.analysis import TransparencyProver
from repro.core.config import DiversificationConfig
from repro.pipeline import ProgramBuild
from repro.workloads.registry import get_workload

WORKLOADS = ("429.mcf", "462.libquantum", "470.lbm")

CONFIGS = {
    "uniform-50%": DiversificationConfig.uniform(0.50),
    "0-30%": DiversificationConfig.profile_guided(0.00, 0.30),
}


@lru_cache(maxsize=None)
def _state(name):
    workload = get_workload(name)
    build = ProgramBuild(workload.source, workload.name)
    return workload, build, build.link_baseline()


@lru_cache(maxsize=None)
def _prover(name):
    return TransparencyProver(_state(name)[2])


@lru_cache(maxsize=None)
def _variant(name, config_name, seed):
    workload, build, _baseline = _state(name)
    config = CONFIGS[config_name]
    profile = (build.profile(workload.train_input)
               if config.requires_profile else None)
    return build.link_variant(config, seed, profile)


def _retext(binary, offset, payload):
    text = bytearray(binary.text)
    text[offset:offset + len(payload)] = payload
    return dataclasses.replace(binary, text=bytes(text))


# -- parity with the records/full modes -------------------------------------

@pytest.mark.parametrize("name", WORKLOADS)
@pytest.mark.parametrize("config_name", sorted(CONFIGS))
def test_stream_matches_records_verdict(name, config_name):
    prover = _prover(name)
    for seed in (0, 1, 2):
        variant = _variant(name, config_name, seed)
        stream = prover.prove(variant, mode="stream")
        records = prover.prove(variant, mode="records")
        assert stream.ok and records.ok
        assert (stream.stats["inserted_nops"]
                == records.stats["inserted_nops"])
        assert stream.stats["mode"] == "stream"


def test_baseline_proves_against_itself_with_zero_nops():
    _w, _b, baseline = _state("429.mcf")
    report = _prover("429.mcf").prove(baseline, mode="stream")
    assert report.ok
    assert report.stats["inserted_nops"] == 0


# -- corruption is rejected -------------------------------------------------

def test_stream_rejects_corrupted_byte():
    variant = _variant("429.mcf", "uniform-50%", 0)
    corrupt = _retext(variant, len(variant.text) // 2,
                      bytes([variant.text[len(variant.text) // 2] ^ 0x01]))
    report = _prover("429.mcf").prove(corrupt, mode="stream")
    assert not report.ok
    assert any(f.code.startswith("verify.transparency")
               for f in report.findings)


def test_stream_rejects_cross_config_baseline():
    # A §6-transformed variant is not "baseline + NOPs" and must fail.
    workload, build, _baseline = _state("429.mcf")
    shifted = build.link_variant(
        DiversificationConfig.uniform(0.3, basic_block_shifting=True), 7)
    report = _prover("429.mcf").prove(shifted, mode="stream")
    assert not report.ok


# -- the address map --------------------------------------------------------

@pytest.mark.parametrize("config_name", sorted(CONFIGS))
def test_address_map_round_trips_every_instruction(config_name):
    _w, _b, baseline = _state("429.mcf")
    prover = _prover("429.mcf")
    variant = _variant("429.mcf", config_name, 1)
    report, amap = prover.address_map(variant)
    assert report.ok and amap is not None
    # Every carried instruction appears exactly once as a non-NOP entry.
    carried = {index: offset for offset, (index, is_nop)
               in amap.v2b.items() if not is_nop}
    assert sorted(carried) == list(range(len(baseline.instr_records)))
    for index, record in enumerate(baseline.instr_records):
        exact = amap.to_baseline(amap.variant_text_base + carried[index])
        assert exact["status"] == "exact"
        assert exact["baseline_address"] == record.address
        assert exact["mnemonic"] == record.mnemonic
        # b→v lands at the head of the instruction's slot: the carried
        # instruction itself, or the inserted-NOP run in front of it —
        # either way it resolves back to this same baseline address
        # (the breakpoint/branch-target semantics the linker uses).
        moved = amap.to_variant(record.address)
        assert moved is not None
        entry = amap.to_baseline(moved)
        assert entry["baseline_address"] == record.address


def test_address_map_classifies_inserted_nops():
    prover = _prover("429.mcf")
    variant = _variant("429.mcf", "uniform-50%", 2)
    report, amap = prover.address_map(variant)
    assert amap is not None
    inserted = [offset for offset, (_idx, is_nop) in amap.v2b.items()
                if is_nop]
    assert len(inserted) == report.stats["inserted_nops"]
    for offset in inserted[:50]:
        entry = amap.to_baseline(amap.variant_text_base + offset)
        assert entry["status"] == "inserted_nop"


def test_address_map_refuses_unproven_variant():
    variant = _variant("429.mcf", "uniform-50%", 3)
    corrupt = _retext(variant, 32, b"\xcc")
    report, amap = _prover("429.mcf").address_map(corrupt)
    assert not report.ok
    assert amap is None


def test_address_map_unmapped_outside_boundaries():
    _w, _b, baseline = _state("429.mcf")
    _report, amap = _prover("429.mcf").address_map(
        _variant("429.mcf", "uniform-50%", 1))
    assert amap.to_baseline(0)["status"] == "unmapped"
    assert amap.to_baseline(
        amap.variant_text_base + amap.variant_text_size + 64
    )["status"] == "unmapped"
