"""Load benchmark of the variant distribution daemon (repro.serve).

Boots the daemon in-process (one shard — the reference host is
single-core, so the gates are effectively serial numbers) and drives it
with a threaded load generator over real TCP connections, measuring the
serving paths separately:

- **memo hit path** — repeat requests for an already-served user; this
  is the daemon's ≤ 5 ms p50 contract (``MAX_HIT_P50_MS``).
- **cold path** — every request a fresh user, so each one is a full
  ``diversify + plan.apply + stream-verify`` on a shard worker, at
  concurrency 1 / 10 / 100. Gated: sustained ≥
  ``MIN_COLD_C10_VARIANTS_PER_SEC`` verified variants/sec at
  concurrency 10 on 429.mcf.
- **artifact-cache path** — a second daemon with the on-disk
  :class:`~repro.artifacts.VariantCache` enabled and the memo disabled:
  cold builds publish entries, re-requests hit them (skipping link
  *and* verify); hit/miss/put counters land in the JSON.
- **backpressure** — the queue depth is dropped to 2 and a 16-thread
  burst fired; the daemon must answer with typed ``serve.overloaded``
  rejections (gated: at least one) while still completing work, and a
  ``stats`` probe must stay answerable during the burst.

Emits ``BENCH_serve.json`` (opening with the shared ``environment``
stamp) and exits nonzero if any gate fails. ``--smoke`` shrinks request
counts for the ``make serve-smoke`` tier-1 ride-along; the gates still
apply.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py [--smoke] \\
        [--output BENCH_serve.json]
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import json
import sys
import tempfile
import threading
import time

from _harness import environment_stamp
from repro.errors import ServeOverloadedError
from repro.serve import ServeClient, VariantServer

PROGRAM = "429.mcf"
CONFIG = "0-30%"

#: Gate: memo-hit p50 — the "cached variant costs nothing" contract.
MAX_HIT_P50_MS = 5.0

#: Gate: sustained cold-path throughput at concurrency 10. Measured
#: ~135 verified variants/sec on the single-core reference host; the
#: gate sits below the margin so timing noise doesn't flake it.
MIN_COLD_C10_VARIANTS_PER_SEC = 100.0


class DaemonThread:
    """A VariantServer running on its own event loop thread."""

    def __init__(self, **kwargs):
        self.server = VariantServer(port=0, **kwargs)
        self._ready = threading.Event()
        self._loop = None
        self._stop = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        asyncio.run(self._main())

    async def _main(self):
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        await self.server.start()
        self._ready.set()
        serving = asyncio.create_task(self.server.serve_forever())
        await self._stop.wait()
        serving.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await serving
        await self.server.close()

    def __enter__(self):
        self._thread.start()
        self._ready.wait()
        return self

    def __exit__(self, *exc_info):
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=60)

    @property
    def port(self):
        return self.server.port


def percentile(sorted_ms, fraction):
    return sorted_ms[min(len(sorted_ms) - 1,
                         int(len(sorted_ms) * fraction))]


def drive(port, concurrency, per_thread, user_prefix):
    """Fire ``concurrency`` threads, each requesting fresh users.

    Returns (variants_per_sec, latencies_ms, rejected_count). Rejected
    requests (``serve.overloaded``) are counted, not retried — the
    caller decides whether they are failure or the point.
    """
    latencies = []
    rejected = [0]
    lock = threading.Lock()

    def worker(index):
        with ServeClient(port=port) as client:
            for request in range(per_thread):
                began = time.monotonic()
                try:
                    client.variant(PROGRAM, CONFIG,
                                   f"{user_prefix}-{index}-{request}")
                except ServeOverloadedError:
                    with lock:
                        rejected[0] += 1
                    continue
                elapsed = time.monotonic() - began
                with lock:
                    latencies.append(elapsed * 1000.0)

    threads = [threading.Thread(target=worker, args=(index,))
               for index in range(concurrency)]
    began = time.monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.monotonic() - began
    latencies.sort()
    return len(latencies) / wall, latencies, rejected[0]


def measure_hit_path(port, requests):
    """Repeat requests for one user: every one a memo hit after the first."""
    with ServeClient(port=port) as client:
        client.variant(PROGRAM, CONFIG, "hit-user")  # populate
        latencies = []
        for _ in range(requests):
            began = time.monotonic()
            response = client.variant(PROGRAM, CONFIG, "hit-user")
            latencies.append((time.monotonic() - began) * 1000.0)
            assert response["source"] == "memo", response["source"]
    latencies.sort()
    return {
        "requests": requests,
        "p50_ms": round(percentile(latencies, 0.50), 3),
        "p99_ms": round(percentile(latencies, 0.99), 3),
        "gate_p50_ms": MAX_HIT_P50_MS,
    }


def measure_cold_path(port, smoke):
    """Fresh-user sweeps at concurrency 1 / 10 / 100."""
    plans = {1: 30 if smoke else 120,
             10: 6 if smoke else 20,
             100: 1 if smoke else 2}
    results = {}
    for concurrency, per_thread in plans.items():
        per_sec, latencies, rejected = drive(
            port, concurrency, per_thread, f"cold-{concurrency}")
        assert rejected == 0, "cold sweep must not trip backpressure"
        results[str(concurrency)] = {
            "requests": len(latencies),
            "variants_per_sec": round(per_sec, 1),
            "p50_ms": round(percentile(latencies, 0.50), 3),
            "p99_ms": round(percentile(latencies, 0.99), 3),
        }
    results["gate_c10_variants_per_sec"] = MIN_COLD_C10_VARIANTS_PER_SEC
    return results


def measure_backpressure(daemon, smoke):
    """Drop the queue depth and burst past it.

    The depth is a plain attribute read at admission time, so the bench
    (which owns the in-process server) pinches it rather than paying a
    second daemon boot. A stats probe runs mid-burst: overload must
    reject, not wedge.
    """
    original_depth = daemon.server.queue_depth
    daemon.server.queue_depth = 2
    stats_alive = []

    def probe():
        with ServeClient(port=daemon.port) as client:
            stats_alive.append(client.stats()["ok"])

    try:
        prober = threading.Timer(0.05, probe)
        prober.start()
        per_sec, latencies, rejected = drive(
            daemon.port, 16, 3 if smoke else 5, "burst")
        prober.join()
    finally:
        daemon.server.queue_depth = original_depth
    return {
        "queue_depth": 2,
        "attempts": len(latencies) + rejected,
        "completed": len(latencies),
        "rejected": rejected,
        "stats_alive_during_burst": bool(stats_alive and stats_alive[0]),
    }


def measure_artifact_cache(smoke):
    """Disk-cache hit path: memo off, VariantCache on."""
    users = 5 if smoke else 10
    with tempfile.TemporaryDirectory() as cache_dir, DaemonThread(
            shards=1, memo_size=0, cache_root=cache_dir,
            programs=[(PROGRAM, CONFIG)]) as daemon:
        with ServeClient(port=daemon.port) as client:
            cold = []
            for index in range(users):
                began = time.monotonic()
                response = client.variant(PROGRAM, CONFIG, f"disk-{index}")
                cold.append((time.monotonic() - began) * 1000.0)
                assert not response["cached"]
            hits = []
            for index in range(users):
                began = time.monotonic()
                response = client.variant(PROGRAM, CONFIG, f"disk-{index}")
                hits.append((time.monotonic() - began) * 1000.0)
                assert response["cached"], "expected an artifact-cache hit"
                assert response["source"] == "artifact-cache"
                assert response["variant"]["verified"] == "cached"
            counters = client.stats()["counters"]
        cold.sort()
        hits.sort()
        return {
            "users": users,
            "cold_p50_ms": round(percentile(cold, 0.50), 3),
            "hit_p50_ms": round(percentile(hits, 0.50), 3),
            "counters": {name: counters[name] for name in sorted(counters)
                         if name.startswith("cache.")},
        }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="shrink request counts (gates still apply)")
    parser.add_argument("--output", default="BENCH_serve.json")
    args = parser.parse_args(argv)

    payload = {"environment": environment_stamp(),
               "program": PROGRAM, "config": CONFIG,
               "smoke": args.smoke}
    # Depth 128 so the concurrency-100 sweep measures latency, not
    # rejection; the backpressure phase pinches the depth separately.
    with DaemonThread(shards=1, queue_depth=128,
                      programs=[(PROGRAM, CONFIG)]) as daemon:
        payload["queue_depth"] = daemon.server.queue_depth
        with ServeClient(port=daemon.port) as client:
            response = client.variant(PROGRAM, CONFIG, "warmup")
            payload["overhead_estimate"] = response["overhead"]
            payload["verify_mode"] = client.stats()["verify_mode"]
        payload["hit_path"] = measure_hit_path(
            daemon.port, 50 if args.smoke else 200)
        payload["cold_path"] = measure_cold_path(daemon.port, args.smoke)
        payload["backpressure"] = measure_backpressure(daemon, args.smoke)
        with ServeClient(port=daemon.port) as client:
            stats = client.stats()
        payload["daemon_stats"] = {"counters": stats["counters"],
                                   "latency": stats["latency"]}
    payload["artifact_cache"] = measure_artifact_cache(args.smoke)

    gates = {
        "hit_p50_ms": payload["hit_path"]["p50_ms"] <= MAX_HIT_P50_MS,
        "cold_c10_variants_per_sec":
            payload["cold_path"]["10"]["variants_per_sec"]
            >= MIN_COLD_C10_VARIANTS_PER_SEC,
        "backpressure_rejections":
            payload["backpressure"]["rejected"] > 0,
        "stats_alive_during_burst":
            payload["backpressure"]["stats_alive_during_burst"],
    }
    payload["gates"] = gates

    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=2)

    hit = payload["hit_path"]
    print(f"hit path: p50={hit['p50_ms']}ms p99={hit['p99_ms']}ms "
          f"(gate: <= {MAX_HIT_P50_MS}ms)")
    for concurrency in ("1", "10", "100"):
        cold = payload["cold_path"][concurrency]
        print(f"cold path c={concurrency}: "
              f"{cold['variants_per_sec']} variants/s "
              f"p50={cold['p50_ms']}ms p99={cold['p99_ms']}ms")
    print(f"  (gate: c=10 >= {MIN_COLD_C10_VARIANTS_PER_SEC} "
          f"verified variants/s)")
    backpressure = payload["backpressure"]
    print(f"backpressure: {backpressure['rejected']} rejected / "
          f"{backpressure['attempts']} at depth "
          f"{backpressure['queue_depth']} (gate: >= 1 rejection)")
    disk = payload["artifact_cache"]
    print(f"artifact cache: cold p50={disk['cold_p50_ms']}ms, "
          f"hit p50={disk['hit_p50_ms']}ms {disk['counters']}")
    print(f"wrote {args.output}")
    failed = [name for name, passed in gates.items() if not passed]
    if failed:
        print(f"GATE FAILURES: {', '.join(failed)}", file=sys.stderr)
        return 1
    print("all serve gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
