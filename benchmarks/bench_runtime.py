"""Simulator throughput + population-build wall-clock tracker.

Measures the two things PR 2 optimized:

1. **Interpreter throughput** — instructions/second of the threaded-code
   fast path vs. the reference step loop, on a fixed workload mix
   (memory-bound mcf, branch-heavy libquantum, arithmetic-heavy lbm).
   Each (workload, engine) pair is timed best-of-N with the GC disabled;
   both engines run the same binaries on the same ref inputs, so the
   ratio is a pure dispatch-overhead comparison.
2. **Population-build wall clock** — building the paper's 25-variant
   population (config 0-30%, profile-guided) serially vs. over a
   process pool, with the artifact cache disabled so every build is
   real work.

Emits ``BENCH_runtime.json`` so future PRs can diff performance the
same way the table/figure benches diff the paper's numbers, and exits
nonzero if the fast path's mix speedup falls below ``MIN_SPEEDUP`` —
a regression gate, set below the ~3.4x this PR measured so timing noise
doesn't flake it.

Usage::

    PYTHONPATH=src python benchmarks/bench_runtime.py [--quick] \\
        [--output BENCH_runtime.json]
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import sys
import time

from repro.core.config import DiversificationConfig
from repro.pipeline import ProgramBuild, build_population
from repro.workloads.registry import get_workload

#: Fixed throughput mix: one memory-bound, one branch-heavy, one
#: arithmetic-heavy workload (same trio repro.check validates).
MIX = ("429.mcf", "462.libquantum", "470.lbm")

#: Regression gate on the fast/reference mix speedup.
MIN_SPEEDUP = 2.0

#: Population-build measurement parameters (paper: 25 variants).
POPULATION_CONFIG = "0-30%"
POPULATION_SIZE = 25


def _best_of(times, fn):
    """Best wall-clock of ``times`` runs of ``fn`` (GC off while timed)."""
    best = None
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(times):
            gc.collect()
            start = time.perf_counter()
            fn()
            elapsed = time.perf_counter() - start
            if best is None or elapsed < best:
                best = elapsed
    finally:
        if gc_was_enabled:
            gc.enable()
    return best


def measure_throughput(names, repeats):
    """Per-workload and mix instrs/sec for both engines."""
    workloads = []
    for name in names:
        workload = get_workload(name)
        build = ProgramBuild(workload.source, workload.name)
        binary = build.link_baseline()
        result = build.simulate(binary, workload.ref_input)
        workloads.append((name, build, binary, workload.ref_input,
                          result.instr_count))

    per_workload = {}
    totals = {"fast": 0.0, "reference": 0.0}
    total_instrs = 0
    for name, build, binary, inputs, instrs in workloads:
        entry = {"instructions": instrs}
        for engine in ("fast", "reference"):
            seconds = _best_of(
                repeats,
                lambda: build.simulate(binary, inputs, engine=engine))
            entry[engine] = {
                "seconds": round(seconds, 4),
                "instrs_per_sec": round(instrs / seconds),
            }
            totals[engine] += seconds
        entry["speedup"] = round(entry["reference"]["seconds"]
                                 / entry["fast"]["seconds"], 2)
        per_workload[name] = entry
        total_instrs += instrs

    mix = {
        "instructions": total_instrs,
        "fast_instrs_per_sec": round(total_instrs / totals["fast"]),
        "reference_instrs_per_sec": round(total_instrs
                                          / totals["reference"]),
        "speedup": round(totals["reference"] / totals["fast"], 2),
    }
    return per_workload, mix


def measure_population_build(population_size, worker_counts):
    """Wall clock for one population build at each worker count.

    The artifact cache is disabled (``cache_dir`` never consulted when
    ``REPRO_CACHE_DIR`` is scrubbed) so each measurement rebuilds every
    variant from source.
    """
    workload = get_workload(MIX[0])
    build = ProgramBuild(workload.source, workload.name)
    config = DiversificationConfig.profile_guided(0.00, 0.30)
    profile = build.profile(workload.train_input)
    seeds = range(population_size)

    saved = os.environ.pop("REPRO_CACHE_DIR", None)
    try:
        results = {}
        for workers in worker_counts:
            start = time.perf_counter()
            build_population(build, config, seeds, profile,
                             workers=workers)
            results[f"workers={workers}"] = round(
                time.perf_counter() - start, 3)
    finally:
        if saved is not None:
            os.environ["REPRO_CACHE_DIR"] = saved
    return {
        "workload": workload.name,
        "config": POPULATION_CONFIG,
        "population_size": population_size,
        "wall_clock_seconds": results,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default="BENCH_runtime.json")
    parser.add_argument("--quick", action="store_true",
                        help="one workload, 1 timing repeat, 5 variants")
    args = parser.parse_args(argv)

    names = MIX[:1] if args.quick else MIX
    repeats = 1 if args.quick else 3
    population_size = 5 if args.quick else POPULATION_SIZE
    pool_workers = min(4, max(2, os.cpu_count() or 1))

    per_workload, mix = measure_throughput(names, repeats)
    population = measure_population_build(population_size,
                                          (1, pool_workers))

    payload = {
        "mix": mix,
        "workloads": per_workload,
        "population_build": population,
        "min_speedup": MIN_SPEEDUP,
        "ok": mix["speedup"] >= MIN_SPEEDUP,
    }
    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=2)

    for name, entry in per_workload.items():
        print(f"{name}: fast {entry['fast']['instrs_per_sec']:,} i/s, "
              f"reference {entry['reference']['instrs_per_sec']:,} i/s "
              f"({entry['speedup']}x)")
    print(f"mix speedup: {mix['speedup']}x "
          f"(gate: >= {MIN_SPEEDUP}x)")
    clocks = population["wall_clock_seconds"]
    print(f"population build ({population['population_size']} variants, "
          f"{population['config']}): "
          + ", ".join(f"{k}: {v}s" for k, v in clocks.items()))
    print(f"wrote {args.output}")
    if not payload["ok"]:
        print(f"FAIL: mix speedup {mix['speedup']}x below the "
              f"{MIN_SPEEDUP}x gate", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
