"""The static verifier: a pass pipeline over one linked binary.

:func:`verify_binary` recovers the machine CFG and runs five passes,
each reporting :class:`~repro.analysis.cfg.Finding` objects with stable
codes (see :data:`repro.errors.VERIFY_FINDING_CODES`):

``cfg``        decode/target/overlap defects from recovery, plus
               ``verify.unreachable`` if any .text byte is reached by
               no root (our linker emits none).
``reloc``      every absolute disp32 a memory operand carries points
               into the data segment ``[data_base, data_end)``, word
               aligned — never into .text (W^X) or out of bounds.
``roundtrip``  re-encoding each decoded instruction reproduces the
               original bytes (decoder/encoder agreement on the whole
               image; the dual ModRM direction is tried before
               flagging).
``stack``      per-function stack-height abstract interpretation
               (:func:`repro.analysis.absint.analyze_stack`).
``defuse``     per-function def-before-use dataflow
               (:func:`repro.analysis.absint.analyze_defuse`).

:func:`verify_population` fans a batch of binaries out over the same
worker pool the population builds use; :func:`require_verified` turns
findings into a raised :class:`~repro.errors.VerificationError` for the
pipeline's post-link gate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.absint import analyze_defuse, analyze_stack
from repro.analysis.cfg import Finding, recover_cfg
from repro.errors import EncodingError, VerificationError
from repro.obs import metrics
from repro.obs.trace import span
from repro.x86.encoder import encode
from repro.x86.instructions import Instr, Mem

#: Pass names in execution order.
ALL_PASSES = ("cfg", "reloc", "roundtrip", "stack", "defuse")


@dataclass
class VerifyReport:
    """Findings and statistics from verifying one binary."""

    name: str
    findings: list = field(default_factory=list)
    stats: dict = field(default_factory=dict)

    @property
    def ok(self):
        return not self.findings

    def by_code(self):
        counts = {}
        for finding in self.findings:
            counts[finding.code] = counts.get(finding.code, 0) + 1
        return counts

    def describe(self):
        status = "ok" if self.ok else f"{len(self.findings)} finding(s)"
        return f"{self.name}: {status}"


def _check_reloc(cfg, binary):
    """Relocated disp32 fields must address the data segment."""
    findings = []
    for address, instr in sorted(cfg.instrs.items()):
        for operand in instr.operands:
            if not isinstance(operand, Mem):
                continue
            absolute = operand.base is None and operand.index is None
            if not absolute and operand.disp < binary.text_base:
                continue  # small frame/pointer displacement, not a reloc
            disp = operand.disp
            if not binary.data_base <= disp < binary.data_end:
                findings.append(Finding(
                    "verify.reloc",
                    f"disp32 {disp:#x} outside the data segment "
                    f"[{binary.data_base:#x}, {binary.data_end:#x})",
                    address=address))
            elif disp % 4:
                findings.append(Finding(
                    "verify.reloc",
                    f"disp32 {disp:#x} is not word aligned",
                    address=address))
    return findings


def _check_roundtrip(cfg):
    """Re-encoding every decoded instruction must reproduce its bytes."""
    findings = []
    for address, instr in sorted(cfg.instrs.items()):
        original = instr.encoding
        try:
            produced = encode(instr)
            if produced != original:
                alternate = Instr(instr.mnemonic, *instr.operands,
                                  alternate_encoding=True)
                produced = encode(alternate)
        except EncodingError as exc:
            findings.append(Finding(
                "verify.roundtrip",
                f"decoded instruction cannot be re-encoded: {exc}",
                address=address))
            continue
        if produced != original:
            findings.append(Finding(
                "verify.roundtrip",
                f"re-encoding {instr!r} gives "
                f"{produced.hex()} != {bytes(original).hex()}",
                address=address))
    return findings


def verify_binary(binary, *, name=None, passes=None):
    """Run the verifier passes; returns a :class:`VerifyReport`.

    ``passes`` selects a subset of :data:`ALL_PASSES` (default: all).
    The report never references the binary, so it pickles cheaply
    across the population worker pool.
    """
    selected = ALL_PASSES if passes is None else tuple(passes)
    report = VerifyReport(name=name or f"binary@{binary.text_base:#x}")
    with span("verify", binary=report.name):
        return _verify(binary, report, selected)


def _verify(binary, report, selected):
    cfg = recover_cfg(binary)

    if "cfg" in selected:
        report.findings.extend(cfg.findings)
        if cfg.unreachable_bytes:
            spans = ", ".join(f"[{start:#x}, {end:#x})"
                              for start, end in cfg.unreachable_spans[:4])
            report.findings.append(Finding(
                "verify.unreachable",
                f"{cfg.unreachable_bytes} .text byte(s) reached by no "
                f"recovery root: {spans}"))
    if "reloc" in selected:
        report.findings.extend(_check_reloc(cfg, binary))
    if "roundtrip" in selected:
        report.findings.extend(_check_roundtrip(cfg))
    if "stack" in selected or "defuse" in selected:
        for function in sorted(binary.function_ranges):
            if "stack" in selected:
                report.findings.extend(analyze_stack(cfg, function))
            if "defuse" in selected:
                report.findings.extend(analyze_defuse(cfg, function))

    report.stats = {
        "instructions": len(cfg.instrs),
        "text_bytes": len(binary.text),
        "functions": len(binary.function_ranges),
        "basic_blocks": len(cfg.basic_blocks()),
        "unreachable_bytes": cfg.unreachable_bytes,
        "findings_by_code": report.by_code(),
    }
    metrics.inc("verify.binaries")
    if report.findings:
        metrics.inc("verify.findings", len(report.findings))
    return report


def require_verified(binary, *, name=None, passes=None):
    """Verify and raise :class:`~repro.errors.VerificationError` on any
    finding; returns the passing report otherwise."""
    report = verify_binary(binary, name=name, passes=passes)
    if not report.ok:
        raise VerificationError(
            f"static verification of {report.name} failed with "
            f"{len(report.findings)} finding(s)",
            context={
                "name": report.name,
                "findings": [f.describe() for f in report.findings[:20]],
                "by_code": report.by_code(),
            })
    return report


def _verify_chunk(items):
    """Worker-pool chunk function: ``items`` is a list of
    ``(name, binary)`` pairs; returns one report per pair, in order."""
    return [verify_binary(binary, name=name) for name, binary in items]


def verify_population(binaries, *, names=None, workers=None,
                      force_pool=False):
    """Verify a batch of binaries, optionally over the worker pool.

    ``binaries`` is a sequence of :class:`LinkedBinary`; ``names`` an
    optional parallel sequence of report names. ``workers`` resolves
    exactly as in :func:`repro.pipeline.build_population` (default
    ``REPRO_WORKERS``); the serial path never pickles anything.
    Returns reports in input order.
    """
    from repro.pipeline import map_chunked  # lazy: avoid an import cycle

    binaries = list(binaries)
    if names is None:
        names = [f"binary[{index}]" for index in range(len(binaries))]
    items = list(zip(names, binaries))
    return map_chunked(_verify_chunk, items, workers=workers,
                       force_pool=force_pool)
