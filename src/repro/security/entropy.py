"""Diversification entropy: how many distinct binaries can the pass emit?

§6 of the paper: "for software diversity to be effective, a sufficient
number of versions must be available; the probability where a maximum
number of versions are available is pNOP = 50%. The number of versions
decreases for both larger and smaller values of pNOP."

Algorithm 1 makes two independent random decisions per instruction —
*whether* to insert (Bernoulli ``p``) and *which* candidate (uniform over
``k`` NOPs) — so the entropy contributed by one instruction is::

    H(p, k) = H_b(p) + p · log2(k)
    H_b(p)  = -p·log2(p) - (1-p)·log2(1-p)

and the diversification entropy of a whole build is the sum over the
instructions the pass visits (log2 of the expected number of equally
likely variants). ``H_b`` peaks at p = 1/2, which is exactly the paper's
claim; the candidate-choice term additionally grows monotonically in
``p``, so with ``k`` candidates the true peak sits slightly *above* 50%
— a refinement the analytic model makes visible.

For profile-guided builds the per-instruction probability varies by
block, so the module also evaluates entropy under a probability policy,
quantifying how much version-space the profile-guided configurations
give up in hot code.
"""

from __future__ import annotations

import math

from repro.errors import ConfigError

from repro.x86.instructions import Instr


def bernoulli_entropy(p):
    """H_b(p) in bits; 0 at the endpoints."""
    if p <= 0.0 or p >= 1.0:
        return 0.0
    return -(p * math.log2(p) + (1.0 - p) * math.log2(1.0 - p))


def per_instruction_entropy(p, candidate_count):
    """Entropy in bits contributed by one visited instruction."""
    if candidate_count < 1:
        raise ConfigError("need at least one NOP candidate",
                          context={"candidate_count": candidate_count})
    return bernoulli_entropy(p) + p * math.log2(candidate_count)


def optimal_uniform_probability(candidate_count):
    """The p maximizing per-instruction entropy for k candidates.

    Setting d/dp [H_b(p) + p·log2(k)] = 0 gives
    ``p* = k / (k + 1)``... in general ``p* = 1/(1 + 2^(-log2 k)) =
    k/(k+1)``. For k = 1 this degrades to the paper's 50%.
    """
    return candidate_count / (candidate_count + 1.0)


def unit_entropy(unit, probability_for_block, candidate_count):
    """Total diversification entropy (bits) of one object unit.

    ``probability_for_block`` is the same policy callable the insertion
    pass uses (see :func:`repro.core.policies.block_probability_function`).
    Returns ``(total_bits, instructions_visited)``.
    """
    total = 0.0
    visited = 0
    for function_code in unit.functions:
        if not function_code.diversifiable:
            continue
        for item in function_code.items:
            if not isinstance(item, Instr):
                continue
            visited += 1
            p = probability_for_block(item.block_id)
            total += per_instruction_entropy(p, candidate_count)
    return total, visited


def distinct_variants(binaries):
    """Empirical check: the number of distinct text sections observed."""
    return len({bytes(binary.text) for binary in binaries})
