"""Generic traversal and editing helpers over MinC ASTs.

The fuzzer's mutators (:mod:`repro.fuzz.mutate`) and shrinker
(:mod:`repro.fuzz.shrink`) need three things the node classes don't
provide directly: a uniform walk over every node, addressable *sites*
(a parent slot a subtree can be swapped out of), and deep copies that
are safe to edit in place. Sites come in two flavors:

- **expression sites** — ``(owner, field, index)`` where
  ``owner.field`` (or ``owner.field[index]`` for argument lists) holds
  an expression node;
- **statement sites** — ``(body, index)`` where ``body`` is one of the
  statement lists bodies flatten to (function bodies, then/else arms,
  loop bodies).

Both enumerate deterministically (pre-order), so a seeded ``Random``
picking an index yields reproducible mutations.
"""

from __future__ import annotations

import copy

from repro.minc import ast_nodes as ast

#: owner-type -> fields that hold a single expression node (when not None).
_EXPR_FIELDS = {
    ast.IndexExpr: ("index",),
    ast.UnaryExpr: ("operand",),
    ast.BinaryExpr: ("lhs", "rhs"),
    ast.VarDecl: ("init",),
    ast.Assign: ("target", "value"),
    ast.IncDec: ("target",),
    ast.If: ("cond",),
    ast.While: ("cond",),
    ast.For: ("cond",),
    ast.Return: ("value",),
    ast.PrintStmt: ("value",),
    ast.ExprStmt: ("expr",),
}

#: owner-type -> fields that hold statement lists.
_BODY_FIELDS = {
    ast.If: ("then_body", "else_body"),
    ast.While: ("body",),
    ast.For: ("body",),
    ast.FuncDecl: ("body",),
}

#: statement fields holding one nested statement (the for clauses).
_STMT_FIELDS = {
    ast.For: ("init", "step"),
}


def clone(node):
    """A deep copy safe to mutate without touching the original."""
    return copy.deepcopy(node)


def walk(node):
    """Pre-order iteration over every AST node under ``node``."""
    yield node
    for kind, fields in _EXPR_FIELDS.items():
        if isinstance(node, kind):
            for field in fields:
                child = getattr(node, field)
                if child is not None:
                    yield from walk(child)
    if isinstance(node, ast.CallExpr):
        for arg in node.args:
            yield from walk(arg)
    for kind, fields in _STMT_FIELDS.items():
        if isinstance(node, kind):
            for field in fields:
                child = getattr(node, field)
                if child is not None:
                    yield from walk(child)
    for kind, fields in _BODY_FIELDS.items():
        if isinstance(node, kind):
            for field in fields:
                for child in getattr(node, field):
                    yield from walk(child)
    if isinstance(node, ast.Program):
        for decl in node.globals:
            yield decl
        for func in node.functions:
            yield from walk(func)


def expr_sites(program, *, include_targets=False):
    """Every replaceable expression slot, as ``(owner, field, index)``.

    ``index`` is ``None`` for scalar fields and a list index for call
    arguments. Assignment/inc-dec *targets* are excluded by default —
    replacing one with an arbitrary expression is never grammatical.
    """
    sites = []
    for node in walk(program):
        for kind, fields in _EXPR_FIELDS.items():
            if isinstance(node, kind):
                for field in fields:
                    if field == "target" and not include_targets:
                        continue
                    if getattr(node, field) is not None:
                        sites.append((node, field, None))
        if isinstance(node, ast.CallExpr):
            for position in range(len(node.args)):
                sites.append((node, "args", position))
    return sites


def get_site(site):
    owner, field, index = site
    value = getattr(owner, field)
    return value[index] if index is not None else value


def set_site(site, replacement):
    owner, field, index = site
    if index is not None:
        getattr(owner, field)[index] = replacement
    else:
        setattr(owner, field, replacement)


def stmt_sites(program):
    """Every ``(body_list, index)`` statement slot, pre-order."""
    sites = []
    for node in walk(program):
        for kind, fields in _BODY_FIELDS.items():
            if isinstance(node, kind):
                for field in fields:
                    body = getattr(node, field)
                    for position in range(len(body)):
                        sites.append((body, position))
    return sites


def subexpressions(program):
    """Every expression node in the program, pre-order."""
    return [get_site(site) for site in expr_sites(program)]


def node_count(program):
    """Total AST nodes — the shrinker's size measure."""
    return sum(1 for _ in walk(program))
