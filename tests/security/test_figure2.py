"""Figure 2 reproduction: NOP insertion displaces code and destroys
gadgets by breaking misaligned decodes.

The paper's figure shows program code containing an unintended gadget
(`ADC [ECX], EAX; RET` style) whose RET byte stops being reachable once a
NOP shifts the enclosing instructions.
"""

from repro.security.gadgets import find_gadgets
from repro.security.survivor import surviving_gadgets
from repro.x86.decoder import try_decode


def test_unintended_gadget_destroyed_by_displacement():
    # Original stream: mov eax, 0x00c2c358 — embeds pop eax; ret at +1.
    original = bytes.fromhex("b858c3c200") + bytes.fromhex("c3")
    gadgets_before = find_gadgets(original)
    assert 1 in gadgets_before
    assert gadgets_before[1].mnemonics() == ("pop", "ret")

    # Diversified: a NOP prepended. The embedded bytes now sit at +2:
    # the attacker aiming at +1 decodes something else entirely.
    diversified = b"\x90" + original
    at_old_offset = try_decode(diversified, 1)
    assert at_old_offset is None or \
        at_old_offset.mnemonic != "pop"

    count, offsets = surviving_gadgets(original, diversified)
    assert 1 not in offsets


def test_displacement_accumulates_through_the_listing(fib_build):
    """Later instructions are displaced by increasingly larger amounts
    (paper Figure 2's accumulation)."""
    from repro.core.config import PAPER_CONFIGS

    baseline = fib_build.link_baseline()
    variant = fib_build.link_variant(PAPER_CONFIGS["50%"], seed=2)

    base_records = [r for r in baseline.instr_records
                    if not r.is_inserted_nop and r.block_id
                    and r.block_id[0] in ("fib", "main")]
    var_records = [r for r in variant.instr_records
                   if not r.is_inserted_nop and r.block_id
                   and r.block_id[0] in ("fib", "main")]
    assert len(base_records) == len(var_records)

    displacements = [v.address - b.address
                     for b, v in zip(base_records, var_records)]
    # Non-negative, non-decreasing... not strictly (relaxation can shrink
    # a branch), but overall must grow substantially.
    assert displacements[0] >= 0
    assert displacements[-1] > 10
    # Average displacement of the second half exceeds the first half.
    half = len(displacements) // 2
    first = sum(displacements[:half]) / half
    second = sum(displacements[half:]) / (len(displacements) - half)
    assert second > first


def test_branch_offsets_recomputed_around_nops(fib_build):
    """Diversified binaries still execute correctly because the linker
    re-resolves every branch across inserted NOPs."""
    from repro.core.config import PAPER_CONFIGS

    reference = fib_build.run_reference((9,))
    variant = fib_build.link_variant(PAPER_CONFIGS["50%"], seed=13)
    result = fib_build.simulate(variant, (9,))
    assert result.output == reference.output
