"""E6 — §5.2 case study: concrete ROP attacks against a PHP-like
interpreter.

Protocol, exactly as the paper describes:

1. verify the **undiversified** binary is vulnerable: both gadget
   scanners (ROPgadget-style and microgadgets-style) find enough
   operations, and the constructed chain *actually executes* in the
   simulator, exiting with the attacker's chosen status;
2. profile the interpreter on each of the seven CLBG training programs;
3. for each profile, build ``REPRO_POPULATION`` variants at the paper's
   weakest setting (pNOP = 0-30%), run Survivor against the original,
   and re-run both scanners **on the surviving gadgets only** (the
   attacker relies on original-binary knowledge);
4. expect: no diversified binary is attackable with either scanner.
"""

from repro.core.config import PAPER_CONFIGS
from repro.obs.knobs import knob_value
from repro.pipeline import ProgramBuild
from repro.reporting import format_table
from repro.security.attack import attempt_attack
from repro.security.gadgets import find_gadgets
from repro.security.microgadgets import MicroGadgetScanner
from repro.security.ropgadget import RopGadgetScanner
from repro.security.survivor import gadget_signatures
from repro.workloads.clbg import CLBG_PROGRAMS, clbg_input
from repro.workloads.registry import get_workload

POPULATION_SIZE = knob_value("REPRO_POPULATION")
_SCANNERS = (RopGadgetScanner(), MicroGadgetScanner())


def run_case_study():
    workload = get_workload("php")
    build = ProgramBuild(workload.source, "php")
    baseline = build.link_baseline()
    baseline_sigs = gadget_signatures(baseline.text)
    config = PAPER_CONFIGS["0-30%"]

    baseline_results = {
        scanner.name: attempt_attack(baseline, scanner, exit_code=42)
        for scanner in _SCANNERS
    }

    rows = []
    feasible_total = 0
    for program_name in sorted(CLBG_PROGRAMS):
        profile = build.profile(clbg_input(program_name),
                                key=program_name)
        feasible = {scanner.name: 0 for scanner in _SCANNERS}
        survivors_total = 0
        for seed in range(POPULATION_SIZE):
            variant = build.link_variant(config, seed, profile)
            variant_sigs = gadget_signatures(variant.text)
            surviving_offsets = {
                offset for offset, signature in variant_sigs.items()
                if baseline_sigs.get(offset) == signature
            }
            survivors_total += len(surviving_offsets)
            surviving = {offset: gadget for offset, gadget
                         in find_gadgets(variant.text).items()
                         if offset in surviving_offsets}
            for scanner in _SCANNERS:
                result = attempt_attack(variant, scanner,
                                        gadgets=surviving,
                                        exit_code=42)
                if result.feasible:
                    feasible[scanner.name] += 1
                    feasible_total += 1
        rows.append((program_name,
                     survivors_total / POPULATION_SIZE,
                     feasible["ropgadget"],
                     feasible["microgadgets"]))
    return baseline_results, rows, feasible_total, len(baseline_sigs)


def test_php_case_study(benchmark):
    baseline_results, rows, feasible_total, baseline_gadgets = \
        benchmark.pedantic(run_case_study, rounds=1, iterations=1)

    print()
    print(f"Undiversified PHP-like interpreter: {baseline_gadgets} "
          "gadgets")
    for name, result in baseline_results.items():
        print(f"  {name:13s}: {result!r}")
    print()
    print(format_table(
        ("Training profile", "Mean survivors",
         f"ropgadget feasible/{POPULATION_SIZE}",
         f"microgadgets feasible/{POPULATION_SIZE}"),
        rows,
        title=f"PHP case study at pNOP=0-30%, {POPULATION_SIZE} variants "
              "per profile"))

    # The undiversified binary is vulnerable to BOTH frameworks, and the
    # attack concretely works (exit code hijacked to 42).
    for result in baseline_results.values():
        assert result.feasible
        assert result.succeeded

    # "On all diversified versions of PHP, a ROP-based attack was no
    # longer possible" — for every profile and both scanners.
    assert feasible_total == 0
