"""Nestable wall-clock spans over the diversification pipeline.

A *span* wraps one pipeline stage::

    with span("link_variant", seed=seed):
        ...

Every span — enabled or not — feeds its elapsed seconds into the
``stage.<name>`` histogram of :mod:`repro.obs.metrics`, which is what
the per-stage timing section of ``repro-diversify check/verify`` reads
(and what pool workers fold back to the parent through metric deltas).

Full trace *recording* is off by default and costs two
``perf_counter`` calls plus one histogram update per span; set
``REPRO_TRACE=path.jsonl`` to additionally record every span into a
bounded per-process ring buffer (``REPRO_TRACE_RING`` entries) and
append it as one JSON object per line to the given path. Pool workers
inherit the knob and append to the same file; each line carries the
writer's ``pid`` and lines are small enough for ``O_APPEND`` atomicity,
so a multi-process build produces one merged, attributable trace.

Spans nest: each records its parent's id, so the exported stream
reconstructs the stage tree (``compile`` → ``frontend``/``opt``/
``lowering``; ``population_build`` → ``nop_insert``/``link``/...).
"""

from __future__ import annotations

import itertools
import json
import os
import time
from collections import deque

from repro.obs import metrics
from repro.obs.knobs import knob_value

#: Per-process ring of finished-span event dicts (newest last), created
#: on first enabled span with ``REPRO_TRACE_RING`` capacity.
_RING = None

#: Stack of live *recorded* span ids (disabled spans never push).
_STACK = []

_NEXT_ID = itertools.count(1)

#: Open JSONL sink and the path it was opened for (reopened if the
#: knob changes mid-process, e.g. across tests).
_SINK = None
_SINK_PATH = None


def trace_path():
    """The ``REPRO_TRACE`` destination, or ``None`` when disabled."""
    return knob_value("REPRO_TRACE")


def events():
    """Finished-span events currently in the ring buffer (oldest first)."""
    return list(_RING) if _RING is not None else []


def reset():
    """Drop ring, stack and sink (test isolation)."""
    global _RING, _SINK, _SINK_PATH
    _STACK.clear()
    _RING = None
    if _SINK is not None:
        try:
            _SINK.close()
        except OSError:
            pass
    _SINK = None
    _SINK_PATH = None


def _sink_for(path):
    global _SINK, _SINK_PATH
    if path != _SINK_PATH:
        if _SINK is not None:
            try:
                _SINK.close()
            except OSError:
                pass
        _SINK = None
        _SINK_PATH = path
        if path:
            try:
                _SINK = open(path, "a")
            except OSError:
                _SINK = None  # an unwritable sink must not fail builds
    return _SINK


class span:
    """Context manager timing one named stage.

    Keyword arguments become the span's attributes in the exported
    event. :meth:`annotate` adds attributes discovered mid-span and
    :meth:`count` accumulates per-span counters (both no-ops when trace
    recording is disabled; the stage histogram is always fed).
    """

    __slots__ = ("name", "attrs", "counters", "span_id", "parent_id",
                 "seconds", "_start", "_wall", "_recording")

    def __init__(self, name, **attrs):
        self.name = name
        self.attrs = attrs
        self.counters = None
        self.span_id = None
        self.parent_id = None
        self.seconds = None
        self._recording = False

    def __enter__(self):
        path = trace_path()
        if path is not None:
            global _RING
            self._recording = True
            self.span_id = next(_NEXT_ID)
            self.parent_id = _STACK[-1] if _STACK else None
            _STACK.append(self.span_id)
            if _RING is None:
                _RING = deque(maxlen=knob_value("REPRO_TRACE_RING"))
            self._wall = time.time()
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        seconds = self.seconds = time.perf_counter() - self._start
        metrics.observe(f"stage.{self.name}", seconds)
        if not self._recording:
            return False
        if _STACK and _STACK[-1] == self.span_id:
            _STACK.pop()
        event = {
            "event": "span",
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "pid": os.getpid(),
            "start": round(self._wall, 6),
            "seconds": round(seconds, 6),
            "attrs": self.attrs,
        }
        if self.counters:
            event["counters"] = self.counters
        if exc_type is not None:
            event["error"] = exc_type.__name__
        _RING.append(event)
        sink = _sink_for(trace_path())
        if sink is not None:
            try:
                sink.write(json.dumps(event, default=repr) + "\n")
                sink.flush()
            except (OSError, TypeError):
                pass
        return False

    def annotate(self, **attrs):
        """Attach attributes discovered while the span is open."""
        if self._recording:
            self.attrs.update(attrs)
        return self

    def count(self, name, value=1):
        """Accumulate a per-span counter (recorded spans only)."""
        if self._recording:
            if self.counters is None:
                self.counters = {}
            self.counters[name] = self.counters.get(name, 0) + value
        return self
