"""Property tests for the gadget finder on arbitrary byte strings."""

from hypothesis import given, settings, strategies as st

from repro.security.gadgets import find_gadgets
from repro.x86.decoder import try_decode


@given(st.binary(min_size=0, max_size=300))
@settings(max_examples=150)
def test_gadgets_are_internally_consistent(data):
    gadgets = find_gadgets(data)
    for offset, gadget in gadgets.items():
        # The raw bytes really live at that offset.
        assert data[offset:offset + gadget.size] == gadget.raw
        # The instruction sequence re-decodes from the raw bytes.
        position = 0
        for instr in gadget.instrs:
            decoded = try_decode(gadget.raw, position)
            assert decoded == instr
            position += decoded.size
        assert position == gadget.size
        # Exactly one free branch, at the end.
        assert gadget.terminator.is_free_branch
        for instr in gadget.instrs[:-1]:
            assert not instr.is_free_branch


@given(st.binary(min_size=0, max_size=300))
@settings(max_examples=100)
def test_every_ret_byte_yields_a_gadget(data):
    gadgets = find_gadgets(data)
    for position, byte in enumerate(data):
        if byte == 0xC3:
            assert position in gadgets
            assert gadgets[position].instrs[-1].mnemonic == "ret" or \
                gadgets[position].instrs[0].mnemonic == "ret"


@given(st.binary(min_size=0, max_size=200))
@settings(max_examples=100)
def test_scan_is_deterministic(data):
    first = find_gadgets(data)
    second = find_gadgets(data)
    assert first.keys() == second.keys()
    for offset in first:
        assert first[offset].raw == second[offset].raw
