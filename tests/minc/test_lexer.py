"""Lexer unit tests."""

import pytest

from repro.errors import MincSyntaxError
from repro.minc.lexer import tokenize


def kinds(source):
    return [token.kind for token in tokenize(source)]


def test_empty_source():
    assert kinds("") == ["eof"]


def test_keywords_vs_identifiers():
    tokens = tokenize("int intx for fork")
    assert [t.kind for t in tokens[:-1]] == ["int", "ident", "for", "ident"]


def test_numbers():
    tokens = tokenize("0 42 007 0x1F")
    assert [t.value for t in tokens[:-1]] == [0, 42, 7, 31]


def test_malformed_hex():
    with pytest.raises(MincSyntaxError):
        tokenize("0x")


def test_operators_maximal_munch():
    assert kinds("<<= << < <= a+++b")[:4] == ["<<=", "<<", "<", "<="]
    # a ++ + b (maximal munch takes ++ first)
    assert kinds("a+++b")[:4] == ["ident", "++", "+", "ident"]


def test_line_comments():
    tokens = tokenize("a // comment\nb")
    assert [t.value for t in tokens[:-1]] == ["a", "b"]


def test_block_comments_track_lines():
    tokens = tokenize("/* one\ntwo */ x")
    assert tokens[0].kind == "ident"
    assert tokens[0].line == 2


def test_unterminated_block_comment():
    with pytest.raises(MincSyntaxError):
        tokenize("/* never closed")


def test_unexpected_character():
    with pytest.raises(MincSyntaxError) as excinfo:
        tokenize("a $ b")
    assert "'$'" in str(excinfo.value)


def test_line_and_column_tracking():
    tokens = tokenize("a\n  b")
    assert (tokens[0].line, tokens[0].column) == (1, 1)
    assert (tokens[1].line, tokens[1].column) == (2, 3)
