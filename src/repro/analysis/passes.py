"""The static verifier: a pass pipeline over one linked binary.

:func:`verify_binary` recovers the machine CFG and runs five passes,
each reporting :class:`~repro.analysis.cfg.Finding` objects with stable
codes (see :data:`repro.errors.VERIFY_FINDING_CODES`):

``cfg``        decode/target/overlap defects from recovery, plus
               ``verify.unreachable`` if any .text byte is reached by
               no root (our linker emits none).
``reloc``      every absolute disp32 a memory operand carries points
               into the data segment ``[data_base, data_end)``, word
               aligned — never into .text (W^X) or out of bounds.
``roundtrip``  re-encoding each decoded instruction reproduces the
               original bytes (decoder/encoder agreement on the whole
               image; the dual ModRM direction is tried before
               flagging).
``stack``      per-function stack-height abstract interpretation
               (:func:`repro.analysis.absint.analyze_stack`).
``defuse``     per-function def-before-use dataflow
               (:func:`repro.analysis.absint.analyze_defuse`).
``equivalence`` — only when a ``baseline`` is supplied — the §6
               semantics-preservation proof
               (:class:`repro.analysis.equivalence.EquivalenceProver`).
               A clean proof additionally *discharges*
               ``verify.unreachable`` findings whose bytes lie entirely
               inside proven-dead basic-block-shift sleds; unreachable
               bytes outside a proven sled stay hard findings.

:func:`verify_population` fans a batch of binaries out over the same
worker pool the population builds use; :func:`require_verified` turns
findings into a raised :class:`~repro.errors.VerificationError` for the
pipeline's post-link gate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.absint import analyze_defuse, analyze_stack
from repro.analysis.cfg import Finding, recover_cfg
from repro.errors import EncodingError, VerificationError
from repro.obs import metrics
from repro.obs.trace import span
from repro.x86.encoder import encode
from repro.x86.instructions import Instr, Mem

#: Pass names in execution order. ``equivalence`` is a member so
#: ``passes=None`` selects it, but it only runs when the caller supplies
#: a baseline to prove against.
ALL_PASSES = ("cfg", "reloc", "roundtrip", "stack", "defuse",
              "equivalence")


@dataclass
class VerifyReport:
    """Findings and statistics from verifying one binary."""

    name: str
    findings: list = field(default_factory=list)
    stats: dict = field(default_factory=dict)

    @property
    def ok(self):
        return not self.findings

    def by_code(self):
        counts = {}
        for finding in self.findings:
            counts[finding.code] = counts.get(finding.code, 0) + 1
        return counts

    def describe(self):
        status = "ok" if self.ok else f"{len(self.findings)} finding(s)"
        return f"{self.name}: {status}"


def _check_reloc(cfg, binary):
    """Relocated disp32 fields must address the data segment."""
    findings = []
    for address, instr in sorted(cfg.instrs.items()):
        for operand in instr.operands:
            if not isinstance(operand, Mem):
                continue
            absolute = operand.base is None and operand.index is None
            if not absolute and operand.disp < binary.text_base:
                continue  # small frame/pointer displacement, not a reloc
            disp = operand.disp
            if not binary.data_base <= disp < binary.data_end:
                findings.append(Finding(
                    "verify.reloc",
                    f"disp32 {disp:#x} outside the data segment "
                    f"[{binary.data_base:#x}, {binary.data_end:#x})",
                    address=address))
            elif disp % 4:
                findings.append(Finding(
                    "verify.reloc",
                    f"disp32 {disp:#x} is not word aligned",
                    address=address))
    return findings


def _check_roundtrip(cfg):
    """Re-encoding every decoded instruction must reproduce its bytes."""
    findings = []
    for address, instr in sorted(cfg.instrs.items()):
        original = instr.encoding
        try:
            produced = encode(instr)
            if produced != original:
                alternate = Instr(instr.mnemonic, *instr.operands,
                                  alternate_encoding=True)
                produced = encode(alternate)
        except EncodingError as exc:
            findings.append(Finding(
                "verify.roundtrip",
                f"decoded instruction cannot be re-encoded: {exc}",
                address=address))
            continue
        if produced != original:
            findings.append(Finding(
                "verify.roundtrip",
                f"re-encoding {instr!r} gives "
                f"{produced.hex()} != {bytes(original).hex()}",
                address=address))
    return findings


def verify_binary(binary, *, name=None, passes=None, baseline=None):
    """Run the verifier passes; returns a :class:`VerifyReport`.

    ``passes`` selects a subset of :data:`ALL_PASSES` (default: all).
    ``baseline`` — a :class:`~repro.backend.linker.LinkedBinary` or a
    prebuilt :class:`~repro.analysis.equivalence.EquivalenceProver` —
    enables the ``equivalence`` pass: the binary must carry a machine-
    checked semantics-preservation proof against it, and only proven-
    dead sled bytes are excused from ``verify.unreachable``. The report
    never references the binary, so it pickles cheaply across the
    population worker pool.
    """
    selected = ALL_PASSES if passes is None else tuple(passes)
    report = VerifyReport(name=name or f"binary@{binary.text_base:#x}")
    with span("verify", binary=report.name):
        return _verify(binary, report, selected, baseline)


def _subtract_spans(spans, excused):
    """``spans`` minus ``excused`` (both sorted ``(start, end)`` lists of
    absolute addresses); returns the remaining sub-spans."""
    remaining = []
    for start, end in spans:
        pieces = [(start, end)]
        for ex_start, ex_end in excused:
            next_pieces = []
            for p_start, p_end in pieces:
                if ex_end <= p_start or ex_start >= p_end:
                    next_pieces.append((p_start, p_end))
                    continue
                if p_start < ex_start:
                    next_pieces.append((p_start, ex_start))
                if ex_end < p_end:
                    next_pieces.append((ex_end, p_end))
            pieces = next_pieces
        remaining.extend(pieces)
    return remaining


def _equivalence_pass(binary, baseline, report):
    """Run the §6 proof; returns proven-dead sled spans (absolute)."""
    from repro.analysis.equivalence import EquivalenceProver

    prover = (baseline if isinstance(baseline, EquivalenceProver)
              else EquivalenceProver(baseline))
    proof = prover.prove(binary, variant_name=report.name)
    report.findings.extend(proof.findings)
    report.stats["equivalence"] = proof.stats
    return proof.sled_spans if proof.ok else []


def _verify(binary, report, selected, baseline=None):
    cfg = recover_cfg(binary)

    sled_spans = []
    if "equivalence" in selected and baseline is not None:
        sled_spans = _equivalence_pass(binary, baseline, report)

    if "cfg" in selected:
        report.findings.extend(cfg.findings)
        if cfg.unreachable_bytes:
            unexcused = _subtract_spans(cfg.unreachable_spans, sled_spans)
            leftover = sum(end - start for start, end in unexcused)
            if leftover:
                spans = ", ".join(f"[{start:#x}, {end:#x})"
                                  for start, end in unexcused[:4])
                report.findings.append(Finding(
                    "verify.unreachable",
                    f"{leftover} .text byte(s) reached by no "
                    f"recovery root: {spans}"))
    if "reloc" in selected:
        report.findings.extend(_check_reloc(cfg, binary))
    if "roundtrip" in selected:
        report.findings.extend(_check_roundtrip(cfg))
    if "stack" in selected or "defuse" in selected:
        for function in sorted(binary.function_ranges):
            if "stack" in selected:
                report.findings.extend(analyze_stack(cfg, function))
            if "defuse" in selected:
                report.findings.extend(analyze_defuse(cfg, function))

    equivalence_stats = report.stats.get("equivalence")
    report.stats = {
        "instructions": len(cfg.instrs),
        "text_bytes": len(binary.text),
        "functions": len(binary.function_ranges),
        "basic_blocks": len(cfg.basic_blocks()),
        "unreachable_bytes": cfg.unreachable_bytes,
        "findings_by_code": report.by_code(),
    }
    if equivalence_stats is not None:
        report.stats["equivalence"] = equivalence_stats
    metrics.inc("verify.binaries")
    if report.findings:
        metrics.inc("verify.findings", len(report.findings))
    return report


def require_verified(binary, *, name=None, passes=None):
    """Verify and raise :class:`~repro.errors.VerificationError` on any
    finding; returns the passing report otherwise."""
    report = verify_binary(binary, name=name, passes=passes)
    if not report.ok:
        raise VerificationError(
            f"static verification of {report.name} failed with "
            f"{len(report.findings)} finding(s)",
            context={
                "name": report.name,
                "findings": [f.describe() for f in report.findings[:20]],
                "by_code": report.by_code(),
            })
    return report


def _verify_chunk(items):
    """Worker-pool chunk function: ``items`` is a list of
    ``(name, binary, baseline)`` triples; returns one report per triple,
    in order."""
    return [verify_binary(binary, name=name, baseline=baseline)
            for name, binary, baseline in items]


def verify_population(binaries, *, names=None, workers=None,
                      force_pool=False, baseline=None):
    """Verify a batch of binaries, optionally over the worker pool.

    ``binaries`` is a sequence of :class:`LinkedBinary`; ``names`` an
    optional parallel sequence of report names. ``baseline``, when
    given, enables the ``equivalence`` pass for every binary (pass the
    shared baseline ``LinkedBinary`` — provers are rebuilt per worker).
    ``workers`` resolves exactly as in
    :func:`repro.pipeline.build_population` (default ``REPRO_WORKERS``);
    the serial path never pickles anything. Returns reports in input
    order.
    """
    from repro.pipeline import map_chunked  # lazy: avoid an import cycle

    binaries = list(binaries)
    if names is None:
        names = [f"binary[{index}]" for index in range(len(binaries))]
    items = [(name, binary, baseline)
             for name, binary in zip(names, binaries)]
    return map_chunked(_verify_chunk, items, workers=workers,
                       force_pool=force_pool)
