"""Differential validation: populations must match the baseline exactly."""

import pytest

from repro.check.differential import (
    DEFAULT_CHECK_WORKLOADS, Observation, require_equivalent,
    validate_population, validate_workload,
)
from repro.core.config import DiversificationConfig
from repro.errors import DivergenceError
from repro.pipeline import ProgramBuild

SEEDS = range(5)


@pytest.mark.parametrize("name", DEFAULT_CHECK_WORKLOADS)
def test_uniform_population_is_semantics_preserving(name):
    result = validate_workload(name, DiversificationConfig.uniform(0.5),
                               n_variants=len(SEEDS))
    assert result.ok, [r.describe() for r in result.reports]
    assert result.variants_validated == len(SEEDS)


def test_profile_guided_population_is_semantics_preserving():
    result = validate_workload(
        "429.mcf", DiversificationConfig.profile_guided(0.0, 0.30),
        n_variants=len(SEEDS))
    assert result.ok, [r.describe() for r in result.reports]


def test_composed_extensions_population(fib_build):
    config = DiversificationConfig.uniform(
        0.5, basic_block_shifting=True, encoding_substitution=True,
        function_reordering=True)
    result = validate_population(fib_build, config, SEEDS, inputs=(9,))
    assert result.ok, [r.describe() for r in result.reports]


class TestObservation:
    def test_equal_observations_have_no_divergence(self):
        a = Observation((1, 2, 3), 0, 100)
        assert a.first_divergence(Observation((1, 2, 3), 0, 250)) is None

    def test_first_diverging_output_is_named(self):
        a = Observation((1, 2, 3), 0)
        observable, want, got = a.first_divergence(Observation((1, 9, 3), 0))
        assert observable == "output[1]"
        assert (want, got) == (2, 9)

    def test_output_length_divergence(self):
        a = Observation((1, 2), 0)
        observable, _, _ = a.first_divergence(Observation((1, 2, 3), 0))
        assert observable == "len(output)"

    def test_exit_code_divergence(self):
        a = Observation((), 0)
        observable, _, _ = a.first_divergence(Observation((), 7))
        assert observable == "exit_code"


def test_require_equivalent_raises_typed_error():
    with pytest.raises(DivergenceError) as excinfo:
        require_equivalent(Observation((1,), 0), Observation((2,), 0),
                           program="demo")
    error = excinfo.value
    assert error.code == "check.divergence"
    assert error.context["observable"] == "output[0]"
    assert error.context["expected"] == 1
    assert error.context["actual"] == 2


WRONG_SOURCE = """
int main() {
  int n = input();
  print(n + 1);
  return 0;
}
"""

RIGHT_SOURCE = """
int main() {
  int n = input();
  print(n);
  return 0;
}
"""


def test_miscompiled_variant_is_reported_and_retried():
    build = ProgramBuild(RIGHT_SOURCE, "right")
    wrong = ProgramBuild(WRONG_SOURCE, "wrong").link_baseline()
    build.link_variant = lambda config, seed, profile=None, **kw: wrong
    result = validate_population(build, DiversificationConfig.uniform(0.5),
                                 range(2), inputs=(5,))
    assert not result.ok
    assert result.variants_validated == 0
    for report in result.reports:
        assert report.kind == "output"
        assert report.observable == "output[0]"
        # The fresh-seed retry diverged too: a genuine miscompile.
        assert report.genuine is True
        assert report.retry_seed is not None


def test_variant_error_becomes_report(fib_build):
    # A profile-guided build with no profile raises deep in the pipeline;
    # validate_population must surface it as a structured report, not an
    # exception.
    config = DiversificationConfig.profile_guided(0.1, 0.5)
    result = validate_population(fib_build, config, range(1), inputs=(5,))
    assert not result.ok
    report = result.reports[0]
    assert report.kind == "error"
    assert report.error_code == "profile.invalid"


class TestDeriveRetrySeed:
    """The fresh-seed retry must never re-draw a population's own seed."""

    def test_int_seed_keeps_historical_offset(self):
        from repro.check.differential import (
            RETRY_SEED_OFFSET, derive_retry_seed,
        )
        assert derive_retry_seed(7) == 7 + RETRY_SEED_OFFSET

    def test_non_int_seed_is_hashed_not_collapsed(self):
        from repro.check.differential import (
            RETRY_SEED_OFFSET, derive_retry_seed,
        )
        # The old behaviour mapped every non-int seed to the constant
        # 0 + RETRY_SEED_OFFSET — a value a string-seeded population
        # could legitimately contain, which would "retry" a divergence
        # with an in-population seed.
        assert derive_retry_seed("seed-a") != RETRY_SEED_OFFSET
        assert derive_retry_seed("seed-a") != derive_retry_seed("seed-b")
        assert derive_retry_seed("seed-a") == derive_retry_seed("seed-a")

    def test_retry_differs_from_original(self):
        from repro.check.differential import derive_retry_seed
        for seed in (0, 1, -5, 1_000_003, "x", (1, 2), None):
            assert derive_retry_seed(seed) != seed
