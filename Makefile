PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench check

test:
	$(PYTHON) -m pytest -x -q

bench:
	$(PYTHON) benchmarks/bench_runtime.py

check:
	$(PYTHON) benchmarks/check_campaign.py --quick
