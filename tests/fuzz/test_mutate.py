"""Mutator contract: validated output, determinism, real edits."""

import random

from repro.minc import analyze, ast_equal, parse, pretty_print

from repro.fuzz.generate import generate_program
from repro.fuzz.mutate import mutate_program


def _parent(seed=11):
    return generate_program(seed)


def test_mutants_parse_and_typecheck():
    parent = _parent()
    produced = 0
    for draw in range(30):
        mutant = mutate_program(random.Random(draw), parent)
        if mutant is None:
            continue
        produced += 1
        analyze(parse(pretty_print(mutant)))
    assert produced >= 20  # the validity filter must not reject everything


def test_mutation_is_deterministic():
    parent = _parent()
    first = mutate_program(random.Random(99), parent)
    second = mutate_program(random.Random(99), parent)
    assert (first is None) == (second is None)
    if first is not None:
        assert pretty_print(first) == pretty_print(second)


def test_mutants_actually_differ():
    parent = _parent()
    changed = 0
    for draw in range(30):
        mutant = mutate_program(random.Random(draw), parent)
        if mutant is not None and not ast_equal(mutant, parent):
            changed += 1
    assert changed >= 15  # most surviving mutants are real edits


def test_parent_is_never_modified():
    parent = _parent()
    before = pretty_print(parent)
    for draw in range(10):
        mutate_program(random.Random(draw), parent)
    assert pretty_print(parent) == before


def test_donor_splice_accepts_foreign_trees():
    parent = _parent(1)
    donor = _parent(2)
    for draw in range(40):
        mutant = mutate_program(random.Random(draw), parent, donor)
        if mutant is not None:
            analyze(parse(pretty_print(mutant)))
