"""Seeded variant generation.

A diversified *variant* is fully determined by (object unit, config,
profile, seed): the seed initializes one ``random.Random`` stream that
drives both random decisions of Algorithm 1 (insert? which candidate?)
and, when enabled, the basic-block-shift sled sizes. Populations are
simply ranges of seeds, which is how the paper builds its 25 binaries per
benchmark.
"""

from __future__ import annotations

import random
import weakref

from repro.errors import ProfileError
from repro.core.bbshift import shift_basic_blocks
from repro.core.nop_insertion import insert_nops, roll_table
from repro.core.policies import block_probability_function
from repro.core.substitution import (
    substitution_table, substitute_encodings,
)
from repro.backend.objfile import ObjectUnit
from repro.obs.trace import span

#: Per-unit NOP roll tables, keyed by id(unit). Each entry pins the
#: (config, profile) pair it was computed for — the policy is a pure
#: function of those — plus a weakref whose death callback evicts it.
_ROLL_TABLES = {}


def _unit_roll_tables(unit, config, profile, policy):
    """One :func:`~repro.core.nop_insertion.roll_table` per function,
    shared by every seed of a population."""
    key = id(unit)
    entry = _ROLL_TABLES.get(key)
    if (entry is not None and entry[0]() is unit
            and entry[1] is config and entry[2] is profile):
        return entry[3]
    candidates = config.nop_candidates
    tables = tuple(
        roll_table(fc, policy, candidates) if fc.diversifiable else None
        for fc in unit.functions)

    def _evict(_ref, _key=key):
        _ROLL_TABLES.pop(_key, None)

    _ROLL_TABLES[key] = (weakref.ref(unit, _evict), config, profile,
                         tables)
    return tables


def diversify_unit(unit, config, seed, profile=None):
    """Produce one diversified variant of an object unit.

    Transformation order: NOP insertion (Algorithm 1), then the optional
    §6 extensions — basic-block shifting, equivalent-encoding
    substitution, and function reordering. All draw from one seeded
    stream, so (unit, config, profile, seed) fully determines the
    variant.
    """
    rng = random.Random(seed)
    if config.requires_profile and profile is not None:
        _check_profile_matches(unit, profile)
    policy = block_probability_function(config, profile)
    candidates = config.nop_candidates
    tables = _unit_roll_tables(unit, config, profile, policy)
    variant = ObjectUnit(unit.name, data_symbols=dict(unit.data_symbols))
    with span("nop_insert", unit=unit.name, seed=seed):
        for function_code, table in zip(unit.functions, tables):
            diversified = insert_nops(function_code, candidates, rng,
                                      policy, table=table)
            if config.basic_block_shifting:
                diversified = shift_basic_blocks(
                    diversified, candidates, rng,
                    max_shift_bytes=config.max_shift_bytes)
            if config.encoding_substitution:
                # The table comes from the *original* function —
                # memoized across the whole population's seeds — and
                # selects the same items in the same order as the
                # per-item predicate.
                diversified = substitute_encodings(
                    diversified, rng,
                    table=substitution_table(function_code))
            variant.add_function(diversified)
        if config.function_reordering:
            reorderable = [fc for fc in variant.functions
                           if fc.diversifiable]
            fixed = [fc for fc in variant.functions
                     if not fc.diversifiable]
            rng.shuffle(reorderable)
            variant.functions = fixed + reorderable
    return variant


def _check_profile_matches(unit, profile):
    """Reject a profile whose block ids share nothing with the unit.

    A profile collected from a different program would silently label
    every block "cold" (count 0 → p_max everywhere), turning the paper's
    technique back into the naive uniform pass. A non-empty profile must
    mention at least one of the unit's functions.
    """
    profiled = {name for name, _label in profile.block_counts}
    if not profiled:
        return
    unit_functions = {fc.name for fc in unit.functions}
    if profiled.isdisjoint(unit_functions):
        raise ProfileError(
            f"profile does not match program: profiled functions "
            f"{sorted(profiled)[:4]} share nothing with unit "
            f"{sorted(unit_functions)[:4]}",
            context={"profiled_functions": sorted(profiled),
                     "unit_functions": sorted(unit_functions)})


def variant_seeds(population_size, base_seed=0):
    """The seed range used for a population of diversified binaries."""
    return range(base_seed, base_seed + population_size)
