#!/usr/bin/env python
"""The §5.2 case study, end to end, on the PHP-like interpreter.

1. Build the undiversified interpreter and *actually attack it*: both
   gadget scanners construct a ROP chain that runs on the simulator and
   hijacks the process exit code (the stand-in for the paper's
   arbitrary-code-execution payload).
2. Profile the interpreter on a CLBG training program, diversify at the
   paper's weakest setting (pNOP = 0-30%), and retry the attack using
   only the gadgets that survive at their original offsets.

Run:  python examples/attack_simulation.py
"""

from repro import DiversificationConfig, ProgramBuild, get_workload
from repro.security.attack import attempt_attack
from repro.security.gadgets import find_gadgets
from repro.security.microgadgets import MicroGadgetScanner
from repro.security.ropgadget import RopGadgetScanner
from repro.security.survivor import gadget_signatures
from repro.workloads.clbg import clbg_input

ATTACKER_EXIT_CODE = 42
VARIANTS = 5


def describe(result):
    if result.succeeded:
        return f"SUCCESS — {result.detail}"
    if result.feasible:
        return f"feasible but failed — {result.detail}"
    return f"infeasible — {result.detail}"


def main():
    workload = get_workload("php")
    build = ProgramBuild(workload.source, "php")
    baseline = build.link_baseline()
    scanners = (RopGadgetScanner(), MicroGadgetScanner())

    print(f"target: PHP-like interpreter, {len(baseline.text)} text "
          f"bytes, {len(find_gadgets(baseline.text))} gadgets\n")

    print("=== attacking the UNDIVERSIFIED binary ===")
    for scanner in scanners:
        result = attempt_attack(baseline, scanner,
                                exit_code=ATTACKER_EXIT_CODE)
        print(f"  {scanner.name:13s}: {describe(result)}")
        if result.chain:
            print(f"                 chain: "
                  f"{[hex(word) for word in result.chain]}")

    print("\n=== diversifying (pNOP=0-30%, trained on CLBG fasta) ===")
    profile = build.profile(clbg_input("fasta"), key="fasta")
    config = DiversificationConfig.profile_guided(0.0, 0.30)
    baseline_sigs = gadget_signatures(baseline.text)

    blocked = 0
    for seed in range(VARIANTS):
        variant = build.link_variant(config, seed, profile)
        variant_sigs = gadget_signatures(variant.text)
        surviving_offsets = {
            offset for offset, signature in variant_sigs.items()
            if baseline_sigs.get(offset) == signature
        }
        surviving = {offset: gadget for offset, gadget
                     in find_gadgets(variant.text).items()
                     if offset in surviving_offsets}
        print(f"\nvariant seed={seed}: "
              f"{len(surviving_offsets)} surviving gadgets")
        for scanner in scanners:
            result = attempt_attack(variant, scanner, gadgets=surviving,
                                    exit_code=ATTACKER_EXIT_CODE)
            print(f"  {scanner.name:13s}: {describe(result)}")
            if not result.succeeded:
                blocked += 1

    print(f"\n{blocked}/{VARIANTS * len(scanners)} attack attempts "
          "blocked on diversified binaries.")
    print("The interpreter still runs its scripts correctly:")
    check = build.simulate(build.link_variant(config, 0, profile),
                           clbg_input("pidigits"))
    print(f"  pidigits output on diversified VM: {check.output}")


if __name__ == "__main__":
    main()
