"""A ROPgadget-style classifying scanner.

Mirrors the decision procedure of Salwan's ROPgadget tool at the level the
paper uses it: enumerate gadgets, classify them into the operation classes
a payload needs, and report whether a working attack can be assembled.

Operation classes:

====================  ===========================================
class                 shape
====================  ===========================================
``load_const``        ``pop REG; ret``
``move``              ``mov REG, REG; ret``
``store_mem``         ``mov [REG(+disp)], REG; ret``
``load_mem``          ``mov REG, [REG(+disp)]; ret``
``arith``             ``add/sub/xor REG, REG; ret``
``incdec``            ``inc/dec REG; ret``
``zero``              ``xor REG, REG; ret``
``syscall``           ``int 0x80; ret``
``pivot``             ``xchg ESP, REG; ret`` / ``pop ESP; ret``
``ret``               bare ``ret``
====================  ===========================================

Only plain-``ret`` terminators feed chain construction (``ret imm16``
shifts the chain; indirect-branch terminators need a prepared register),
matching how the real tools rank gadget usefulness.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.x86.instructions import Imm, Mem
from repro.x86.registers import ESP, Register


@dataclass
class GadgetToolkit:
    """Classified gadgets, keyed by (class, detail)."""

    #: class name -> {detail: gadget}; detail is usually a register name.
    operations: dict = field(default_factory=dict)

    def add(self, kind, detail, gadget):
        bucket = self.operations.setdefault(kind, {})
        # Keep the shortest gadget per slot: fewer side effects.
        existing = bucket.get(detail)
        if existing is None or gadget.size < existing.size:
            bucket[detail] = gadget

    def get(self, kind, detail=None):
        bucket = self.operations.get(kind, {})
        if detail is None:
            return next(iter(bucket.values()), None)
        return bucket.get(detail)

    def has(self, kind, detail=None):
        return self.get(kind, detail) is not None

    def classes(self):
        return sorted(self.operations)

    def counts(self):
        return {kind: len(bucket)
                for kind, bucket in sorted(self.operations.items())}


def _plain_ret(gadget):
    terminator = gadget.terminator
    return terminator.mnemonic == "ret" and not terminator.operands


class RopGadgetScanner:
    """Classify a gadget set and judge attack feasibility."""

    name = "ropgadget"

    #: Maximum interior instructions for a useful gadget (side effects
    #: beyond this are too hard to control).
    max_body = 2

    def scan(self, gadgets):
        """Classify ``{offset: Gadget}``; returns a :class:`GadgetToolkit`."""
        toolkit = GadgetToolkit()
        for gadget in gadgets.values():
            if not _plain_ret(gadget):
                continue
            body = gadget.instrs[:-1]
            if len(body) > self.max_body:
                continue
            if len(body) == 0:
                toolkit.add("ret", "-", gadget)
                continue
            if len(body) == 1:
                self._classify_single(toolkit, body[0], gadget)
            elif all(instr.mnemonic == "pop" for instr in body):
                # pop;pop;ret — usable as a double load.
                names = tuple(op.operands[0].name for op in body
                              if isinstance(op.operands[0], Register))
                if len(names) == len(body):
                    toolkit.add("load_const2", names, gadget)
        return toolkit

    def _classify_single(self, toolkit, instr, gadget):
        ops = instr.operands
        if instr.mnemonic == "pop" and isinstance(ops[0], Register):
            if ops[0] is ESP:
                toolkit.add("pivot", "pop esp", gadget)
            else:
                toolkit.add("load_const", ops[0].name, gadget)
        elif instr.mnemonic == "mov" and len(ops) == 2:
            dst, src = ops
            if isinstance(dst, Register) and isinstance(src, Register):
                toolkit.add("move", (dst.name, src.name), gadget)
            elif isinstance(dst, Mem) and isinstance(src, Register):
                if dst.base is not None:
                    toolkit.add("store_mem", (dst.base.name, src.name),
                                gadget)
            elif isinstance(dst, Register) and isinstance(src, Mem):
                if src.base is not None:
                    toolkit.add("load_mem", (dst.name, src.base.name),
                                gadget)
            elif isinstance(dst, Register) and isinstance(src, Imm):
                toolkit.add("load_const_imm", (dst.name, src.value), gadget)
        elif instr.mnemonic in ("add", "sub", "xor") and len(ops) == 2:
            dst, src = ops
            if isinstance(dst, Register) and isinstance(src, Register):
                if instr.mnemonic == "xor" and dst is src:
                    toolkit.add("zero", dst.name, gadget)
                else:
                    toolkit.add("arith",
                                (instr.mnemonic, dst.name, src.name), gadget)
        elif instr.mnemonic in ("inc", "dec") and isinstance(ops[0], Register):
            toolkit.add("incdec", (instr.mnemonic, ops[0].name), gadget)
        elif instr.mnemonic == "int" and ops[0].value == 0x80:
            toolkit.add("syscall", "int 0x80", gadget)
        elif instr.mnemonic == "xchg" and len(ops) == 2:
            dst, src = ops
            if isinstance(dst, Register) and isinstance(src, Register):
                if ESP in (dst, src):
                    toolkit.add("pivot", "xchg esp", gadget)
                else:
                    toolkit.add("move", (dst.name, src.name), gadget)

    # -- feasibility --------------------------------------------------------

    def can_set_register(self, toolkit, register_name):
        """Can the attacker put an arbitrary value in a register?"""
        if toolkit.has("load_const", register_name):
            return True
        # pop X; ret + mov REG, X; ret also works.
        for (dst, src) in toolkit.operations.get("move", {}):
            if dst == register_name and toolkit.has("load_const", src):
                return True
        for names in toolkit.operations.get("load_const2", {}):
            if register_name in names:
                return True
        return False

    def can_set_register_to(self, toolkit, register_name, value):
        """Can the attacker leave this *specific* value in the register?

        Arbitrary-value control implies it; otherwise an exact-immediate
        ``mov reg, imm; ret`` or (for zero) an ``xor reg, reg; ret``
        suffices.
        """
        if self.can_set_register(toolkit, register_name):
            return True
        if toolkit.has("load_const_imm", (register_name, value)):
            return True
        if value == 0 and toolkit.has("zero", register_name):
            return True
        return False

    def boundary_counts(self, binary, gadgets=None, **scan_kwargs):
        """Convenience wrapper over :func:`boundary_scan` counts."""
        partition = boundary_scan(binary, gadgets, **scan_kwargs)
        return {"total": partition["total"],
                "intended": len(partition["intended"]),
                "unintended": len(partition["unintended"])}

    def attack_requirements(self, toolkit):
        """The checklist for the canonical syscall payload.

        The paper's attacks ultimately call a system function (mmap/
        mprotect-style); in our machine that is: EAX := syscall number
        (0 = exit), EBX := an attacker-chosen argument, trigger
        ``int 0x80``.
        """
        return {
            "set eax": self.can_set_register_to(toolkit, "eax", 0),
            "set ebx": self.can_set_register(toolkit, "ebx"),
            "syscall": toolkit.has("syscall"),
        }

    def is_attack_feasible(self, toolkit):
        return all(self.attack_requirements(toolkit).values())


# ---------------------------------------------------------------------------
# Intended-boundary vs unintended-offset classification (Table 4 framing)
# ---------------------------------------------------------------------------

def classify_gadget_boundaries(gadgets, boundaries, text_base=0):
    """Partition ``{offset: Gadget}`` by whether each gadget starts on a
    recovered instruction boundary.

    ``boundaries`` is a set of absolute instruction-start addresses
    (e.g. :attr:`repro.analysis.cfg.MachineCFG.boundaries`);
    ``text_base`` converts the scanner's text-relative offsets. The
    paper's Table 4 frames gadget elimination this way: unintended
    gadgets start mid-instruction and exist only because IA-32 decoding
    is unaligned, while intended-boundary gadgets are actual code.
    Returns ``(intended, unintended)`` dicts whose union is ``gadgets``.
    """
    intended = {}
    unintended = {}
    for offset, gadget in gadgets.items():
        bucket = (intended if text_base + offset in boundaries
                  else unintended)
        bucket[offset] = gadget
    return intended, unintended


def survivor_rates(baseline, variant, *, baseline_partition=None,
                   baseline_signatures=None, **scan_kwargs):
    """Surviving-gadget rates of one variant, split by the baseline's
    intended/unintended :func:`boundary_scan` partition.

    The paper's Table 2/3 evaluation: run the Survivor comparison
    (:mod:`repro.security.survivor`) between baseline and variant texts
    and report what fraction of the baseline's gadgets survive — overall
    and per boundary class, since unintended (mid-instruction) gadgets
    are exactly the ones diversification is supposed to destroy.
    ``baseline_partition`` / ``baseline_signatures`` may carry the
    precomputed baseline halves; population sweeps reuse them across
    every variant.
    """
    from repro.security.survivor import gadget_signatures, surviving_gadgets

    if baseline_partition is None:
        baseline_partition = boundary_scan(baseline, **scan_kwargs)
    if baseline_signatures is None:
        baseline_signatures = gadget_signatures(baseline.text,
                                                **scan_kwargs)
    count, offsets = surviving_gadgets(
        baseline.text, variant.text,
        original_signatures=baseline_signatures, **scan_kwargs)
    survivors = set(offsets)
    total = baseline_partition["total"]

    def bucket_rates(bucket):
        alive = len(set(bucket) & survivors)
        return {"total": len(bucket), "survivors": alive,
                "rate": alive / len(bucket) if bucket else 0.0}

    return {
        "baseline_gadgets": total,
        "survivors": count,
        "rate": count / total if total else 0.0,
        "intended": bucket_rates(baseline_partition["intended"]),
        "unintended": bucket_rates(baseline_partition["unintended"]),
    }


def boundary_scan(binary, gadgets=None, **scan_kwargs):
    """Gadget scan of a linked binary classified against the recovered
    CFG's instruction boundaries.

    Returns a dict with the full gadget set (``total`` count), the
    ``intended``/``unintended`` partition, and per-bucket classified
    toolkits. The total is exactly ``find_gadgets``' count — the
    classification never adds or removes gadgets.
    """
    from repro.analysis.cfg import recover_cfg  # lazy: no import cycle
    from repro.security.gadgets import find_gadgets

    if gadgets is None:
        gadgets = find_gadgets(binary.text, **scan_kwargs)
    cfg = recover_cfg(binary)
    intended, unintended = classify_gadget_boundaries(
        gadgets, cfg.boundaries, binary.text_base)
    scanner = RopGadgetScanner()
    return {
        "total": len(gadgets),
        "intended": intended,
        "unintended": unintended,
        "intended_toolkit": scanner.scan(intended),
        "unintended_toolkit": scanner.scan(unintended),
    }
