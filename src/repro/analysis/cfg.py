"""Machine-level CFG recovery by recursive-descent disassembly.

:func:`recover_cfg` decodes a :class:`~repro.backend.linker.LinkedBinary`
from its entry point and every code symbol, following fallthrough,
branch and call edges until no new instruction boundary appears. The
result is ground truth *reconstructed from the bytes alone* — the
linker's ``instr_records`` are never consulted — which is what lets the
verifier passes cross-check the emitted image against what the linker
claims it emitted, and lets the gadget scanner separate
intended-boundary gadgets from unintended-offset ones.

Recovery itself reports three structural defects as findings:

- ``verify.decode`` — reachable bytes that do not decode;
- ``verify.target`` — a branch/call/fallthrough target that is not a
  recovered instruction boundary inside ``.text``;
- ``verify.overlap`` — two recovered instructions sharing bytes (the
  signature of a displacement landing mid-instruction).

Unreachable byte spans are accounted but not flagged here; the verifier
decides whether they are acceptable (our linker emits none).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DecodingError, StaticAnalysisError
from repro.x86.decoder import decode
from repro.x86.instructions import JCC_MNEMONICS

#: Edge kinds on the recovered graph.
EDGE_FALLTHROUGH = "fallthrough"
EDGE_BRANCH = "branch"
EDGE_CALL = "call"


@dataclass(frozen=True)
class Finding:
    """One verifier defect, with a stable code from
    :data:`repro.errors.VERIFY_FINDING_CODES`."""

    code: str
    message: str
    address: int | None = None
    function: str | None = None

    def describe(self):
        where = f" at {self.address:#x}" if self.address is not None else ""
        who = f" in {self.function}" if self.function else ""
        return f"[{self.code}] {self.message}{where}{who}"


@dataclass
class MachineCFG:
    """The recovered instruction-level control-flow graph."""

    binary: object
    #: address -> decoded Instr (with ``size`` and ``encoding`` set).
    instrs: dict
    #: address -> tuple of (edge kind, target address).
    successors: dict
    #: recovery roots actually inside ``.text`` (entry + code symbols).
    roots: tuple
    #: structural defects found during recovery.
    findings: list
    #: sorted instruction boundaries.
    addresses: tuple = ()
    #: maximal (start, end) address spans of bytes no root reaches.
    unreachable_spans: list = field(default_factory=list)

    @property
    def boundaries(self):
        """Recovered instruction-start addresses as a set."""
        return self.instrs.keys()

    @property
    def unreachable_bytes(self):
        return sum(end - start for start, end in self.unreachable_spans)

    def intra_successors(self, address, start, end):
        """Successor addresses staying within [start, end), calls skipped.

        A ``call`` contributes only its fallthrough edge here — the
        callee is analyzed as its own function, and the per-function
        abstract interpretation assumes (and separately verifies) that
        every callee balances the stack.
        """
        out = []
        for kind, target in self.successors.get(address, ()):
            if kind == EDGE_CALL:
                continue
            if start <= target < end and target in self.instrs:
                out.append(target)
        return out

    def function_addresses(self, name):
        """Sorted instruction boundaries inside one linked function."""
        ranges = self.binary.function_ranges
        if name not in ranges:
            raise StaticAnalysisError(f"unknown function {name!r}",
                                      context={"function": name})
        start, end = ranges[name]
        return [a for a in self.addresses if start <= a < end]

    def basic_blocks(self):
        """Leader-based basic blocks as (start, end_address) pairs."""
        leaders = set(self.roots)
        for address, edges in self.successors.items():
            instr = self.instrs[address]
            for kind, target in edges:
                if kind == EDGE_BRANCH and target in self.instrs:
                    leaders.add(target)
            if instr.is_control_flow:
                following = address + instr.size
                if following in self.instrs:
                    leaders.add(following)
        blocks = []
        ordered = sorted(leaders & set(self.addresses))
        leader_set = set(ordered)
        for start in ordered:
            position = start
            while True:
                instr = self.instrs[position]
                position += instr.size
                if (instr.is_control_flow or position not in self.instrs
                        or position in leader_set):
                    break
            blocks.append((start, position))
        return blocks


def _edges(instr, address):
    """Outgoing (kind, target) edges of one decoded instruction."""
    following = address + instr.size
    mnemonic = instr.mnemonic
    if mnemonic in ("ret", "hlt", "jmp_reg"):
        return ()
    if mnemonic == "jmp":
        return ((EDGE_BRANCH, following + instr.operands[0].value),)
    if mnemonic == "call":
        return ((EDGE_CALL, following + instr.operands[0].value),
                (EDGE_FALLTHROUGH, following))
    if mnemonic in JCC_MNEMONICS:
        return ((EDGE_BRANCH, following + instr.operands[0].value),
                (EDGE_FALLTHROUGH, following))
    # call_reg, int and every ordinary instruction fall through.
    return ((EDGE_FALLTHROUGH, following),)


def recover_cfg(binary, roots=None):
    """Recursive-descent disassembly of ``binary`` into a
    :class:`MachineCFG`.

    ``roots`` defaults to the entry point plus every code symbol, so
    every function and every labeled block start is reached even when
    it is only the target of an indirect transfer. Decoding failures
    and bad targets become findings, never exceptions — the caller gets
    the best graph recoverable from the bytes.
    """
    text = binary.text
    base = binary.text_base
    end = binary.text_end
    if roots is None:
        roots = {binary.entry} | set(binary.code_symbols.values())
    findings = []
    in_text = []
    for root in sorted(set(roots)):
        if base <= root < end:
            in_text.append(root)
        elif root != end:  # a trailing empty label is degenerate, not bad
            findings.append(Finding(
                "verify.target", f"recovery root outside .text "
                f"[{base:#x}, {end:#x})", address=root))

    instrs = {}
    successors = {}
    failed = set()
    worklist = list(in_text)
    while worklist:
        address = worklist.pop()
        if address in instrs or address in failed:
            continue
        try:
            instr = decode(text, address - base)
        except DecodingError as exc:
            failed.add(address)
            findings.append(Finding("verify.decode",
                                    f"reachable bytes do not decode: {exc}",
                                    address=address))
            continue
        instrs[address] = instr
        edges = _edges(instr, address)
        successors[address] = edges
        for _kind, target in edges:
            if base <= target < end:
                if target not in instrs and target not in failed:
                    worklist.append(target)
            # out-of-text targets are flagged in the sweep below

    # Every edge must land on a recovered boundary inside .text. Targets
    # whose decode already failed carry a verify.decode finding; don't
    # double-report those.
    for address, edges in sorted(successors.items()):
        for kind, target in edges:
            if target in instrs or target in failed:
                continue
            findings.append(Finding(
                "verify.target",
                f"{kind} edge from {address:#x} targets {target:#x}, "
                f"which is not an instruction boundary in .text",
                address=address))

    addresses = tuple(sorted(instrs))

    # Overlap: consecutive boundaries closer together than the first
    # instruction is long share bytes — a displacement landed inside
    # another instruction's encoding.
    for first, second in zip(addresses, addresses[1:]):
        if first + instrs[first].size > second:
            findings.append(Finding(
                "verify.overlap",
                f"instruction at {first:#x} "
                f"({instrs[first].size} bytes) overlaps the boundary "
                f"at {second:#x}",
                address=second))

    # Unreachable accounting: bytes of .text covered by no recovered
    # instruction.
    covered = bytearray(len(text))
    for address, instr in instrs.items():
        start = address - base
        covered[start:start + instr.size] = b"\x01" * instr.size
    unreachable_spans = []
    span_start = None
    for offset, flag in enumerate(covered):
        if not flag and span_start is None:
            span_start = offset
        elif flag and span_start is not None:
            unreachable_spans.append((base + span_start, base + offset))
            span_start = None
    if span_start is not None:
        unreachable_spans.append((base + span_start, base + len(text)))

    return MachineCFG(binary=binary, instrs=instrs, successors=successors,
                      roots=tuple(in_text), findings=findings,
                      addresses=addresses,
                      unreachable_spans=unreachable_spans)
