"""Simulator semantics tests: flags, wrapping, stack, syscalls, faults.

Small code sequences are assembled by hand, linked into a minimal unit
and executed; register/flag state is inspected directly.
"""

import pytest

from repro.backend.linker import link
from repro.backend.objfile import FunctionCode, LabelDef, ObjectUnit
from repro.errors import SimulatorError
from repro.sim.machine import Machine, run_binary
from repro.sim.memory import STACK_TOP
from repro.x86.instructions import Imm, Instr, Label, Mem
from repro.x86.registers import EAX, EBX, ECX, EDX, ESP


def machine_for(instrs, data_symbols=None):
    """Link a raw instruction sequence as _start and build a Machine."""
    unit = ObjectUnit("test")
    items = [LabelDef("_start")] + list(instrs)
    unit.add_function(FunctionCode("_start", items))
    if data_symbols:
        unit.data_symbols.update(data_symbols)
    binary = link([unit])
    return Machine(binary), binary


def run_instrs(instrs, steps, data_symbols=None):
    machine, _binary = machine_for(instrs, data_symbols)
    for _ in range(steps):
        machine.step()
    return machine


class TestArithmeticFlags:
    def test_add_sets_carry_and_wraps(self):
        machine = run_instrs([
            Instr("mov", EAX, Imm(-1)),
            Instr("add", EAX, Imm(1)),
        ], 2)
        assert machine.regs[0] == 0
        assert machine.cf == 1
        assert machine.zf == 1

    def test_add_signed_overflow(self):
        machine = run_instrs([
            Instr("mov", EAX, Imm(0x7FFFFFFF)),
            Instr("add", EAX, Imm(1)),
        ], 2)
        assert machine.of == 1
        assert machine.sf == 1

    def test_sub_borrow(self):
        machine = run_instrs([
            Instr("mov", EAX, Imm(0)),
            Instr("sub", EAX, Imm(1)),
        ], 2)
        assert machine.regs[0] == 0xFFFFFFFF
        assert machine.cf == 1
        assert machine.sf == 1

    def test_cmp_does_not_write(self):
        machine = run_instrs([
            Instr("mov", EAX, Imm(5)),
            Instr("cmp", EAX, Imm(9)),
        ], 2)
        assert machine.regs[0] == 5
        assert machine.cf == 1  # 5 < 9 unsigned

    def test_logic_clears_carry_overflow(self):
        machine = run_instrs([
            Instr("mov", EAX, Imm(-1)),
            Instr("add", EAX, Imm(1)),   # sets CF
            Instr("and", EAX, Imm(0)),
        ], 3)
        assert machine.cf == 0 and machine.of == 0 and machine.zf == 1

    def test_inc_preserves_carry(self):
        machine = run_instrs([
            Instr("mov", EAX, Imm(-1)),
            Instr("add", EAX, Imm(1)),   # CF=1
            Instr("mov", EBX, Imm(5)),
            Instr("inc", EBX),
        ], 4)
        assert machine.cf == 1
        assert machine.regs[3] == 6

    def test_neg(self):
        machine = run_instrs([
            Instr("mov", EAX, Imm(5)),
            Instr("neg", EAX),
        ], 2)
        assert machine.regs[0] == 0xFFFFFFFB
        assert machine.cf == 1


class TestMulDiv:
    def test_imul_wraps(self):
        machine = run_instrs([
            Instr("mov", EAX, Imm(100000)),
            Instr("mov", ECX, Imm(100000)),
            Instr("imul", EAX, ECX),
        ], 3)
        assert machine.regs[0] == (100000 * 100000) & 0xFFFFFFFF

    def test_idiv_truncates_toward_zero(self):
        machine = run_instrs([
            Instr("mov", EAX, Imm(-7)),
            Instr("cdq"),
            Instr("mov", ECX, Imm(2)),
            Instr("idiv", ECX),
        ], 4)
        assert machine.regs[0] == (-3) & 0xFFFFFFFF
        assert machine.regs[2] == (-1) & 0xFFFFFFFF

    def test_idiv_by_zero_defined_as_zero(self):
        machine = run_instrs([
            Instr("mov", EAX, Imm(9)),
            Instr("cdq"),
            Instr("mov", ECX, Imm(0)),
            Instr("idiv", ECX),
        ], 4)
        assert machine.regs[0] == 0
        assert machine.regs[2] == 0

    def test_cdq_sign_extends(self):
        machine = run_instrs([
            Instr("mov", EAX, Imm(-5)),
            Instr("cdq"),
        ], 2)
        assert machine.regs[2] == 0xFFFFFFFF


class TestShifts:
    def test_sar_arithmetic(self):
        machine = run_instrs([
            Instr("mov", EAX, Imm(-8)),
            Instr("sar", EAX, Imm(1)),
        ], 2)
        assert machine.regs[0] == (-4) & 0xFFFFFFFF

    def test_shr_logical(self):
        machine = run_instrs([
            Instr("mov", EAX, Imm(-8)),
            Instr("shr", EAX, Imm(1)),
        ], 2)
        assert machine.regs[0] == 0x7FFFFFFC

    def test_shift_count_masked(self):
        machine = run_instrs([
            Instr("mov", EAX, Imm(1)),
            Instr("mov", ECX, Imm(33)),
            Instr("shl", EAX, ECX),
        ], 3)
        assert machine.regs[0] == 2

    def test_zero_count_leaves_flags(self):
        machine = run_instrs([
            Instr("mov", EAX, Imm(-1)),
            Instr("add", EAX, Imm(1)),   # ZF=1
            Instr("mov", ECX, Imm(0)),
            Instr("mov", EBX, Imm(4)),
            Instr("shl", EBX, ECX),
        ], 5)
        assert machine.zf == 1


class TestStack:
    def test_push_pop(self):
        machine = run_instrs([
            Instr("mov", EAX, Imm(123)),
            Instr("push", EAX),
            Instr("pop", EBX),
        ], 3)
        assert machine.regs[3] == 123

    def test_push_moves_esp_down(self):
        machine = run_instrs([Instr("push", Imm(1))], 1)
        assert machine.regs[4] == STACK_TOP - 64 - 4

    def test_ret_imm_pops_extra(self):
        # call callee with one stack argument; callee returns with ret 4,
        # so the caller must NOT clean the stack itself.
        unit = ObjectUnit("t")
        unit.add_function(FunctionCode("_start", [
            LabelDef("_start"),
            Instr("push", Imm(111)),
            Instr("call", Label("callee")),
            Instr("mov", EBX, EAX),
            Instr("mov", EAX, Imm(0)),
            Instr("int", Imm(0x80)),
        ]))
        unit.add_function(FunctionCode("callee", [
            LabelDef("callee"),
            Instr("mov", EAX, Mem(base=ESP, disp=4)),
            Instr("ret", Imm(4)),
        ]))
        machine = Machine(link([unit]))
        esp_before = machine.regs[4]
        result = machine.run()
        assert result.exit_code == 111
        # The argument push and the callee's ret 4 balance exactly.
        assert machine.regs[4] == esp_before


class TestControlFlowAndSyscalls:
    def test_exit_syscall(self):
        result = run_binary(_exit_binary(7))
        assert result.exit_code == 7

    def test_print_syscall_is_signed(self):
        unit = ObjectUnit("t")
        unit.add_function(FunctionCode("_start", [
            LabelDef("_start"),
            Instr("mov", EBX, Imm(-9)),
            Instr("mov", EAX, Imm(1)),
            Instr("int", Imm(0x80)),
            Instr("mov", EBX, Imm(0)),
            Instr("mov", EAX, Imm(0)),
            Instr("int", Imm(0x80)),
        ]))
        result = run_binary(link([unit]))
        assert result.output == [-9]

    def test_read_syscall_consumes_inputs(self):
        unit = ObjectUnit("t")
        unit.add_function(FunctionCode("_start", [
            LabelDef("_start"),
            Instr("mov", EAX, Imm(2)),
            Instr("int", Imm(0x80)),
            Instr("mov", EBX, EAX),
            Instr("mov", EAX, Imm(0)),
            Instr("int", Imm(0x80)),
        ]))
        result = run_binary(link([unit]), input_values=[55])
        assert result.exit_code == 55

    def test_unknown_syscall_faults(self):
        unit = ObjectUnit("t")
        unit.add_function(FunctionCode("_start", [
            LabelDef("_start"),
            Instr("mov", EAX, Imm(99)),
            Instr("int", Imm(0x80)),
        ]))
        with pytest.raises(SimulatorError):
            run_binary(link([unit]))

    def test_hlt_faults(self):
        unit = ObjectUnit("t")
        unit.add_function(FunctionCode("_start", [
            LabelDef("_start"), Instr("hlt"),
        ]))
        with pytest.raises(SimulatorError):
            run_binary(link([unit]))

    def test_step_limit(self):
        unit = ObjectUnit("t")
        unit.add_function(FunctionCode("_start", [
            LabelDef("_start"),
            LabelDef("spin"),
            Instr("jmp", Label("spin")),
        ]))
        with pytest.raises(SimulatorError):
            run_binary(link([unit]), max_steps=100)


class TestMemoryProtection:
    def test_write_to_text_faults(self):
        machine, binary = machine_for([
            Instr("mov", EAX, Imm(0x08048000)),
            Instr("mov", Mem(base=EAX), EAX),
        ])
        machine.step()
        with pytest.raises(SimulatorError) as excinfo:
            machine.step()
        assert "W^X" in str(excinfo.value)

    def test_wild_read_faults(self):
        machine, _binary = machine_for([
            Instr("mov", EAX, Imm(0x100)),
            Instr("mov", EBX, Mem(base=EAX)),
        ])
        machine.step()
        with pytest.raises(SimulatorError):
            machine.step()

    def test_execute_outside_text_faults(self):
        machine, _binary = machine_for([
            Instr("mov", EAX, Imm(0x1000)),
            Instr("jmp_reg", EAX),
        ])
        machine.step()
        machine.step()
        with pytest.raises(SimulatorError):
            machine.step()

    def test_data_initializers_loaded(self):
        machine, binary = machine_for([
            Instr("mov", EAX, Mem(symbol="table", disp=4)),
        ], data_symbols={"table": [10, 20, 30]})
        machine.step()
        assert machine.regs[0] == 20


def _exit_binary(code):
    unit = ObjectUnit("t")
    unit.add_function(FunctionCode("_start", [
        LabelDef("_start"),
        Instr("mov", EBX, Imm(code)),
        Instr("mov", EAX, Imm(0)),
        Instr("int", Imm(0x80)),
    ]))
    return link([unit])
