"""444.namd — molecular dynamics.

The original computes pairwise non-bonded forces inside a cutoff:
multiply-heavy inner loops over particle coordinates with accumulation.
Fixed-point coordinates stand in for doubles; the pair loop keeps the
multiply-per-load ratio high.
"""

from repro.workloads.base import Workload
from repro.workloads.coldcode import bank_for

SOURCE = """
// 444.namd miniature: pairwise force accumulation with a cutoff.
int pos_x[256];
int pos_y[256];
int force_x[256];
int force_y[256];

void init_particles(int n, int seed) {
  int i;
  int x = seed;
  for (i = 0; i < n; i++) {
    x = (x * 1103515245 + 12345) & 2147483647;
    pos_x[i] = x % 4096;
    x = (x * 1103515245 + 12345) & 2147483647;
    pos_y[i] = x % 4096;
    force_x[i] = 0;
    force_y[i] = 0;
  }
}

void compute_forces(int n, int cutoff2) {
  int i;
  int j;
  // Hot loop: O(n^2) pair interactions, multiply-dominated.
  for (i = 0; i < n; i++) {
    int xi = pos_x[i];
    int yi = pos_y[i];
    int fx = 0;
    int fy = 0;
    for (j = 0; j < n; j++) {
      int dx = pos_x[j] - xi;
      int dy = pos_y[j] - yi;
      int r2 = dx * dx + dy * dy;
      if (r2 > 0 && r2 < cutoff2) {
        int inv = 16384 / (1 + (r2 >> 6));
        fx += (dx * inv) >> 8;
        fy += (dy * inv) >> 8;
      }
    }
    force_x[i] = fx;
    force_y[i] = fy;
  }
}

void integrate(int n) {
  int i;
  for (i = 0; i < n; i++) {
    pos_x[i] = (pos_x[i] + (force_x[i] >> 4)) & 4095;
    pos_y[i] = (pos_y[i] + (force_y[i] >> 4)) & 4095;
  }
}

int main() {
  int particles = input();
  int steps = input();
  int seed = input();
  if (particles > 256) { particles = 256; }
  init_particles(particles, seed);
  int t;
  for (t = 0; t < steps; t++) {
    compute_forces(particles, 600000);
    integrate(particles);
  }
  int sum = 0;
  int i;
  for (i = 0; i < particles; i++) {
    sum = (sum + pos_x[i] * 3 + pos_y[i]) & 16777215;
  }
  print(sum);
  return 0;
}
"""

WORKLOAD = Workload(
    name="444.namd",
    source=SOURCE + bank_for("444.namd"),
    train_input=(48, 3, 5),
    ref_input=(80, 4, 31),
    character="pairwise force loops: multiply-heavy with divisions",
)
