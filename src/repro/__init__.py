"""repro — reproduction of "Profile-guided Automated Software Diversity"
(Homescu, Neisius, Larsen, Brunthaler, Franz; CGO 2013).

The package implements the paper's full pipeline from scratch:

- a C-like source language and optimizing compiler targeting x86-32
  (:mod:`repro.minc`, :mod:`repro.ir`, :mod:`repro.opt`,
  :mod:`repro.backend`, :mod:`repro.x86`),
- LLVM-style optimal edge profiling (:mod:`repro.profiling`),
- the profile-guided NOP-insertion diversifier — the paper's
  contribution (:mod:`repro.core`),
- an x86-32 machine simulator with a calibrated cycle model
  (:mod:`repro.sim`),
- gadget/Survivor/attack security analyses (:mod:`repro.security`),
- the 19 SPEC-like workloads and the PHP case study
  (:mod:`repro.workloads`).

Quick start::

    from repro import ProgramBuild, DiversificationConfig

    build = ProgramBuild(source_text, "myprogram")
    profile = build.profile(train_input)
    config = DiversificationConfig.profile_guided(0.0, 0.30)
    binary = build.link_variant(config, seed=1, profile=profile)
    result = build.simulate(binary, ref_input)
"""

from repro.core.config import DiversificationConfig, PAPER_CONFIGS
from repro.core.probability import (
    LinearProfileProbability, LogProfileProbability, UniformProbability,
)
from repro.pipeline import ProgramBuild, build_ir, compile_and_link
from repro.profiling.profile_data import ProfileData
from repro.sim.costs import CostModel, DEFAULT_COST_MODEL
from repro.workloads.registry import SPEC_ORDER, get_workload

__version__ = "1.0.0"

__all__ = [
    "DiversificationConfig", "PAPER_CONFIGS",
    "LinearProfileProbability", "LogProfileProbability",
    "UniformProbability",
    "ProgramBuild", "build_ir", "compile_and_link",
    "ProfileData", "CostModel", "DEFAULT_COST_MODEL",
    "SPEC_ORDER", "get_workload",
    "__version__",
]
