"""Computer Language Benchmarks Game programs, as interpreter bytecode.

The paper has no profiler-friendly training input for PHP, so it profiles
the interpreter on seven CLBG benchmarks — "each benchmark stresses
different parts of the PHP interpreter (function calls, arrays, loop
operations)". These are those seven programs, written for the bytecode VM
in :mod:`repro.workloads.php`:

- ``binarytrees``    — recursive tree checksums (CALL/RET pressure),
- ``fannkuchredux``  — permutation prefix flips (heap array pressure),
- ``mandelbrot``     — fixed-point complex iteration (MUL/SHR),
- ``nbody``          — pairwise gravity steps (arith + heap),
- ``pidigits``       — spigot digits of π (DIV/MOD),
- ``spectralnorm``   — matrix-free power iteration (DIV + loops),
- ``fasta``          — weighted random sequence emission (branches).

Each yields a distinct opcode-handler heat profile, which is exactly what
the case study needs from its training set.
"""

from __future__ import annotations

from repro.errors import WorkloadError

#: Mnemonic → opcode, mirroring the VM in repro.workloads.php.
OPCODES = {
    "HALT": 0, "PUSH": 1, "ADD": 2, "SUB": 3, "MUL": 4, "DIV": 5,
    "MOD": 6, "NEG": 7, "DUP": 8, "POP": 9, "SWAP": 10, "LOAD": 11,
    "STORE": 12, "ALOAD": 13, "ASTORE": 14, "JMP": 15, "JZ": 16,
    "JNZ": 17, "LT": 18, "LE": 19, "EQ": 20, "NE": 21, "AND": 22,
    "OR": 23, "XOR": 24, "SHL": 25, "SHR": 26, "PRINT": 27, "READ": 28,
    "INC": 29, "CALL": 30, "RET": 31,
}

#: Opcodes followed by one inline operand word.
_HAS_OPERAND = {"PUSH", "LOAD", "STORE", "JMP", "JZ", "JNZ", "INC", "CALL"}


class BytecodeAssembler:
    """Two-pass assembler: mnemonics + labels → VM code words."""

    def __init__(self):
        self._items = []   # ("op", mnemonic, operand) | ("label", name)

    def label(self, name):
        self._items.append(("label", name))
        return self

    def emit(self, mnemonic, operand=None):
        mnemonic = mnemonic.upper()
        if mnemonic not in OPCODES:
            raise WorkloadError(f"unknown VM mnemonic {mnemonic!r}")
        needs = mnemonic in _HAS_OPERAND
        if needs and operand is None:
            raise WorkloadError(f"{mnemonic} needs an operand")
        if not needs and operand is not None:
            raise WorkloadError(f"{mnemonic} takes no operand")
        self._items.append(("op", mnemonic, operand))
        return self

    def assemble(self):
        """Resolve labels; returns the flat code-word list."""
        addresses = {}
        position = 0
        for item in self._items:
            if item[0] == "label":
                if item[1] in addresses:
                    raise WorkloadError(f"duplicate label {item[1]!r}")
                addresses[item[1]] = position
            else:
                position += 2 if item[1] in _HAS_OPERAND else 1
        code = []
        for item in self._items:
            if item[0] == "label":
                continue
            _kind, mnemonic, operand = item
            code.append(OPCODES[mnemonic])
            if mnemonic in _HAS_OPERAND:
                if isinstance(operand, str):
                    if operand not in addresses:
                        raise WorkloadError(f"undefined label {operand!r}")
                    operand = addresses[operand]
                code.append(operand)
        return code


def script_input(code, extra_inputs=()):
    """Wire a code-word list into the VM's input vector."""
    return tuple([len(code)] + list(code) + list(extra_inputs))


# ---------------------------------------------------------------------------
# The seven programs. Globals are numbered VM variables; the comments name
# them. All programs print one checksum so runs are verifiable.
# ---------------------------------------------------------------------------

def binarytrees(max_depth=6):
    """Recursive tree-checksum program: CALL/RET-heavy."""
    asm = BytecodeAssembler()
    # main: total(g0) = 0; for depth(g1) in 1..max_depth: total += build(depth)
    asm.emit("PUSH", 0).emit("STORE", 0)
    asm.emit("PUSH", 1).emit("STORE", 1)
    asm.label("loop")
    asm.emit("LOAD", 1).emit("PUSH", max_depth).emit("LE").emit("JZ", "done")
    asm.emit("LOAD", 1).emit("CALL", "build")
    asm.emit("LOAD", 0).emit("ADD").emit("STORE", 0)
    asm.emit("INC", 1)
    asm.emit("JMP", "loop")
    asm.label("done")
    asm.emit("LOAD", 0).emit("PRINT").emit("HALT")
    # build(d): stack [d] -> [nodes(d)] where nodes(d) = 2^(d+1)-1
    asm.label("build")
    asm.emit("DUP").emit("JZ", "leaf")
    asm.emit("DUP").emit("PUSH", 1).emit("SUB").emit("CALL", "build")
    asm.emit("SWAP").emit("PUSH", 1).emit("SUB").emit("CALL", "build")
    asm.emit("ADD").emit("PUSH", 1).emit("ADD").emit("RET")
    asm.label("leaf")
    asm.emit("POP").emit("PUSH", 1).emit("RET")
    return script_input(asm.assemble())


def fannkuchredux(n=6, flips=120):
    """Prefix-flip program over a heap permutation: array-op-heavy."""
    asm = BytecodeAssembler()
    # heap[0..n-1] = rotated identity permutation
    asm.emit("PUSH", 0).emit("STORE", 0)                 # i = 0
    asm.label("init")
    asm.emit("LOAD", 0).emit("PUSH", n).emit("LT").emit("JZ", "flip_start")
    # heap[i] = (i*7+3) % n  (a fixed scrambled permutation-ish start)
    asm.emit("LOAD", 0).emit("PUSH", 7).emit("MUL").emit("PUSH", 3)
    asm.emit("ADD").emit("PUSH", n).emit("MOD")
    asm.emit("LOAD", 0).emit("ASTORE")
    asm.emit("INC", 0).emit("JMP", "init")
    asm.label("flip_start")
    asm.emit("PUSH", 0).emit("STORE", 1)                 # flip counter g1
    asm.emit("PUSH", 0).emit("STORE", 2)                 # round g2
    asm.label("round")
    asm.emit("LOAD", 2).emit("PUSH", flips).emit("LT").emit("JZ", "end")
    # reverse prefix of length (heap[0] % n) + 2 via g3=lo, g4=hi
    asm.emit("PUSH", 0).emit("ALOAD").emit("PUSH", n).emit("MOD")
    asm.emit("PUSH", 1).emit("ADD").emit("STORE", 4)     # hi
    asm.emit("PUSH", 0).emit("STORE", 3)                 # lo
    asm.label("rev")
    asm.emit("LOAD", 3).emit("LOAD", 4).emit("LT").emit("JZ", "revdone")
    # swap heap[lo], heap[hi]
    asm.emit("LOAD", 3).emit("ALOAD")                    # [a]
    asm.emit("LOAD", 4).emit("ALOAD")                    # [a b]
    asm.emit("LOAD", 3).emit("ASTORE")                   # heap[lo]=b, [a]
    asm.emit("LOAD", 4).emit("ASTORE")                   # heap[hi]=a
    asm.emit("INC", 3)
    asm.emit("LOAD", 4).emit("PUSH", 1).emit("SUB").emit("STORE", 4)
    asm.emit("JMP", "rev")
    asm.label("revdone")
    asm.emit("INC", 1)
    asm.emit("INC", 2)
    asm.emit("JMP", "round")
    asm.label("end")
    # checksum = sum(heap[0..n-1]) + flips performed
    asm.emit("PUSH", 0).emit("STORE", 0)
    asm.emit("PUSH", 0).emit("STORE", 5)
    asm.label("sum")
    asm.emit("LOAD", 0).emit("PUSH", n).emit("LT").emit("JZ", "out")
    asm.emit("LOAD", 5).emit("LOAD", 0).emit("ALOAD").emit("ADD")
    asm.emit("STORE", 5)
    asm.emit("INC", 0).emit("JMP", "sum")
    asm.label("out")
    asm.emit("LOAD", 5).emit("LOAD", 1).emit("ADD").emit("PRINT")
    asm.emit("HALT")
    return script_input(asm.assemble())


def mandelbrot(size=8, max_iter=20):
    """Fixed-point (scale 128) z^2+c escape iteration: MUL/SHR-heavy."""
    asm = BytecodeAssembler()
    # g0=px g1=py g2=zx g3=zy g4=iter g5=inside-count g6=cx g7=cy g8=tmp
    asm.emit("PUSH", 0).emit("STORE", 5)
    asm.emit("PUSH", 0).emit("STORE", 1)
    asm.label("yloop")
    asm.emit("LOAD", 1).emit("PUSH", size).emit("LT").emit("JZ", "done")
    asm.emit("PUSH", 0).emit("STORE", 0)
    asm.label("xloop")
    asm.emit("LOAD", 0).emit("PUSH", size).emit("LT").emit("JZ", "xdone")
    # c = ((px*256/size)-192, (py*256/size)-128) in 1/128 units
    asm.emit("LOAD", 0).emit("PUSH", 256).emit("MUL")
    asm.emit("PUSH", size).emit("DIV").emit("PUSH", 192).emit("SUB")
    asm.emit("STORE", 6)
    asm.emit("LOAD", 1).emit("PUSH", 256).emit("MUL")
    asm.emit("PUSH", size).emit("DIV").emit("PUSH", 128).emit("SUB")
    asm.emit("STORE", 7)
    asm.emit("PUSH", 0).emit("STORE", 2)
    asm.emit("PUSH", 0).emit("STORE", 3)
    asm.emit("PUSH", 0).emit("STORE", 4)
    asm.label("iter")
    asm.emit("LOAD", 4).emit("PUSH", max_iter).emit("LT").emit("JZ", "inside")
    # tmp = (zx*zx - zy*zy)/128 + cx
    asm.emit("LOAD", 2).emit("LOAD", 2).emit("MUL")
    asm.emit("LOAD", 3).emit("LOAD", 3).emit("MUL").emit("SUB")
    asm.emit("PUSH", 7).emit("SHR").emit("LOAD", 6).emit("ADD")
    asm.emit("STORE", 8)
    # zy = 2*zx*zy/128 + cy ; zx = tmp
    asm.emit("LOAD", 2).emit("LOAD", 3).emit("MUL")
    asm.emit("PUSH", 6).emit("SHR").emit("LOAD", 7).emit("ADD")
    asm.emit("STORE", 3)
    asm.emit("LOAD", 8).emit("STORE", 2)
    # escape if zx*zx + zy*zy > 4*128*128
    asm.emit("LOAD", 2).emit("LOAD", 2).emit("MUL")
    asm.emit("LOAD", 3).emit("LOAD", 3).emit("MUL").emit("ADD")
    asm.emit("PUSH", 65536).emit("LT").emit("JZ", "escaped")
    asm.emit("INC", 4)
    asm.emit("JMP", "iter")
    asm.label("inside")
    asm.emit("INC", 5)
    asm.label("escaped")
    asm.emit("INC", 0)
    asm.emit("JMP", "xloop")
    asm.label("xdone")
    asm.emit("INC", 1)
    asm.emit("JMP", "yloop")
    asm.label("done")
    asm.emit("LOAD", 5).emit("PRINT").emit("HALT")
    return script_input(asm.assemble())


def nbody(bodies=4, steps=10):
    """Pairwise gravity in the heap (x,y,vx,vy per body): arith+heap."""
    asm = BytecodeAssembler()
    # heap layout: body i at [4i..4i+3]; g0=i g1=j g2=step g3=dx g4=dy g5=d2
    asm.emit("PUSH", 0).emit("STORE", 0)
    asm.label("init")
    asm.emit("LOAD", 0).emit("PUSH", bodies).emit("LT").emit("JZ", "steps")
    asm.emit("LOAD", 0).emit("PUSH", 37).emit("MUL").emit("PUSH", 64)
    asm.emit("MOD").emit("LOAD", 0).emit("PUSH", 4).emit("MUL")
    asm.emit("ASTORE")                                    # x
    asm.emit("LOAD", 0).emit("PUSH", 53).emit("MUL").emit("PUSH", 64)
    asm.emit("MOD")
    asm.emit("LOAD", 0).emit("PUSH", 4).emit("MUL").emit("PUSH", 1)
    asm.emit("ADD").emit("ASTORE")                        # y
    asm.emit("PUSH", 0)
    asm.emit("LOAD", 0).emit("PUSH", 4).emit("MUL").emit("PUSH", 2)
    asm.emit("ADD").emit("ASTORE")                        # vx
    asm.emit("PUSH", 0)
    asm.emit("LOAD", 0).emit("PUSH", 4).emit("MUL").emit("PUSH", 3)
    asm.emit("ADD").emit("ASTORE")                        # vy
    asm.emit("INC", 0).emit("JMP", "init")
    asm.label("steps")
    asm.emit("PUSH", 0).emit("STORE", 2)
    asm.label("step")
    asm.emit("LOAD", 2).emit("PUSH", steps).emit("LT").emit("JZ", "report")
    asm.emit("PUSH", 0).emit("STORE", 0)
    asm.label("iloop")
    asm.emit("LOAD", 0).emit("PUSH", bodies).emit("LT").emit("JZ", "advance")
    asm.emit("PUSH", 0).emit("STORE", 1)
    asm.label("jloop")
    asm.emit("LOAD", 1).emit("PUSH", bodies).emit("LT").emit("JZ", "inext")
    asm.emit("LOAD", 0).emit("LOAD", 1).emit("EQ").emit("JNZ", "jnext")
    # dx = x[j]-x[i]; dy = y[j]-y[i]
    asm.emit("LOAD", 1).emit("PUSH", 4).emit("MUL").emit("ALOAD")
    asm.emit("LOAD", 0).emit("PUSH", 4).emit("MUL").emit("ALOAD")
    asm.emit("SUB").emit("STORE", 3)
    asm.emit("LOAD", 1).emit("PUSH", 4).emit("MUL").emit("PUSH", 1)
    asm.emit("ADD").emit("ALOAD")
    asm.emit("LOAD", 0).emit("PUSH", 4).emit("MUL").emit("PUSH", 1)
    asm.emit("ADD").emit("ALOAD")
    asm.emit("SUB").emit("STORE", 4)
    # d2 = dx*dx + dy*dy + 16 ; vx[i] += dx*16/d2 ; vy[i] += dy*16/d2
    asm.emit("LOAD", 3).emit("LOAD", 3).emit("MUL")
    asm.emit("LOAD", 4).emit("LOAD", 4).emit("MUL").emit("ADD")
    asm.emit("PUSH", 16).emit("ADD").emit("STORE", 5)
    asm.emit("LOAD", 0).emit("PUSH", 4).emit("MUL").emit("PUSH", 2)
    asm.emit("ADD").emit("ALOAD")
    asm.emit("LOAD", 3).emit("PUSH", 16).emit("MUL").emit("LOAD", 5)
    asm.emit("DIV").emit("ADD")
    asm.emit("LOAD", 0).emit("PUSH", 4).emit("MUL").emit("PUSH", 2)
    asm.emit("ADD").emit("ASTORE")
    asm.emit("LOAD", 0).emit("PUSH", 4).emit("MUL").emit("PUSH", 3)
    asm.emit("ADD").emit("ALOAD")
    asm.emit("LOAD", 4).emit("PUSH", 16).emit("MUL").emit("LOAD", 5)
    asm.emit("DIV").emit("ADD")
    asm.emit("LOAD", 0).emit("PUSH", 4).emit("MUL").emit("PUSH", 3)
    asm.emit("ADD").emit("ASTORE")
    asm.label("jnext")
    asm.emit("INC", 1).emit("JMP", "jloop")
    asm.label("inext")
    asm.emit("INC", 0).emit("JMP", "iloop")
    asm.label("advance")
    # x[i] += vx[i]; y[i] += vy[i] for all i
    asm.emit("PUSH", 0).emit("STORE", 0)
    asm.label("adv")
    asm.emit("LOAD", 0).emit("PUSH", bodies).emit("LT").emit("JZ", "snext")
    asm.emit("LOAD", 0).emit("PUSH", 4).emit("MUL").emit("ALOAD")
    asm.emit("LOAD", 0).emit("PUSH", 4).emit("MUL").emit("PUSH", 2)
    asm.emit("ADD").emit("ALOAD").emit("ADD")
    asm.emit("LOAD", 0).emit("PUSH", 4).emit("MUL").emit("ASTORE")
    asm.emit("LOAD", 0).emit("PUSH", 4).emit("MUL").emit("PUSH", 1)
    asm.emit("ADD").emit("ALOAD")
    asm.emit("LOAD", 0).emit("PUSH", 4).emit("MUL").emit("PUSH", 3)
    asm.emit("ADD").emit("ALOAD").emit("ADD")
    asm.emit("LOAD", 0).emit("PUSH", 4).emit("MUL").emit("PUSH", 1)
    asm.emit("ADD").emit("ASTORE")
    asm.emit("INC", 0).emit("JMP", "adv")
    asm.label("snext")
    asm.emit("INC", 2).emit("JMP", "step")
    asm.label("report")
    # checksum = sum of x coordinates
    asm.emit("PUSH", 0).emit("STORE", 6)
    asm.emit("PUSH", 0).emit("STORE", 0)
    asm.label("chk")
    asm.emit("LOAD", 0).emit("PUSH", bodies).emit("LT").emit("JZ", "fin")
    asm.emit("LOAD", 6)
    asm.emit("LOAD", 0).emit("PUSH", 4).emit("MUL").emit("ALOAD")
    asm.emit("ADD").emit("STORE", 6)
    asm.emit("INC", 0).emit("JMP", "chk")
    asm.label("fin")
    asm.emit("LOAD", 6).emit("PRINT").emit("HALT")
    return script_input(asm.assemble())


def pidigits(digits=24):
    """Spigot-style digit extraction: DIV/MOD-heavy.

    Uses the simple 16/(k^2 running denominators) style recurrence rather
    than full bignums: the point is the opcode mix, division-dominated.
    """
    asm = BytecodeAssembler()
    # g0=k g1=acc g2=out_checksum
    asm.emit("PUSH", 1).emit("STORE", 0)
    asm.emit("PUSH", 180).emit("STORE", 1)
    asm.emit("PUSH", 0).emit("STORE", 2)
    asm.label("loop")
    asm.emit("LOAD", 0).emit("PUSH", digits).emit("LE").emit("JZ", "done")
    # digit = (acc * k) / (k * k + 97) % 10 ; acc = acc*23 % 99991 + 7
    asm.emit("LOAD", 1).emit("LOAD", 0).emit("MUL")
    asm.emit("LOAD", 0).emit("LOAD", 0).emit("MUL").emit("PUSH", 97)
    asm.emit("ADD").emit("DIV")
    asm.emit("PUSH", 10).emit("MOD")
    asm.emit("LOAD", 2).emit("PUSH", 10).emit("MUL").emit("ADD")
    asm.emit("PUSH", 1000000).emit("MOD").emit("STORE", 2)
    asm.emit("LOAD", 1).emit("PUSH", 23).emit("MUL").emit("PUSH", 99991)
    asm.emit("MOD").emit("PUSH", 7).emit("ADD").emit("STORE", 1)
    asm.emit("INC", 0).emit("JMP", "loop")
    asm.label("done")
    asm.emit("LOAD", 2).emit("PRINT").emit("HALT")
    return script_input(asm.assemble())


def spectralnorm(n=8, iterations=4):
    """Matrix-free power iteration with A(i,j)=scale/((i+j)(i+j+1)/2+i+1).

    Division-dominated vector updates; u in heap[0..n-1], v in
    heap[64..64+n-1].
    """
    asm = BytecodeAssembler()
    # g0=i g1=j g2=iter g3=acc
    asm.emit("PUSH", 0).emit("STORE", 0)
    asm.label("init")
    asm.emit("LOAD", 0).emit("PUSH", n).emit("LT").emit("JZ", "iters")
    asm.emit("PUSH", 128).emit("LOAD", 0).emit("ASTORE")
    asm.emit("INC", 0).emit("JMP", "init")
    asm.label("iters")
    asm.emit("PUSH", 0).emit("STORE", 2)
    asm.label("iter")
    asm.emit("LOAD", 2).emit("PUSH", iterations).emit("LT").emit("JZ", "done")
    asm.emit("PUSH", 0).emit("STORE", 0)
    asm.label("rows")
    asm.emit("LOAD", 0).emit("PUSH", n).emit("LT").emit("JZ", "swap")
    asm.emit("PUSH", 0).emit("STORE", 3)
    asm.emit("PUSH", 0).emit("STORE", 1)
    asm.label("cols")
    asm.emit("LOAD", 1).emit("PUSH", n).emit("LT").emit("JZ", "rowdone")
    # acc += u[j] * 4096 / ((i+j)*(i+j+1)/2 + i + 1)
    asm.emit("LOAD", 1).emit("ALOAD").emit("PUSH", 4096).emit("MUL")
    asm.emit("LOAD", 0).emit("LOAD", 1).emit("ADD")
    asm.emit("LOAD", 0).emit("LOAD", 1).emit("ADD").emit("PUSH", 1)
    asm.emit("ADD").emit("MUL").emit("PUSH", 1).emit("SHR")
    asm.emit("LOAD", 0).emit("ADD").emit("PUSH", 1).emit("ADD")
    asm.emit("DIV")
    asm.emit("LOAD", 3).emit("ADD").emit("STORE", 3)
    asm.emit("INC", 1).emit("JMP", "cols")
    asm.label("rowdone")
    # v[i] = acc / 64
    asm.emit("LOAD", 3).emit("PUSH", 64).emit("DIV")
    asm.emit("LOAD", 0).emit("PUSH", 64).emit("ADD").emit("ASTORE")
    asm.emit("INC", 0).emit("JMP", "rows")
    asm.label("swap")
    # u = v (normalized by shifting right so values stay bounded)
    asm.emit("PUSH", 0).emit("STORE", 0)
    asm.label("copy")
    asm.emit("LOAD", 0).emit("PUSH", n).emit("LT").emit("JZ", "inext")
    asm.emit("LOAD", 0).emit("PUSH", 64).emit("ADD").emit("ALOAD")
    asm.emit("PUSH", 1).emit("ADD").emit("PUSH", 1).emit("SHR")
    asm.emit("LOAD", 0).emit("ASTORE")
    asm.emit("INC", 0).emit("JMP", "copy")
    asm.label("inext")
    asm.emit("INC", 2).emit("JMP", "iter")
    asm.label("done")
    # checksum = sum u[i]
    asm.emit("PUSH", 0).emit("STORE", 3)
    asm.emit("PUSH", 0).emit("STORE", 0)
    asm.label("sum")
    asm.emit("LOAD", 0).emit("PUSH", n).emit("LT").emit("JZ", "fin")
    asm.emit("LOAD", 3).emit("LOAD", 0).emit("ALOAD").emit("ADD")
    asm.emit("STORE", 3)
    asm.emit("INC", 0).emit("JMP", "sum")
    asm.label("fin")
    asm.emit("LOAD", 3).emit("PRINT").emit("HALT")
    return script_input(asm.assemble())


def fasta(length=300):
    """Weighted random symbol emission: LCG + cumulative branch chain."""
    asm = BytecodeAssembler()
    # g0=i g1=rng g2=checksum g3=r
    asm.emit("PUSH", 42).emit("STORE", 1)
    asm.emit("PUSH", 0).emit("STORE", 2)
    asm.emit("PUSH", 0).emit("STORE", 0)
    asm.label("loop")
    asm.emit("LOAD", 0).emit("PUSH", length).emit("LT").emit("JZ", "done")
    # rng = (rng * 3877 + 29573) % 139968 ; r = rng % 100
    asm.emit("LOAD", 1).emit("PUSH", 3877).emit("MUL")
    asm.emit("PUSH", 29573).emit("ADD").emit("PUSH", 139968).emit("MOD")
    asm.emit("STORE", 1)
    asm.emit("LOAD", 1).emit("PUSH", 100).emit("MOD").emit("STORE", 3)
    # cumulative selection: A<30, C<50, G<65, else T (weights 2,3,5,7)
    asm.emit("LOAD", 3).emit("PUSH", 30).emit("LT").emit("JZ", "notA")
    asm.emit("LOAD", 2).emit("PUSH", 2).emit("ADD").emit("STORE", 2)
    asm.emit("JMP", "next")
    asm.label("notA")
    asm.emit("LOAD", 3).emit("PUSH", 50).emit("LT").emit("JZ", "notC")
    asm.emit("LOAD", 2).emit("PUSH", 3).emit("ADD").emit("STORE", 2)
    asm.emit("JMP", "next")
    asm.label("notC")
    asm.emit("LOAD", 3).emit("PUSH", 65).emit("LT").emit("JZ", "notG")
    asm.emit("LOAD", 2).emit("PUSH", 5).emit("ADD").emit("STORE", 2)
    asm.emit("JMP", "next")
    asm.label("notG")
    asm.emit("LOAD", 2).emit("PUSH", 7).emit("ADD").emit("STORE", 2)
    asm.label("next")
    asm.emit("INC", 0).emit("JMP", "loop")
    asm.label("done")
    asm.emit("LOAD", 2).emit("PRINT").emit("HALT")
    return script_input(asm.assemble())


#: name → input-vector builder, with the paper's seven training programs.
CLBG_PROGRAMS = {
    "binarytrees": binarytrees,
    "fannkuchredux": fannkuchredux,
    "mandelbrot": mandelbrot,
    "nbody": nbody,
    "pidigits": pidigits,
    "spectralnorm": spectralnorm,
    "fasta": fasta,
}


def clbg_input(name, **kwargs):
    """The VM input vector for one named CLBG program."""
    try:
        builder = CLBG_PROGRAMS[name]
    except KeyError:
        raise WorkloadError(f"unknown CLBG program {name!r}") from None
    return builder(**kwargs)
