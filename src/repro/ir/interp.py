"""Reference interpreter for the IR.

The interpreter serves three purposes:

1. **Reference semantics** — every compiled binary's output is checked
   against the interpreter's output in tests (differential testing).
2. **Profiling execution engine** — an ``edge_observer`` callback sees every
   traversed CFG edge, which is how edge-profile ground truth is gathered
   (the instrumented-binary path in :mod:`repro.profiling` is checked
   against it).
3. **Workload development** — fast feedback while writing MinC programs.

Machine semantics are mirrored exactly: 32-bit wrapping arithmetic,
truncating division, arithmetic right shift.
"""

from __future__ import annotations

import sys

from repro.errors import IRError
from repro.ir.instructions import (
    ALoad, AStore, Binary, Branch, Call, CondBranch, Copy, Input, Print,
    Return, Unary, evaluate_binary, evaluate_unary,
)
from repro.ir.values import Const, VirtualReg, wrap32


class ExecutionLimitExceeded(IRError):
    """The step budget was exhausted (runaway program guard)."""


class ExecutionResult:
    """Outcome of a program run: output vector, exit code, dynamic stats."""

    def __init__(self, output, exit_code, steps):
        self.output = output
        self.exit_code = exit_code
        self.steps = steps

    def __repr__(self):
        return (f"ExecutionResult(exit={self.exit_code}, "
                f"steps={self.steps}, output={self.output[:8]}...)")


class Interpreter:
    """Executes an IR module from its ``main`` function."""

    def __init__(self, module, input_values=(), max_steps=200_000_000,
                 edge_observer=None):
        self.module = module
        self.input_values = list(input_values)
        self.input_position = 0
        self.max_steps = max_steps
        self.edge_observer = edge_observer
        self.output = []
        self.steps = 0
        self.globals = {
            name: array.initial_values()
            for name, array in module.globals.items()
        }

    # -- value access -------------------------------------------------------

    def _read(self, frame, value):
        if isinstance(value, Const):
            return value.value
        if isinstance(value, VirtualReg):
            try:
                return frame[value]
            except KeyError:
                # Uninitialized registers read as 0, matching the zeroed
                # stack slots / registers of the generated code's frames.
                return 0
        raise IRError(f"cannot read operand {value!r}")

    def _array(self, name):
        try:
            return self.globals[name]
        except KeyError:
            raise IRError(f"unknown global array {name!r}") from None

    def _check_index(self, name, array, index):
        """Strict bounds check: compiled code has no runtime check, so any
        out-of-bounds access is a bug in the program itself; the reference
        interpreter refuses to paper over it."""
        if not 0 <= index < len(array):
            raise IRError(f"index {index} out of bounds for {name!r} "
                          f"(size {len(array)})")
        return index

    def _next_input(self):
        if self.input_position < len(self.input_values):
            value = self.input_values[self.input_position]
            self.input_position += 1
            return wrap32(value)
        return 0

    # -- execution ----------------------------------------------------------

    def run(self):
        """Run ``main`` with no arguments; returns an ExecutionResult."""
        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(old_limit, 100_000))
        try:
            exit_code = self.call("main", [])
        finally:
            sys.setrecursionlimit(old_limit)
        return ExecutionResult(self.output, wrap32(exit_code or 0), self.steps)

    def call(self, name, args):
        """Invoke one function; returns its result (or None for void)."""
        function = self.module.function(name)
        if len(args) != len(function.params):
            raise IRError(f"{name!r} called with {len(args)} args, "
                          f"expected {len(function.params)}")
        frame = dict(zip(function.params, (wrap32(a) for a in args)))
        block = function.entry
        self._observe(name, None, block.label)
        while True:
            for instr in block.instrs[:-1]:
                self._step(function, frame, instr)
            terminator = block.instrs[-1]
            self.steps += 1
            if self.steps > self.max_steps:
                raise ExecutionLimitExceeded(
                    f"exceeded {self.max_steps} steps in {name!r}")
            if isinstance(terminator, Return):
                if terminator.value is None:
                    return None
                return self._read(frame, terminator.value)
            if isinstance(terminator, Branch):
                target = terminator.target
            elif isinstance(terminator, CondBranch):
                if self._read(frame, terminator.cond) != 0:
                    target = terminator.then_target
                else:
                    target = terminator.else_target
            else:
                raise IRError(f"bad terminator {terminator!r}")
            self._observe(name, block.label, target)
            block = function.block(target)

    def _observe(self, function_name, source, target):
        if self.edge_observer is not None:
            self.edge_observer(function_name, source, target)

    def _step(self, function, frame, instr):
        self.steps += 1
        if self.steps > self.max_steps:
            raise ExecutionLimitExceeded(
                f"exceeded {self.max_steps} steps in {function.name!r}")
        if isinstance(instr, Copy):
            frame[instr.dst] = self._read(frame, instr.src)
        elif isinstance(instr, Binary):
            frame[instr.dst] = evaluate_binary(
                instr.op, self._read(frame, instr.lhs),
                self._read(frame, instr.rhs))
        elif isinstance(instr, Unary):
            frame[instr.dst] = evaluate_unary(
                instr.op, self._read(frame, instr.src))
        elif isinstance(instr, ALoad):
            array = self._array(instr.array)
            index = self._check_index(instr.array, array,
                                      self._read(frame, instr.index))
            frame[instr.dst] = array[index]
        elif isinstance(instr, AStore):
            array = self._array(instr.array)
            index = self._check_index(instr.array, array,
                                      self._read(frame, instr.index))
            array[index] = self._read(frame, instr.value)
        elif isinstance(instr, Call):
            result = self.call(instr.callee,
                               [self._read(frame, a) for a in instr.args])
            if instr.dst is not None:
                frame[instr.dst] = wrap32(result or 0)
        elif isinstance(instr, Print):
            self.output.append(self._read(frame, instr.value))
        elif isinstance(instr, Input):
            frame[instr.dst] = self._next_input()
        else:
            raise IRError(f"cannot interpret {instr!r}")


def run_module(module, input_values=(), max_steps=200_000_000,
               edge_observer=None):
    """Convenience wrapper: build an Interpreter and run ``main``."""
    interp = Interpreter(module, input_values=input_values,
                         max_steps=max_steps, edge_observer=edge_observer)
    return interp.run()
