"""Parser unit tests: structure and error reporting."""

import pytest

from repro.errors import MincSyntaxError
from repro.minc import ast_nodes as ast
from repro.minc.parser import parse


def parse_main(body):
    program = parse("int main() { " + body + " }")
    return program.functions[0].body


def test_globals_scalar_and_array():
    program = parse("int x = 5; int a[10]; int b[3] = {1, 2, 3};")
    scalar, array, initialized = program.globals
    assert (scalar.name, scalar.is_array, scalar.init) == ("x", False, [5])
    assert (array.name, array.size) == ("a", 10)
    assert initialized.init == [1, 2, 3]


def test_negative_global_initializer():
    program = parse("int x = -7;")
    assert program.globals[0].init == [-7]


def test_array_size_must_be_positive():
    with pytest.raises(MincSyntaxError):
        parse("int a[0];")


def test_function_params_and_void():
    program = parse("void f(int a, int b) { return; } int main() {}")
    function = program.functions[0]
    assert function.params == ["a", "b"]
    assert not function.returns_value


def test_precedence_multiplication_binds_tighter():
    body = parse_main("return 1 + 2 * 3;")
    expr = body[0].value
    assert isinstance(expr, ast.BinaryExpr) and expr.op == "+"
    assert expr.rhs.op == "*"


def test_precedence_shift_vs_comparison():
    expr = parse_main("return 1 << 2 < 3;")[0].value
    assert expr.op == "<"
    assert expr.lhs.op == "<<"


def test_left_associativity():
    expr = parse_main("return 10 - 3 - 2;")[0].value
    assert expr.op == "-"
    assert expr.lhs.op == "-"
    assert expr.rhs.value == 2


def test_unary_chain():
    expr = parse_main("return - - 5;")[0].value
    assert isinstance(expr, ast.UnaryExpr)
    assert isinstance(expr.operand, ast.UnaryExpr)


def test_double_minus_lexes_as_decrement():
    # Like C, "--5" is the decrement token, which cannot start a unary
    # expression; writing "- -5" is required.
    with pytest.raises(MincSyntaxError):
        parse_main("return --5;")


def test_if_else_chain():
    statements = parse_main(
        "if (1) { return 1; } else if (2) { return 2; } else { return 3; }")
    outer = statements[0]
    assert isinstance(outer, ast.If)
    assert isinstance(outer.else_body[0], ast.If)


def test_for_with_declaration():
    statements = parse_main("for (int i = 0; i < 3; i++) { print(i); }")
    loop = statements[0]
    assert isinstance(loop.init, ast.VarDecl)
    assert isinstance(loop.step, ast.IncDec)


def test_for_with_empty_clauses():
    loop = parse_main("for (;;) { break; }")[0]
    assert loop.init is None and loop.cond is None and loop.step is None


def test_compound_assignment():
    statement = parse_main("x += 2 * 3;")[0]
    assert isinstance(statement, ast.Assign)
    assert statement.op == "+="


def test_array_assignment_target():
    statement = parse_main("a[i + 1] = 5;")[0]
    assert isinstance(statement.target, ast.IndexExpr)


def test_invalid_assignment_target():
    with pytest.raises(MincSyntaxError):
        parse_main("1 = 2;")


def test_call_statement_and_expression():
    statements = parse_main("f(); x = g(1, 2 + 3);")
    assert isinstance(statements[0].expr, ast.CallExpr)
    assert len(statements[1].value.args) == 2


def test_input_expression():
    statement = parse_main("x = input();")[0]
    assert isinstance(statement.value, ast.InputExpr)


def test_missing_semicolon():
    with pytest.raises(MincSyntaxError):
        parse_main("x = 1")


def test_error_carries_location():
    with pytest.raises(MincSyntaxError) as excinfo:
        parse("int main() {\n  int x = ;\n}")
    assert "line 2" in str(excinfo.value)


def test_short_circuit_operators_parse():
    expr = parse_main("return a && b || c;")[0].value
    assert expr.op == "||"
    assert expr.lhs.op == "&&"
