"""EquivalenceProver: machine-checked §6 semantics-preservation proofs.

Three groups of properties:

- **Coverage**: every §6 transform (encoding substitution, basic-block
  shifting, function reordering) alone and composed, on every
  registered workload, proves equivalent — with a generalized address
  map whose round-trips are exact and a count plan covering every
  variant record.
- **Miscompile rejection**: a seeded mutation harness rewrites variant
  bytes *and* re-pins the covering instruction record by decoding the
  new bytes — exactly what a genuinely miscompiling toolchain would
  ship — and each §6-shaped miscompile must be refused with its stable
  finding code, never proven.
- **Integration**: ``verify_binary(..., baseline=...)`` discharges
  ``verify.unreachable`` only for proven-dead sleds, and
  ``require_equivalent`` raises the typed error.
"""

import dataclasses
from functools import lru_cache

import pytest

from repro.analysis import (
    EquivalenceProver, prove_equivalence, require_equivalent, verify_binary,
)
from repro.analysis import equivalence as equivalence_module
from repro.core.config import DiversificationConfig
from repro.errors import EquivalenceError
from repro.pipeline import ProgramBuild
from repro.workloads.registry import get_workload, workload_names
from repro.x86.decoder import decode

#: The §6 transforms alone and composed, on top of the paper's
#: profile-guided NOP config.
SEC6_FLAGS = {
    "subst": {"encoding_substitution": True},
    "bbshift": {"basic_block_shifting": True},
    "reorder": {"function_reordering": True},
    "sec6": {"encoding_substitution": True, "basic_block_shifting": True,
             "function_reordering": True},
}
SEEDS = (0, 1)


def _config(transform):
    return DiversificationConfig.profile_guided(0.00, 0.30,
                                                **SEC6_FLAGS[transform])


@lru_cache(maxsize=None)
def _state(name):
    workload = get_workload(name)
    build = ProgramBuild(workload.source, workload.name)
    baseline = build.link_baseline()
    profile = build.profile(workload.train_input)
    return build, baseline, profile


@lru_cache(maxsize=None)
def _prover(name):
    return EquivalenceProver(_state(name)[1], baseline_name=name)


@lru_cache(maxsize=None)
def _variant(name, transform, seed):
    build, _baseline, profile = _state(name)
    return build.link_variant(_config(transform), seed, profile)


def _mutate(binary, offset, payload):
    """Rewrite bytes at a text offset and re-pin the covering record.

    The covering instruction record is replaced by decoding the new
    bytes, so the record metadata vouches for the mutated image exactly
    as a miscompiling toolchain's would — the prover must refuse the
    *semantics*, not merely notice stale metadata.
    """
    text = bytearray(binary.text)
    text[offset:offset + len(payload)] = payload
    records = []
    for record in binary.instr_records:
        start = record.address - binary.text_base
        if start < offset + len(payload) and offset < start + record.size:
            chunk = bytes(text[start:start + record.size])
            instr = decode(chunk, 0)
            record = dataclasses.replace(record, instr=instr,
                                         mnemonic=instr.mnemonic)
        records.append(record)
    return dataclasses.replace(binary, text=bytes(text),
                               instr_records=list(records))


def _codes(report):
    return {finding.code for finding in report.findings}


# -- coverage: every transform, every workload ------------------------------

@pytest.mark.parametrize("name", workload_names())
@pytest.mark.parametrize("transform", sorted(SEC6_FLAGS))
def test_all_transforms_prove_on_all_workloads(name, transform):
    prover = _prover(name)
    for seed in SEEDS:
        variant = _variant(name, transform, seed)
        report = prover.prove(variant, variant_name=f"{transform}-{seed}")
        assert report.ok, [f.describe() for f in report.findings]
        assert report.map is not None
        assert report.count_plan is not None
        assert len(report.count_plan) == len(variant.instr_records)
        if SEC6_FLAGS[transform].get("basic_block_shifting"):
            assert report.stats["sled_functions"] > 0
            assert report.sled_spans


def test_substitutions_actually_occur():
    # The subst coverage above must not pass vacuously: across the test
    # seeds, at least one instruction really was re-encoded.
    prover = _prover("429.mcf")
    flipped = sum(
        prover.prove(_variant("429.mcf", "subst", seed))
        .stats["substituted"] for seed in SEEDS)
    assert flipped > 0


def test_map_round_trips_every_baseline_record():
    _build, baseline, _profile = _state("429.mcf")
    report = _prover("429.mcf").prove(_variant("429.mcf", "sec6", 0))
    assert report.ok
    for record in baseline.instr_records:
        moved = report.map.to_variant(record.address)
        assert moved is not None
        back = report.map.to_baseline(moved)
        assert back["baseline_address"] == record.address
        assert back["status"] in ("exact", "substituted", "inserted_nop")
        assert back["mnemonic"] == record.mnemonic


def test_baseline_proves_against_itself():
    report = _prover("429.mcf").prove(_state("429.mcf")[1])
    assert report.ok
    assert report.stats["inserted_nops"] == 0
    assert report.stats["substituted"] == 0
    assert report.stats["sled_functions"] == 0


# -- the seeded miscompile harness ------------------------------------------

def _find_flippable_mov(baseline, variant):
    """A carried two-byte reg,reg MOV whose operands differ."""
    for record in variant.instr_records:
        if record.is_inserted_nop or record.size != 2:
            continue
        start = record.address - variant.text_base
        opcode, modrm = variant.text[start], variant.text[start + 1]
        if opcode in (0x89, 0x8B) and (modrm >> 6) == 3 \
                and ((modrm >> 3) & 7) != (modrm & 7):
            return start, opcode
    raise AssertionError("no reg,reg mov to mutate")


def test_bad_substitution_flip_is_refused():
    # A flip that toggles the ModRM direction bit *without* swapping the
    # register fields silently swaps the operands — the classic bad
    # substitution miscompile. The prover re-decodes both sides, so it
    # is caught as a changed operation, with the map withheld.
    _build, baseline, _profile = _state("429.mcf")
    variant = _variant("429.mcf", "subst", 0)
    offset, opcode = _find_flippable_mov(baseline, variant)
    mutated = _mutate(variant, offset, bytes([opcode ^ 0x02]))
    report = _prover("429.mcf").prove(mutated, variant_name="bad-flip")
    assert not report.ok
    assert "verify.equivalence.stream" in _codes(report)
    assert report.map is None and report.count_plan is None


def test_subst_code_fires_when_reencoding_disagrees(monkeypatch):
    # The deeper substitution defense: even when both byte chunks decode
    # to the same operation, the variant bytes must be one of the two
    # dual-ModRM encodings re-derived through the encoder. Simulate an
    # encoder/decoder disagreement to pin the stable code on that path.
    variant = _variant("429.mcf", "subst", 0)
    clean = _prover("429.mcf").prove(variant)
    assert clean.ok and clean.stats["substituted"] > 0
    monkeypatch.setattr(equivalence_module, "encode",
                        lambda instr: b"\x90")
    report = _prover("429.mcf").prove(variant, variant_name="bad-encoder")
    assert not report.ok
    assert "verify.equivalence.subst" in _codes(report)


def _find_sled(variant):
    """(jmp_record, target, first_carried_record) of some variant sled."""
    for name, (start, _end) in sorted(variant.function_ranges.items(),
                                      key=lambda kv: kv[1]):
        records = variant.records_in(name)
        if len(records) < 3 or records[0].mnemonic != "jmp" \
                or records[0].is_inserted_nop:
            continue
        if not records[1].is_inserted_nop:
            continue
        jmp = records[0]
        target = jmp.address + jmp.size + jmp.instr.operands[0].value
        landing = next((r for r in records if r.address == target
                        and not r.is_inserted_nop), None)
        if landing is not None:
            return jmp, target, landing
    raise AssertionError("no sled found to mutate")


def test_live_sled_is_refused():
    # Stretch the sled jump past the function's first real instruction:
    # the "sled" now swallows live code. The interior is no longer all
    # inserted NOPs, so the dead-code proof must fail.
    variant = _variant("429.mcf", "bbshift", 0)
    jmp, _target, landing = _find_sled(variant)
    assert jmp.size == 2  # rel8 sled jump
    offset = jmp.address - variant.text_base
    disp = variant.text[offset + 1] + landing.size
    assert disp < 0x80
    mutated = _mutate(variant, offset + 1, bytes([disp]))
    report = _prover("429.mcf").prove(mutated, variant_name="live-sled")
    assert not report.ok
    assert "verify.equivalence.sled" in _codes(report)


def test_symbol_into_sled_interior_is_refused():
    # A sled is dead only while nothing can enter it; a code symbol
    # landing inside the interior makes it reachable.
    variant = _variant("429.mcf", "bbshift", 0)
    clean = _prover("429.mcf").prove(variant)
    assert clean.ok and clean.sled_spans
    interior = clean.sled_spans[0][0]
    reachable = dataclasses.replace(
        variant,
        code_symbols={**variant.code_symbols, "injected": interior})
    report = _prover("429.mcf").prove(reachable, variant_name="reachable")
    assert not report.ok
    assert "verify.equivalence.sled" in _codes(report)


def _find_call(variant):
    for record in variant.instr_records:
        if record.mnemonic == "call" and not record.is_inserted_nop \
                and record.instr.is_relative_branch:
            return record
    raise AssertionError("no relative call to mutate")


def test_misrelocated_cross_function_call_is_refused():
    # Function reordering recomputes every cross-function displacement;
    # an off-by-one relocation targets the wrong byte of the moved
    # callee. No label maps baseline target to variant target, so the
    # label-mediated branch check must refuse it.
    variant = _variant("429.mcf", "reorder", 0)
    call = _find_call(variant)
    offset = call.address - variant.text_base
    mutated = _mutate(variant, offset + 1,
                      bytes([variant.text[offset + 1] ^ 0x01]))
    report = _prover("429.mcf").prove(mutated, variant_name="bad-call")
    assert not report.ok
    assert "verify.equivalence.branch" in _codes(report)


def test_corrupted_byte_is_refused_by_record_pinning():
    # Image/record disagreement (bit rot rather than a miscompile) is
    # caught by the pinning stage before any equivalence reasoning.
    variant = _variant("429.mcf", "sec6", 0)
    text = bytearray(variant.text)
    text[7] ^= 0xFF
    corrupt = dataclasses.replace(variant, text=bytes(text))
    report = _prover("429.mcf").prove(corrupt, variant_name="corrupt")
    assert not report.ok
    assert "verify.transparency.stream" in _codes(report)


# -- integration ------------------------------------------------------------

def test_verify_binary_discharges_only_proven_sleds():
    variant = _variant("429.mcf", "sec6", 0)
    plain = verify_binary(variant, name="sec6-no-baseline")
    assert any(f.code == "verify.unreachable" for f in plain.findings)
    anchored = verify_binary(variant, name="sec6-anchored",
                             baseline=_prover("429.mcf"))
    assert not anchored.findings, \
        [f.describe() for f in anchored.findings]
    assert anchored.stats["equivalence"]["sled_functions"] > 0


def test_prove_equivalence_one_shot_matches_prover():
    _build, baseline, _profile = _state("429.mcf")
    variant = _variant("429.mcf", "sec6", 1)
    report = prove_equivalence(baseline, variant,
                               baseline_name="429.mcf",
                               variant_name="sec6-1")
    assert report.ok
    assert report.stats == _prover("429.mcf").prove(variant).stats


def test_require_equivalent_raises_typed_error():
    _build, baseline, _profile = _state("429.mcf")
    variant = _variant("429.mcf", "sec6", 0)
    text = bytearray(variant.text)
    text[3] ^= 0x01
    corrupt = dataclasses.replace(variant, text=bytes(text))
    with pytest.raises(EquivalenceError) as info:
        require_equivalent(baseline, corrupt)
    assert info.value.code == "verify.equivalence"
    assert info.value.context["findings"]
