"""Maximum-spanning-tree counter placement (Knuth / Ball–Larus).

For each function we build the *profile graph*: the CFG plus an EXIT node
(every returning block gets an edge to EXIT) plus the virtual edge
EXIT → ENTRY that closes the circulation (its count is the number of
function invocations). Flow conservation then holds at every node:
the counts entering a node equal the counts leaving it.

Counters are needed only on the edges **not** in a spanning tree of the
(undirected view of the) profile graph; everything else follows by
conservation. To minimize runtime cost the tree should *maximize* the
total expected count it covers, so we run Kruskal on static weight
estimates: back edges (detected by DFS) get high weight, the virtual edge
gets the highest (it cannot be instrumented at all).
"""

from __future__ import annotations

EXIT_NODE = "__exit__"
#: Marker for the virtual EXIT→ENTRY edge (function invocation count).
VIRTUAL_ENTRY = None


def build_profile_graph(function):
    """Profile-graph edges of one function.

    Returns a list of ``(source, target)`` node pairs where nodes are block
    labels or EXIT_NODE, including the virtual ``(EXIT_NODE, entry)`` edge.
    Parallel CFG edges (both CondBranch targets equal) are collapsed — the
    IR builder never produces them, and the verifier's successor lists keep
    them distinct blocks in practice.
    """
    edges = []
    seen = set()
    for block in function.blocks:
        for successor in block.successors():
            key = (block.label, successor)
            if key not in seen:
                seen.add(key)
                edges.append(key)
        if not block.successors():  # Return terminator
            key = (block.label, EXIT_NODE)
            if key not in seen:
                seen.add(key)
                edges.append(key)
    edges.append((EXIT_NODE, function.entry.label))
    return edges


def _back_edges(function):
    """Back edges of the CFG found by iterative DFS from the entry."""
    back = set()
    visited = set()
    on_stack = set()
    # Iterative DFS with explicit state to avoid recursion limits.
    stack = [(function.entry.label, iter(function.entry.successors()))]
    visited.add(function.entry.label)
    on_stack.add(function.entry.label)
    while stack:
        label, successors = stack[-1]
        advanced = False
        for successor in successors:
            if successor in on_stack:
                back.add((label, successor))
            elif successor not in visited:
                visited.add(successor)
                on_stack.add(successor)
                block = function.block(successor)
                stack.append((successor, iter(block.successors())))
                advanced = True
                break
        if not advanced:
            stack.pop()
            on_stack.discard(label)
    return back


def _edge_weights(function, edges):
    """Static frequency estimates: loops are hot, the virtual edge hottest."""
    back = _back_edges(function)
    weights = {}
    for source, target in edges:
        if source == EXIT_NODE:
            weights[(source, target)] = float("inf")  # must be in the tree
        elif (source, target) in back:
            weights[(source, target)] = 100.0
        elif target == EXIT_NODE:
            weights[(source, target)] = 1.0
        else:
            weights[(source, target)] = 10.0
    return weights


class _UnionFind:
    def __init__(self):
        self.parent = {}

    def find(self, node):
        parent = self.parent.setdefault(node, node)
        while parent != node:
            self.parent[node] = self.parent.setdefault(parent, parent)
            node = self.parent[node]
            parent = self.parent.setdefault(node, node)
        return node

    def union(self, a, b):
        root_a, root_b = self.find(a), self.find(b)
        if root_a == root_b:
            return False
        self.parent[root_a] = root_b
        return True


def choose_counter_edges(function):
    """Edges needing a counter: the complement of a max spanning tree.

    Returns ``(counter_edges, tree_edges)`` as lists of (source, target)
    pairs in the profile graph.
    """
    edges = build_profile_graph(function)
    weights = _edge_weights(function, edges)
    # Kruskal, heaviest first; ties broken deterministically by edge key.
    ordered = sorted(edges,
                     key=lambda e: (-weights[e], e[0] or "", e[1]))
    union_find = _UnionFind()
    tree = []
    counters = []
    for source, target in ordered:
        if union_find.union(source, target):
            tree.append((source, target))
        else:
            counters.append((source, target))
    return counters, tree
