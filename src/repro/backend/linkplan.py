"""Compile-once / diversify-many: the precomputed :class:`LinkPlan`.

For one (runtime unit, program unit) pair, every NOP-diversified variant
shares almost all of the linker's work: the non-NOP instruction
encodings, the label/symbol skeleton, the data-section layout, the set of
relocation sites, and the candidate branch widths are identical across
the whole population — only the inserted NOP bytes and the branch
displacements they push around differ. :func:`build_link_plan` pays that
shared work exactly once; :meth:`LinkPlan.apply` then links one variant
with only the per-seed work left:

1. **Stream merge** — walk the variant's items, matching every non-NOP
   item *by object identity* against the planned stream (the
   NOP-insertion pass re-emits the original item objects, so a single
   ``is`` check proves the variant is "plan + inserted NOPs"). Anything
   else — §6 encoding substitution, function reordering, basic-block
   shift jumps — raises :class:`~repro.errors.PlanMismatchError` and the
   caller falls back to a full :func:`~repro.backend.linker.link`.
2. **Incremental branch relaxation** — widths start from the plan's
   no-NOP fixpoint instead of all-short. Inserting bytes can only grow
   displacements, so the baseline fixpoint is a sound lower bound and
   the monotone widening loop converges in very few passes.
3. **Byte splicing** — pre-encoded instruction bytes are spliced with
   the variant's NOP encodings; only branch displacements and the
   ``disp32`` field of data-symbol relocations (the data section floats
   behind the text) are re-materialized per variant.

The output is bit-identical to ``link([*fixed_units, variant])`` —
same text bytes, symbols, data image, and ``identity_hash()`` — which
``tests/backend/test_linkplan.py`` enforces across every registered
workload. Instruction records are materialized lazily: population
studies (gadget scans, differential validation) never touch them, so a
variant build does not pay for them unless the analytic cost engine
asks.
"""

from __future__ import annotations

from itertools import accumulate

from repro.errors import LinkError, PlanMismatchError
from repro.obs.trace import span
from repro.backend.linker import (
    DEFAULT_TEXT_BASE, InstrRecord, LinkedBinary, _align, _branch_sizes,
    _encode_memoized, _fixed_size,
)
from repro.backend.objfile import LabelDef
from repro.x86.instructions import (
    Instr, JCC_MNEMONICS, Label, Mem, Rel,
)

#: Entry kinds in the planned stream.
_KIND_FIXED = 0    # non-branch instruction: pre-encoded bytes
_KIND_LABEL = 1    # label definition: zero bytes, pins an offset
_KIND_BRANCH = 2   # relative branch: bytes synthesized per variant

#: Two distinct, always-disp32 placeholder addresses used to locate the
#: ``disp32`` field inside a relocated instruction's encoding by diffing.
_RELOC_PROBE_A = 0x08000000
_RELOC_PROBE_B = 0x09000000


class _LazyRecords(list):
    """A record list materialized on first access.

    Population builds keep only text bytes and signatures; deferring
    :class:`InstrRecord` construction removes ~a third of the per-variant
    apply cost for them, while the analytic cost engine still sees a
    normal list. Pickling (the artifact cache) forces materialization so
    cached binaries round-trip as plain lists.
    """

    __slots__ = ("_thunk",)

    def __init__(self, thunk):
        super().__init__()
        self._thunk = thunk

    def _force(self):
        if self._thunk is not None:
            thunk, self._thunk = self._thunk, None
            self.extend(thunk())
        return self

    def __iter__(self):
        return list.__iter__(self._force())

    def __len__(self):
        return list.__len__(self._force())

    def __getitem__(self, index):
        return list.__getitem__(self._force(), index)

    def __eq__(self, other):
        return list.__eq__(self._force(), other)

    __hash__ = None

    def __reduce__(self):
        return (list, (list(self._force()),))


def plan_compatible(config):
    """Whether variants of ``config`` are "the planned stream plus NOPs".

    Pure NOP-insertion configs (any probability model, with or without
    the XCHG candidates) re-emit the original item objects, so a
    precomputed plan applies. The §6 extensions rewrite the stream —
    encoding substitution creates flipped instructions, basic-block
    shifting splices jumps, function reordering permutes layout — and
    must take the full-``link()`` path. :meth:`LinkPlan.apply` would
    also detect them (identity mismatch → PlanMismatchError), but
    predicting it here avoids a doomed merge walk per variant.
    """
    return not (config.basic_block_shifting
                or config.encoding_substitution
                or config.function_reordering)


def probe_field_offset(probe_a, probe_b, field_a, field_b):
    """The unique offset where two probe encodings carry their values.

    The two-probe disp32-location primitive shared by the incremental
    linker and the transparency stream prover: given the same
    instruction encoded with two distinct placeholder addresses, the
    disp32 field is the one offset where ``probe_a`` holds ``field_a``
    *and* ``probe_b`` holds ``field_b`` (a value search, not a byte
    diff — probe addresses sharing low bytes would make a diff find
    only part of the field). Returns ``None`` when no offset — or more
    than one — qualifies.
    """
    sites = [offset for offset in range(len(probe_a) - 3)
             if probe_a[offset:offset + 4] == field_a
             and probe_b[offset:offset + 4] == field_b]
    if len(sites) != 1:
        return None
    return sites[0]


def _locate_disp32(instr, symbol_operands, addend):
    """Byte offset of the resolved ``disp32`` field in the encoding.

    Encodes the instruction twice with two distinct placeholder
    addresses; :func:`probe_field_offset` finds the field. Returns
    (offset, encoding with probe A in place).
    """
    probe_a = _encode_probe(instr, symbol_operands, _RELOC_PROBE_A)
    probe_b = _encode_probe(instr, symbol_operands, _RELOC_PROBE_B)
    if len(probe_a) != len(probe_b):
        raise LinkError(
            f"relocated encoding of {instr!r} is not size-stable")
    field_a = ((_RELOC_PROBE_A + addend) & 0xFFFF_FFFF).to_bytes(4, "little")
    field_b = ((_RELOC_PROBE_B + addend) & 0xFFFF_FFFF).to_bytes(4, "little")
    offset = probe_field_offset(probe_a, probe_b, field_a, field_b)
    if offset is None:
        raise LinkError(
            f"cannot locate disp32 field in {instr!r} encoding")
    return offset, probe_a


def _encode_probe(instr, symbol_operands, address):
    operands = []
    for index, operand in enumerate(instr.operands):
        if index in symbol_operands:
            operands.append(Mem(base=operand.base, index=operand.index,
                                scale=operand.scale,
                                disp=address + operand.disp))
        else:
            operands.append(operand)
    clone = Instr(instr.mnemonic, *operands,
                  alternate_encoding=instr.alternate_encoding)
    return _encode_memoized(clone)


class LinkPlan:
    """Precomputed shared linking state; see the module docstring.

    Use :func:`build_link_plan` to construct. The plan is immutable and
    safe to share between any number of :meth:`apply` calls (they touch
    only local state), but not across processes building *different*
    units.
    """

    def __init__(self, units, text_base, data_alignment):
        self.text_base = text_base
        self.data_alignment = data_alignment
        self._build(list(units))

    # -- plan construction (once per program) --------------------------------

    def _build(self, units):
        from repro.backend import linker

        if not units:
            raise LinkError("no units to plan")
        self._fixed_units = units[:-1]
        self._unit = units[-1]

        # Flatten exactly as link() does, keeping the original item
        # objects for the identity matching done in apply().
        items = []            # original LabelDef/Instr objects
        kinds = []            # _KIND_*
        spans = []            # (function name, start plan idx, end plan idx)
        seen_names = set()
        self._static_count = 0
        for unit_index, unit in enumerate(units):
            for function_code in unit.functions:
                if function_code.name in seen_names:
                    raise LinkError(
                        f"duplicate function {function_code.name!r}")
                seen_names.add(function_code.name)
                span_start = len(items)
                for item in function_code.items:
                    items.append(item)
                    if isinstance(item, LabelDef):
                        kinds.append(_KIND_LABEL)
                    elif item.is_relative_branch:
                        kinds.append(_KIND_BRANCH)
                    else:
                        kinds.append(_KIND_FIXED)
                spans.append((function_code.name, span_start, len(items)))
            if unit_index < len(units) - 1:
                self._static_count = len(items)
        self._items = items
        self._kinds = kinds
        self._spans = spans

        label_index = {}
        for index, item in enumerate(items):
            if kinds[index] == _KIND_LABEL:
                if item.name in label_index:
                    raise LinkError(f"duplicate label {item.name!r}")
                label_index[item.name] = index
        self._label_index = label_index
        if "_start" not in label_index:
            raise LinkError("no _start entry point")

        # Data-section skeleton: per-symbol offsets relative to the
        # (variant-dependent) data base, plus the nonzero initial words.
        symbols_rel = {}
        words_rel = []
        cursor = 0
        for unit in units:
            for symbol, words in unit.data_symbols.items():
                if symbol in symbols_rel:
                    raise LinkError(f"duplicate data symbol {symbol!r}")
                symbols_rel[symbol] = cursor
                for word_index, value in enumerate(words):
                    if value:
                        words_rel.append((cursor + 4 * word_index, value))
                cursor += 4 * len(words)
        self._data_symbols_rel = symbols_rel
        self._data_words_rel = words_rel
        self._data_size = cursor

        # Pre-encode every fixed instruction. Instructions that touch a
        # data symbol become relocation sites: their bytes carry a probe
        # address whose disp32 field is patched per variant.
        pre_bytes = [None] * len(items)
        relocs = {}      # plan idx -> (disp byte offset, symbol rel + addend)
        record_instrs = [None] * len(items)
        sizes = [0] * len(items)
        for index, item in enumerate(items):
            if kinds[index] != _KIND_FIXED:
                continue
            symbol_operands = {}
            for op_index, operand in enumerate(item.operands):
                if isinstance(operand, Mem) and operand.symbol is not None:
                    if operand.symbol not in symbols_rel:
                        raise LinkError(
                            f"undefined data symbol {operand.symbol!r}")
                    symbol_operands[op_index] = operand
            if item.is_inserted_nop and item.encoding is not None:
                encoding = item.encoding
                resolved = Instr(item.mnemonic, *item.operands,
                                 block_id=item.block_id,
                                 is_inserted_nop=True)
                resolved.encoding = encoding
                resolved.size = len(encoding)
            elif symbol_operands:
                if len(symbol_operands) > 1:
                    raise PlanMismatchError(
                        f"{item!r} has multiple data-symbol operands")
                (op_index, operand), = symbol_operands.items()
                disp_offset, encoding = _locate_disp32(
                    item, symbol_operands, operand.disp)
                relocs[index] = (
                    disp_offset,
                    symbols_rel[operand.symbol] + operand.disp,
                    op_index)
                resolved = None  # record instr materialized per variant
            else:
                resolved = Instr(item.mnemonic, *item.operands,
                                 block_id=item.block_id,
                                 is_inserted_nop=item.is_inserted_nop,
                                 alternate_encoding=item.alternate_encoding)
                encoding = _encode_memoized(resolved)
                resolved.encoding = encoding
                resolved.size = len(encoding)
            expected = (item.size
                        if item.is_inserted_nop and item.encoding is not None
                        else _fixed_size(item))
            if len(encoding) != expected:
                raise LinkError(f"size drift for {item!r}: "
                                f"{len(encoding)} != {expected}")
            pre_bytes[index] = encoding
            record_instrs[index] = resolved
            sizes[index] = len(encoding)
        self._pre_bytes = pre_bytes
        self._relocs = relocs
        self._record_instrs = record_instrs
        self._fixed_sizes = sizes

        # Branch table. Widths start at link()'s initial assignment and
        # are widened to the no-NOP fixpoint, the sound starting point
        # for every variant's incremental relaxation.
        b_plan = []       # plan idx per branch ordinal
        b_target = []     # target label's plan idx
        b_widths = []     # 8 or 32 (call: always 32)
        for index, item in enumerate(items):
            if kinds[index] != _KIND_BRANCH:
                continue
            target = item.operands[0]
            if not isinstance(target, Label):
                raise LinkError(f"branch without label operand: {item!r}")
            if target.name not in label_index:
                raise LinkError(f"undefined label {target.name!r}")
            b_plan.append(index)
            b_target.append(label_index[target.name])
            b_widths.append(32 if item.mnemonic == "call" else 8)
        self._branch_plan = b_plan
        self._branch_target = b_target
        self._plan_to_branch = {p: k for k, p in enumerate(b_plan)}

        # No-NOP width fixpoint (identity mapping: merged == plan).
        identity = list(range(len(items) + 1))
        self._baseline_widths = self._relax(
            self._merged_sizes(b_widths), b_widths, identity,
            [None] * len(b_plan))

    def _merged_sizes(self, widths):
        sizes = list(self._fixed_sizes)
        for ordinal, index in enumerate(self._branch_plan):
            sizes[index] = _branch_sizes(self._items[index], widths[ordinal])
        return sizes

    def _relax(self, msizes, widths, plan_to_merged, branch_merged):
        """Monotone widening to fixpoint over one merged stream.

        ``msizes`` is mutated in place; returns the final widths list.
        ``branch_merged[k]`` is the merged index of branch ordinal ``k``
        (``None`` means identical to its plan index).
        """
        items = self._items
        b_plan = self._branch_plan
        b_target = self._branch_target
        short = [k for k, width in enumerate(widths) if width == 8]
        while True:
            offsets = list(accumulate(msizes, initial=0))
            changed = False
            still_short = []
            for k in short:
                merged = branch_merged[k]
                if merged is None:
                    merged = b_plan[k]
                target_offset = offsets[plan_to_merged[b_target[k]]]
                displacement = target_offset - (offsets[merged]
                                                + msizes[merged])
                if -128 <= displacement <= 127:
                    still_short.append(k)
                else:
                    widths[k] = 32
                    msizes[merged] = _branch_sizes(items[b_plan[k]], 32)
                    changed = True
            if not changed:
                return widths
            short = still_short

    # -- per-variant work ----------------------------------------------------

    def apply(self, unit, *, records="lazy"):
        """Link one diversified variant of the planned program unit.

        ``unit`` must be the planned unit's stream plus inserted NOPs
        (what :func:`repro.core.variants.diversify_unit` produces for
        NOP-insertion configs); anything else raises
        :class:`~repro.errors.PlanMismatchError`. ``records="eager"``
        materializes instruction records immediately (the default defers
        them until first access).

        Returns a :class:`~repro.backend.linker.LinkedBinary` that is
        bit-identical to ``link([*fixed_units, unit])``.
        """
        with span("link", mode="incremental"):
            return self._apply(unit, records=records)

    def _apply(self, unit, *, records):
        if unit.data_symbols != self._unit.data_symbols:
            raise PlanMismatchError("variant changed data symbols")

        items = self._items
        kinds = self._kinds
        static_count = self._static_count
        plan_count = len(items)

        # 1. Merge: static prefix verbatim, then the variant's items.
        mitems = items[:static_count]
        mplan = list(range(static_count))
        plan_to_merged = [0] * (plan_count + 1)
        for index in range(static_count):
            plan_to_merged[index] = index
        plan_cursor = static_count
        mitems_append = mitems.append
        mplan_append = mplan.append
        for function_code in unit.functions:
            for item in function_code.items:
                if (isinstance(item, Instr) and item.is_inserted_nop
                        and item.encoding is not None
                        and plan_cursor < plan_count
                        and item is not items[plan_cursor]):
                    mplan_append(-1)
                    mitems_append(item)
                    continue
                if plan_cursor >= plan_count \
                        or item is not items[plan_cursor]:
                    raise PlanMismatchError(
                        f"variant stream diverges from plan at "
                        f"{item!r}")
                plan_to_merged[plan_cursor] = len(mplan)
                mplan_append(plan_cursor)
                mitems_append(item)
                plan_cursor += 1
        if plan_cursor != plan_count:
            raise PlanMismatchError(
                f"variant stream ends early: {plan_cursor}/{plan_count} "
                f"planned items seen")
        plan_to_merged[plan_count] = len(mplan)

        # 2. Sizes + incremental relaxation from the baseline fixpoint.
        fixed_sizes = self._fixed_sizes
        widths = list(self._baseline_widths)
        branch_merged = [None] * len(widths)
        msizes = [0] * len(mplan)
        for merged, plan_idx in enumerate(mplan):
            if plan_idx < 0:
                msizes[merged] = mitems[merged].size
            else:
                msizes[merged] = fixed_sizes[plan_idx]
        plan_to_branch = self._plan_to_branch
        for ordinal, plan_idx in enumerate(self._branch_plan):
            merged = plan_to_merged[plan_idx]
            branch_merged[ordinal] = merged
            msizes[merged] = _branch_sizes(items[plan_idx], widths[ordinal])
        widths = self._relax(msizes, widths, plan_to_merged, branch_merged)

        offsets = list(accumulate(msizes, initial=0))
        text_size = offsets[-1]
        text_base = self.text_base

        # 3. Symbols and data image.
        data_base = _align(text_base + text_size, self.data_alignment)
        data_delta = data_base  # relative offsets are data_base-relative
        code_symbols = {
            name: text_base + offsets[plan_to_merged[index]]
            for name, index in self._label_index.items()}
        data_symbols = {name: data_base + rel
                        for name, rel in self._data_symbols_rel.items()}
        data_words = {data_delta + rel: value
                      for rel, value in self._data_words_rel}
        data_end = data_base + self._data_size

        # 4. Byte splicing.
        pre_bytes = self._pre_bytes
        relocs = self._relocs
        branch_target = self._branch_target
        chunks = []
        chunks_append = chunks.append
        jcc = JCC_MNEMONICS
        for merged, plan_idx in enumerate(mplan):
            if plan_idx < 0:
                chunks_append(mitems[merged].encoding)
                continue
            kind = kinds[plan_idx]
            if kind == _KIND_LABEL:
                continue
            if kind == _KIND_FIXED:
                encoding = pre_bytes[plan_idx]
                reloc = relocs.get(plan_idx)
                if reloc is not None:
                    disp_offset, rel_addend, _op = reloc
                    resolved = (data_base + rel_addend) & 0xFFFF_FFFF
                    encoding = (encoding[:disp_offset]
                                + resolved.to_bytes(4, "little")
                                + encoding[disp_offset + 4:])
                chunks_append(encoding)
                continue
            # Branch: synthesize opcode + displacement.
            ordinal = plan_to_branch[plan_idx]
            width = widths[ordinal]
            size = msizes[merged]
            target_offset = offsets[plan_to_merged[branch_target[ordinal]]]
            displacement = target_offset - (offsets[merged] + size)
            mnemonic = items[plan_idx].mnemonic
            if mnemonic == "call":
                chunks_append(
                    b"\xE8" + (displacement
                               & 0xFFFF_FFFF).to_bytes(4, "little"))
            elif mnemonic == "jmp":
                if width == 8:
                    chunks_append(bytes((0xEB, displacement & 0xFF)))
                else:
                    chunks_append(
                        b"\xE9" + (displacement
                                   & 0xFFFF_FFFF).to_bytes(4, "little"))
            else:
                condition = jcc[mnemonic]
                if width == 8:
                    chunks_append(bytes((0x70 + condition,
                                         displacement & 0xFF)))
                else:
                    chunks_append(
                        bytes((0x0F, 0x80 + condition))
                        + (displacement & 0xFFFF_FFFF).to_bytes(4, "little"))
        text = b"".join(chunks)
        if len(text) != text_size:
            raise LinkError(f"plan layout drift: {len(text)} bytes "
                            f"emitted, {text_size} laid out")

        function_ranges = {
            name: (text_base + offsets[plan_to_merged[start]],
                   text_base + offsets[plan_to_merged[end]])
            for name, start, end in self._spans}

        def materialize_records():
            return self._materialize_records(
                mitems, mplan, msizes, offsets, widths, branch_merged,
                plan_to_merged, text_base, data_base)

        record_list = (materialize_records() if records == "eager"
                       else _LazyRecords(materialize_records))
        return LinkedBinary(
            text=text, text_base=text_base,
            entry=code_symbols["_start"], code_symbols=code_symbols,
            data_symbols=data_symbols, data_base=data_base,
            data_end=data_end, data_words=data_words,
            instr_records=record_list, function_ranges=function_ranges)

    def _materialize_records(self, mitems, mplan, msizes, offsets, widths,
                             branch_merged, plan_to_merged, text_base,
                             data_base):
        """Instruction records for one applied variant (deferred work)."""
        items = self._items
        kinds = self._kinds
        record_instrs = self._record_instrs
        relocs = self._relocs
        branch_target = self._branch_target
        plan_to_branch = self._plan_to_branch
        records = []
        records_append = records.append
        for merged, plan_idx in enumerate(mplan):
            address = text_base + offsets[merged]
            size = msizes[merged]
            if plan_idx < 0:
                nop = mitems[merged]
                records_append(InstrRecord(address, size, nop.mnemonic,
                                           nop.block_id, True, nop))
                continue
            kind = kinds[plan_idx]
            if kind == _KIND_LABEL:
                continue
            item = items[plan_idx]
            if kind == _KIND_FIXED:
                instr = record_instrs[plan_idx]
                if instr is None:  # relocation site: per-variant operand
                    disp_offset, rel_addend, op_index = relocs[plan_idx]
                    operands = list(item.operands)
                    operand = operands[op_index]
                    operands[op_index] = Mem(
                        base=operand.base, index=operand.index,
                        scale=operand.scale,
                        disp=data_base + rel_addend)
                    instr = Instr(item.mnemonic, *operands,
                                  block_id=item.block_id,
                                  is_inserted_nop=item.is_inserted_nop,
                                  alternate_encoding=item.alternate_encoding)
                    instr.size = size
                    instr.encoding = None
                records_append(InstrRecord(address, size, item.mnemonic,
                                           item.block_id,
                                           item.is_inserted_nop, instr))
                continue
            ordinal = plan_to_branch[plan_idx]
            width = widths[ordinal]
            target_offset = offsets[plan_to_merged[branch_target[ordinal]]]
            displacement = target_offset - (offsets[merged] + size)
            instr = Instr(item.mnemonic, Rel(displacement, width),
                          block_id=item.block_id,
                          is_inserted_nop=item.is_inserted_nop)
            instr.size = size
            records_append(InstrRecord(address, size, item.mnemonic,
                                       item.block_id, item.is_inserted_nop,
                                       instr))
        return records

    def baseline(self):
        """The undiversified link (the planned unit with zero NOPs)."""
        return self.apply(self._unit)

    def __repr__(self):
        return (f"LinkPlan({len(self._items)} items, "
                f"{len(self._branch_plan)} branches, "
                f"{len(self._relocs)} relocs, "
                f"{len(self._label_index)} labels)")


def build_link_plan(units, text_base=DEFAULT_TEXT_BASE, data_alignment=16):
    """Precompute a :class:`LinkPlan` for ``units``.

    The *last* unit is the diversifiable program unit that
    :meth:`LinkPlan.apply` replaces per variant; all preceding units
    (the runtime library) are fixed and emitted verbatim.
    """
    return LinkPlan(units, text_base, data_alignment)
