"""NOP-transparency proofs: accept every genuine variant, reject every
deliberate deviation from "baseline + Table-1 NOPs + recomputed
offsets"."""

import dataclasses
from functools import lru_cache

import pytest

from repro.analysis import prove_transparency, require_transparent
from repro.core.config import DiversificationConfig
from repro.errors import TransparencyError
from repro.pipeline import ProgramBuild
from repro.workloads.registry import get_workload

WORKLOADS = ("429.mcf", "462.libquantum", "470.lbm")
SEEDS = (0, 1, 2)

CONFIGS = {
    "uniform-50%": DiversificationConfig.uniform(0.50),
    "0-30%": DiversificationConfig.profile_guided(0.00, 0.30),
}


@lru_cache(maxsize=None)
def _state(name):
    workload = get_workload(name)
    build = ProgramBuild(workload.source, workload.name)
    return workload, build, build.link_baseline()


@lru_cache(maxsize=None)
def _variant(name, config_name, seed):
    workload, build, _baseline = _state(name)
    config = CONFIGS[config_name]
    profile = (build.profile(workload.train_input)
               if config.requires_profile else None)
    return build.link_variant(config, seed, profile)


def _retext(binary, offset, payload):
    text = bytearray(binary.text)
    text[offset:offset + len(payload)] = payload
    return dataclasses.replace(binary, text=bytes(text))


# -- genuine variants are transparent ---------------------------------------

@pytest.mark.parametrize("name", WORKLOADS)
@pytest.mark.parametrize("config_name", sorted(CONFIGS))
def test_genuine_variants_prove_transparent(name, config_name):
    _workload, _build, baseline = _state(name)
    for seed in SEEDS:
        variant = _variant(name, config_name, seed)
        report = prove_transparency(baseline, variant,
                                    variant_name=f"{name}[{seed}]")
        assert report.ok, report.describe()
        # both alignment modes agree, and the byte growth is exactly
        # the inserted NOP bytes plus any rel8->rel32 branch widening
        # the insertions forced
        stats = report.stats
        assert stats["inserted_nops"] == stats["inserted_nops_records"]
        inserted = [r for r in variant.instr_records if r.is_inserted_nop]
        carried = [r for r in variant.instr_records
                   if not r.is_inserted_nop]
        widening = sum(v.size - b.size
                       for b, v in zip(baseline.instr_records, carried))
        assert stats["inserted_nops"] == len(inserted)
        assert stats["text_growth"] == (sum(r.size for r in inserted)
                                        + widening)


def test_baseline_is_transparent_to_itself():
    _workload, _build, baseline = _state("470.lbm")
    report = require_transparent(baseline, baseline)
    assert report.stats["inserted_nops"] == 0
    assert report.stats["text_growth"] == 0


# -- rejections -------------------------------------------------------------

def test_rejects_wrong_branch_displacement():
    _workload, _build, baseline = _state("429.mcf")
    variant = _variant("429.mcf", "0-30%", 0)
    record = next(r for r in variant.instr_records
                  if r.mnemonic == "call" and r.size == 5)
    offset = record.address - variant.text_base
    disp = int.from_bytes(variant.text[offset + 1:offset + 5],
                          "little", signed=True)
    corrupted = _retext(variant, offset + 1,
                        (disp + 5).to_bytes(4, "little", signed=True))
    report = prove_transparency(baseline, corrupted)
    codes = {f.code for f in report.findings}
    # record mode sees text disagreeing with the records; byte mode
    # independently sees the un-recomputed branch target
    assert "verify.transparency.branch" in codes
    assert not report.ok


def test_rejects_non_table1_insertion():
    _workload, _build, baseline = _state("429.mcf")
    variant = _variant("429.mcf", "0-30%", 0)
    record = next(r for r in variant.instr_records if r.is_inserted_nop)
    corrupted = _retext(variant, record.address - variant.text_base,
                        b"\x06" * record.size)  # not a NOP, not decodable
    report = prove_transparency(baseline, corrupted)
    codes = {f.code for f in report.findings}
    assert codes & {"verify.transparency.nop",
                    "verify.transparency.stream"}


def test_rejects_mutated_data_image():
    _workload, _build, baseline = _state("429.mcf")
    variant = _variant("429.mcf", "0-30%", 0)
    address, value = next(iter(sorted(variant.data_words.items())))
    words = dict(variant.data_words)
    words[address] = value + 1
    corrupted = dataclasses.replace(variant, data_words=words)
    report = prove_transparency(baseline, corrupted)
    assert any(f.code == "verify.transparency.data"
               for f in report.findings)


def test_rejects_cross_program_pairing():
    _workload, _build, mcf = _state("429.mcf")
    lbm_variant = _variant("470.lbm", "0-30%", 0)
    report = prove_transparency(mcf, lbm_variant)
    assert not report.ok


def test_require_transparent_raises_typed_error():
    _workload, _build, baseline = _state("429.mcf")
    variant = _variant("429.mcf", "0-30%", 0)
    record = next(r for r in variant.instr_records if r.is_inserted_nop)
    corrupted = _retext(variant, record.address - variant.text_base,
                        b"\x06" * record.size)
    with pytest.raises(TransparencyError) as excinfo:
        require_transparent(baseline, corrupted)
    assert excinfo.value.code == "verify.transparency"
    assert excinfo.value.context["findings"]
