"""Round-trip property of the MinC pretty-printer.

The corpus stores programs as source text, so ``pretty_print`` must be
a faithful inverse of ``parse``: for every AST the project can produce,
``parse(pretty_print(p))`` is structurally equal to ``p``, and pretty-
printed text is a fixpoint (printing the reparse reproduces the text).
"""

import pytest

from repro.minc import ast_equal, parse, pretty_print
from repro.minc import ast_nodes as ast
from repro.minc.sema import analyze
from repro.workloads.registry import get_workload, workload_names

from repro.fuzz.generate import generate_program


def _roundtrip(source):
    program = parse(source)
    text = pretty_print(program)
    reparsed = parse(text)
    assert ast_equal(reparsed, program), \
        f"round-trip changed the AST:\n{text}"
    assert pretty_print(reparsed) == text, "pretty output is not a fixpoint"
    return text


@pytest.mark.parametrize("name", workload_names())
def test_roundtrip_every_workload(name):
    text = _roundtrip(get_workload(name).source)
    analyze(parse(text))  # still a valid program, not just a parseable one


@pytest.mark.parametrize("seed", range(50))
def test_roundtrip_generated_programs(seed):
    program = generate_program(seed)
    text = pretty_print(program)
    assert ast_equal(parse(text), program)
    assert pretty_print(parse(text)) == text


@pytest.mark.parametrize("source", [
    # precedence and associativity
    "int main() { return 1 + 2 * 3; }",
    "int main() { return (1 + 2) * 3; }",
    "int main() { return 10 - 4 - 3; }",
    "int main() { return 10 - (4 - 3); }",
    "int main() { return 1 << 2 + 3; }",
    "int main() { return (1 << 2) + 3; }",
    # unary minus adjacency: -(-x) must not print as --x
    "int main() { int x = 5; return -(-x); }",
    "int main() { return -(- 1); }",
    "int main() { return ~!-3; }",
    # short-circuit and comparison chains
    "int main() { return 1 && 0 || 2 < 3 == 1; }",
    # empty for clauses
    "int main() { int i = 0; for (;;) { i++; if (i > 3) { break; } } "
    "return i; }",
    # bare block (parses as if(1))
    "int main() { { int x = 1; print(x); } return 0; }",
    # globals, arrays, negative initializers, hex literals
    "int g = -7;\nint a[8] = {1, -2, 0xff};\n"
    "int main() { a[g & 7] += 3; return a[1]; }",
    # calls, input, compound assignment spread
    "int f(int p1) { return p1 * 2; }\n"
    "int main() { int v = input(); v <<= 1; v %= 100; "
    "return f(v); }",
])
def test_roundtrip_edge_cases(source):
    _roundtrip(source)


def test_ast_equal_normalizes_negative_literals():
    # "-5" parses as UnaryExpr("-", IntLit(5)) but an IntLit(-5) prints
    # as "-5": ast_equal must treat the two spellings as the same value.
    assert ast_equal(ast.UnaryExpr(op="-", operand=ast.IntLit(value=5)),
                     ast.IntLit(value=-5))
    assert not ast_equal(ast.IntLit(value=5), ast.IntLit(value=-5))


def test_ast_equal_ignores_line_numbers():
    a = parse("int main() { return 1; }")
    b = parse("int main() {\n\n\n return 1; }")
    assert ast_equal(a, b)


def test_ast_equal_detects_structural_difference():
    a = parse("int main() { return 1 + 2; }")
    b = parse("int main() { return 2 + 1; }")
    assert not ast_equal(a, b)
