"""The §5.2 case study target: a "PHP-like" network-facing application.

The paper attacks PHP 5.3.16 — a large bytecode interpreter. Our stand-in
is exactly that shape: a stack-based bytecode virtual machine written in
MinC, whose "scripts" arrive through the input vector (a network-facing
interpreter reads its program from outside). The VM has the classic
components: fetch/decode dispatch loop, arithmetic and comparison
handlers, a global-variable table, a flat heap, and a call stack.

Like any real binary, its text section contains *unintended instructions*:
the interpreter's magic-number table (version banners, cookie constants)
embeds byte sequences that decode to ``pop reg; ret`` and ``int 0x80;
ret`` gadgets from misaligned offsets — the mechanism Shacham's original
ROP paper exploits and the reason the undiversified build is attackable
by both scanners, as the paper's PHP was.

Bytecode format (one word per slot; operands inline)::

    0 HALT          1 PUSH imm      2 ADD    3 SUB    4 MUL
    5 DIV           6 MOD           7 NEG    8 DUP    9 POP
    10 SWAP         11 LOAD g       12 STORE g
    13 ALOAD        14 ASTORE       15 JMP t 16 JZ t  17 JNZ t
    18 LT           19 LE           20 EQ    21 NE
    22 AND          23 OR           24 XOR   25 SHL   26 SHR
    27 PRINT        28 READ         29 INC g
    30 CALL t       31 RET

The script arrives as ``[length, code words..., script inputs...]``.
"""

from repro.workloads.base import Workload

SOURCE = """
// php-like bytecode interpreter (see module docstring for the ISA).
int vm_code[4096];
int vm_stack[256];
int vm_globals[256];
int vm_heap[4096];
int vm_rstack[64];
int magic_table[8];

int load_script() {
  int length = input();
  if (length > 4096) { length = 4096; }
  int i;
  for (i = 0; i < length; i++) {
    vm_code[i] = input();
  }
  return length;
}

int arith(int op, int a, int b) {
  if (op == 2) { return a + b; }
  if (op == 3) { return a - b; }
  if (op == 4) { return a * b; }
  if (op == 5) { if (b == 0) { return 0; } return a / b; }
  if (b == 0) { return 0; }
  return a % b;
}

int compare(int op, int a, int b) {
  if (op == 18) { if (a < b) { return 1; } return 0; }
  if (op == 19) { if (a <= b) { return 1; } return 0; }
  if (op == 20) { if (a == b) { return 1; } return 0; }
  if (a != b) { return 1; }
  return 0;
}

int bitop(int op, int a, int b) {
  if (op == 22) { return a & b; }
  if (op == 23) { return a | b; }
  if (op == 24) { return a ^ b; }
  if (op == 25) { return a << (b & 31); }
  return a >> (b & 31);
}

int execute(int code_len, int max_steps) {
  int pc = 0;
  int sp = 0;
  int rsp = 0;
  int steps = 0;
  // THE hot loop of the whole application: fetch/decode/dispatch.
  while (pc < code_len && steps < max_steps) {
    steps++;
    int op = vm_code[pc];
    pc++;
    if (op == 0) { break; }
    if (op == 1) {               // PUSH imm
      if (sp < 256) { vm_stack[sp] = vm_code[pc]; sp++; }
      pc++;
    } else if (op >= 2 && op <= 6) {   // binary arithmetic
      if (sp >= 2) {
        int rhs = vm_stack[sp - 1];
        int lhs = vm_stack[sp - 2];
        sp--;
        vm_stack[sp - 1] = arith(op, lhs, rhs);
      }
    } else if (op == 7) {        // NEG
      if (sp >= 1) { vm_stack[sp - 1] = -vm_stack[sp - 1]; }
    } else if (op == 8) {        // DUP
      if (sp >= 1 && sp < 256) { vm_stack[sp] = vm_stack[sp - 1]; sp++; }
    } else if (op == 9) {        // POP
      if (sp >= 1) { sp--; }
    } else if (op == 10) {       // SWAP
      if (sp >= 2) {
        int t = vm_stack[sp - 1];
        vm_stack[sp - 1] = vm_stack[sp - 2];
        vm_stack[sp - 2] = t;
      }
    } else if (op == 11) {       // LOAD g
      if (sp < 256) { vm_stack[sp] = vm_globals[vm_code[pc] & 255]; sp++; }
      pc++;
    } else if (op == 12) {       // STORE g
      if (sp >= 1) { sp--; vm_globals[vm_code[pc] & 255] = vm_stack[sp]; }
      pc++;
    } else if (op == 13) {       // ALOAD
      if (sp >= 1) { vm_stack[sp - 1] = vm_heap[vm_stack[sp - 1] & 4095]; }
    } else if (op == 14) {       // ASTORE (value under index)
      if (sp >= 2) {
        int index = vm_stack[sp - 1];
        int value = vm_stack[sp - 2];
        sp -= 2;
        vm_heap[index & 4095] = value;
      }
    } else if (op == 15) {       // JMP
      pc = vm_code[pc] & 4095;
    } else if (op == 16) {       // JZ
      if (sp >= 1) {
        sp--;
        if (vm_stack[sp] == 0) { pc = vm_code[pc] & 4095; } else { pc++; }
      } else { pc++; }
    } else if (op == 17) {       // JNZ
      if (sp >= 1) {
        sp--;
        if (vm_stack[sp] != 0) { pc = vm_code[pc] & 4095; } else { pc++; }
      } else { pc++; }
    } else if (op >= 18 && op <= 21) { // comparisons
      if (sp >= 2) {
        int cmp_rhs = vm_stack[sp - 1];
        int cmp_lhs = vm_stack[sp - 2];
        sp--;
        vm_stack[sp - 1] = compare(op, cmp_lhs, cmp_rhs);
      }
    } else if (op >= 22 && op <= 26) { // bit operations
      if (sp >= 2) {
        int bit_rhs = vm_stack[sp - 1];
        int bit_lhs = vm_stack[sp - 2];
        sp--;
        vm_stack[sp - 1] = bitop(op, bit_lhs, bit_rhs);
      }
    } else if (op == 27) {       // PRINT
      if (sp >= 1) { sp--; print(vm_stack[sp]); }
    } else if (op == 28) {       // READ
      if (sp < 256) { vm_stack[sp] = input(); sp++; }
    } else if (op == 29) {       // INC g
      vm_globals[vm_code[pc] & 255] = vm_globals[vm_code[pc] & 255] + 1;
      pc++;
    } else if (op == 30) {       // CALL
      if (rsp < 64) { vm_rstack[rsp] = pc + 1; rsp++; }
      pc = vm_code[pc] & 4095;
    } else if (op == 31) {       // RET
      if (rsp >= 1) { rsp--; pc = vm_rstack[rsp]; } else { break; }
    }
  }
  return steps;
}

void load_magic() {
  // Version banners / cookie constants. Their little-endian bytes embed
  // the unintended instructions real binaries carry:
  //   0x00C2C358 -> 58 C3 : pop eax; ret
  //   0x00C2C35B -> 5B C3 : pop ebx; ret
  //   0x00C380CD -> CD 80 C3 : int 0x80; ret
  //   0x00C2C359 -> 59 C3 : pop ecx; ret
  magic_table[0] = 12763992;
  magic_table[1] = 12763995;
  magic_table[2] = 12812493;
  magic_table[3] = 12763993;
  magic_table[4] = 542328143;
  magic_table[5] = 1735287116;
  magic_table[6] = 542338377;
  magic_table[7] = 779581042;
}

int main() {
  load_magic();
  int code_len = load_script();
  int steps = execute(code_len, 4000000);
  int banner = 0;
  int i;
  for (i = 0; i < 8; i++) { banner = banner ^ magic_table[i]; }
  print(steps + (banner & 7));
  return 0;
}
"""

WORKLOAD = Workload(
    name="php",
    source=SOURCE,
    # Default script: a trivial arithmetic loop (real training inputs are
    # the CLBG programs in repro.workloads.clbg).
    train_input=(14,
                 1, 0, 12, 0,          # x = 0
                 11, 0, 1, 1, 2, 12, 0,  # x = x + 1
                 11, 0, 27,            # print x  (then fall through HALT)
                 0),
    ref_input=(14,
               1, 0, 12, 0,
               11, 0, 1, 1, 2, 12, 0,
               11, 0, 27,
               0),
    character="bytecode interpreter: dispatch-loop bound (the case-study "
              "application)",
)
