"""Table/figure rendering helpers shared by the benchmark harness."""

from __future__ import annotations

import math


def geometric_mean_overhead(overheads):
    """Geometric mean of fractional slowdowns (as the paper reports)."""
    factors = [1.0 + value for value in overheads]
    if not factors:
        return 0.0
    log_sum = sum(math.log(factor) for factor in factors)
    return math.exp(log_sum / len(factors)) - 1.0


def format_table(headers, rows, title=None):
    """Monospace table: auto-sized columns, right-aligned numerics."""
    rendered_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(str(header)) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(str(header).ljust(widths[index])
                            for index, header in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for original, row in zip(rows, rendered_rows):
        cells = []
        for index, cell in enumerate(row):
            if isinstance(original[index], (int, float)):
                cells.append(cell.rjust(widths[index]))
            else:
                cells.append(cell.ljust(widths[index]))
        lines.append("  ".join(cells))
    return "\n".join(lines)


def _cell(value):
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def ascii_bar_chart(labels, series, width=46, title=None):
    """Horizontal ASCII bars, one row per label; values in percent."""
    lines = []
    if title:
        lines.append(title)
    peak = max((value for value in series if value is not None),
               default=1.0)
    peak = max(peak, 1e-9)
    label_width = max((len(label) for label in labels), default=0)
    for label, value in zip(labels, series):
        bar = "#" * max(0, round(width * value / peak))
        lines.append(f"{label.ljust(label_width)}  {value:6.2f}%  {bar}")
    return "\n".join(lines)
