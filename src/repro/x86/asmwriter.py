"""Intel-syntax pretty printing for instructions and operands."""

from __future__ import annotations

from repro.x86.instructions import Imm, Label, Mem, Rel
from repro.x86.registers import Register


def format_operand(operand):
    """Render one operand in Intel syntax."""
    if isinstance(operand, Register):
        return operand.name
    if isinstance(operand, Imm):
        return str(operand.value)
    if isinstance(operand, Rel):
        sign = "+" if operand.value >= 0 else ""
        return f"${sign}{operand.value}"
    if isinstance(operand, Label):
        return operand.name
    if isinstance(operand, Mem):
        parts = []
        if operand.symbol:
            parts.append(operand.symbol)
        if operand.base is not None:
            parts.append(operand.base.name)
        if operand.index is not None:
            if operand.scale != 1:
                parts.append(f"{operand.index.name}*{operand.scale}")
            else:
                parts.append(operand.index.name)
        body = " + ".join(parts)
        if operand.disp or not body:
            if body:
                sign = " + " if operand.disp >= 0 else " - "
                body += f"{sign}{abs(operand.disp)}"
            else:
                body = str(operand.disp)
        return f"dword [{body}]"
    raise TypeError(f"cannot format operand {operand!r}")


_MNEMONIC_DISPLAY = {"jmp_reg": "jmp", "call_reg": "call"}


def format_instr(instr, address=None):
    """Render one instruction; optionally prefixed with its address."""
    mnemonic = _MNEMONIC_DISPLAY.get(instr.mnemonic, instr.mnemonic)
    text = mnemonic
    if instr.operands:
        text += " " + ", ".join(format_operand(op) for op in instr.operands)
    if address is not None:
        prefix = f"{address:08x}:  "
        if instr.encoding is not None:
            prefix += instr.encoding.hex(" ").ljust(22)
        text = prefix + text
    return text


def format_listing(instructions, base_address=0):
    """Render a full disassembly listing with running addresses."""
    lines = []
    address = base_address
    for instr in instructions:
        lines.append(format_instr(instr, address=address))
        address += instr.size if instr.size is not None else 0
    return "\n".join(lines)
