"""Synchronous client for the variant distribution daemon.

A thin persistent-socket wrapper over the ndjson protocol, used by the
load-generating benchmark, the smoke target and the tests. Responses
with ``ok: false`` are re-raised as the typed errors the daemon
serialized — :class:`~repro.errors.ServeOverloadedError` for
``serve.overloaded`` so callers can implement backoff with a plain
``except``, :class:`~repro.errors.ServeError` for everything else.
"""

from __future__ import annotations

import socket

from repro.errors import ServeError, ServeOverloadedError
from repro.serve.protocol import MAX_LINE, decode_message, encode_message


class ServeClient:
    """One connection to a running daemon; requests are synchronous."""

    def __init__(self, host="127.0.0.1", port=0, timeout=30.0):
        self.host = host
        self.port = port
        self._sock = socket.create_connection((host, port),
                                              timeout=timeout)
        self._file = self._sock.makefile("rb")

    def close(self):
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    def request(self, payload, *, raise_on_error=True):
        """Send one request, wait for its response dict."""
        self._sock.sendall(encode_message(payload))
        line = self._file.readline(MAX_LINE + 1)
        if not line:
            raise ServeError("daemon closed the connection",
                             context={"host": self.host,
                                      "port": self.port})
        response = decode_message(line)
        if raise_on_error and not response.get("ok", False):
            error = response.get("error") or {}
            code = error.get("code", "serve.error")
            cls = (ServeOverloadedError if code == "serve.overloaded"
                   else ServeError)
            raise cls(error.get("message", "request failed"),
                      context=error.get("context") or {}, code=code)
        return response

    # -- operation helpers ---------------------------------------------------

    def ping(self):
        return self.request({"op": "ping"})

    def stats(self):
        return self.request({"op": "stats"})

    def variant(self, program, config, user, **kwargs):
        return self.request({"op": "variant", "program": program,
                             "config": config, "user": user}, **kwargs)

    def symbolicate(self, program, config, user, addresses, **kwargs):
        return self.request({"op": "symbolicate", "program": program,
                             "config": config, "user": user,
                             "addresses": list(addresses)}, **kwargs)
