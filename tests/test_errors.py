"""Error-hierarchy tests: everything raised is a ReproError subclass."""

import pytest

from repro import errors


def test_hierarchy():
    for name in ("MincSyntaxError", "MincSemanticError", "IRError",
                 "LoweringError", "EncodingError", "DecodingError",
                 "LinkError", "SimulatorError", "ProfileError",
                 "WorkloadError"):
        cls = getattr(errors, name)
        assert issubclass(cls, errors.ReproError)


def test_syntax_error_location_formatting():
    error = errors.MincSyntaxError("bad token", line=3, column=7)
    assert "line 3" in str(error)
    assert "column 7" in str(error)
    assert error.line == 3


def test_syntax_error_without_location():
    error = errors.MincSyntaxError("bad token")
    assert str(error) == "bad token"


def test_callers_can_catch_the_base_class():
    from repro.minc import compile_to_ir
    with pytest.raises(errors.ReproError):
        compile_to_ir("int main( {")
    with pytest.raises(errors.ReproError):
        compile_to_ir("int main() { return nope; }")
