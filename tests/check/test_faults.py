"""Fault-injection campaign: every injected fault surfaces typed.

Each injector class is exercised across several deterministic seeds; a
fault must surface as a ReproError subclass with populated context (or be
provably masked — e.g. a bit flip in never-executed code). A bare
builtin exception escaping the pipeline fails the campaign.
"""

import pytest

from repro.check.faults import (
    ALL_INJECTORS, BitFlipInjector, run_campaign, target_from_source,
)
from repro.errors import ReproError
from tests.conftest import FIB_SOURCE


@pytest.fixture(scope="module")
def target():
    return target_from_source(FIB_SOURCE, "fib", train_input=(6,),
                              inputs=(8,))


@pytest.fixture(scope="module")
def campaign(target):
    return run_campaign([target], seeds=range(4))


def test_no_fault_escapes_untyped(campaign):
    untyped = [case.describe() for case in campaign.cases
               if case.outcome == "untyped"]
    assert not untyped, untyped


def test_typed_coverage_is_total(campaign):
    summary = campaign.summary()
    assert summary["typed_error_coverage"] == 100.0
    assert summary["untyped"] == 0
    assert campaign.ok


@pytest.mark.parametrize("injector_class", ALL_INJECTORS,
                         ids=lambda cls: cls.name)
def test_injector_produces_typed_context_rich_errors(campaign,
                                                     injector_class):
    cases = [case for case in campaign.cases
             if case.injector == injector_class.name]
    assert cases, "injector never ran"
    for case in cases:
        assert case.outcome in ("typed", "masked")
        if case.outcome == "typed":
            assert case.error_type is not None
            assert case.error_code is not None
            assert case.context_keys, (
                f"{case.injector} raised {case.error_type} "
                "without context")
    if injector_class is not BitFlipInjector:
        # Every injector except the (legitimately maskable) bit flip
        # must surface on every seed.
        assert all(case.outcome == "typed" for case in cases), \
            [case.describe() for case in cases]


def test_error_types_are_repro_errors(campaign):
    import repro.errors as errors
    for case in campaign.cases:
        if case.outcome != "typed":
            continue
        cls = getattr(errors, case.error_type, None)
        assert cls is not None and issubclass(cls, ReproError), \
            case.describe()


def test_campaign_is_deterministic(target):
    first = run_campaign([target], injectors=(BitFlipInjector,),
                         seeds=range(3))
    second = run_campaign([target], injectors=(BitFlipInjector,),
                          seeds=range(3))
    assert [(c.outcome, c.error_type, c.message) for c in first.cases] \
        == [(c.outcome, c.error_type, c.message) for c in second.cases]


def test_truncation_targets_executed_span(target):
    # executed_end must cover the entry but not necessarily the cold
    # banks at the end of the image.
    assert 0 < target.executed_end <= len(target.baseline.text)
