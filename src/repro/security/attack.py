"""ROP chain construction and concrete attack execution.

The end-to-end check the paper performs on PHP: scan a binary, build a
payload, and see whether it works. Our canonical payload makes the
process exit with an attacker-chosen code via the ``exit`` syscall —
morally identical to the mmap/mprotect call real payloads start with, and
directly observable in the simulator:

    pop eax; ret   ←  0            (syscall number: exit)
    pop ebx; ret   ←  CODE         (attacker-chosen exit status)
    int 0x80; ret

``attempt_attack`` builds the chain from a scanner's toolkit and actually
*executes* it on the machine simulator with a smashed stack, returning
whether the machine exited with the attacker's value.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulatorError
from repro.security.gadgets import find_gadgets
from repro.sim.machine import Machine
from repro.sim.memory import STACK_TOP


@dataclass
class AttackResult:
    """Outcome of one attack attempt against one binary."""

    feasible: bool
    requirements: dict
    chain: list = field(default_factory=list)
    executed: bool = False
    succeeded: bool = False
    detail: str = ""

    def __repr__(self):
        status = ("SUCCEEDED" if self.succeeded
                  else "feasible" if self.feasible else "infeasible")
        return f"AttackResult({status}: {self.detail})"


def _register_setter_chain(scanner, toolkit, register_name, value,
                           text_base):
    """Chain fragment leaving ``value`` in ``register_name``.

    Returns a list of stack words, or None. Direct ``pop`` gadgets are
    preferred; the microgadgets zero+inc construction is used as the
    fallback when the scanner supports it.
    """
    direct = toolkit.get("load_const", register_name)
    if direct is not None:
        return [text_base + direct.offset, value & 0xFFFF_FFFF]
    exact = toolkit.get("load_const_imm", (register_name, value))
    if exact is not None:
        return [text_base + exact.offset]
    if value == 0:
        zero = toolkit.get("zero", register_name)
        if zero is not None:
            return [text_base + zero.offset]
    # pop X; ret then mov REG, X; ret
    for (dst, src), mover in toolkit.operations.get("move", {}).items():
        if dst != register_name:
            continue
        popper = toolkit.get("load_const", src)
        if popper is not None:
            return [text_base + popper.offset, value & 0xFFFF_FFFF,
                    text_base + mover.offset]
    construct = getattr(scanner, "can_construct_value", None)
    if construct is not None and 0 <= value <= 64:
        zero = toolkit.get("zero", register_name)
        inc = toolkit.get("incdec", ("inc", register_name))
        if zero is not None and inc is not None:
            chain = [text_base + zero.offset]
            chain.extend([text_base + inc.offset] * value)
            return chain
    return None


def build_exit_chain(scanner, toolkit, text_base, exit_code=42):
    """Full payload for ``exit(exit_code)``; None if not constructible."""
    syscall = toolkit.get("syscall")
    if syscall is None:
        return None
    eax_part = _register_setter_chain(scanner, toolkit, "eax", 0, text_base)
    ebx_part = _register_setter_chain(scanner, toolkit, "ebx", exit_code,
                                      text_base)
    if eax_part is None or ebx_part is None:
        return None
    # EBX first: the arithmetic EAX construction must run last so nothing
    # disturbs EAX before the syscall fires.
    return ebx_part + eax_part + [text_base + syscall.offset]


def execute_chain(binary, chain, max_steps=100_000):
    """Run a ROP chain on the simulator with a smashed stack.

    Models the post-overflow state: ESP points into attacker-controlled
    words whose first entry is the first gadget address (as if a
    vulnerable function just executed RET into the payload).

    Returns (succeeded, exit_code_or_None, detail).
    """
    machine = Machine(binary, max_steps=max_steps, count_addresses=False)
    stack_pointer = STACK_TOP - 4 * (len(chain) + 8)
    for position, word in enumerate(chain[1:], start=0):
        machine.memory.write_u32(stack_pointer + 4 * position, word)
    machine.regs[4] = stack_pointer
    machine.eip = chain[0]
    try:
        while not machine.halted:
            machine.step()
    except SimulatorError as fault:
        return False, None, f"machine fault: {fault}"
    return True, machine.exit_code, "chain ran to exit"


def attempt_attack(binary, scanner, gadgets=None, exit_code=42,
                   execute=True):
    """Scan, build, and (optionally) run the canonical payload."""
    if gadgets is None:
        gadgets = find_gadgets(binary.text)
    toolkit = scanner.scan(gadgets)
    requirements = scanner.attack_requirements(toolkit)
    feasible = all(requirements.values())
    if not feasible:
        missing = [name for name, ok in requirements.items() if not ok]
        return AttackResult(False, requirements,
                            detail=f"missing: {', '.join(missing)}")
    chain = build_exit_chain(scanner, toolkit, binary.text_base, exit_code)
    if chain is None:
        return AttackResult(False, requirements,
                            detail="requirements met but chain "
                                   "construction failed")
    result = AttackResult(True, requirements, chain=chain,
                          detail="chain constructed")
    if execute:
        ran, observed_exit, detail = execute_chain(binary, chain)
        result.executed = True
        result.succeeded = bool(ran and observed_exit == exit_code)
        result.detail = (f"{detail}; exit={observed_exit} "
                         f"(wanted {exit_code})")
    return result
