"""End-to-end driver: source → profile → diversified binaries.

:class:`ProgramBuild` wraps one MinC program through the whole pipeline
and caches the expensive stages:

1. front end + optimizer (deterministic, so training and final builds see
   identical CFGs),
2. lowering to the LR object unit,
3. profile collection on a training input,
4. per-variant NOP insertion + linking,
5. execution (reference interpreter or machine simulator) and analytic
   cycle estimation.

Population builds (the paper's 25-variant studies) fan out over a
process pool — :func:`build_population` / ``link_population(workers=N)``
— and can reuse variants across runs through the content-addressed
artifact cache in :mod:`repro.artifacts`. A variant is fully determined
by (source, config, seed, profile), so workers rebuilding from source
produce bit-identical binaries; ``REPRO_WORKERS`` and
``REPRO_CACHE_DIR`` set the defaults.

This is the module examples and benchmarks program against.
"""

from __future__ import annotations

import os

from repro.artifacts import cache_from_env, variant_key
from repro.errors import ReproError
from repro.backend.linker import link
from repro.backend.lowering import lower_module
from repro.core.variants import diversify_unit
from repro.minc.irgen import compile_to_ir
from repro.opt.pipeline import optimize_module
from repro.profiling.collect import collect_profile, collect_profile_multi
from repro.runtime.lib import runtime_unit
from repro.sim.analytic import block_counts_from_profile, estimate_cycles
from repro.sim.costs import DEFAULT_COST_MODEL
from repro.sim.machine import run_binary


def build_ir(source, name="program", opt_level=2):
    """Front end + optimizer; deterministic for a given source."""
    module = compile_to_ir(source, name)
    return optimize_module(module, level=opt_level)


class ProgramBuild:
    """One program moving through the compile/profile/diversify pipeline."""

    def __init__(self, source, name="program", opt_level=2):
        self.source = source
        self.name = name
        self.opt_level = opt_level
        self.module = build_ir(source, name, opt_level)
        self.unit = lower_module(self.module, name)
        self._profiles = {}
        #: Non-fatal degradations recorded during builds (e.g. a
        #: profile-guided config falling back to uniform insertion).
        self.warnings = []

    def _warn(self, message):
        self.warnings.append(message)

    # -- profiling -------------------------------------------------------------

    def profile(self, input_values=(), key=None):
        """Collect (and cache) a profile for one training input."""
        cache_key = key if key is not None else tuple(input_values)
        if cache_key not in self._profiles:
            profile, _result = collect_profile(self.module, input_values)
            self._profiles[cache_key] = profile
        return self._profiles[cache_key]

    def profile_multi(self, input_sets, key):
        """Collect (and cache) a profile over several training inputs."""
        if key not in self._profiles:
            profile, _result = collect_profile_multi(self.module, input_sets)
            self._profiles[key] = profile
        return self._profiles[key]

    # -- linking ------------------------------------------------------------------

    def link_baseline(self):
        """The undiversified binary (runtime objects first, as ld would)."""
        return link([runtime_unit(), self.unit])

    def link_variant(self, config, seed, profile=None, *, fallback=False):
        """One diversified binary for (config, seed, profile).

        A profile-guided config without a profile normally raises
        :class:`~repro.errors.ProfileError`. With ``fallback=True`` the
        build degrades to the config's uniform-``p_max`` equivalent and a
        warning is recorded on :attr:`warnings` instead — the graceful
        path used when profile collection failed upstream.
        """
        if fallback and config.requires_profile and profile is None:
            self._warn(f"{self.name}: no profile for "
                       f"{config.describe()!r}; falling back to "
                       f"{config.uniform_fallback().describe()!r}")
            config = config.uniform_fallback()
        variant = diversify_unit(self.unit, config, seed, profile)
        return link([runtime_unit(), variant])

    def link_population(self, config, seeds, profile=None, *, fallback=False,
                        workers=None, cache_dir=None):
        """A population of diversified binaries (the paper uses 25).

        ``workers`` > 1 fans the per-seed builds out over a process pool
        and ``cache_dir`` (default ``REPRO_CACHE_DIR``) reuses variants
        from the on-disk artifact cache; see :func:`build_population`.
        """
        return build_population(self, config, seeds, profile,
                                fallback=fallback, workers=workers,
                                cache_dir=cache_dir)

    # -- execution -------------------------------------------------------------------

    def run_reference(self, input_values=()):
        """Execute the IR on the reference interpreter."""
        from repro.ir.interp import run_module
        return run_module(self.module, input_values)

    def simulate(self, binary, input_values=(), count_addresses=False,
                 **fuel):
        """Execute a linked binary on the machine simulator.

        Extra keyword arguments (``max_steps``, ``stack_size``) are the
        run's fuel, forwarded to :func:`~repro.sim.machine.run_binary`.
        """
        return run_binary(binary, input_values,
                          count_addresses=count_addresses, **fuel)

    # -- performance ------------------------------------------------------------------

    def execution_counts(self, input_values=(), key=None):
        """block_id → count map for the cost engine, for one input."""
        profile = self.profile(input_values, key=key)
        return block_counts_from_profile(self.module, profile)

    def cycles(self, binary, counts, model=DEFAULT_COST_MODEL):
        """Analytic cycle count of a binary under given counts."""
        return estimate_cycles(binary, counts, model)

    def overhead(self, config, seed, *, train_input=(), ref_input=(),
                 model=DEFAULT_COST_MODEL, profile=None):
        """Fractional slowdown of one variant versus the baseline.

        ``train_input`` feeds the profile used by profile-guided configs;
        ``ref_input`` is the measured workload (the paper's train/ref
        split). If profile collection fails, the build degrades to the
        config's uniform-``p_max`` fallback and records a warning rather
        than aborting the measurement.
        """
        if profile is None and config.requires_profile:
            try:
                profile = self.profile(train_input)
            except ReproError as exc:
                self._warn(f"{self.name}: profile collection failed "
                           f"({exc}); falling back to "
                           f"{config.uniform_fallback().describe()!r}")
                config = config.uniform_fallback()
        counts = self.execution_counts(ref_input)
        baseline = self.cycles(self.link_baseline(), counts, model)
        variant = self.cycles(self.link_variant(config, seed, profile),
                              counts, model)
        return variant / baseline - 1.0


def compile_and_link(source, name="program", opt_level=2):
    """One-call convenience: source text → undiversified LinkedBinary."""
    return ProgramBuild(source, name, opt_level).link_baseline()


# -- parallel population builds ------------------------------------------------

#: Per-process memo of ProgramBuild objects, keyed on
#: (name, source, opt_level). Pool workers receive only the variant
#: parameters; the expensive front-end/optimizer/lowering stages run once
#: per worker process no matter how many seeds it is handed.
_WORKER_BUILDS = {}


def default_workers():
    """Worker-count default: ``REPRO_WORKERS`` (0 → cpu count), else 1."""
    raw = os.environ.get("REPRO_WORKERS")
    if not raw:
        return 1
    workers = int(raw)
    if workers <= 0:
        return os.cpu_count() or 1
    return workers


def _variant_worker(source, name, opt_level, config, seed, profile_json,
                    cache_root):
    """Build (or load from cache) one variant inside a pool worker."""
    from repro.artifacts import VariantCache
    from repro.profiling.profile_data import ProfileData

    profile = (ProfileData.from_json(profile_json)
               if profile_json is not None else None)
    cache = VariantCache(cache_root) if cache_root else None
    if cache is not None:
        key = variant_key(source, name, opt_level, config, seed, profile)
        cached = cache.get(key)
        if cached is not None:
            return seed, cached
    build_key = (name, source, opt_level)
    build = _WORKER_BUILDS.get(build_key)
    if build is None:
        build = ProgramBuild(source, name, opt_level)
        _WORKER_BUILDS.clear()  # one program per worker is the norm
        _WORKER_BUILDS[build_key] = build
    binary = build.link_variant(config, seed, profile)
    if cache is not None:
        cache.put(key, binary)
    return seed, binary


def build_population(build, config, seeds, profile=None, *, fallback=False,
                     workers=None, cache_dir=None):
    """Build the variants for ``seeds``, optionally in parallel and cached.

    - ``workers`` — process-pool width; ``None`` defers to
      ``REPRO_WORKERS`` (default 1 = serial in-process). Workers rebuild
      the program from source (deterministically identical), so only the
      variant parameters and the resulting binaries cross the process
      boundary.
    - ``cache_dir`` — root of the content-addressed artifact cache;
      ``None`` defers to ``REPRO_CACHE_DIR`` (unset → no caching).
      Cached binaries are keyed on (source, config, seed, profile), so
      any run of any process with the same inputs reuses them.
    - ``fallback`` — as in :meth:`ProgramBuild.link_variant`; resolved
      up front (with the per-seed warnings recorded on ``build``) so
      workers never need the degradation logic.

    Returns binaries in ``seeds`` order.
    """
    seeds = list(seeds)
    if fallback and config.requires_profile and profile is None:
        for _ in seeds:
            build._warn(f"{build.name}: no profile for "
                        f"{config.describe()!r}; falling back to "
                        f"{config.uniform_fallback().describe()!r}")
        config = config.uniform_fallback()
    if workers is None:
        workers = default_workers()
    cache = cache_from_env(cache_dir)

    results = {}
    pending = seeds
    if cache is not None:
        pending = []
        for seed in seeds:
            key = variant_key(build.source, build.name, build.opt_level,
                              config, seed, profile)
            cached = cache.get(key)
            if cached is not None:
                results[seed] = cached
            else:
                pending.append(seed)

    if pending:
        if workers > 1 and len(pending) > 1:
            from concurrent.futures import ProcessPoolExecutor

            profile_json = (profile.to_json()
                            if profile is not None else None)
            cache_root = cache.root if cache is not None else None
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [
                    pool.submit(_variant_worker, build.source, build.name,
                                build.opt_level, config, seed, profile_json,
                                cache_root)
                    for seed in pending
                ]
                for future in futures:
                    seed, binary = future.result()
                    results[seed] = binary
        else:
            for seed in pending:
                binary = build.link_variant(config, seed, profile)
                if cache is not None:
                    key = variant_key(build.source, build.name,
                                      build.opt_level, config, seed, profile)
                    cache.put(key, binary)
                results[seed] = binary

    return [results[seed] for seed in seeds]
