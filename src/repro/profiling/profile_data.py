"""Profile data container.

A profile holds per-edge execution counts — keys are
``(function_name, source_label, target_label)`` with ``source_label is
None`` denoting the virtual entry edge (one count per function
invocation) — plus derived per-block counts keyed by
``(function_name, block_label)``.

The container is serializable to JSON so a training run's profile can be
stored and fed into later diversified builds, matching the paper's
two-compile workflow.
"""

from __future__ import annotations

import json

from repro.errors import ProfileError


class ProfileData:
    """Edge and block execution counts from one or more training runs."""

    def __init__(self, edge_counts=None, block_counts=None):
        self.edge_counts = dict(edge_counts or {})
        self.block_counts = dict(block_counts or {})

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_edges(cls, edge_counts):
        """Build a profile from edge counts, deriving block counts.

        A block's execution count is the sum of its incoming edge counts
        (including the virtual entry edge).
        """
        block_counts = {}
        for (function, _source, target), count in edge_counts.items():
            key = (function, target)
            block_counts[key] = block_counts.get(key, 0) + count
        return cls(edge_counts, block_counts)

    def merge(self, other):
        """Accumulate another profile (multi-run training sets)."""
        for key, count in other.edge_counts.items():
            self.edge_counts[key] = self.edge_counts.get(key, 0) + count
        for key, count in other.block_counts.items():
            self.block_counts[key] = self.block_counts.get(key, 0) + count
        return self

    # -- queries ----------------------------------------------------------------

    def block_count(self, function_name, block_label):
        return self.block_counts.get((function_name, block_label), 0)

    @property
    def max_block_count(self):
        """The hottest block's count (``x_max`` in the paper's formula)."""
        if not self.block_counts:
            return 0
        return max(self.block_counts.values())

    def function_counts(self, function_name):
        """Block counts of one function: {label: count}."""
        return {label: count
                for (name, label), count in self.block_counts.items()
                if name == function_name}

    def validate(self):
        """Check count invariants; raises :class:`ProfileError` if violated.

        Counts must be non-negative integers — a negative or non-numeric
        count can only come from corruption (or a bug in a collector) and
        would silently skew every probability the paper's formula assigns.
        Returns self so call sites can chain.
        """
        for label, counts in (("edge", self.edge_counts),
                              ("block", self.block_counts)):
            for key, count in counts.items():
                if not isinstance(count, int) or isinstance(count, bool) \
                        or count < 0:
                    raise ProfileError(
                        f"corrupt profile: {label} count for {key!r} "
                        f"is {count!r} (expected a non-negative integer)",
                        context={"kind": label, "key": list(key),
                                 "count": count})
        return self

    def summary(self):
        """(max, median, total) of all block counts — §3.1's statistics."""
        values = sorted(self.block_counts.values())
        if not values:
            return (0, 0, 0)
        median = values[len(values) // 2]
        return (values[-1], median, sum(values))

    # -- serialization -------------------------------------------------------------

    def to_json(self):
        edges = [
            {"function": function, "source": source, "target": target,
             "count": count}
            for (function, source, target), count
            in sorted(self.edge_counts.items(),
                      key=lambda kv: (kv[0][0], kv[0][1] or "", kv[0][2]))
        ]
        return json.dumps({"version": 1, "edges": edges}, indent=2)

    @classmethod
    def from_json(cls, text):
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ProfileError(
                f"malformed profile JSON: {exc}",
                context={"line": exc.lineno, "column": exc.colno,
                         "position": exc.pos}) from exc
        if payload.get("version") != 1:
            raise ProfileError("unsupported profile version",
                               context={"version": payload.get("version")})
        entries = payload.get("edges")
        if not isinstance(entries, list):
            raise ProfileError("malformed profile: missing edge list",
                               context={"keys": sorted(payload)})
        edge_counts = {}
        for position, entry in enumerate(entries):
            if not isinstance(entry, dict):
                raise ProfileError(
                    f"malformed profile edge #{position}: not an object",
                    context={"position": position, "entry": entry})
            try:
                key = (entry["function"], entry["source"], entry["target"])
                edge_counts[key] = entry["count"]
            except KeyError as exc:
                raise ProfileError(
                    f"malformed profile edge #{position}: "
                    f"missing field {exc.args[0]!r}",
                    context={"position": position,
                             "missing": exc.args[0],
                             "present": sorted(entry)}) from exc
        return cls.from_edges(edge_counts).validate()

    def save(self, path):
        with open(path, "w") as handle:
            handle.write(self.to_json())

    @classmethod
    def load(cls, path):
        with open(path) as handle:
            return cls.from_json(handle.read())

    def __repr__(self):
        return (f"ProfileData({len(self.edge_counts)} edges, "
                f"max block count {self.max_block_count})")
