"""E3 — Figure 4: SPEC CPU 2006 performance overhead of NOP insertion.

Regenerates the paper's headline figure: for each of the 19 benchmarks
and each of the five configurations (pNOP = 50%, 30%, and profile-guided
25-50%, 10-50%, 0-30%), the slowdown of diversified binaries versus the
undiversified baseline, averaged over ``REPRO_PERF_SEEDS`` random
variants, plus the geometric mean row.

Expected shape (paper §5.1):

- geometric means fall monotonically: 50% > 30% ≈ 25-50% > 10-50% >
  0-30%, with the last around 1% (a ~5x or better reduction versus the
  naive 50% pass);
- 400.perlbench and 482.sphinx3 show the largest overheads, 470.lbm the
  smallest;
- tightening the *minimum* probability matters: 10-50% roughly halves
  25-50% (the paper's side-by-side observation).
"""

from benchmarks._harness import (
    PERF_SEEDS, spec_names, variant_overhead,
)
from repro.reporting import (
    ascii_bar_chart, format_table, geometric_mean_overhead,
)

#: Figure 4's display order for the configurations.
_FIGURE_ORDER = ("50%", "30%", "25-50%", "10-50%", "0-30%")


def run_sweep():
    table = {}
    for name in spec_names():
        table[name] = {}
        for label in _FIGURE_ORDER:
            overheads = [variant_overhead(name, label, seed)
                         for seed in range(PERF_SEEDS)]
            table[name][label] = sum(overheads) / len(overheads)
    return table


def test_figure4_performance_overhead(benchmark):
    table = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    rows = []
    for name in spec_names():
        rows.append((name,) + tuple(
            100 * table[name][label] for label in _FIGURE_ORDER))
    geomeans = {
        label: geometric_mean_overhead(
            [table[name][label] for name in spec_names()])
        for label in _FIGURE_ORDER
    }
    rows.append(("Geometric Mean",) + tuple(
        100 * geomeans[label] for label in _FIGURE_ORDER))

    print()
    print(format_table(
        ("Benchmark",) + tuple(f"pNOP={c}" for c in _FIGURE_ORDER), rows,
        title="Figure 4: SPEC CPU 2006 slowdown % of NOP insertion "
              f"(mean of {PERF_SEEDS} variants; paper geomeans: "
              "~8, ~5, n/a, 2.5, 1)"))
    print()
    print(ascii_bar_chart(
        list(_FIGURE_ORDER),
        [100 * geomeans[label] for label in _FIGURE_ORDER],
        title="Geometric-mean slowdown by configuration"))

    # -- shape assertions (the reproduction targets) ----------------------
    assert geomeans["50%"] > geomeans["30%"] > geomeans["10-50%"] \
        > geomeans["0-30%"]
    assert geomeans["25-50%"] > geomeans["10-50%"]
    # The paper's 5x headline reduction (50% naive -> 0-30% guided).
    assert geomeans["50%"] > 5 * geomeans["0-30%"]
    # 0-30% lands around the paper's "negligible 1%".
    assert geomeans["0-30%"] < 0.02
    # Extremes: perlbench/sphinx3 near the top, lbm near the bottom.
    naive = {name: table[name]["50%"] for name in spec_names()}
    ranked = sorted(naive, key=naive.get)
    assert "470.lbm" in ranked[:4]
    assert "400.perlbench" in ranked[-4:]
    assert "482.sphinx3" in ranked[-4:]
