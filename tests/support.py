"""Test support: a random MinC program generator for property testing.

The generator produces small, always-terminating programs (bounded for
loops over constant trip counts, guarded array indices via masking) that
exercise arithmetic, arrays, branches, calls and I/O. Used by the
differential property tests: interpreter output == simulator output ==
diversified-simulator output for every generated program.
"""

from __future__ import annotations

import random

_BINOPS = ["+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>",
           "<", "<=", ">", ">=", "==", "!="]


class _ProgramGenerator:
    def __init__(self, rng):
        self.rng = rng
        self.globals = ["g0", "g1"]
        self.arrays = {"arr": 32}
        self.functions = []  # (name, n_params)
        self.loop_counter = 0

    def expr(self, variables, depth=0):
        rng = self.rng
        choices = ["literal", "var"]
        if depth < 3:
            choices += ["binop", "binop", "unary", "index"]
            if self.functions and depth < 2:
                choices.append("call")
        kind = rng.choice(choices)
        if kind == "literal":
            return str(rng.randint(-64, 64))
        if kind == "var" and variables:
            return rng.choice(variables)
        if kind == "index":
            inner = self.expr(variables, depth + 1)
            return f"arr[({inner}) & 31]"
        if kind == "unary":
            op = rng.choice(["-", "!", "~"])
            return f"({op}({self.expr(variables, depth + 1)}))"
        if kind == "call" and self.functions:
            name, n_params = rng.choice(self.functions)
            args = ", ".join(self.expr(variables, depth + 1)
                             for _ in range(n_params))
            return f"{name}({args})"
        if kind == "binop":
            op = rng.choice(_BINOPS)
            lhs = self.expr(variables, depth + 1)
            rhs = self.expr(variables, depth + 1)
            if op in ("<<", ">>"):
                rhs = f"(({rhs}) & 7)"
            return f"(({lhs}) {op} ({rhs}))"
        return str(rng.randint(0, 9))

    def statements(self, variables, depth, budget, writable=None):
        rng = self.rng
        # Loop counters are readable but never assignable: an assignment
        # to a loop variable could reset it every iteration and make the
        # generated program non-terminating.
        writable = list(writable if writable is not None else variables)
        lines = []
        count = rng.randint(1, 4)
        for _ in range(count):
            if budget[0] <= 0:
                break
            budget[0] -= 1
            kind = rng.choice(["assign", "assign", "store", "if", "loop",
                               "print"])
            if kind == "assign" and writable:
                target = rng.choice(writable)
                lines.append(f"{target} = {self.expr(variables)};")
            elif kind == "store":
                index = self.expr(variables)
                value = self.expr(variables)
                lines.append(f"arr[({index}) & 31] = {value};")
            elif kind == "if" and depth < 2:
                cond = self.expr(variables)
                body = self.statements(variables, depth + 1, budget,
                                       writable)
                lines.append("if (" + cond + ") {")
                lines.extend("  " + line for line in body)
                if rng.random() < 0.4:
                    lines.append("} else {")
                    body = self.statements(variables, depth + 1, budget,
                                           writable)
                    lines.extend("  " + line for line in body)
                lines.append("}")
            elif kind == "loop" and depth < 2:
                # MinC has flat function scoping, so every loop variable
                # needs a unique name.
                loop_var = f"i{self.loop_counter}"
                self.loop_counter += 1
                trip = rng.randint(1, 8)
                body = self.statements(variables + [loop_var],
                                       depth + 1, budget, writable)
                lines.append(f"for (int {loop_var} = 0; {loop_var} < "
                             f"{trip}; {loop_var}++) {{")
                lines.extend("  " + line for line in body)
                lines.append("}")
            else:
                lines.append(f"print({self.expr(variables)});")
        return lines


def generate_program(seed):
    """A random, terminating MinC program exercising the language."""
    rng = random.Random(seed)
    generator = _ProgramGenerator(rng)

    parts = ["int g0 = 3;", "int g1 = 7;", "int arr[32];", ""]

    # One or two helper functions with 1-2 parameters.
    for index in range(rng.randint(1, 2)):
        n_params = rng.randint(1, 2)
        params = ", ".join(f"int p{i}" for i in range(n_params))
        name = f"helper{index}"
        variables = [f"p{i}" for i in range(n_params)] + ["g0", "g1"]
        # Helpers are straight-line (depth 2 disables loops and ifs):
        # main's loops may call helpers many times, so a loop inside a
        # helper would make generated programs exponentially expensive.
        body = generator.statements(variables, 2, [8])
        parts.append(f"int {name}({params}) {{")
        parts.extend("  " + line for line in body)
        parts.append(f"  return {generator.expr(variables)};")
        parts.append("}")
        parts.append("")
        generator.functions.append((name, n_params))

    variables = ["g0", "g1", "x"]
    body = generator.statements(variables, 0, [14])
    parts.append("int main() {")
    parts.append("  int x = input();")
    parts.extend("  " + line for line in body)
    parts.append(f"  print({generator.expr(variables)});")
    parts.append(f"  return {generator.expr(variables)};")
    parts.append("}")
    return "\n".join(parts)
