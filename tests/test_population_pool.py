"""Population pool protocol, artifact-cache counters, map_chunked.

The pool path must be a pure optimization: identical binaries to the
serial path (the workers diversify and apply a plan compiled from the
shipped pickled unit), cache hits/misses/puts observable process-wide
whether they happened in the parent or inside worker chunks, and the
requested pool width clamped so an over-wide pool can never regress a
build (the recorded workers=2-on-one-core inversion).
"""

from functools import partial

import pytest

from repro.artifacts import VariantCache, cache_stats, reset_cache_stats
from repro.core.config import DiversificationConfig
from repro.pipeline import (
    ProgramBuild, build_population, effective_workers, map_chunked,
)
from repro.security.population import (
    population_signatures, population_survival,
)
from repro.workloads.registry import get_workload

CONFIG = DiversificationConfig.uniform(0.5)


@pytest.fixture(scope="module")
def build():
    workload = get_workload("470.lbm")
    return ProgramBuild(workload.source, workload.name)


class TestEffectiveWorkers:
    def test_clamped_to_cpu_count(self):
        import os
        assert effective_workers(64, jobs=64) <= (os.cpu_count() or 1)

    def test_clamped_to_job_count(self):
        assert effective_workers(8, jobs=3, force_pool=True) == 3

    def test_force_pool_skips_core_clamp(self):
        assert effective_workers(2, jobs=10, force_pool=True) == 2

    def test_at_least_one(self):
        assert effective_workers(0, jobs=0) == 1


class TestPoolParity:
    def test_pool_matches_serial(self, build):
        seeds = range(5)
        serial = build_population(build, CONFIG, seeds)
        pooled = build_population(build, CONFIG, seeds, workers=2,
                                  force_pool=True)
        assert [b.identity_hash() for b in serial] == \
               [b.identity_hash() for b in pooled]
        assert [b.text for b in serial] == [b.text for b in pooled]

    def test_pool_preserves_seed_order(self, build):
        seeds = [4, 0, 2]
        binaries = build_population(build, CONFIG, seeds, workers=2,
                                    force_pool=True)
        by_seed = {seed: build.link_variant(CONFIG, seed)
                   for seed in seeds}
        assert [b.text for b in binaries] == \
               [by_seed[seed].text for seed in seeds]


class TestCacheCounters:
    def test_serial_cold_then_warm(self, build, tmp_path):
        reset_cache_stats()
        seeds = range(4)
        build_population(build, CONFIG, seeds, cache_dir=str(tmp_path))
        assert cache_stats() == {"hits": 0, "misses": 4, "puts": 4}
        build_population(build, CONFIG, seeds, cache_dir=str(tmp_path))
        assert cache_stats() == {"hits": 4, "misses": 4, "puts": 4}
        reset_cache_stats()

    def test_pool_deltas_reach_parent(self, build, tmp_path):
        reset_cache_stats()
        seeds = range(4)
        build_population(build, CONFIG, seeds, cache_dir=str(tmp_path),
                         workers=2, force_pool=True)
        assert cache_stats() == {"hits": 0, "misses": 4, "puts": 4}
        build_population(build, CONFIG, seeds, cache_dir=str(tmp_path),
                         workers=2, force_pool=True)
        assert cache_stats() == {"hits": 4, "misses": 4, "puts": 4}
        reset_cache_stats()

    def test_instance_stats(self, build, tmp_path):
        cache = VariantCache(str(tmp_path))
        assert cache.get("00" * 32) is None
        cache.put("00" * 32, build.link_baseline())
        assert cache.get("00" * 32) is not None
        assert cache.stats() == {"hits": 1, "misses": 1, "puts": 1,
                                 "corrupt": 0}


def _double_chunk(items):
    return [item * 2 for item in items]


class TestMapChunked:
    def test_serial(self):
        assert map_chunked(_double_chunk, [1, 2, 3], workers=1) == \
               [2, 4, 6]

    def test_pool_preserves_order(self):
        items = list(range(17))
        assert map_chunked(_double_chunk, items, workers=3,
                           force_pool=True) == [i * 2 for i in items]

    def test_partial_fn(self):
        fn = partial(_double_chunk)
        assert map_chunked(fn, [5], workers=4, force_pool=True) == [10]

    def test_empty(self):
        assert map_chunked(_double_chunk, [], workers=4) == []


class TestPopulationSignatures:
    def test_parallel_matches_serial(self, build):
        texts = [binary.text for binary in
                 build_population(build, CONFIG, range(4))]
        serial = population_signatures(texts, workers=1)
        pooled = population_signatures(texts, workers=2, force_pool=True)
        assert serial == pooled
        assert len(serial) == len(texts)

    def test_survival_accepts_precomputed(self, build):
        texts = [binary.text for binary in
                 build_population(build, CONFIG, range(3))]
        signatures = population_signatures(texts)
        direct = population_survival(texts, thresholds=(2,))
        precomputed = population_survival(texts, thresholds=(2,),
                                          signatures=signatures)
        assert direct == precomputed
