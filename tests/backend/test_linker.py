"""Linker tests: layout, relaxation, symbol resolution, error paths."""

import pytest

from repro.backend.linker import DEFAULT_TEXT_BASE, link
from repro.backend.lowering import lower_module
from repro.backend.objfile import FunctionCode, LabelDef, ObjectUnit
from repro.errors import LinkError
from repro.minc import compile_to_ir
from repro.opt import optimize_module
from repro.runtime.lib import runtime_unit
from repro.x86.decoder import decode_all
from repro.x86.instructions import Imm, Instr, Label, Mem
from repro.x86.registers import EAX


def build_units(source):
    module = optimize_module(compile_to_ir(source))
    return module, [runtime_unit(), lower_module(module, "prog")]


SIMPLE = "int main() { print(7); return 0; }"


class TestLayout:
    def test_text_base_default(self):
        _module, units = build_units(SIMPLE)
        binary = link(units)
        assert binary.text_base == DEFAULT_TEXT_BASE
        assert binary.entry == binary.code_symbols["_start"]

    def test_whole_text_is_decodable(self):
        _module, units = build_units(SIMPLE)
        binary = link(units)
        instrs = decode_all(binary.text)
        assert sum(i.size for i in instrs) == len(binary.text)

    def test_records_match_text_bytes(self):
        _module, units = build_units(SIMPLE)
        binary = link(units)
        rebuilt = b"".join(record.instr.encoding
                           for record in binary.instr_records)
        assert rebuilt == binary.text

    def test_function_ranges_partition_text(self):
        _module, units = build_units(
            "int f() { return 1; } int main() { return f(); }")
        binary = link(units)
        ranges = sorted(binary.function_ranges.values())
        assert ranges[0][0] == binary.text_base
        for (start_a, end_a), (start_b, _end_b) in zip(ranges, ranges[1:]):
            assert end_a == start_b
        assert ranges[-1][1] == binary.text_end

    def test_data_symbols_after_text(self):
        _module, units = build_units(
            "int a[8] = {5}; int main() { return a[0]; }")
        binary = link(units)
        assert binary.data_base >= binary.text_end
        assert binary.data_symbols["a"] >= binary.data_base
        assert binary.data_words[binary.data_symbols["a"]] == 5

    def test_linking_twice_is_identical(self):
        _module, units = build_units(SIMPLE)
        first = link(units)
        second = link(units)
        assert first.text == second.text


class TestRelaxation:
    def test_short_branches_use_rel8(self):
        source = """
        int main() {
          int x = input();
          if (x) { print(1); } else { print(2); }
          return 0;
        }
        """
        _module, units = build_units(source)
        binary = link(units)
        sizes = {record.instr.size for record in binary.instr_records
                 if record.mnemonic.startswith("j")}
        assert 2 in sizes  # some branch relaxed to rel8

    def test_long_distance_branch_widens(self):
        # A function with a huge then-branch forces rel32 conditionals.
        body = "\n".join(f"  acc += {i};" for i in range(200))
        source = f"""
        int main() {{
          int acc = input();
          if (acc > 0) {{
        {body}
          }}
          print(acc);
          return 0;
        }}
        """
        _module, units = build_units(source)
        binary = link(units)
        conditional_sizes = {record.instr.size
                             for record in binary.instr_records
                             if record.mnemonic.startswith("j")
                             and record.mnemonic not in ("jmp", "jmp_reg")}
        assert 6 in conditional_sizes  # rel32 Jcc present

    def test_relaxation_preserves_semantics(self):
        body = "\n".join(f"  acc += {i};" for i in range(200))
        source = f"""
        int main() {{
          int acc = input();
          if (acc > 0) {{
        {body}
          }}
          print(acc);
          return 0;
        }}
        """
        from repro.pipeline import ProgramBuild
        from repro.sim.machine import run_binary
        build = ProgramBuild(source, "wide")
        binary = build.link_baseline()
        reference = build.run_reference([1])
        result = run_binary(binary, [1])
        assert result.output == reference.output


class TestErrors:
    def test_duplicate_function_rejected(self):
        unit_a = ObjectUnit("a")
        unit_a.add_function(FunctionCode("f", [LabelDef("f"),
                                               Instr("ret")]))
        unit_b = ObjectUnit("b")
        unit_b.add_function(FunctionCode("f", [LabelDef("f"),
                                               Instr("ret")]))
        with pytest.raises(LinkError):
            link([unit_a, unit_b])

    def test_undefined_label_rejected(self):
        unit = ObjectUnit("a")
        unit.add_function(FunctionCode("_start", [
            LabelDef("_start"), Instr("jmp", Label("ghost")),
        ]))
        with pytest.raises(LinkError):
            link([unit])

    def test_undefined_data_symbol_rejected(self):
        unit = ObjectUnit("a")
        unit.add_function(FunctionCode("_start", [
            LabelDef("_start"),
            Instr("mov", EAX, Mem(symbol="ghost")),
            Instr("ret"),
        ]))
        with pytest.raises(LinkError):
            link([unit])

    def test_missing_entry_rejected(self):
        unit = ObjectUnit("a")
        unit.add_function(FunctionCode("f", [LabelDef("f"),
                                             Instr("ret")]))
        with pytest.raises(LinkError):
            link([unit])

    def test_duplicate_data_symbol_rejected(self):
        unit_a = ObjectUnit("a")
        unit_a.data_symbols["d"] = [0]
        unit_a.add_function(FunctionCode("_start", [LabelDef("_start"),
                                                    Instr("ret")]))
        unit_b = ObjectUnit("b")
        unit_b.data_symbols["d"] = [0]
        with pytest.raises(LinkError):
            link([unit_a, unit_b])


class TestLinkerImmutability:
    def test_linking_does_not_mutate_input_lr(self):
        module, units = build_units(SIMPLE)
        program_unit = units[1]
        before = [
            (item.mnemonic, item.operands)
            for fc in program_unit.functions
            for item in fc.items if isinstance(item, Instr)
        ]
        link(units)
        after = [
            (item.mnemonic, item.operands)
            for fc in program_unit.functions
            for item in fc.items if isinstance(item, Instr)
        ]
        assert before == after
