"""Reporting helper tests."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.reporting import (
    ascii_bar_chart, format_table, geometric_mean_overhead,
)


class TestGeometricMean:
    def test_empty(self):
        assert geometric_mean_overhead([]) == 0.0

    def test_single(self):
        assert geometric_mean_overhead([0.08]) == pytest.approx(0.08)

    def test_known_value(self):
        # geomean of (1.1, 1.2) - 1
        expected = math.sqrt(1.1 * 1.2) - 1
        assert geometric_mean_overhead([0.1, 0.2]) == \
            pytest.approx(expected)

    def test_zero_overheads(self):
        assert geometric_mean_overhead([0.0, 0.0]) == pytest.approx(0.0)

    @given(st.lists(st.floats(min_value=-0.5, max_value=2.0),
                    min_size=1, max_size=20))
    def test_bounded_by_min_and_max(self, overheads):
        result = geometric_mean_overhead(overheads)
        assert min(overheads) - 1e-9 <= result <= max(overheads) + 1e-9


class TestFormatTable:
    def test_alignment_and_headers(self):
        text = format_table(("name", "value"),
                            [("alpha", 1.5), ("b", 22.25)],
                            title="Title")
        lines = text.splitlines()
        assert lines[0] == "Title"
        assert "name" in lines[1] and "value" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        # Numeric cells are right-aligned with two decimals.
        assert "1.50" in text and "22.25" in text

    def test_string_cells_left_aligned(self):
        text = format_table(("a",), [("x",), ("longer",)])
        rows = text.splitlines()[2:]
        assert rows[0].startswith("x")


class TestBarChart:
    def test_bars_scale_to_peak(self):
        chart = ascii_bar_chart(["a", "b"], [10.0, 5.0], width=10)
        lines = chart.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_title_line(self):
        chart = ascii_bar_chart(["a"], [1.0], title="T")
        assert chart.splitlines()[0] == "T"

    def test_zero_values(self):
        chart = ascii_bar_chart(["a"], [0.0])
        assert "#" not in chart
