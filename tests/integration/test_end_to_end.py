"""End-to-end pipeline integration tests."""

import pytest

from repro import (
    DiversificationConfig, PAPER_CONFIGS, ProgramBuild, compile_and_link,
)
from repro.sim.machine import run_binary
from tests.conftest import FIB_SOURCE, HOTCOLD_SOURCE


def test_compile_and_link_convenience():
    binary = compile_and_link("int main() { print(123); return 5; }")
    result = run_binary(binary)
    assert result.output == [123]
    assert result.exit_code == 5


def test_public_api_quickstart_flow():
    build = ProgramBuild(FIB_SOURCE, "quickstart")
    profile = build.profile((7,))
    config = DiversificationConfig.profile_guided(0.0, 0.30)
    binary = build.link_variant(config, seed=1, profile=profile)
    result = build.simulate(binary, (9,))
    assert result.output == build.run_reference((9,)).output


def test_opt_level_zero_still_correct():
    build = ProgramBuild(FIB_SOURCE, "unopt", opt_level=0)
    result = build.simulate(build.link_baseline(), (8,))
    assert result.output == build.run_reference((8,)).output


def test_training_input_affects_profile_guided_layout():
    build = ProgramBuild(HOTCOLD_SOURCE, "hotcold")
    config = PAPER_CONFIGS["0-30%"]
    hot_profile = build.profile((500,))
    cold_profile = build.profile((1,))
    hot_variant = build.link_variant(config, seed=3, profile=hot_profile)
    cold_variant = build.link_variant(config, seed=3,
                                      profile=cold_profile)
    # Same seed, different profiles → different binaries.
    assert hot_variant.text != cold_variant.text


def test_profile_overhead_ordering_matches_paper():
    """The paper's headline: overhead(50%) > overhead(30%) >
    overhead(10-50%) > overhead(0-30%) ≈ 0, averaged over seeds."""
    build = ProgramBuild(HOTCOLD_SOURCE, "hotcold")
    seeds = range(5)

    def mean_overhead(label):
        config = PAPER_CONFIGS[label]
        profile = (build.profile((400,))
                   if config.requires_profile else None)
        values = [build.overhead(config, seed, train_input=(400,),
                                 ref_input=(800,), profile=profile)
                  for seed in seeds]
        return sum(values) / len(values)

    naive_50 = mean_overhead("50%")
    naive_30 = mean_overhead("30%")
    guided_10_50 = mean_overhead("10-50%")
    guided_0_30 = mean_overhead("0-30%")

    assert naive_50 > naive_30 > guided_0_30
    assert naive_50 > guided_10_50
    assert guided_0_30 < 0.25 * naive_50  # ≥4x reduction on hot code


def test_diversified_population_binaries_distinct_but_equivalent():
    build = ProgramBuild(FIB_SOURCE, "population")
    config = PAPER_CONFIGS["30%"]
    reference = build.run_reference((8,))
    population = build.link_population(config, range(6))
    texts = {binary.text for binary in population}
    assert len(texts) == 6
    for binary in population:
        result = build.simulate(binary, (8,))
        assert result.output == reference.output
