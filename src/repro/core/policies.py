"""Per-block probability policies.

``block_probability_function`` resolves a (config, profile) pair into a
plain callable ``block_id → probability`` that the insertion pass invokes
per instruction. Block ids are the ``(function, label)`` tags the lowerer
attached, or ``("edge", function, source, target)`` for the trailing jump
of a two-target conditional branch — the latter uses the *edge* count,
which is the exact execution count of that jump.

Blocks absent from the profile have count 0: never executed in training,
hence maximally cold, hence diversified at ``p_max`` — the paper's core
"diversify cold code freely" rule.
"""

from __future__ import annotations

from repro.errors import ProfileError


def block_probability_function(config, profile=None):
    """Build the ``block_id → probability`` callable for one build."""
    model = config.probability_model
    if not model.requires_profile:
        constant = model.probability(0, 0)

        def uniform_policy(_block_id):
            return constant

        return uniform_policy

    if profile is None:
        raise ProfileError(
            f"configuration {config.describe()!r} needs profile data; "
            "run a training build first",
            context={"config": config.describe()})

    profile.validate()
    max_count = profile.max_block_count
    block_counts = profile.block_counts
    edge_counts = profile.edge_counts
    probability = model.probability
    # Every instruction of a block asks for the same block_id, so the
    # model's (log-scaled) probability is memoized per block for the
    # policy's lifetime — one diversification pass.
    memo = {}

    def profile_policy(block_id):
        cached = memo.get(block_id)
        if cached is not None:
            return cached
        if block_id is None:
            count = 0
        elif block_id[0] == "edge":
            _tag, function, source, target = block_id
            count = edge_counts.get((function, source, target), 0)
        else:
            count = block_counts.get(block_id, 0)
        result = memo[block_id] = probability(count, max_count)
        return result

    return profile_policy
