"""Diversification-entropy tests (§6's number-of-versions discussion)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.config import PAPER_CONFIGS
from repro.core.policies import block_probability_function
from repro.security.entropy import (
    bernoulli_entropy, distinct_variants, optimal_uniform_probability,
    per_instruction_entropy, unit_entropy,
)


class TestBernoulliEntropy:
    def test_peak_at_half(self):
        assert bernoulli_entropy(0.5) == pytest.approx(1.0)

    def test_zero_at_endpoints(self):
        assert bernoulli_entropy(0.0) == 0.0
        assert bernoulli_entropy(1.0) == 0.0

    def test_symmetry(self):
        assert bernoulli_entropy(0.3) == pytest.approx(
            bernoulli_entropy(0.7))

    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_bounded_by_one_bit(self, p):
        assert 0.0 <= bernoulli_entropy(p) <= 1.0 + 1e-12

    def test_paper_claim_50_percent_beats_30_percent(self):
        # §6: the number of versions is maximized at pNOP = 50% (for the
        # insert/don't-insert decision alone).
        assert bernoulli_entropy(0.5) > bernoulli_entropy(0.3)
        assert bernoulli_entropy(0.5) > bernoulli_entropy(0.7)


class TestPerInstructionEntropy:
    def test_candidate_choice_adds_bits(self):
        single = per_instruction_entropy(0.5, 1)
        five = per_instruction_entropy(0.5, 5)
        assert five == pytest.approx(single + 0.5 * math.log2(5))

    def test_optimal_probability_formula(self):
        for k in (1, 2, 5, 7):
            p_star = optimal_uniform_probability(k)
            assert p_star == pytest.approx(k / (k + 1))
            below = per_instruction_entropy(p_star - 0.05, k)
            above = per_instruction_entropy(min(p_star + 0.05, 0.999), k)
            at = per_instruction_entropy(p_star, k)
            assert at >= below and at >= above

    def test_k1_reduces_to_the_papers_50_percent(self):
        assert optimal_uniform_probability(1) == pytest.approx(0.5)

    def test_invalid_candidate_count(self):
        with pytest.raises(ValueError):
            per_instruction_entropy(0.5, 0)


class TestUnitEntropy:
    def test_profile_guided_gives_up_entropy_in_hot_code(self, fib_build):
        uniform = PAPER_CONFIGS["50%"]
        guided = PAPER_CONFIGS["10-50%"]
        profile = fib_build.profile((9,))

        uniform_bits, visited = unit_entropy(
            fib_build.unit, block_probability_function(uniform), 5)
        guided_bits, visited_too = unit_entropy(
            fib_build.unit,
            block_probability_function(guided, profile), 5)
        assert visited == visited_too > 0
        assert guided_bits < uniform_bits

    def test_runtime_contributes_no_entropy(self, fib_build):
        from repro.runtime.lib import runtime_unit
        policy = block_probability_function(PAPER_CONFIGS["50%"])
        bits, visited = unit_entropy(runtime_unit(), policy, 5)
        assert bits == 0.0 and visited == 0

    def test_entropy_predicts_distinct_binaries(self, fib_build):
        # With tens of bits of entropy, a 12-binary population collides
        # with negligible probability.
        bits, _visited = unit_entropy(
            fib_build.unit,
            block_probability_function(PAPER_CONFIGS["50%"]), 5)
        assert bits > 40
        population = fib_build.link_population(PAPER_CONFIGS["50%"],
                                               range(12))
        assert distinct_variants(population) == 12
