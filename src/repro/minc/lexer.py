"""Tokenizer for MinC source text."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MincSyntaxError

KEYWORDS = frozenset({
    "int", "void", "if", "else", "while", "for", "return",
    "break", "continue", "print", "input",
})

#: Multi-character operators, longest first so maximal munch works.
_MULTI_OPS = (
    "<<=", ">>=",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
)

_SINGLE_OPS = set("+-*/%<>=!&|^~(){}[],;")


@dataclass(frozen=True)
class Token:
    """One lexical token.

    ``kind`` is "number", "ident", a keyword string, an operator string, or
    "eof". ``value`` carries the integer value / identifier text.
    """

    kind: str
    value: object
    line: int
    column: int

    def __repr__(self):
        return f"Token({self.kind!r}, {self.value!r})"


def tokenize(source):
    """Tokenize MinC source; returns a list ending with an ``eof`` token."""
    tokens = []
    line = 1
    column = 1
    position = 0
    length = len(source)

    def error(message):
        raise MincSyntaxError(message, line, column)

    while position < length:
        char = source[position]

        if char == "\n":
            position += 1
            line += 1
            column = 1
            continue
        if char in " \t\r":
            position += 1
            column += 1
            continue
        if source.startswith("//", position):
            newline = source.find("\n", position)
            position = length if newline < 0 else newline
            continue
        if source.startswith("/*", position):
            end = source.find("*/", position + 2)
            if end < 0:
                error("unterminated block comment")
            skipped = source[position:end + 2]
            line += skipped.count("\n")
            if "\n" in skipped:
                column = len(skipped) - skipped.rfind("\n")
            else:
                column += len(skipped)
            position = end + 2
            continue

        if char.isdigit():
            start = position
            if source.startswith("0x", position) or source.startswith("0X", position):
                position += 2
                while position < length and source[position] in "0123456789abcdefABCDEF":
                    position += 1
                text = source[start:position]
                if len(text) == 2:
                    error("malformed hex literal")
                value = int(text, 16)
            else:
                while position < length and source[position].isdigit():
                    position += 1
                text = source[start:position]
                value = int(text)
            tokens.append(Token("number", value, line, column))
            column += position - start
            continue

        if char.isalpha() or char == "_":
            start = position
            while position < length and (source[position].isalnum()
                                         or source[position] == "_"):
                position += 1
            text = source[start:position]
            kind = text if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line, column))
            column += position - start
            continue

        matched = None
        for op in _MULTI_OPS:
            if source.startswith(op, position):
                matched = op
                break
        if matched is None and char in _SINGLE_OPS:
            matched = char
        if matched is None:
            error(f"unexpected character {char!r}")
        tokens.append(Token(matched, matched, line, column))
        position += len(matched)
        column += len(matched)

    tokens.append(Token("eof", None, line, column))
    return tokens
