"""Property test: optimization preserves observable behaviour.

Random MinC programs (tests.support) run both unoptimized and optimized
through the reference interpreter; their output vectors and exit codes
must be identical. The optimizer must also be deterministic — the
profile-guided pipeline depends on bit-identical repeat builds.
"""

from hypothesis import given, settings, strategies as st

from repro.ir import run_module
from repro.minc import compile_to_ir
from repro.opt import optimize_module
from tests.support import generate_program


@given(seed=st.integers(0, 10_000), program_input=st.integers(-100, 100))
@settings(max_examples=60, deadline=None)
def test_optimizer_preserves_behaviour(seed, program_input):
    source = generate_program(seed)
    plain = compile_to_ir(source)
    optimized = optimize_module(compile_to_ir(source))

    before = run_module(plain, [program_input], max_steps=2_000_000)
    after = run_module(optimized, [program_input], max_steps=2_000_000)
    assert before.output == after.output
    assert before.exit_code == after.exit_code


@given(seed=st.integers(0, 10_000))
@settings(max_examples=25, deadline=None)
def test_optimizer_is_deterministic(seed):
    source = generate_program(seed)
    first = optimize_module(compile_to_ir(source))
    second = optimize_module(compile_to_ir(source))
    assert first.dump() == second.dump()


@given(seed=st.integers(0, 10_000))
@settings(max_examples=25, deadline=None)
def test_optimizer_never_grows_instruction_count(seed):
    source = generate_program(seed)
    plain = compile_to_ir(source)
    optimized = optimize_module(compile_to_ir(source))

    def count(module):
        return sum(len(b.instrs) for f in module.functions.values()
                   for b in f.blocks)

    assert count(optimized) <= count(plain)
